"""Tests of the decoded memory experiment and its metrics."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.experiments import MemoryExperiment
from repro.noise import ideal_noise, paper_noise


def make_experiment(code, policy_name="eraser+m", noise=None, **kwargs):
    return MemoryExperiment(
        code=code,
        noise=noise or paper_noise(),
        policy=make_policy(policy_name),
        **kwargs,
    )


def test_noiseless_memory_has_zero_ler(surface_d3):
    result = make_experiment(surface_d3, "no-lrc", noise=ideal_noise()).run(
        shots=40, rounds=5
    )
    assert result.failures == 0
    assert result.logical_error_rate == 0.0
    assert result.mean_dlp == 0.0


def test_memory_result_summary_fields(surface_d3):
    result = make_experiment(surface_d3).run(shots=60, rounds=8)
    summary = result.summary()
    for key in (
        "ler",
        "ler_low",
        "ler_high",
        "mean_dlp",
        "lrcs_per_round",
        "fp_per_round",
        "fn_per_round",
        "leakage_equilibrium",
    ):
        assert key in summary
    assert summary["ler_low"] <= summary["ler"] <= summary["ler_high"]
    assert summary["shots"] == 60
    assert summary["rounds"] == 8


def test_batching_covers_all_shots(surface_d3):
    result = make_experiment(surface_d3, seed=3).run(shots=70, rounds=5, batch_size=30)
    assert result.shots == 70
    assert result.dlp_per_round.shape == (5,)


def test_no_lrc_worse_than_mitigated_under_heavy_leakage(surface_d3):
    noise = paper_noise(p=2e-3, leakage_ratio=1.0)
    unmitigated = make_experiment(surface_d3, "no-lrc", noise=noise, seed=1).run(
        shots=300, rounds=12
    )
    mitigated = make_experiment(surface_d3, "eraser+m", noise=noise, seed=1).run(
        shots=300, rounds=12
    )
    assert mitigated.logical_error_rate <= unmitigated.logical_error_rate
    assert mitigated.mean_dlp < unmitigated.mean_dlp


def test_run_undecoded_skips_detector_recording(surface_d5):
    experiment = make_experiment(surface_d5, "gladiator+m", leakage_sampling=True)
    result = experiment.run_undecoded(shots=50, rounds=20)
    assert result.detector_history is None
    assert result.shots == 50


def test_per_round_rate_below_total(surface_d3):
    result = make_experiment(surface_d3, seed=2).run(shots=100, rounds=10)
    assert result.per_round_logical_error_rate <= max(result.logical_error_rate, 1e-12)


def test_invalid_arguments_rejected(surface_d3):
    experiment = make_experiment(surface_d3)
    with pytest.raises(ValueError):
        experiment.run(shots=0, rounds=5)
    with pytest.raises(ValueError):
        experiment.run(shots=5, rounds=0)


def test_dlp_curve_is_bounded(surface_d3):
    result = make_experiment(surface_d3, "gladiator+m", seed=4).run(shots=80, rounds=10)
    assert np.all(result.dlp_per_round >= 0)
    assert np.all(result.dlp_per_round <= 1)
    assert 0 <= result.final_dlp <= 1
