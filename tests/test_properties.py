"""Property-based tests (hypothesis) for core data structures and invariants.

The input strategies live in ``tests/strategies.py`` and are shared with the
scenario-fuzz tier; the profiles (derandomized ``ci`` vs randomized
``nightly``) are registered there and loaded by ``tests/conftest.py``.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import (
    bit_patterns,
    bit_widths,
    detector_blocks,
    detector_chunk_pairs,
    gf2_matrices,
    group_bases_lists,
    shard_payloads,
    stabilizer_supports,
    task_records,
    torn_journal_bytes,
)

from repro.codes import surface_code, two_block_cyclic_code
from repro.codes.gf2 import gf2_nullspace, gf2_rank
from repro.codes.scheduling import assign_conflict_free_slots
from repro.core import CalibrationData, GraphModelConfig, TransitionModel
from repro.core.boolean_minimize import evaluate, quine_mccluskey
from repro.core.graph_model import GroupInfo, QubitContext
from repro.core.patterns import (
    bits_to_int,
    eraser_flags_pattern,
    int_to_bits,
    popcount,
    tag_pattern,
    untag_pattern,
)
from repro.experiments.metrics import per_round_logical_error_rate, wilson_interval


# --------------------------------------------------------------------------- #
# Pattern utilities
# --------------------------------------------------------------------------- #
@given(bit_patterns())
def test_bits_roundtrip(pattern):
    value, width = pattern
    assert bits_to_int(int_to_bits(value, width)) == value


@given(st.integers(min_value=0, max_value=2**16 - 1))
def test_popcount_matches_python(value):
    assert popcount(value) == bin(value).count("1")


@given(bit_patterns(max_width=4))
def test_tagging_roundtrip_property(pattern):
    value, width = pattern
    assert untag_pattern(tag_pattern(value, width)) == (value, width)


@given(bit_patterns(max_width=8))
def test_eraser_flag_monotone_in_popcount(pattern):
    value, width = pattern
    if eraser_flags_pattern(value, width):
        # Setting one more bit can never un-flag a pattern.
        for bit in range(width):
            assert eraser_flags_pattern(value | (1 << bit), width)


# --------------------------------------------------------------------------- #
# Packed detector chunks (repro.pipeline)
# --------------------------------------------------------------------------- #
@given(detector_blocks())
def test_pack_unpack_round_trip_identity(block):
    """pack -> unpack is the identity for every chunk shape, including zero
    shots and widths that leave padding bits in the last packed byte."""
    from repro.pipeline import pack_chunk, unpack_chunk

    for round_index in range(block.shape[1]):
        chunk = block[:, round_index, :]
        assert np.array_equal(unpack_chunk(pack_chunk(chunk), chunk.shape[1]), chunk)


@given(detector_blocks())
def test_ring_push_slice_unpack_is_identity(block):
    """pack -> ring slot -> window slice -> unpack reproduces the record."""
    from repro.pipeline import PackedRing

    shots, rounds, detectors = block.shape
    ring = PackedRing(capacity=rounds, shots=shots, num_detectors=detectors)
    for round_index in range(rounds):
        ring.push(round_index, block[:, round_index, :])
    assert np.array_equal(ring.window(0, rounds), block)
    for round_index in range(rounds):
        assert np.array_equal(ring.read_round(round_index), block[:, round_index, :])


@given(detector_chunk_pairs())
def test_packing_is_gf2_linear(pair):
    """pack(a ^ b) == pack(a) ^ pack(b): the property that makes XOR-ing
    boundary artifacts in the packed domain exact, not approximate."""
    from repro.pipeline import pack_chunk

    a, b = pair
    assert np.array_equal(pack_chunk(a ^ b), pack_chunk(a) ^ pack_chunk(b))


@given(detector_chunk_pairs())
def test_ring_xor_round_matches_boolean_xor(pair):
    from repro.pipeline import PackedRing

    chunk, mask = pair
    ring = PackedRing(capacity=1, shots=chunk.shape[0], num_detectors=chunk.shape[1])
    ring.push(0, chunk)
    ring.xor_round(0, mask)
    assert np.array_equal(ring.read_round(0), chunk ^ mask)


# --------------------------------------------------------------------------- #
# GF(2) linear algebra
# --------------------------------------------------------------------------- #
@given(gf2_matrices())
@settings(max_examples=40, deadline=None)
def test_rank_nullity(matrix):
    cols = matrix.shape[1]
    assert gf2_rank(matrix) + gf2_nullspace(matrix).shape[0] == cols
    null_basis = gf2_nullspace(matrix)
    for vector in null_basis:
        assert not np.any((matrix @ vector) % 2)


# --------------------------------------------------------------------------- #
# Quine-McCluskey correctness
# --------------------------------------------------------------------------- #
@given(
    st.integers(min_value=2, max_value=5),
    st.sets(st.integers(min_value=0, max_value=31), max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_quine_mccluskey_preserves_truth_table(width, raw_minterms):
    minterms = {m for m in raw_minterms if m < (1 << width)}
    implicants = quine_mccluskey(minterms, width)
    for value in range(1 << width):
        assert evaluate(implicants, value) == (value in minterms)


# --------------------------------------------------------------------------- #
# Scheduling
# --------------------------------------------------------------------------- #
@given(stabilizer_supports())
@settings(max_examples=50, deadline=None)
def test_conflict_free_slots_property(supports):
    slots = assign_conflict_free_slots(supports)
    qubit_usage: dict[int, set[int]] = {}
    for support, assignment in zip(supports, slots):
        assert len(assignment) == len(support)
        assert len(set(assignment)) == len(assignment)
        for qubit, slot in zip(support, assignment):
            assert slot not in qubit_usage.setdefault(qubit, set())
            qubit_usage[qubit].add(slot)


# --------------------------------------------------------------------------- #
# Graph-model labelling invariants
# --------------------------------------------------------------------------- #
@given(group_bases_lists(), st.floats(min_value=0.05, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_labels_never_flag_zero_and_respect_threshold(bases_list, threshold):
    context = QubitContext(
        width=len(bases_list),
        groups=tuple(
            GroupInfo(position=i, bases=bases) for i, bases in enumerate(bases_list)
        ),
    )
    calibration = CalibrationData(
        gate_error=1e-3,
        measurement_error=1e-3,
        reset_error=1e-3,
        data_error=1e-3,
        leakage_rate=1e-4,
    )
    model = TransitionModel(context, calibration, GraphModelConfig(threshold=threshold))
    labels = model.label_patterns()
    leakage, nonleakage = model.super_edge_weights()
    assert not labels[0]
    for value in range(1, 1 << context.width):
        assert labels[value] == (leakage[value] > threshold * nonleakage[value])


# --------------------------------------------------------------------------- #
# Codes and metrics
# --------------------------------------------------------------------------- #
@given(st.sampled_from([3, 5, 7]))
@settings(max_examples=6, deadline=None)
def test_surface_code_invariants(distance):
    code = surface_code(distance)
    assert code.num_data == distance**2
    assert code.num_logical_qubits == 1
    h_x, h_z = code.parity_check_x, code.parity_check_z
    assert not np.any((h_x @ h_z.T) % 2)


@given(st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=500))
def test_wilson_interval_bounds(failures, extra):
    shots = failures + extra
    low, high = wilson_interval(failures, shots)
    assert 0 <= low <= failures / shots <= high <= 1


@given(
    st.floats(min_value=0.0, max_value=0.49),
    st.integers(min_value=1, max_value=1000),
)
def test_per_round_rate_bounded(total_ler, rounds):
    per_round = per_round_logical_error_rate(total_ler, rounds)
    assert 0 <= per_round <= total_ler + 1e-12


@given(st.sampled_from([6, 9, 12]), st.sets(st.integers(min_value=0, max_value=2), min_size=1, max_size=3))
@settings(max_examples=15, deadline=None)
def test_two_block_codes_commute(lift, poly_a):
    # a(x) built from a factor of x^l - 1 times something keeps k > 0 only in
    # special cases; here we just check CSS commutation holds whenever the
    # construction succeeds.
    poly = sorted(poly_a)
    try:
        code = two_block_cyclic_code(lift, poly, poly, name="prop")
    except ValueError:
        return
    h_x, h_z = code.parity_check_x, code.parity_check_z
    assert not np.any((h_x @ h_z.T) % 2)


# --------------------------------------------------------------------------- #
# Unused-width bit still untouched by bit helpers (regression guard on the
# shared strategy itself: values drawn by bit_patterns always fit the width)
# --------------------------------------------------------------------------- #
@given(bit_widths(), bit_patterns())
def test_bit_patterns_fit_their_width(_, pattern):
    value, width = pattern
    assert 0 <= value < (1 << width)


# --------------------------------------------------------------------------- #
# Durable fabric journal (repro.fabric.jobstore)
# --------------------------------------------------------------------------- #
def _leaves_equal(expected, actual):
    if isinstance(expected, np.ndarray):
        return (
            isinstance(actual, np.ndarray)
            and actual.dtype == expected.dtype
            and actual.shape == expected.shape
            and np.ascontiguousarray(actual).tobytes()
            == np.ascontiguousarray(expected).tobytes()
        )
    if isinstance(expected, dict):
        return expected.keys() == actual.keys() and all(
            _leaves_equal(v, actual[k]) for k, v in expected.items()
        )
    if isinstance(expected, (list, tuple)):
        return len(expected) == len(actual) and all(
            _leaves_equal(e, a) for e, a in zip(expected, actual)
        )
    return expected == actual


@given(shard_payloads())
def test_shard_payload_codec_roundtrips_bit_exact(payload):
    """Checkpoint payloads survive JSON serialization bit-for-bit — the
    property the resumed-merge bit-identity invariant rests on."""
    import json as json_module

    from repro.fabric import decode_payload, encode_payload

    wire = json_module.dumps(encode_payload(payload), sort_keys=True)
    assert _leaves_equal(payload, decode_payload(json_module.loads(wire)))


@given(task_records())
def test_journal_replay_roundtrips_valid_records(tmp_path_factory, record):
    from repro.fabric import JobStore

    store = JobStore(tmp_path_factory.mktemp("journal"))
    store.attach({})
    store.write_task(record)
    loaded = store.load_task(record["task"])
    assert loaded is not None
    for key in ("schema", "task", "state", "attempts", "owner", "error",
                "shots", "seed"):
        assert loaded[key] == record[key]
    assert store.corrupt == 0


@given(torn_journal_bytes())
def test_journal_replay_survives_torn_writes(tmp_path_factory, torn):
    """A record torn at ANY byte offset is either still parseable-and-valid
    or quarantined as absent — the reader never crashes, never trusts
    garbage, and the slot stays usable for the re-queued task."""
    from repro.fabric import JobStore

    record, damaged = torn
    store = JobStore(tmp_path_factory.mktemp("journal"))
    store.attach({})
    path = store.task_path(record["task"])
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(damaged)
    loaded = store.load_task(record["task"])
    assert loaded is None  # every strict prefix fails to parse or validate
    assert store.corrupt == 1
    assert not path.exists()  # quarantined aside, never left in place
    # The slot is immediately reusable: a clean rewrite journals fine.
    store.write_task(record)
    assert store.load_task(record["task"]) is not None
