"""Tests of the sweep/comparison runner and workload scaling."""

import pytest

from repro.experiments import (
    compare_policies,
    compare_policies_decoded,
    current_scale,
    make_code,
    sweep_distances,
    sweep_error_rates,
)
from repro.experiments.runner import ScaleConfig
from repro.noise import paper_noise


def test_make_code_families():
    assert make_code("surface", 5).name == "surface_d5"
    assert make_code("color", 5).name == "color_d5"
    assert make_code("hgp").metadata["family"] == "hgp"
    assert make_code("bpc").metadata["family"] == "bpc"
    with pytest.raises(ValueError):
        make_code("steane")


def test_scale_config_from_environment(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    scale = current_scale()
    assert scale.name == "smoke"
    assert scale.shots(1000) < 1000
    monkeypatch.setenv("REPRO_SCALE", "paper")
    assert current_scale().shots(1000) > 1000
    monkeypatch.setenv("REPRO_SCALE", "bogus")
    with pytest.raises(ValueError):
        current_scale()


def test_scale_config_floors():
    scale = ScaleConfig(name="tiny", shot_multiplier=0.001, round_multiplier=0.001, decoded_shot_multiplier=0.001)
    assert scale.shots(100) >= 10
    assert scale.rounds(100) >= 5
    assert scale.decoded_shots(100) >= 10


def test_compare_policies_returns_one_row_per_policy(surface_d3, noise):
    rows = compare_policies(
        surface_d3, noise, ["eraser+m", "gladiator+m"], shots=40, rounds=10, seed=1
    )
    assert len(rows) == 2
    assert {row["policy"] for row in rows} == {"eraser+M", "gladiator+M"}
    for row in rows:
        assert row["code"] == surface_d3.name
        assert "mean_dlp" in row and "lrcs_per_round" in row
        assert row["dlp_per_round"].shape == (10,)


def test_compare_policies_decoded_includes_ler(surface_d3, noise):
    rows = compare_policies_decoded(
        surface_d3, noise, ["eraser+m"], shots=40, rounds=6, seed=1
    )
    assert len(rows) == 1
    assert 0 <= rows[0]["ler"] <= 1


def test_sweep_distances_labels_rows(noise):
    rows = sweep_distances(
        [3, 5],
        noise,
        ["eraser+m"],
        shots=30,
        rounds_per_distance=lambda d: 2 * d,
        decoded=False,
        leakage_sampling=True,
    )
    assert len(rows) == 2
    assert {row["distance"] for row in rows} == {3, 5}
    assert rows[0]["rounds"] == 6 and rows[1]["rounds"] == 10


def test_sweep_error_rates_labels_rows():
    rows = sweep_error_rates(
        [1e-3, 1e-4],
        leakage_ratio=0.1,
        policy_names=["gladiator+m"],
        shots=30,
        rounds=10,
        distance=3,
        decoded=False,
    )
    assert len(rows) == 2
    assert {row["p"] for row in rows} == {1e-3, 1e-4}
