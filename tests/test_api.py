"""Tests of the api facade: registries and the ExperimentConfig tree."""

import json

import pytest

from repro.api import (
    CODES,
    DECODERS,
    NOISE_PRESETS,
    POLICIES,
    CodeConfig,
    DecoderConfig,
    ExecutionConfig,
    ExperimentConfig,
    NoiseConfig,
    PolicyConfig,
    Registry,
    UnknownNameError,
    config_schema,
    register_policy,
)
from repro.api.session import build_code, build_noise, build_policy
from repro.core import POLICY_NAMES
from repro.core.policies import NoLrcPolicy
from repro.noise import paper_noise


# --------------------------------------------------------------------- #
# Registry mechanism
# --------------------------------------------------------------------- #
def test_registries_cover_the_stock_components():
    assert set(CODES.names()) == {"surface", "color", "hgp", "bpc", "toric"}
    assert set(DECODERS.names()) == {"matching", "union_find"}
    assert set(NOISE_PRESETS.names()) == {
        "paper", "ideal", "custom", "drift", "bursts", "floods",
    }
    assert set(POLICIES.names()) == set(POLICY_NAMES)


def test_policy_names_is_derived_from_the_registry():
    assert POLICY_NAMES == tuple(POLICIES.names())


def test_aliases_resolve_to_canonical_entries():
    assert DECODERS.get("union-find").name == "union_find"
    assert DECODERS.get("mwpm").name == "matching"
    assert POLICIES.get("always").name == "always-lrc"
    assert POLICIES.get("GLADIATOR_D").name == "gladiator-d"


def test_unknown_name_error_carries_suggestions_and_listing():
    with pytest.raises(UnknownNameError) as excinfo:
        DECODERS.get("union_fnd")
    message = str(excinfo.value)
    assert "did you mean 'union_find'" in message
    assert "matching" in message  # the full listing rides along
    assert isinstance(excinfo.value, ValueError)  # legacy callers catch ValueError


def test_third_party_registration_via_decorator():
    @register_policy("test-third-party", description="registered by a test")
    class ThirdPartyPolicy(NoLrcPolicy):
        name: str = "test-third-party"

    try:
        from repro.core import make_policy

        assert isinstance(make_policy("test-third-party"), ThirdPartyPolicy)
        assert "test-third-party" in POLICIES.names()
        # Config validation accepts it immediately, with no repro changes.
        ExperimentConfig(policy=PolicyConfig(name="test-third-party")).validate()
    finally:
        POLICIES.unregister("test-third-party")
    assert "test-third-party" not in POLICIES


def test_duplicate_registration_is_rejected():
    registry = Registry("widget")
    registry.add("alpha", object, aliases=("a",))
    with pytest.raises(ValueError):
        registry.add("alpha", object)
    with pytest.raises(ValueError):
        registry.add("beta", object, aliases=("a",))


# --------------------------------------------------------------------- #
# Config round-trip and validation
# --------------------------------------------------------------------- #
def _full_config() -> ExperimentConfig:
    return ExperimentConfig(
        name="round-trip",
        code=CodeConfig(name="color", distance=5),
        noise=NoiseConfig(preset="paper", p=2e-3, leakage_ratio=1.0,
                          overrides={"leakage_mobility": 0.2}),
        policy=PolicyConfig(name="gladiator+m", options={"threshold": 0.05}),
        decoder=DecoderConfig(name="matching", max_exact_nodes=10,
                              strategy="greedy", cache_size=64),
        execution=ExecutionConfig(shots=40, rounds=6, seed=3, decoded=True,
                                  leakage_sampling=True, decode_batch_size=16,
                                  window_rounds=4, commit_rounds=2, workers=2),
    )


def test_config_dict_and_json_round_trip_is_identity():
    config = _full_config()
    assert ExperimentConfig.from_dict(config.to_dict()) == config
    assert ExperimentConfig.from_json(config.to_json()) == config
    # and through an honest serialise/parse cycle
    assert ExperimentConfig.from_dict(json.loads(json.dumps(config.to_dict()))) == config


def test_config_file_round_trip(tmp_path):
    config = _full_config()
    path = config.save(tmp_path / "cfg.json")
    assert ExperimentConfig.load(path) == config


def test_default_config_validates():
    ExperimentConfig().validate()


@pytest.mark.parametrize(
    "path, value, fragment",
    [
        ("code.name", "surfac", "did you mean 'surface'"),
        ("decoder.name", "union_fnd", "did you mean 'union_find'"),
        ("policy.name", "gladiatr", "did you mean"),
        ("noise.preset", "papr", "did you mean 'paper'"),
    ],
)
def test_validation_rejects_unknown_names_with_suggestions(path, value, fragment):
    config = ExperimentConfig().override(path, value)
    with pytest.raises(ValueError, match=fragment):
        config.validate()


def test_from_dict_rejects_unknown_fields_with_suggestions():
    with pytest.raises(ValueError, match="did you mean 'distance'"):
        ExperimentConfig.from_dict({"code": {"name": "surface", "distence": 3}})
    with pytest.raises(ValueError, match="unknown experiment config field"):
        ExperimentConfig.from_dict({"codes": {}})


def test_validation_rejects_bad_sections():
    with pytest.raises(ValueError):
        ExperimentConfig(execution=ExecutionConfig(shots=0)).validate()
    with pytest.raises(ValueError):  # union_find has no tuning knobs
        ExperimentConfig(
            decoder=DecoderConfig(name="union_find", strategy="greedy")
        ).validate()
    with pytest.raises(ValueError):  # windows need decoding
        ExperimentConfig(
            execution=ExecutionConfig(decoded=False, window_rounds=4)
        ).validate()
    with pytest.raises(ValueError):  # options only fit graph-model policies
        ExperimentConfig(
            policy=PolicyConfig(name="eraser", options={"threshold": 0.1})
        ).validate()
    with pytest.raises(ValueError, match="did you mean"):
        ExperimentConfig(
            noise=NoiseConfig(overrides={"leakage_mobilty": 0.3})
        ).validate()


def test_validation_rejects_wrong_field_types_with_field_path():
    with pytest.raises(ValueError, match="execution.shots must be integer"):
        ExperimentConfig().override("execution.shots", "abc").validate()
    with pytest.raises(ValueError, match="code.distance must be integer or null"):
        ExperimentConfig().override("code.distance", 3.5).validate()
    with pytest.raises(ValueError, match="execution.decoded must be boolean"):
        ExperimentConfig().override("execution.decoded", 1).validate()
    with pytest.raises(ValueError, match="noise.overrides must be object"):
        ExperimentConfig().override("noise.overrides", "x").validate()
    # bool must not sneak into integer fields (bool subclasses int)
    with pytest.raises(ValueError, match="execution.window_rounds"):
        ExperimentConfig().override("execution.window_rounds", True).validate()


def test_override_dotted_paths():
    config = ExperimentConfig()
    assert config.override("decoder.name", "union_find").decoder.name == "union_find"
    assert config.override("name", "renamed").name == "renamed"
    with pytest.raises(ValueError, match="unknown"):
        config.override("decoder.nmae", "matching")
    with pytest.raises(ValueError):
        config.override("nonsense.path.here", 1)


def test_digest_and_unit_key_canonicalize_alias_spellings():
    """mwpm/matching, always/always-lrc, Surface/surface: one cache key."""
    from repro.api.session import workunit_from_config
    from repro.sweeps.units import unit_key

    aliased = ExperimentConfig.from_dict(
        {"code": {"name": "Surface"}, "decoder": {"name": "mwpm"},
         "policy": {"name": "ALWAYS"}, "execution": {"decoded": False}}
    )
    canonical = ExperimentConfig.from_dict(
        {"code": {"name": "surface"}, "decoder": {"name": "matching"},
         "policy": {"name": "always-lrc"}, "execution": {"decoded": False}}
    )
    assert aliased.digest() == canonical.digest()
    assert unit_key(workunit_from_config(aliased)) == unit_key(
        workunit_from_config(canonical)
    )


def test_digest_ignores_performance_only_knobs():
    base = _full_config()
    assert base.digest() == base.override("decoder.cache_size", 999).digest()
    assert base.digest() == base.override("execution.workers", 16).digest()
    assert base.digest() == base.override("name", "other").digest()
    assert base.digest() != base.override("execution.seed", 99).digest()
    assert base.digest() != base.override("code.distance", 3).digest()


def test_build_helpers_construct_the_configured_components():
    config = _full_config()
    code = build_code(config)
    assert code.name == "color_d5"
    noise = build_noise(config)
    assert noise == paper_noise(p=2e-3, leakage_ratio=1.0).with_(leakage_mobility=0.2)
    policy = build_policy(config)
    assert policy.describe() == "gladiator+M"
    # custom preset reconstructs arbitrary NoiseParams exactly
    from dataclasses import asdict

    exotic = paper_noise(p=3e-3).with_(lrc_error_factor=5.0)
    rebuilt = build_noise(NoiseConfig(preset="custom", overrides=asdict(exotic)))
    assert rebuilt == exotic


def test_noise_preset_without_rates_rejects_rates():
    with pytest.raises(ValueError, match="does not take"):
        NoiseConfig(preset="ideal", p=1e-3).validate()
    NoiseConfig(preset="ideal").validate()


# --------------------------------------------------------------------- #
# JSON schema
# --------------------------------------------------------------------- #
def test_config_schema_shape_and_registry_enums():
    schema = config_schema()
    assert schema["title"] == "repro ExperimentConfig"
    sections = schema["properties"]
    assert set(sections) == {"name", "code", "noise", "policy", "decoder", "execution"}
    assert sections["code"]["properties"]["name"]["enum"] == CODES.names()
    assert sections["policy"]["properties"]["name"]["enum"] == POLICIES.names()
    assert sections["decoder"]["properties"]["name"]["enum"] == DECODERS.names()
    assert sections["noise"]["properties"]["preset"]["enum"] == NOISE_PRESETS.names()
    # optional ints carry both types; defaults are stamped
    distance = sections["code"]["properties"]["distance"]
    assert set(distance["type"]) == {"integer", "null"}
    assert sections["execution"]["properties"]["shots"]["default"] == 100
    json.dumps(schema)  # fully serialisable
