"""Edge cases of the latency/SLO accounting (``realtime.accounting``, ``serve.slo``).

The percentile machinery feeds both per-stream summaries (golden-fixture
pinned elsewhere) and the server's live SLO snapshot, so its behavior on
degenerate inputs — no windows yet, a single sample, tail percentiles with
far fewer than 1000 observations — must be boring and well-defined.
"""

import numpy as np
import pytest

from repro.hardware.microarchitecture import ROUND_LATENCY_NS, realtime_deadline_ns
from repro.obs.metrics import Histogram
from repro.realtime import LatencyRecorder
from repro.realtime.accounting import StreamReport, WindowTiming
from repro.serve.slo import SloTracker


# --------------------------------------------------------------------- #
# Histogram percentiles
# --------------------------------------------------------------------- #
def test_empty_histogram_percentiles_are_zero():
    histogram = Histogram("t")
    for q in (0, 50, 99, 99.9, 100):
        assert histogram.percentile(q) == 0.0
    assert histogram.count == 0


def test_single_sample_dominates_every_percentile():
    histogram = Histogram("t")
    histogram.observe(3.5e-6)
    for q in (0, 50, 99, 99.9, 100):
        assert histogram.percentile(q) == pytest.approx(3.5e-6)


def test_p999_with_fewer_than_1000_samples_interpolates_to_tail():
    """With N << 1000 the p99.9 sits between the two largest samples."""
    histogram = Histogram("t")
    samples = [float(i) for i in range(1, 11)]  # 1..10
    for value in samples:
        histogram.observe(value)
    p999 = histogram.percentile(99.9)
    assert 9.0 < p999 <= 10.0
    assert histogram.percentile(100) == 10.0
    assert histogram.percentile(99.9) >= histogram.percentile(99)


# --------------------------------------------------------------------- #
# LatencyRecorder
# --------------------------------------------------------------------- #
def test_empty_recorder_summary_is_all_zero():
    summary = LatencyRecorder().summary()
    assert summary["windows"] == 0
    assert summary["rounds_committed"] == 0
    assert summary["decode_seconds"] == 0.0
    assert summary["round_latency_p50"] == 0.0
    assert summary["round_latency_p99"] == 0.0
    assert summary["mean_queue_wait"] == 0.0
    assert summary["realtime_factor"] == 0.0
    assert summary["hardware_round_ns"] == ROUND_LATENCY_NS


def test_single_window_summary():
    recorder = LatencyRecorder()
    recorder.record(committed_rounds=4, service_seconds=8e-6)
    summary = recorder.summary()
    assert summary["windows"] == 1
    assert summary["rounds_committed"] == 4
    # One sample: every percentile is the per-round latency of that window.
    assert summary["round_latency_p50"] == pytest.approx(2e-6)
    assert summary["round_latency_p99"] == pytest.approx(2e-6)
    assert summary["realtime_factor"] == pytest.approx(
        realtime_deadline_ns(4) * 1e-9 / 8e-6
    )


def test_zero_committed_rounds_window_does_not_divide_by_zero():
    recorder = LatencyRecorder()
    recorder.record(committed_rounds=0, service_seconds=5e-6)
    assert recorder.per_round_latencies[0] == pytest.approx(5e-6)
    assert recorder.percentile(50) == pytest.approx(5e-6)
    # Zero rounds means zero budget, so the realtime factor collapses to 0.
    assert recorder.summary()["realtime_factor"] == 0.0


def test_add_wait_attaches_to_last_window_only():
    recorder = LatencyRecorder()
    recorder.add_wait(1.0)  # no windows yet: silently ignored
    assert recorder.timings == []
    recorder.record(2, 1e-6)
    recorder.record(2, 1e-6)
    recorder.add_wait(3e-6)
    recorder.add_wait(4e-6)
    assert recorder.timings[0].wait_seconds == 0.0
    assert recorder.timings[1].wait_seconds == pytest.approx(7e-6)


def test_stream_report_failures_are_optional():
    recorder = LatencyRecorder()
    recorder.record(3, 1e-6)
    blind = StreamReport(
        stream_id=1, shots=5, rounds=3, recorder=recorder, wall_seconds=1e-3
    )
    assert blind.logical_error_rate is None
    assert "failures" not in blind.summary()
    scored = StreamReport(
        stream_id=1,
        shots=5,
        rounds=3,
        recorder=recorder,
        failures=2,
        wall_seconds=1e-3,
    )
    assert scored.logical_error_rate == pytest.approx(0.4)
    assert scored.summary()["failures"] == 2


# --------------------------------------------------------------------- #
# SloTracker snapshot math
# --------------------------------------------------------------------- #
def test_empty_tracker_snapshot_is_zeroed():
    snapshot = SloTracker().snapshot()
    assert snapshot["rounds"] == 0
    assert snapshot["windows"] == 0
    assert snapshot["round_latency_p50_ns"] == 0.0
    assert snapshot["round_latency_p999_ns"] == 0.0
    assert snapshot["slo_p99"] == 0.0
    assert snapshot["coalesce_ratio"] == 0.0
    assert snapshot["hardware_round_ns"] == ROUND_LATENCY_NS


def test_tracker_prices_latency_against_round_budget():
    tracker = SloTracker()
    # Two windows, both costing exactly one hardware round per round.
    budget_seconds = ROUND_LATENCY_NS * 1e-9
    tracker.on_window(0, None, 4, 4 * budget_seconds, 0.0)
    tracker.on_window(1, None, 2, 2 * budget_seconds, 0.0)
    snapshot = tracker.snapshot()
    assert snapshot["rounds"] == 6
    assert snapshot["windows"] == 2
    assert snapshot["slo_p50"] == pytest.approx(1.0)
    assert snapshot["slo_p999"] == pytest.approx(1.0)
    assert snapshot["round_latency_p50_ns"] == pytest.approx(ROUND_LATENCY_NS)


def test_coalesce_ratio_counts_solo_dispatches():
    tracker = SloTracker()
    for stream in range(4):
        tracker.on_window(stream, None, 1, 1e-6, 0.0)
    # One batch merged 3 of the 4 windows; the fourth went out alone.
    tracker.on_batch(3)
    snapshot = tracker.snapshot()
    # 4 windows over (1 batch + 1 solo dispatch) = 2 dispatches.
    assert snapshot["coalesce_ratio"] == pytest.approx(2.0)


def test_coalesce_ratio_is_one_without_batching():
    tracker = SloTracker()
    for stream in range(5):
        tracker.on_window(stream, None, 1, 1e-6, 0.0)
    assert tracker.snapshot()["coalesce_ratio"] == pytest.approx(1.0)


def test_queue_depth_tracks_maximum():
    tracker = SloTracker()
    for depth in (1, 3, 2):
        tracker.on_queue_depth(depth)
    snapshot = tracker.snapshot()
    assert snapshot["queue_depth"] == 2
    assert snapshot["max_queue_depth"] == 3


def test_stream_and_rejection_counters():
    tracker = SloTracker()
    tracker.on_stream_done(0, "a", None)
    tracker.on_stream_done(1, "b", RuntimeError("boom"))
    tracker.on_rejected()
    snapshot = tracker.snapshot()
    assert snapshot["streams_done"] == 2
    assert snapshot["stream_errors"] == 1
    assert snapshot["admission_rejected"] == 1
