"""Bit-identity of the optimized simulator against the frozen reference.

The workspace/C-kernel hot path must produce *exactly* the results of the
pre-optimization simulator — same RNG stream, same arrays, same histograms.
The reference implementation is frozen verbatim inside
``benchmarks/bench_sim_round.py`` (where it also anchors the speedup floor);
these tests race it against the optimized engine across the pinned scenario
matrix and through every execution mode (compiled kernels on/off, draw
prefetch on/off), and check that workspace reuse cannot leak state across
rounds or across ``run_incremental`` calls.
"""

import os
import sys
from pathlib import Path

import numpy as np
import pytest

_BENCHMARKS = Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS))

from bench_sim_round import ReferenceLeakageSimulator, assert_results_identical  # noqa: E402

from repro.core import make_policy
from repro.experiments import make_code
from repro.noise import NoiseParams, paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions
from repro.sim.workspace import RoundWorkspace

#: The pinned scenario matrix: surface and colour codes, MLR and non-MLR
#: policies (including the two-round and the ancilla-LRC-emitting ones),
#: leakage sampling on/off, detector/pattern recording on.
SCENARIOS = [
    ("surface", 3, "gladiator+m", dict(record_detectors=True)),
    ("surface", 3, "eraser", dict(leakage_sampling=True)),
    ("surface", 5, "gladiator-d+m", dict(leakage_sampling=True)),
    ("surface", 3, "always", dict(record_detectors=True)),
    ("color", 5, "gladiator+m", dict(record_detectors=True, record_patterns=True)),
    ("color", 5, "eraser", dict(leakage_sampling=True, record_patterns=True)),
    ("surface", 3, "ideal", dict(leakage_sampling=True)),
    ("surface", 3, "mlr-only", dict()),
]


def _build(simulator_cls, family, distance, policy, seed=7, **options):
    return simulator_cls(
        code=make_code(family, distance),
        noise=paper_noise(p=2e-3, leakage_ratio=0.1),
        policy=make_policy(policy),
        options=SimulatorOptions(**options),
        seed=seed,
    )


@pytest.mark.parametrize("family,distance,policy,options", SCENARIOS)
def test_optimized_matches_reference(family, distance, policy, options):
    reference = _build(ReferenceLeakageSimulator, family, distance, policy, **options)
    optimized = _build(LeakageSimulator, family, distance, policy, **options)
    ref_result = reference.run(shots=48, rounds=6)
    opt_result = optimized.run(shots=48, rounds=6)
    assert_results_identical(ref_result, opt_result)


@pytest.mark.parametrize("ckernels", ["0", "1"])
@pytest.mark.parametrize("prefetch", ["off", "on"])
def test_all_execution_modes_are_bit_identical(monkeypatch, ckernels, prefetch):
    """C kernels and the prefetch worker never change a single bit."""
    monkeypatch.setenv("REPRO_SIM_CKERNELS", ckernels)
    reference = _build(
        ReferenceLeakageSimulator, "surface", 3, "gladiator+m",
        leakage_sampling=True, record_detectors=True,
    )
    optimized = _build(
        LeakageSimulator, "surface", 3, "gladiator+m",
        leakage_sampling=True, record_detectors=True, rng_prefetch=prefetch,
    )
    assert_results_identical(
        reference.run(shots=40, rounds=5), optimized.run(shots=40, rounds=5)
    )


def test_constant_draw_advance_preserves_uint32_buffer():
    """``advance`` resets PCG64's buffered half-word; the constant-draw fast
    path must restore it, or the next bounded ``integers`` call forks from
    the baseline stream (observed as a rare, stream-position-dependent
    divergence in long runs)."""
    from repro.sim.draws import DrawOp, DrawPlan, SerialDrawSource

    seed = next(
        s for s in range(100)
        if (lambda r: (r.integers(0, 3, size=7), r.bit_generator.state["has_uint32"])[1])(
            np.random.default_rng(s)
        )
    )
    baseline = np.random.default_rng(seed)
    optimized = np.random.default_rng(seed)
    baseline.integers(0, 3, size=7)
    optimized.integers(0, 3, size=7)
    assert baseline.bit_generator.state["has_uint32"] == 1
    baseline.random((5, 4))  # consumes 20 doubles, half-word buffer intact
    plan = DrawPlan()
    shape_id = plan.shape_id((5, 4))
    plan.body = [DrawOp("bern", shape_id, threshold=1.5)]  # constant ones
    source = SerialDrawSource(optimized, plan)
    source.start_round(False, False)
    mask = source.next()
    assert mask.all()
    source.release(mask)
    source.close()
    assert baseline.bit_generator.state == optimized.bit_generator.state
    assert np.array_equal(
        baseline.integers(0, 3, size=9), optimized.integers(0, 3, size=9)
    )


def test_long_run_after_warmup_stays_identical():
    """Back-to-back runs shift the stream into positions where the buffered
    half-word is pending at a constant-draw advance — the exact scenario
    that forked the integer stream before the fix."""
    reference = _build(ReferenceLeakageSimulator, "surface", 5, "gladiator+m",
                       seed=202, leakage_sampling=True)
    optimized = _build(LeakageSimulator, "surface", 5, "gladiator+m",
                       seed=202, leakage_sampling=True)
    assert_results_identical(
        reference.run(shots=128, rounds=2), optimized.run(shots=128, rounds=2)
    )
    assert_results_identical(
        reference.run(shots=2000, rounds=12), optimized.run(shots=2000, rounds=12)
    )


def test_ckernels_skipped_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_CKERNELS", "0")
    from repro.sim import _ckernels

    assert not _ckernels.available()
    sim = _build(LeakageSimulator, "surface", 3, "eraser")
    assert not sim._use_ckernels


def test_pattern_histograms_match_reference_loop():
    """The bincount accounting reproduces the per-value Python loop exactly,
    including explicit zero entries for unobserved patterns."""
    optimized = _build(
        LeakageSimulator, "color", 5, "gladiator+m", record_patterns=True,
        leakage_sampling=True,
    )
    result = optimized.run(shots=32, rounds=5)

    # Recompute the expectation with the frozen per-value loop on a rerun of
    # the reference simulator (identical stream -> identical patterns).
    reference = _build(
        ReferenceLeakageSimulator, "color", 5, "gladiator+m", record_patterns=True,
        leakage_sampling=True,
    )
    ref_result = reference.run(shots=32, rounds=5)
    assert result.pattern_histogram == ref_result.pattern_histogram
    # Structure: every width bucket enumerates all 2**width values.
    code = make_code("color", 5)
    for width in set(code.pattern_widths):
        bucket = result.pattern_histogram[width]
        assert set(bucket) == set(range(1 << width))
        assert all(
            leaked >= 0 and clean >= 0 for leaked, clean in bucket.values()
        )


def test_no_state_leak_across_run_incremental_calls():
    """A reused simulator's second run matches the reference's second run:
    nothing persists across ``run_incremental`` calls except the RNG."""
    reference = _build(ReferenceLeakageSimulator, "surface", 3, "gladiator+m",
                       leakage_sampling=True)
    optimized = _build(LeakageSimulator, "surface", 3, "gladiator+m",
                       leakage_sampling=True)
    assert_results_identical(
        reference.run(shots=30, rounds=4), optimized.run(shots=30, rounds=4)
    )
    # Second run continues the same RNG stream on both sides.
    assert_results_identical(
        reference.run(shots=30, rounds=4), optimized.run(shots=30, rounds=4)
    )
    # Differently-shaped follow-up run: fresh workspace, no stale buffers.
    assert_results_identical(
        reference.run(shots=17, rounds=3), optimized.run(shots=17, rounds=3)
    )


def test_yielded_detector_chunks_are_not_reused_buffers():
    """Streaming consumers may retain yielded chunks across rounds; later
    rounds must never mutate them (no workspace aliasing)."""
    sim = _build(LeakageSimulator, "surface", 3, "gladiator+m")
    stream = sim.run_incremental(25, 6)
    chunks, copies = [], []
    while True:
        try:
            _, detectors = next(stream)
        except StopIteration:
            break
        chunks.append(detectors)
        copies.append(detectors.copy())
    assert len(chunks) == 6
    for held, copy in zip(chunks, copies):
        assert np.array_equal(held, copy)
    # Distinct buffers per round, not one recycled array.
    assert len({id(chunk) for chunk in chunks}) == len(chunks)


def test_frozen_ancilla_decision_buffer_is_immutable():
    """Policies that never emit ancilla LRCs share one read-only zeros
    buffer; writing to it must fail loudly rather than corrupt a round."""
    ws = RoundWorkspace(
        shots=4,
        num_data=5,
        num_ancilla=4,
        layer_is_z=[np.array([True, False])],
        num_pattern_groups=3,
        pattern_needs_threshold=False,
        uses_mlr=False,
        emits_ancilla_lrc=False,
    )
    assert not ws.anc_lrc.flags.writeable
    assert not ws.anc_lrc.any()
    with pytest.raises(ValueError):
        ws.anc_lrc[0, 0] = True


@pytest.mark.parametrize(
    "policy", ["no-lrc", "always", "staggered", "mlr-only", "ideal", "eraser",
               "gladiator+m", "gladiator-d"]
)
def test_decide_into_matches_decide(policy):
    """The buffered policy fast path fills exactly what decide() returns."""
    from repro.core.speculator import SpeculationInput

    code = make_code("surface", 3)
    noise = NoiseParams(p=2e-3, leakage_ratio=0.1)
    built = make_policy(policy)
    built.prepare(code, noise)
    rng = np.random.default_rng(3)
    shots = 12
    # Patterns must respect each qubit's width or the table lookup is invalid.
    limits = np.array([1 << w for w in code.pattern_widths], dtype=np.int64)
    ctx = SpeculationInput(
        round_index=1,
        pattern_ints=rng.integers(0, limits, (shots, code.num_data)).astype(np.int64),
        prev_pattern_ints=rng.integers(0, limits, (shots, code.num_data)).astype(np.int64),
        detectors=rng.random((shots, code.num_ancilla)) < 0.2,
        mlr_flags=rng.random((shots, code.num_ancilla)) < 0.1 if built.uses_mlr else None,
        mlr_neighbor=rng.random((shots, code.num_data)) < 0.1 if built.uses_mlr else None,
        data_leaked=rng.random((shots, code.num_data)) < 0.05,
    )
    decision = built.decide(ctx)
    data_out = np.ones((shots, code.num_data), dtype=bool)  # must be overwritten
    anc_out = (
        np.ones((shots, code.num_ancilla), dtype=bool)
        if built.emits_ancilla_lrc
        else None
    )
    built.decide_into(ctx, data_out, anc_out)
    assert np.array_equal(data_out, np.asarray(decision.data_lrc, dtype=bool))
    if anc_out is not None and decision.ancilla_lrc is not None:
        assert np.array_equal(anc_out, np.asarray(decision.ancilla_lrc, dtype=bool))


def test_run_exhaustion_guard():
    """run() raises cleanly if the generator somehow returns no result."""
    sim = _build(LeakageSimulator, "surface", 3, "no-lrc")
    result = sim.run(shots=5, rounds=2)
    assert result.shots == 5 and result.rounds == 2
    with pytest.raises(ValueError):
        sim.run(shots=0, rounds=2)
