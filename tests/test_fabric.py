"""Tests of the durable sweep fabric (``repro.fabric``).

The load-bearing property is the house invariant: a durable run — crashed,
resumed, chaos-injected, or cooperatively scheduled — merges bit-identical
to the equivalent in-memory run.  Around that sit the component contracts:
journal crash-safety and quarantine, lease TTL semantics, retry backoff
and poison quarantine, and the deterministic chaos harness itself.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.__main__ import main
from repro.api import ExperimentConfig, Session
from repro.fabric import (
    DONE,
    FAILED,
    PENDING,
    ChaosConfig,
    ChaosError,
    FabricExecutor,
    FabricInterrupted,
    JobStore,
    LeaseManager,
    RetryPolicy,
    TaskSpec,
    decode_payload,
    encode_payload,
    sweep_store_root,
)
from repro.fabric.chaos import parse_chaos_spec
from repro.noise import paper_noise
from repro.sweeps import SweepExecutor, WorkUnit

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _unit(**overrides):
    defaults = dict(
        family="surface",
        distance=3,
        noise=paper_noise(),
        policy="eraser+m",
        shots=60,
        rounds=6,
        leakage_sampling=True,
        seed=5,
    )
    defaults.update(overrides)
    return WorkUnit(**defaults)


def _assert_rows_equal(actual, expected):
    assert len(actual) == len(expected)
    for row, reference in zip(actual, expected):
        assert row.keys() == reference.keys()
        for key, value in reference.items():
            if isinstance(value, np.ndarray):
                assert value.dtype == row[key].dtype, key
                assert np.array_equal(value, row[key]), key
            else:
                assert row[key] == value, key


# --------------------------------------------------------------------- #
# Bit-identity with the in-memory executors
# --------------------------------------------------------------------- #
def test_single_shard_units_bit_identical_to_workers1(tmp_path):
    units = [_unit(seed=seed) for seed in (5, 6)]
    serial = SweepExecutor(workers=1, cache=None).run_units(units)
    fabric = FabricExecutor(workers=2, cache=None, root=tmp_path / "fabric")
    _assert_rows_equal(fabric.run_units(units), serial)
    assert fabric.shards_executed == 2
    assert fabric.units_computed == 2
    assert fabric.failed_units == []


def test_multi_shard_units_bit_identical_to_inmemory_sharding(tmp_path):
    unit = _unit(shots=90)
    sharded = SweepExecutor(workers=2, cache=None, shard_shots=30).run_units([unit])
    fabric = FabricExecutor(
        workers=2, cache=None, shard_shots=30, root=tmp_path / "fabric"
    )
    _assert_rows_equal(fabric.run_units([unit]), sharded)
    assert fabric.shards_executed == 3


def test_fabric_shares_cache_entries_with_sweep_executor(tmp_path):
    unit = _unit()
    from repro.sweeps import SweepCache

    warm = SweepExecutor(workers=1, cache=SweepCache(tmp_path / "cache"))
    rows = warm.run_units([unit])
    fabric = FabricExecutor(
        workers=1, cache=SweepCache(tmp_path / "cache"), root=tmp_path / "fabric"
    )
    _assert_rows_equal(fabric.run_units([unit]), rows)
    assert fabric.units_from_cache == 1
    assert fabric.shards_executed == 0
    # A fully cache-satisfied sweep never even creates a job store.
    assert not (tmp_path / "fabric").exists()


# --------------------------------------------------------------------- #
# Crash-safe resume
# --------------------------------------------------------------------- #
def test_interrupted_slice_resumes_from_checkpoints(tmp_path):
    units = [_unit(seed=seed) for seed in (5, 6, 7, 8)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)

    first = FabricExecutor(workers=1, cache=None, root=tmp_path / "fabric")
    with pytest.raises(FabricInterrupted) as info:
        first.run_units(units, max_new_tasks=2)
    assert info.value.completed == 2
    assert info.value.open_tasks == 2

    second = FabricExecutor(workers=1, cache=None, root=tmp_path / "fabric")
    _assert_rows_equal(second.run_units(units), reference)
    assert second.shards_from_checkpoint == 2
    assert second.shards_executed == 2


def test_sigkilled_scheduler_resumes_bit_identical(tmp_path):
    """SIGKILL a real scheduler process mid-sweep; a fresh one must pick up
    its checkpoints, steal its expired leases and merge bit-identically."""
    units = [_unit(seed=seed, shots=40, rounds=5) for seed in (11, 12, 13, 14)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)
    root = tmp_path / "fabric"

    script = tmp_path / "scheduler.py"
    script.write_text(
        textwrap.dedent(
            f"""
            from repro.fabric import FabricExecutor
            from repro.noise import paper_noise
            from repro.sweeps import WorkUnit

            units = [
                WorkUnit(family="surface", distance=3, noise=paper_noise(),
                         policy="eraser+m", shots=40, rounds=5,
                         leakage_sampling=True, seed=seed)
                for seed in (11, 12, 13, 14)
            ]
            FabricExecutor(
                workers=1, cache=None, root={str(root)!r}, lease_ttl=0.5
            ).run_units(units)
            """
        )
    )
    env = {
        **os.environ,
        "PYTHONPATH": SRC,
        # Stall every shard so the parent can reliably kill mid-sweep; a
        # stall only sleeps, so results are unchanged.
        "REPRO_CHAOS": "stall=1",
        "REPRO_CHAOS_STALL_S": "0.25",
    }
    victim = subprocess.Popen([sys.executable, str(script)], env=env)
    try:
        deadline = time.time() + 30
        while time.time() < deadline:
            if list(root.glob("*/results/*.json")) or victim.poll() is not None:
                break
            time.sleep(0.02)
        assert list(root.glob("*/results/*.json")), "no checkpoint ever appeared"
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.wait(timeout=30)

    resumed = FabricExecutor(workers=1, cache=None, root=root, lease_ttl=0.5)
    _assert_rows_equal(resumed.run_units(units), reference)
    assert resumed.shards_from_checkpoint >= 1
    assert resumed.shards_from_checkpoint + resumed.shards_executed == 4


# --------------------------------------------------------------------- #
# Chaos: worker SIGKILL, flaky shards, torn journals, poison quarantine
# --------------------------------------------------------------------- #
def test_sigkilled_workers_retried_bit_identical(tmp_path, monkeypatch):
    """crash=1:1 SIGKILLs every task's first attempt (a real kill -9 that
    breaks the pool); retries must recover and merge bit-identically."""
    units = [_unit(seed=seed) for seed in (5, 6)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)
    monkeypatch.setenv("REPRO_CHAOS", "crash=1:1")
    fabric = FabricExecutor(
        workers=2,
        cache=None,
        root=tmp_path / "fabric",
        retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05),
    )
    _assert_rows_equal(fabric.run_units(units), reference)
    assert fabric.pool_rebuilds >= 1
    assert fabric.shards_retried >= 2
    assert fabric.shards_quarantined == 0


def test_flaky_shards_absorbed_by_retry(tmp_path, monkeypatch):
    units = [_unit(seed=seed) for seed in (5, 6)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)
    monkeypatch.setenv("REPRO_CHAOS", "flaky=1:2")
    fabric = FabricExecutor(
        workers=2,
        cache=None,
        root=tmp_path / "fabric",
        retry=RetryPolicy(max_attempts=5, base_delay=0.01, max_delay=0.05),
    )
    _assert_rows_equal(fabric.run_units(units), reference)
    # flaky=1:2 fails attempts 0 and 1 of each task, then lets it through.
    assert fabric.shards_retried == 4
    assert fabric.shards_executed == 2


def test_poison_shards_quarantined_and_sweep_degrades(tmp_path, monkeypatch):
    """A shard that fails every attempt must not hang the grid: the task is
    journaled FAILED with its traceback and the unit degrades to an error
    row while the sweep still completes."""
    units = [_unit(seed=seed) for seed in (5, 6)]
    monkeypatch.setenv("REPRO_CHAOS", "flaky=1")
    fabric = FabricExecutor(
        workers=2,
        cache=None,
        root=tmp_path / "fabric",
        retry=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.02),
    )
    rows = fabric.run_units(units)
    assert len(rows) == 2
    for row in rows:
        assert "injected transient failure" in row["error"]
        assert row["failed_shards"] == 1
    assert fabric.shards_quarantined == 2
    assert len(fabric.failed_units) == 2
    # The quarantine is durable: a FAILED record survives with a traceback.
    store_dir = next((tmp_path / "fabric").iterdir())
    store = JobStore(store_dir)
    records = [
        store.load_task(path.stem) for path in sorted(store.tasks_dir.glob("*.json"))
    ]
    assert all(r["state"] == FAILED for r in records)
    assert all("ChaosError" in r["error"] for r in records)


def test_quarantined_units_never_poison_the_cache(tmp_path, monkeypatch):
    """Error rows must not be memoized: after the fault clears, a re-run
    recomputes the unit instead of serving the degraded row forever."""
    from repro.sweeps import SweepCache

    unit = _unit()
    monkeypatch.setenv("REPRO_CHAOS", "flaky=1")
    broken = FabricExecutor(
        workers=1,
        cache=SweepCache(tmp_path / "cache"),
        root=tmp_path / "fabric-a",
        retry=RetryPolicy(max_attempts=1),
    )
    (row,) = broken.run_units([unit])
    assert "error" in row
    monkeypatch.delenv("REPRO_CHAOS")
    healed = FabricExecutor(
        workers=1, cache=SweepCache(tmp_path / "cache"), root=tmp_path / "fabric-b"
    )
    reference = SweepExecutor(workers=1, cache=None).run_units([unit])
    _assert_rows_equal(healed.run_units([unit]), reference)
    assert healed.units_from_cache == 0


def test_torn_journal_writes_recovered_on_resume(tmp_path, monkeypatch):
    """Torn journal writes (power cut mid-write) are quarantined by the next
    reader and the shards recomputed; the merge stays bit-identical."""
    units = [_unit(seed=seed) for seed in (5, 6, 7)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)

    monkeypatch.setenv("REPRO_CHAOS", "torn=0.5")
    first = FabricExecutor(workers=1, cache=None, root=tmp_path / "fabric")
    # In-memory results of the torn run are already correct: tearing only
    # damages what lands on disk.
    _assert_rows_equal(first.run_units(units), reference)

    monkeypatch.delenv("REPRO_CHAOS")
    resumed = FabricExecutor(workers=1, cache=None, root=tmp_path / "fabric")
    _assert_rows_equal(resumed.run_units(units), reference)
    assert resumed.shards_from_checkpoint + resumed.shards_executed >= 3


# --------------------------------------------------------------------- #
# Cooperating schedulers
# --------------------------------------------------------------------- #
def test_two_schedulers_cooperate_on_one_store(tmp_path):
    units = [_unit(seed=seed) for seed in (5, 6, 7, 8)]
    reference = SweepExecutor(workers=1, cache=None).run_units(units)
    root = tmp_path / "fabric"
    executors = [
        FabricExecutor(workers=1, cache=None, root=root, owner=f"sched-{i}")
        for i in range(2)
    ]
    rows: dict[int, list] = {}
    errors: list[BaseException] = []

    def drive(index):
        try:
            rows[index] = executors[index].run_units(units)
        except BaseException as exc:  # noqa: BLE001 — surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=drive, args=(i,)) for i in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    assert not errors
    _assert_rows_equal(rows[0], reference)
    _assert_rows_equal(rows[1], reference)
    # Between them the pair executed/adopted everything; leases make double
    # execution rare but duplicates would still merge identically.
    for executor in executors:
        accounted = (
            executor.shards_executed
            + executor.shards_from_checkpoint
            + executor.shards_adopted
        )
        assert accounted == 4


def test_store_root_is_stable_and_collision_free(tmp_path):
    ids = ["abc-000", "abc-001"]
    assert sweep_store_root(ids, tmp_path) == sweep_store_root(
        list(reversed(ids)), tmp_path
    )
    assert sweep_store_root(ids, tmp_path) != sweep_store_root(
        ["abc-000"], tmp_path
    )


# --------------------------------------------------------------------- #
# JobStore
# --------------------------------------------------------------------- #
def test_payload_codec_roundtrips_arrays_bit_exact():
    payload = {
        "floats": np.array([0.1, -1.5e-300, np.pi]),
        "mask": np.array([[True, False], [False, True]]),
        "counts": np.arange(6, dtype=np.int64).reshape(2, 3),
        "empty": np.zeros((0, 4)),
        "scalar": np.float64(0.25),
        "nested": {"deep": [np.uint8([1, 2, 3]), "text", None]},
    }
    decoded = decode_payload(json.loads(json.dumps(encode_payload(payload))))
    assert decoded["floats"].dtype == np.float64
    assert decoded["floats"].tobytes() == payload["floats"].tobytes()
    assert np.array_equal(decoded["mask"], payload["mask"])
    assert decoded["counts"].dtype == np.int64
    assert decoded["empty"].shape == (0, 4)
    assert decoded["scalar"] == 0.25
    assert decoded["nested"]["deep"][0].dtype == np.uint8
    assert decoded["nested"]["deep"][1:] == ["text", None]


def test_jobstore_task_roundtrip_and_quarantine(tmp_path):
    store = JobStore(tmp_path)
    store.attach({"engine": 1, "tasks": {}})
    spec = TaskSpec("t-000", 0, 0, 100, 7)
    store.write_task(spec.fresh_record())
    record = store.load_task("t-000")
    assert record["state"] == PENDING and record["shots"] == 100

    store.task_path("t-000").write_text("{torn")
    assert store.load_task("t-000") is None
    assert store.corrupt == 1
    assert Path(f"{store.task_path('t-000')}.corrupt").exists()
    # The quarantined slot is writable again immediately.
    store.write_task({**spec.fresh_record(), "state": DONE})
    assert store.load_task("t-000")["state"] == DONE


def test_jobstore_rejects_wrong_schema_and_alien_results(tmp_path):
    store = JobStore(tmp_path)
    store.attach({})
    store.task_path("t-000").parent.mkdir(parents=True, exist_ok=True)
    store.task_path("t-000").write_text(json.dumps({"schema": "other", "state": "X"}))
    assert store.load_task("t-000") is None

    store.write_result("t-001", {"value": 3})
    assert store.load_result("t-001") == {"value": 3}
    # A result file claiming the wrong task id is damage, not data.
    store.result_path("t-002").write_text(
        store.result_path("t-001").read_text()
    )
    assert store.load_result("t-002") is None
    assert store.load_result("t-001") == {"value": 3}


def test_attach_is_idempotent_and_heals_corrupt_manifest(tmp_path):
    store = JobStore(tmp_path)
    assert store.attach({"engine": 1}) is True
    assert store.attach({"engine": 1}) is False
    (tmp_path / "manifest.json").write_text("]]]")
    # A corrupt manifest reads as absent, so the attach is "fresh" again —
    # and rewrites a clean manifest from the same units.
    assert JobStore(tmp_path).attach({"engine": 1}) is True
    assert json.loads((tmp_path / "manifest.json").read_text())["engine"] == 1


# --------------------------------------------------------------------- #
# Leases
# --------------------------------------------------------------------- #
def test_lease_exclusive_until_released(tmp_path):
    store = JobStore(tmp_path)
    store.attach({})
    first = LeaseManager(store, owner="a", ttl=30)
    second = LeaseManager(store, owner="b", ttl=30)
    assert first.try_acquire("t") is True
    assert first.try_acquire("t") is True  # re-entrant for the holder
    assert second.try_acquire("t") is False
    first.release("t")
    assert second.try_acquire("t") is True
    # Releasing somebody else's lease is a no-op.
    first.release("t")
    assert second.peek("t").owner == "b"


def test_expired_lease_is_stolen_and_renew_fences_the_loser(tmp_path):
    store = JobStore(tmp_path)
    store.attach({})
    dead = LeaseManager(store, owner="dead", ttl=0.05)
    heir = LeaseManager(store, owner="heir", ttl=30)
    assert dead.try_acquire("t")
    assert heir.try_acquire("t") is False
    time.sleep(0.06)
    assert heir.try_acquire("t") is True
    assert heir.stolen == 1
    # The original holder notices on its next heartbeat and backs off.
    assert dead.renew("t") is False
    assert heir.renew("t") is True


def test_lease_owner_defaults_to_host_and_pid(tmp_path):
    store = JobStore(tmp_path)
    store.attach({})
    manager = LeaseManager(store)
    assert str(os.getpid()) in manager.owner


# --------------------------------------------------------------------- #
# Retry policy
# --------------------------------------------------------------------- #
def test_retry_policy_bounds_and_determinism():
    policy = RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=0.5, jitter=0.25)
    assert not policy.exhausted(2)
    assert policy.exhausted(3)
    assert policy.delay("t", 0) == 0.0
    for attempts, floor in [(1, 0.1), (2, 0.2), (3, 0.4), (4, 0.5), (9, 0.5)]:
        delay = policy.delay("t", attempts)
        assert floor <= delay <= floor * 1.25
        assert delay == policy.delay("t", attempts)  # deterministic
    # Jitter desynchronises different tasks at the same attempt.
    assert policy.delay("t", 2) != policy.delay("u", 2)


def test_retry_policy_validates():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=1.0, max_delay=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=2.0)


# --------------------------------------------------------------------- #
# Chaos harness
# --------------------------------------------------------------------- #
def test_chaos_spec_parsing_and_validation():
    config = parse_chaos_spec("crash=1:1, flaky=0.5:2 ,torn=0.25", 3, 0.05)
    assert config.sites == {
        "crash": (1.0, 1),
        "flaky": (0.5, 2),
        "torn": (0.25, None),
    }
    with pytest.raises(ValueError, match="unknown REPRO_CHAOS site"):
        parse_chaos_spec("explode=1", 0, 0.05)
    with pytest.raises(ValueError, match="probability"):
        parse_chaos_spec("crash=1.5", 0, 0.05)
    with pytest.raises(ValueError, match="site=probability"):
        parse_chaos_spec("crash", 0, 0.05)


def test_chaos_decisions_deterministic_and_limited():
    config = ChaosConfig(sites={"flaky": (1.0, 2)}, seed=7)
    assert config.should_inject("flaky", "task", 0)
    assert config.should_inject("flaky", "task", 1)
    assert not config.should_inject("flaky", "task", 2)  # limit reached
    assert not config.should_inject("crash", "task", 0)  # site not armed
    # Same (seed, site, key, attempt) -> same draw, everywhere, always.
    half = ChaosConfig(sites={"flaky": (0.5, None)}, seed=7)
    draws = [half.should_inject("flaky", f"k{i}", 0) for i in range(64)]
    assert draws == [half.should_inject("flaky", f"k{i}", 0) for i in range(64)]
    assert any(draws) and not all(draws)


def test_chaos_torn_write_always_truncates():
    config = ChaosConfig(sites={"torn": (1.0, None)}, seed=0)
    data = json.dumps({"k": list(range(40))}).encode()
    torn = config.torn_write("key", 0, data)
    assert torn is not None and len(torn) < len(data)
    assert data.startswith(torn)
    assert config.torn_write("key", 0, data) == torn  # deterministic offset
    clean = ChaosConfig(sites={}, seed=0)
    assert clean.torn_write("key", 0, data) is None


def test_chaos_maybe_raise_carries_context():
    config = ChaosConfig(sites={"flaky": (1.0, None)}, seed=0)
    with pytest.raises(ChaosError, match="task-9 attempt 3"):
        config.maybe_raise("task-9", 3)


# --------------------------------------------------------------------- #
# Config / Session / CLI integration
# --------------------------------------------------------------------- #
def test_durable_flag_is_digest_exempt():
    base = ExperimentConfig()
    assert base.digest() == base.override("execution.durable", True).digest()
    assert "durable" not in base.cache_payload()["execution"]


def test_session_routes_durable_sweeps_through_fabric(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    config = ExperimentConfig.from_dict(
        {
            "name": "durable-session",
            "code": {"name": "surface", "distance": 3},
            "execution": {"shots": 12, "rounds": 4, "seed": 3, "durable": True},
        }
    )
    plain = Session.from_config(config.override("execution.durable", False))
    reference = plain.sweep({"code.distance": [3]})
    rows = Session.from_config(config).sweep({"code.distance": [3]})
    _assert_rows_equal(rows, reference)
    # The journal landed under the cache dir, proving the fabric ran it.
    assert list((tmp_path / "fabric").glob("*/results/*.json"))


def test_cli_distributed_smoke(tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    config = ExperimentConfig.from_dict(
        {
            "name": "durable-cli",
            "code": {"name": "surface", "distance": 3},
            "execution": {"shots": 10, "rounds": 4, "seed": 3},
        }
    )
    config_file = str(config.save(tmp_path / "experiment.json"))
    argv = [
        "sweep",
        "--distributed",
        "--config", config_file,
        "--axis", "code.distance=3,5",
        "--out", str(tmp_path / "grid.json"),
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 computed, 0 cached" in out
    assert "[durable: 2 shards run" in out
    # Re-run: the sweep cache satisfies everything, durably or not.
    assert main(argv) == 0
    assert "0 computed, 2 cached" in capsys.readouterr().out


def test_cli_distributed_rejects_presets(capsys):
    assert main(["sweep", "smoke", "--distributed"]) == 2
    assert "--distributed" in capsys.readouterr().err
