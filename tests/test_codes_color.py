"""Tests of the triangular 6.6.6 colour code construction."""

import numpy as np
import pytest

from repro.codes import color_code
from repro.codes.color import triangular_color_layout


@pytest.mark.parametrize(
    "distance,expected_data", [(3, 7), (5, 19), (7, 37), (9, 61), (11, 91)]
)
def test_data_qubit_counts(distance, expected_data):
    code = color_code(distance)
    assert code.num_data == expected_data
    assert code.num_data == (3 * distance**2 + 1) // 4


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_two_ancillas_per_plaquette(distance):
    code = color_code(distance)
    assert code.num_ancilla == code.num_data - 1
    assert len(code.x_stabilizers) == len(code.z_stabilizers)


def test_distance3_is_steane_code():
    code = color_code(3)
    assert code.num_data == 7
    assert len(code.z_stabilizers) == 3
    assert all(s.weight == 4 for s in code.stabilizers)
    assert code.num_logical_qubits == 1


@pytest.mark.parametrize("distance", [5, 7])
def test_plaquette_weights_are_four_or_six(distance):
    code = color_code(distance)
    assert set(s.weight for s in code.stabilizers) == {4, 6}


def test_css_commutation(color_d5):
    product = (color_d5.parity_check_x @ color_d5.parity_check_z.T) % 2
    assert not np.any(product)


def test_logical_operator_weight_is_distance(color_d5):
    assert int(color_d5.logical_x.sum()) == 5
    assert int(color_d5.logical_z.sum()) == 5
    assert color_d5.num_logical_qubits == 1


def test_pattern_widths_match_paper(color_d5):
    # Interior data qubits sit on three plaquettes; edges on two; corners on one.
    widths = set(color_d5.pattern_widths)
    assert widths == {1, 2, 3}
    assert color_d5.pattern_widths.count(1) == 3  # the three triangle corners


def test_speculation_groups_pair_x_and_z_ancillas(color_d5):
    for qubit in range(color_d5.num_data):
        for group in color_d5.speculation_groups[qubit]:
            bases = {color_d5.stabilizers[s].basis for s in group.stabilizers}
            assert bases == {"X", "Z"}


def test_layout_sites_partition(color_d5):
    data_sites, plaquettes = triangular_color_layout(5)
    assert len(data_sites) == 19
    assert len(plaquettes) == 9
    plaquette_sites = {tuple(p["coords"]) for p in plaquettes}
    assert not plaquette_sites & {(float(r), float(c)) for r, c in data_sites}


def test_plaquettes_use_three_colors():
    _, plaquettes = triangular_color_layout(7)
    assert {p["color"] for p in plaquettes} == {0, 1, 2}


def test_invalid_distance_rejected():
    with pytest.raises(ValueError):
        color_code(4)
