"""Tests of the evaluation metrics."""

import math

import numpy as np
import pytest

from repro.experiments import (
    average_suppression_factor,
    leakage_equilibrium,
    logical_error_rate,
    per_round_logical_error_rate,
    reduction_factor,
    speculation_inaccuracy,
    suppression_factor,
    wilson_interval,
)


def test_logical_error_rate_basic():
    assert logical_error_rate(5, 100) == pytest.approx(0.05)
    with pytest.raises(ValueError):
        logical_error_rate(1, 0)


def test_wilson_interval_contains_point_estimate():
    low, high = wilson_interval(10, 200)
    assert low < 0.05 < high
    assert 0 <= low <= high <= 1


def test_wilson_interval_zero_failures():
    low, high = wilson_interval(0, 100)
    assert low == 0.0
    assert high > 0.0


def test_per_round_rate_inverts_accumulation():
    per_round = per_round_logical_error_rate(0.3, 50)
    accumulated = 0.5 * (1 - (1 - 2 * per_round) ** 50)
    assert accumulated == pytest.approx(0.3, rel=1e-6)


def test_per_round_rate_saturates_at_half():
    assert per_round_logical_error_rate(0.7, 10) == 0.5


def test_suppression_factor():
    assert suppression_factor(1e-3, 2.5e-4) == pytest.approx(4.0)
    assert math.isinf(suppression_factor(1e-3, 0.0))


def test_average_suppression_factor_geometric_mean():
    lers = {5: 1e-2, 7: 2.5e-3, 9: 6.25e-4}
    assert average_suppression_factor(lers) == pytest.approx(4.0)


def test_leakage_equilibrium_uses_tail():
    dlp = np.concatenate([np.linspace(0, 0.01, 60), np.full(20, 0.02)])
    assert leakage_equilibrium(dlp, tail_fraction=0.25) == pytest.approx(0.02)
    assert leakage_equilibrium(np.array([])) == 0.0
    with pytest.raises(ValueError):
        leakage_equilibrium(dlp, tail_fraction=0.0)


def test_reduction_factor():
    assert reduction_factor(3.0, 1.5) == pytest.approx(2.0)
    assert math.isinf(reduction_factor(1.0, 0.0))


def test_speculation_inaccuracy_adds_components():
    assert speculation_inaccuracy(0.02, 0.01) == pytest.approx(0.03)
