"""Tests of the open-loop and reference policies."""

import numpy as np
import pytest

from repro.core import (
    AlwaysLrcPolicy,
    MlrOnlyPolicy,
    NoLrcPolicy,
    OraclePolicy,
    POLICY_NAMES,
    StaggeredLrcPolicy,
    make_policy,
)
from repro.core.speculator import SpeculationInput


def make_ctx(code, shots=2, round_index=0, leaked=None, mlr_neighbor=None):
    return SpeculationInput(
        round_index=round_index,
        pattern_ints=np.zeros((shots, code.num_data), dtype=np.int64),
        prev_pattern_ints=np.zeros((shots, code.num_data), dtype=np.int64),
        detectors=np.zeros((shots, code.num_ancilla), dtype=bool),
        mlr_flags=None,
        mlr_neighbor=mlr_neighbor,
        data_leaked=leaked
        if leaked is not None
        else np.zeros((shots, code.num_data), dtype=bool),
    )


def test_no_lrc_never_requests(surface_d5, noise):
    policy = NoLrcPolicy()
    policy.prepare(surface_d5, noise)
    decision = policy.decide(make_ctx(surface_d5))
    assert not decision.data_lrc.any()
    assert decision.ancilla_lrc is None


def test_always_lrc_requests_everything(surface_d5, noise):
    policy = AlwaysLrcPolicy()
    policy.prepare(surface_d5, noise)
    decision = policy.decide(make_ctx(surface_d5))
    assert decision.data_lrc.all()
    assert decision.ancilla_lrc is not None and decision.ancilla_lrc.all()


def test_staggered_covers_every_qubit_once_per_cycle(surface_d5, noise):
    policy = StaggeredLrcPolicy()
    policy.prepare(surface_d5, noise)
    coverage = np.zeros(surface_d5.num_data, dtype=int)
    for round_index in range(policy.num_groups):
        decision = policy.decide(make_ctx(surface_d5, round_index=round_index))
        coverage += decision.data_lrc[0].astype(int)
    assert np.array_equal(coverage, np.ones(surface_d5.num_data, dtype=int))


def test_staggered_groups_are_non_adjacent(surface_d5, noise):
    policy = StaggeredLrcPolicy()
    policy.prepare(surface_d5, noise)
    decision = policy.decide(make_ctx(surface_d5, round_index=0))
    selected = set(np.nonzero(decision.data_lrc[0])[0].tolist())
    for a, b in surface_d5.interaction_graph.edges:
        assert not (a in selected and b in selected)


def test_mlr_only_follows_neighbor_flags(surface_d5, noise):
    policy = MlrOnlyPolicy()
    policy.prepare(surface_d5, noise)
    mlr_neighbor = np.zeros((2, surface_d5.num_data), dtype=bool)
    mlr_neighbor[1, 7] = True
    decision = policy.decide(make_ctx(surface_d5, mlr_neighbor=mlr_neighbor))
    assert not decision.data_lrc[0].any()
    assert decision.data_lrc[1, 7]
    assert decision.data_lrc.sum() == 1


def test_mlr_only_without_flags_is_silent(surface_d5, noise):
    policy = MlrOnlyPolicy()
    policy.prepare(surface_d5, noise)
    decision = policy.decide(make_ctx(surface_d5))
    assert not decision.data_lrc.any()


def test_oracle_matches_ground_truth(surface_d5, noise):
    policy = OraclePolicy()
    policy.prepare(surface_d5, noise)
    leaked = np.zeros((3, surface_d5.num_data), dtype=bool)
    leaked[0, 2] = True
    leaked[2, [4, 9]] = True
    decision = policy.decide(make_ctx(surface_d5, shots=3, leaked=leaked))
    assert np.array_equal(decision.data_lrc, leaked)
    assert policy.is_oracle


def test_registry_covers_all_documented_names():
    for name in POLICY_NAMES:
        assert make_policy(name) is not None


def test_registry_rejects_unknown_name():
    with pytest.raises(ValueError):
        make_policy("walking-code")


def test_policy_describe_marks_mlr():
    assert make_policy("eraser+m").describe().endswith("+M")
    assert not make_policy("eraser").describe().endswith("+M")
