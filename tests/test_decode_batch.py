"""Tests of the batched decoding engine: dedup, syndrome cache, equivalence.

The batched path (``decode_batch`` / ``decode_edges_batch``) must be
bit-identical to looping the per-shot ``decode_shot`` — over random
syndromes, all-zero batches and duplicate-heavy batches, for both decoders,
on both a matching-native code (surface) and a hyperedge-decomposed one
(colour).  The syndrome cache must deduplicate without ever aliasing
decoders with different graphs or tuning.
"""

import numpy as np
import pytest

from repro.codes import color_code, surface_code
from repro.decoders import (
    DetectorGraph,
    MatchingDecoder,
    SyndromeCache,
    UnionFindDecoder,
    make_decoder,
)
from repro.noise import paper_noise

ROUNDS = 4
CODE_MAKERS = {"surface": lambda: surface_code(3), "color": lambda: color_code(3)}


@pytest.fixture(scope="module")
def graphs():
    noise = paper_noise()
    return {
        name: DetectorGraph(
            code=maker(), rounds=ROUNDS, noise=noise, hyperedges="decompose"
        )
        for name, maker in CODE_MAKERS.items()
    }


def _random_batch(graph, shots, density, seed):
    rng = np.random.default_rng(seed)
    history = rng.random((shots, ROUNDS, graph.num_z_stabs)) < density
    final = rng.random((shots, graph.num_z_stabs)) < density
    return history, final


def _per_shot_reference(graph, method, history, final):
    """Ground truth: an uncached decoder looped shot by shot."""
    decoder = make_decoder(graph, method, cache_size=0)
    return np.array(
        [
            bool(decoder.decode_shot(history[shot], final[shot]))
            for shot in range(history.shape[0])
        ]
    )


# --------------------------------------------------------------------- #
# Randomized equivalence: batch == per-shot, bit for bit
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("family", ["surface", "color"])
@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("density", [0.02, 0.08])
def test_batch_matches_per_shot_on_random_syndromes(graphs, family, method, density):
    graph = graphs[family]
    seed = 100 * len(family) + len(method) + int(1000 * density)
    history, final = _random_batch(graph, shots=40, density=density, seed=seed)
    reference = _per_shot_reference(graph, method, history, final)
    batched = make_decoder(graph, method).decode_batch(history, final)
    assert batched.dtype == bool
    assert np.array_equal(batched, reference)


@pytest.mark.parametrize("family", ["surface", "color"])
@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_batch_all_zero_syndromes(graphs, family, method):
    graph = graphs[family]
    history = np.zeros((25, ROUNDS, graph.num_z_stabs), dtype=bool)
    final = np.zeros((25, graph.num_z_stabs), dtype=bool)
    decoder = make_decoder(graph, method)
    assert not decoder.decode_batch(history, final).any()
    # All-zero shots never touch the cache: there is nothing to decode.
    assert decoder.cache.stats()["misses"] == 0


@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_batch_duplicate_heavy_decodes_each_syndrome_once(graphs, method):
    graph = graphs["surface"]
    base_history, base_final = _random_batch(graph, shots=3, density=0.05, seed=17)
    # 3 unique non-trivial syndromes, each repeated 10x, shuffled.
    history = np.tile(base_history, (10, 1, 1))
    final = np.tile(base_final, (10, 1))
    order = np.random.default_rng(5).permutation(30)
    history, final = history[order], final[order]
    reference = _per_shot_reference(graph, method, history, final)
    decoder = make_decoder(graph, method)
    assert np.array_equal(decoder.decode_batch(history, final), reference)
    stats = decoder.cache.stats()
    unique_nontrivial = len(
        {h.tobytes() for h in np.concatenate([base_history.reshape(3, -1), base_final], axis=1)}
    )
    assert stats["misses"] == unique_nontrivial
    assert stats["hits"] == 0  # dedup happens before the cache within a batch


@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_edges_batch_matches_per_shot_edges(graphs, method):
    graph = graphs["surface"]
    history, final = _random_batch(graph, shots=20, density=0.05, seed=23)
    reference = make_decoder(graph, method, cache_size=0)
    batched = make_decoder(graph, method)
    edge_lists = batched.decode_edges_batch(history, final)
    assert len(edge_lists) == 20
    for shot, edges in enumerate(edge_lists):
        expected = reference.decode_shot_edges(history[shot], final[shot])
        assert list(edges) == [(int(a), int(b)) for a, b in expected]


def test_batch_handles_empty_batch(graphs):
    graph = graphs["surface"]
    history = np.zeros((0, ROUNDS, graph.num_z_stabs), dtype=bool)
    final = np.zeros((0, graph.num_z_stabs), dtype=bool)
    decoder = MatchingDecoder(graph)
    assert decoder.decode_batch(history, final).shape == (0,)
    assert decoder.decode_edges_batch(history, final) == []


# --------------------------------------------------------------------- #
# The syndrome cache: reuse, eviction, isolation
# --------------------------------------------------------------------- #
def test_cache_persists_across_calls_and_decoders(graphs):
    graph = graphs["surface"]
    history, final = _random_batch(graph, shots=15, density=0.05, seed=31)
    shared = SyndromeCache()
    first = make_decoder(graph, "matching", cache=shared)
    expected = first.decode_batch(history, final)
    misses_after_first = shared.stats()["misses"]
    assert misses_after_first > 0
    # A different decoder instance over an equal graph reuses every entry.
    twin_graph = DetectorGraph(
        code=surface_code(3), rounds=ROUNDS, noise=paper_noise(), hyperedges="decompose"
    )
    assert twin_graph.fingerprint == graph.fingerprint
    second = make_decoder(twin_graph, "matching", cache=shared)
    assert np.array_equal(second.decode_batch(history, final), expected)
    stats = shared.stats()
    assert stats["misses"] == misses_after_first
    assert stats["hits"] == misses_after_first


def test_cache_never_aliases_different_graphs_or_tuning(graphs):
    graph = graphs["surface"]
    other_rounds = DetectorGraph(code=surface_code(3), rounds=ROUNDS + 1, noise=paper_noise())
    other_noise = DetectorGraph(
        code=surface_code(3), rounds=ROUNDS, noise=paper_noise(p=5e-3)
    )
    assert graph.fingerprint != other_rounds.fingerprint
    assert graph.fingerprint != other_noise.fingerprint

    # Same graph, different matching tuning: separate cache entries.
    history, final = _random_batch(graph, shots=1, density=0.08, seed=41)
    shared = SyndromeCache()
    make_decoder(graph, "matching", strategy="exact", cache=shared).decode_batch(
        history, final
    )
    make_decoder(graph, "matching", strategy="greedy", cache=shared).decode_batch(
        history, final
    )
    stats = shared.stats()
    assert stats["misses"] == 2 and stats["hits"] == 0
    # ...and union-find is keyed apart from matching as well.
    make_decoder(graph, "union_find", cache=shared).decode_batch(history, final)
    assert shared.stats()["misses"] == 3


def test_cache_lru_eviction_and_disabled_mode(graphs):
    graph = graphs["surface"]
    history, final = _random_batch(graph, shots=30, density=0.06, seed=47)
    reference = _per_shot_reference(graph, "union_find", history, final)

    tiny = SyndromeCache(maxsize=2)
    decoder = make_decoder(graph, "union_find", cache=tiny)
    assert np.array_equal(decoder.decode_batch(history, final), reference)
    assert len(tiny) <= 2
    assert tiny.stats()["evictions"] > 0

    disabled = SyndromeCache(maxsize=0)
    assert not disabled.enabled
    decoder = make_decoder(graph, "union_find", cache=disabled)
    assert np.array_equal(decoder.decode_batch(history, final), reference)
    assert len(disabled) == 0

    with pytest.raises(ValueError):
        SyndromeCache(maxsize=-1)
    with pytest.raises(ValueError):
        make_decoder(graph, "matching", cache=disabled, cache_size=4)


def test_oversized_syndromes_bypass_the_cache():
    """Leakage-flood syndromes are never shared, so they must not bloat the
    cache — decoding stays correct, the cache stays empty."""
    from repro.decoders.base import _CACHE_MAX_FIRED

    rounds = 12  # enough detector positions to exceed the fired-node bound
    graph = DetectorGraph(code=surface_code(3), rounds=rounds, noise=paper_noise())
    assert graph.num_layers * graph.num_z_stabs > _CACHE_MAX_FIRED + 4
    history = np.zeros((2, rounds, graph.num_z_stabs), dtype=bool)
    final = np.zeros((2, graph.num_z_stabs), dtype=bool)
    history.reshape(2, -1)[:, : _CACHE_MAX_FIRED + 4] = True  # identical heavy shots
    decoder = make_decoder(graph, "union_find")
    reference = make_decoder(graph, "union_find", cache_size=0)
    expected = np.array(
        [bool(reference.decode_shot(history[s], final[s])) for s in range(2)]
    )
    assert np.array_equal(decoder.decode_batch(history, final), expected)
    stats = decoder.cache.stats()
    assert stats["entries"] == 0 and stats["misses"] == 0


def test_shortest_paths_fallback_matches_all_pairs_tables(monkeypatch):
    """Graphs past the all-pairs size gate fall back to per-syndrome
    dijkstra; both code paths must return identical distances/paths."""
    from repro.decoders import detector_graph as dg

    noise = paper_noise()
    tabled = DetectorGraph(code=surface_code(3), rounds=ROUNDS, noise=noise)
    assert tabled._all_pairs is not None
    monkeypatch.setattr(dg, "_ALL_PAIRS_MAX_NODES", 1)
    gated = DetectorGraph(code=surface_code(3), rounds=ROUNDS, noise=noise)
    assert gated._all_pairs is None
    sources = np.array([0, 3, gated.boundary_node - 1])
    table_dist, table_pred = tabled.shortest_paths_from(sources)
    fall_dist, fall_pred = gated.shortest_paths_from(sources)
    assert np.allclose(table_dist, fall_dist)
    assert np.array_equal(table_pred, fall_pred)


def test_cache_clear_resets_counters():
    cache = SyndromeCache(maxsize=4)
    cache.put("a", 1)
    assert cache.get("a") == 1
    assert cache.get("b") is None
    cache.clear()
    stats = cache.stats()
    assert len(cache) == 0
    assert stats["hits"] == stats["misses"] == stats["evictions"] == 0
    assert stats["hit_rate"] == 0.0
