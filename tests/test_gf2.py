"""Tests for GF(2) linear algebra helpers."""

import numpy as np
import pytest

from repro.codes.classical import hamming_parity_check, repetition_parity_check
from repro.codes.gf2 import (
    css_logical_operators,
    gf2_nullspace,
    gf2_rank,
    gf2_row_reduce,
    gf2_rowspace,
    gf2_solve,
    in_rowspace,
)


def test_rank_identity():
    assert gf2_rank(np.eye(5, dtype=int)) == 5


def test_rank_repeated_rows():
    matrix = np.array([[1, 0, 1], [1, 0, 1], [0, 1, 1]])
    assert gf2_rank(matrix) == 2


def test_row_reduce_pivots_are_unit_columns():
    matrix = np.array([[1, 1, 0, 1], [0, 1, 1, 0], [1, 0, 1, 1]])
    reduced, pivots = gf2_row_reduce(matrix)
    for row, col in enumerate(pivots):
        column = reduced[:, col]
        assert column[row] == 1
        assert column.sum() == 1


def test_nullspace_vectors_annihilate():
    matrix = hamming_parity_check()
    basis = gf2_nullspace(matrix)
    assert basis.shape[0] == 4  # Hamming [7,4]
    for vector in basis:
        assert not np.any((matrix @ vector) % 2)


def test_nullspace_plus_rank_is_dimension():
    rng = np.random.default_rng(3)
    matrix = rng.integers(0, 2, size=(6, 11))
    assert gf2_rank(matrix) + gf2_nullspace(matrix).shape[0] == 11


def test_rowspace_membership():
    matrix = np.array([[1, 1, 0], [0, 1, 1]])
    assert in_rowspace(np.array([1, 0, 1]), matrix)
    assert not in_rowspace(np.array([1, 0, 0]), matrix)


def test_solve_consistent_system():
    matrix = np.array([[1, 1, 0], [0, 1, 1]])
    target = np.array([1, 0])
    solution = gf2_solve(matrix, target)
    assert solution is not None
    assert np.array_equal((matrix @ solution) % 2, target)


def test_solve_inconsistent_system_returns_none():
    matrix = np.array([[1, 1, 0], [1, 1, 0]])
    assert gf2_solve(matrix, np.array([1, 0])) is None


def test_css_logicals_of_steane_like_construction():
    # Repetition-code HGP-free sanity check: the [[7,1,3]] Steane code built
    # from the Hamming matrix used for both X and Z stabilizers.
    hamming = hamming_parity_check()
    logical_x, logical_z = css_logical_operators(hamming, hamming)
    assert logical_x.shape[0] == 1
    assert logical_z.shape[0] == 1
    assert not np.any((hamming @ logical_z[0]) % 2)
    assert not np.any((hamming @ logical_x[0]) % 2)
    assert (logical_x[0] @ logical_z[0]) % 2 == 1


def test_css_logicals_reject_noncommuting_inputs():
    h_x = np.array([[1, 1, 0]])
    h_z = np.array([[1, 0, 0]])
    with pytest.raises(ValueError):
        css_logical_operators(h_x, h_z)


def test_repetition_code_properties():
    matrix = repetition_parity_check(5)
    assert matrix.shape == (4, 5)
    assert gf2_rank(matrix) == 4
    assert gf2_nullspace(matrix).shape[0] == 1
    assert np.array_equal(gf2_nullspace(matrix)[0], np.ones(5, dtype=np.uint8))


def test_rowspace_basis_is_full_rank():
    matrix = np.array([[1, 1, 0, 0], [1, 1, 0, 0], [0, 0, 1, 1]])
    basis = gf2_rowspace(matrix)
    assert basis.shape[0] == 2
    assert gf2_rank(basis) == 2
