"""Tests of the simulated leakage-injection characterisation (Figure 3)."""

import numpy as np
import pytest

from repro.experiments import QutritCnotModel, leakage_growth, single_cnot_distribution


def test_leaked_control_scrambles_target():
    distribution = single_cnot_distribution(shots=20_000, leaked_control=True, seed=1)
    target_one = distribution["01"] + distribution["11"]
    assert 0.4 < target_one < 0.6  # the 50% bit-flip signature of Section 2.3
    assert pytest.approx(1.0, abs=1e-9) == sum(distribution.values())


def test_healthy_control_keeps_target_deterministic():
    distribution = single_cnot_distribution(shots=20_000, leaked_control=False, seed=2)
    # Control |1>, target |0> -> CNOT flips the target almost always.
    assert distribution["11"] > 0.9


def test_leakage_grows_with_injection_and_not_without():
    injected = leakage_growth(max_cnots=40, shots=4000, inject=True, seed=3)
    clean = leakage_growth(max_cnots=40, shots=4000, inject=False, seed=3)
    assert injected.leakage_population[-1] > 0.2
    assert injected.leakage_population[-1] > injected.leakage_population[0]
    assert clean.leakage_population[-1] < 0.1
    assert np.all(np.diff(injected.cnot_counts) == 1)


def test_growth_monotone_in_mobility():
    fast = QutritCnotModel(mobility=0.3, relaxation_probability=0.0)
    slow = QutritCnotModel(mobility=0.02, relaxation_probability=0.0)
    fast_result = leakage_growth(max_cnots=30, shots=4000, model=fast, seed=4)
    slow_result = leakage_growth(max_cnots=30, shots=4000, model=slow, seed=4)
    assert fast_result.leakage_population[-1] > slow_result.leakage_population[-1]


def test_measure_readout_error_bounds():
    model = QutritCnotModel(readout_error=0.0)
    rng = np.random.default_rng(5)
    state = np.array([0, 1, 2] * 1000)
    outcome = model.measure(state, rng)
    assert set(np.unique(outcome)) <= {0, 1}
    assert np.all(outcome[state == 0] == 0)
    assert np.all(outcome[state == 1] == 1)
