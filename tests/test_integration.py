"""End-to-end integration tests reproducing the paper's headline claims at small scale.

Each test runs the full pipeline (code construction, leakage simulation,
speculation, LRC scheduling, and where needed decoding) and checks the
*direction* of the paper's claims; the benchmark suite reproduces the actual
numbers at larger scale.
"""

import numpy as np
import pytest

from repro.circuits import CycleTimeModel
from repro.codes import bpc_code, color_code, hypergraph_product_code, surface_code
from repro.core import make_policy
from repro.experiments import MemoryExperiment, compare_policies, reduction_factor
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


def run_policy(code, noise, name, shots=250, rounds=60, seed=0):
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy(name),
        options=SimulatorOptions(leakage_sampling=True),
        seed=seed,
    )
    return simulator.run(shots=shots, rounds=rounds)


@pytest.fixture(scope="module")
def surface_runs():
    code = surface_code(7)
    noise = paper_noise()
    return {
        name: run_policy(code, noise, name, seed=21)
        for name in ("always-lrc", "eraser+m", "gladiator+m", "gladiator-d+m", "ideal", "no-lrc")
    }


def test_closed_loop_beats_always_lrc_on_lrc_count(surface_runs):
    always = surface_runs["always-lrc"].lrcs_per_round
    for name in ("eraser+m", "gladiator+m", "gladiator-d+m"):
        assert surface_runs[name].lrcs_per_round < always / 10


def test_gladiator_reduces_fp_and_lrcs_vs_eraser(surface_runs):
    eraser = surface_runs["eraser+m"]
    gladiator = surface_runs["gladiator+m"]
    deferred = surface_runs["gladiator-d+m"]
    assert reduction_factor(eraser.false_positives_per_round, gladiator.false_positives_per_round) > 1.1
    assert reduction_factor(eraser.false_positives_per_round, deferred.false_positives_per_round) > 1.2
    assert reduction_factor(eraser.lrcs_per_round, gladiator.lrcs_per_round) > 1.1
    assert reduction_factor(eraser.lrcs_per_round, deferred.lrcs_per_round) > 1.2
    # The accuracy trade-off: slightly more false negatives, never fewer.
    assert gladiator.false_negatives_per_round >= eraser.false_negatives_per_round


def test_ideal_policy_dominates_everything(surface_runs):
    ideal = surface_runs["ideal"]
    for name in ("eraser+m", "gladiator+m", "gladiator-d+m"):
        assert ideal.mean_dlp <= surface_runs[name].mean_dlp
    assert ideal.total_false_positives == 0


def test_unmitigated_leakage_diverges(surface_runs):
    no_lrc = surface_runs["no-lrc"]
    assert no_lrc.dlp_per_round[-1] > 10 * surface_runs["gladiator+m"].dlp_per_round[-1]


def test_leakage_population_stabilises_under_speculation(surface_runs):
    dlp = surface_runs["gladiator+m"].dlp_per_round
    # After the initial transient the population stays bounded (no runaway).
    assert dlp[-1] < 3 * dlp[len(dlp) // 3]


def test_cycle_time_advantage_tracks_lrc_reduction(surface_runs):
    code = surface_code(7)
    model = CycleTimeModel(code, paper_noise())
    eraser_time = model.round_duration_ns(surface_runs["eraser+m"].lrcs_per_round)
    gladiator_time = model.round_duration_ns(surface_runs["gladiator+m"].lrcs_per_round)
    always_time = model.round_duration_ns(surface_runs["always-lrc"].lrcs_per_round)
    assert gladiator_time < eraser_time < always_time


@pytest.mark.parametrize(
    "code_factory,lrc_margin",
    [
        (lambda: color_code(5), 1.0),
        (hypergraph_product_code, 1.0),
        (bpc_code, 1.3),
    ],
    ids=["color", "hgp", "bpc"],
)
def test_generalisation_beyond_surface_codes(code_factory, lrc_margin):
    """Table 5's qualitative claim: GLADIATOR never needs substantially more LRCs.

    On the colour and HGP codes GLADIATOR inserts strictly fewer LRCs, as in
    the paper.  On the dense two-block (BPC-style) code our richer background
    noise model (weight-9 checks flip often for reasons unrelated to the
    qubit under test) erodes the single-round advantage, so the bound there
    only asserts rough parity; see EXPERIMENTS.md for the discussion.
    """
    code = code_factory()
    noise = paper_noise()
    rows = compare_policies(
        code,
        noise,
        ["eraser+m", "gladiator+m"],
        shots=150,
        rounds=40,
        seed=5,
    )
    by_policy = {row["policy"]: row for row in rows}
    assert (
        by_policy["gladiator+M"]["lrcs_per_round"]
        < lrc_margin * by_policy["eraser+M"]["lrcs_per_round"]
    )


def test_memory_experiment_mitigation_improves_ler_under_heavy_leakage():
    code = surface_code(3)
    noise = paper_noise(p=1.5e-3, leakage_ratio=1.0)
    no_lrc = MemoryExperiment(code, noise, make_policy("no-lrc"), seed=9).run(
        shots=400, rounds=30
    )
    gladiator = MemoryExperiment(code, noise, make_policy("gladiator+m"), seed=9).run(
        shots=400, rounds=30
    )
    # Unmitigated leakage floods the syndrome record and drives the LER
    # towards the random-guessing regime; speculation keeps both the leakage
    # population and the logical error rate well below that.
    assert gladiator.mean_dlp < no_lrc.mean_dlp / 3
    assert gladiator.logical_error_rate < no_lrc.logical_error_rate + 0.02


def test_speculation_policies_scale_to_distance_nine():
    code = surface_code(9)
    noise = paper_noise()
    result = run_policy(code, noise, "gladiator-d+m", shots=60, rounds=30, seed=13)
    assert result.shots == 60
    assert 0 <= result.mean_dlp < 0.05
