"""Tests of leakage-mobility estimation and classification (Table 6)."""

import pytest

from repro.codes import surface_code
from repro.core import MobilityEstimator, classify_mobility
from repro.core.mobility import MOBILITY_THRESHOLD, MobilityRecordingPolicy
from repro.core import make_policy
from repro.noise import paper_noise


def test_classify_mobility_threshold():
    assert classify_mobility(0.01) == "low"
    assert classify_mobility(0.049) == "low"
    assert classify_mobility(0.05) == "high"
    assert classify_mobility(0.2) == "high"
    assert MOBILITY_THRESHOLD == pytest.approx(0.05)


def test_recording_policy_requires_inner():
    with pytest.raises(ValueError):
        MobilityRecordingPolicy(inner=None)


def test_recording_policy_tracks_conditional_probability(surface_d5, noise):
    recorder = MobilityRecordingPolicy(inner=make_policy("gladiator+m"))
    assert recorder.conditional_probability == 0.0
    assert recorder.uses_mlr


@pytest.mark.parametrize(
    "mobility,expected",
    [(0.01, "low"), (0.09, "high")],
)
def test_estimator_classifies_extreme_regimes(mobility, expected):
    code = surface_code(5)
    noise = paper_noise().with_(leakage_mobility=mobility)
    estimate = MobilityEstimator(code, noise, seed=7).estimate(shots=150, rounds=50)
    assert estimate.regime == expected
    assert estimate.is_high_mobility == (expected == "high")
    assert estimate.flagged_events > 0


def test_estimate_probability_increases_with_mobility():
    code = surface_code(5)
    low = MobilityEstimator(code, paper_noise().with_(leakage_mobility=0.01), seed=3)
    high = MobilityEstimator(code, paper_noise().with_(leakage_mobility=0.09), seed=3)
    low_est = low.estimate(shots=150, rounds=40)
    high_est = high.estimate(shots=150, rounds=40)
    assert high_est.conditional_probability > low_est.conditional_probability
