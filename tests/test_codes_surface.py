"""Tests of the rotated surface code construction."""

import numpy as np
import pytest

from repro.codes import surface_code
from repro.codes.surface import rotated_surface_layout


@pytest.mark.parametrize("distance", [3, 5, 7, 9])
def test_qubit_counts(distance):
    code = surface_code(distance)
    assert code.num_data == distance**2
    assert code.num_ancilla == distance**2 - 1
    assert code.num_qubits == 2 * distance**2 - 1


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_stabilizer_types_balanced(distance):
    code = surface_code(distance)
    assert len(code.x_stabilizers) == (distance**2 - 1) // 2
    assert len(code.z_stabilizers) == (distance**2 - 1) // 2


@pytest.mark.parametrize("distance", [3, 5, 7])
def test_stabilizer_weights(distance):
    code = surface_code(distance)
    weights = sorted(set(s.weight for s in code.stabilizers))
    assert weights == [2, 4]
    boundary = [s for s in code.stabilizers if s.weight == 2]
    assert len(boundary) == 2 * (distance - 1)


def test_encodes_single_logical_qubit(surface_d5):
    assert surface_d5.num_logical_qubits == 1


def test_logical_operators_have_distance_weight(surface_d5):
    assert int(surface_d5.logical_x.sum()) == 5
    assert int(surface_d5.logical_z.sum()) == 5


def test_css_commutation(surface_d7):
    product = (surface_d7.parity_check_x @ surface_d7.parity_check_z.T) % 2
    assert not np.any(product)


def test_bulk_qubits_have_four_neighbors(surface_d5):
    widths = surface_d5.pattern_widths
    interior = [
        widths[row * 5 + col] for row in range(1, 4) for col in range(1, 4)
    ]
    assert all(width == 4 for width in interior)


def test_corner_qubits_have_two_neighbors(surface_d5):
    corners = [0, 4, 20, 24]
    assert all(surface_d5.pattern_width(q) == 2 for q in corners)


def test_each_data_qubit_touches_both_bases(surface_d5):
    for qubit in range(surface_d5.num_data):
        bases = {
            surface_d5.stabilizers[s].basis
            for s, _ in surface_d5.data_adjacency[qubit]
        }
        assert bases == {"X", "Z"}


def test_data_qubit_slots_are_distinct(surface_d7):
    for qubit in range(surface_d7.num_data):
        slots = [slot for _, slot in surface_d7.data_adjacency[qubit]]
        assert len(slots) == len(set(slots))


def test_layout_matches_code():
    faces = rotated_surface_layout(5)
    assert len(faces) == 24
    for face in faces:
        assert len(face["support"]) in (2, 4)
        assert len(face["support"]) == len(face["slots"])


def test_invalid_distances_rejected():
    with pytest.raises(ValueError):
        surface_code(4)
    with pytest.raises(ValueError):
        surface_code(1)


def test_coloring_is_proper(surface_d5):
    coloring = surface_d5.data_coloring
    for a, b in surface_d5.interaction_graph.edges:
        assert coloring[a] != coloring[b]


def test_x_error_flips_at_most_two_z_stabilizers(surface_d7):
    h_z = surface_d7.parity_check_z
    assert int(h_z.sum(axis=0).max()) <= 2
