"""Additional unit tests: RunResult accounting identities and cycle-time totals."""

import numpy as np
import pytest

from repro.circuits import CycleTimeModel, RoundCircuit
from repro.core import make_policy
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


@pytest.fixture(scope="module")
def gladiator_run(surface_d5=None):
    from repro.codes import surface_code

    code = surface_code(5)
    simulator = LeakageSimulator(
        code=code,
        noise=paper_noise(),
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(leakage_sampling=True),
        seed=42,
    )
    return code, simulator.run(shots=150, rounds=40)


def test_lrc_accounting_identity(gladiator_run):
    """Applied LRCs equal the (FP + TP) decisions of the preceding rounds.

    Decisions made in the final round are never executed, so the applied
    count can be at most one round's worth below the decision count.
    """
    _, result = gladiator_run
    decisions = result.total_false_positives + result.total_true_positives
    assert result.total_data_lrcs <= decisions
    last_round = result.round_records[-1]
    final_round_decisions = (last_round.false_positives + last_round.true_positives) * result.shots
    assert decisions - result.total_data_lrcs <= final_round_decisions + 1e-6


def test_round_record_rates_are_consistent_with_totals(gladiator_run):
    _, result = gladiator_run
    fp_from_records = sum(r.false_positives for r in result.round_records) * result.shots
    assert fp_from_records == pytest.approx(result.total_false_positives, rel=1e-9)
    fn_from_records = sum(r.false_negatives for r in result.round_records) * result.shots
    assert fn_from_records == pytest.approx(result.total_false_negatives, rel=1e-9)


def test_dlp_is_a_valid_fraction(gladiator_run):
    _, result = gladiator_run
    assert np.all(result.dlp_per_round >= 0)
    assert np.all(result.dlp_per_round <= 1)
    assert 0 <= result.final_dlp <= 1


def test_cycle_time_totals_scale_linearly(gladiator_run):
    code, result = gladiator_run
    model = CycleTimeModel(code, paper_noise())
    one_round = model.round_duration_ns(result.lrcs_per_round)
    total = model.total_execution_ns(result.lrcs_per_round, rounds=result.rounds)
    assert total == pytest.approx(one_round * result.rounds)
    assert one_round >= RoundCircuit(code).base_duration_ns()


def test_base_round_duration_matches_layers(gladiator_run):
    code, _ = gladiator_run
    circuit = RoundCircuit(code)
    # Four entangling layers of 25 ns plus a 300 ns measurement window.
    assert circuit.base_duration_ns() == pytest.approx(4 * 25.0 + 300.0)
