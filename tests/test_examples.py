"""Smoke tests: the runnable examples must execute end-to-end.

The decoded-memory example is exercised separately by the experiment tests
(it takes minutes), so here we run the fast examples in a subprocess
and check they exit cleanly and print their headline tables.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
REPO_ROOT = EXAMPLES_DIR.parent

FAST_EXAMPLES = [
    ("quickstart.py", "Leakage speculation on the d=5 surface code"),
    ("mobility_and_calibration.py", "Leakage-mobility estimation"),
    ("custom_code_speculation.py", "Speculative mitigation on the HGP code"),
    ("serve_quickstart.py", "Decode-as-a-service on the d=3 surface code"),
]


@pytest.mark.parametrize("script,expected_text", FAST_EXAMPLES, ids=[s for s, _ in FAST_EXAMPLES])
def test_example_runs(script, expected_text):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected_text in completed.stdout


def test_examples_directory_contents():
    scripts = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))
    assert "quickstart.py" in scripts
    assert len(scripts) >= 4
