"""Tests of the unified telemetry layer: metrics, spans, manifests, wiring.

The two contracts the subsystem promises are pinned here:

* **RNG neutrality** — running with telemetry on is bit-identical to running
  with it off, across codes, decoders and execution paths (the overhead half
  of the contract lives in ``benchmarks/bench_obs_overhead.py``);
* **valid trace output** — every exported event carries the Chrome
  ``trace_event`` keys and spans nest properly per thread, so Perfetto /
  ``chrome://tracing`` load the file directly.
"""

import json
import threading

import numpy as np
import pytest

from repro.api import ExperimentConfig
from repro.api.session import Session
from repro.obs import (
    METRICS,
    build_manifest,
    resolve_telemetry,
    telemetry_scope,
)
from repro.obs.manifest import MANIFEST_SCHEMA
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    NULL_SPAN,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    span,
)

SMALL = {"shots": 10, "rounds": 3, "seed": 7}


@pytest.fixture(autouse=True)
def _telemetry_off(monkeypatch):
    """Tests control telemetry explicitly; the environment must not leak in."""
    monkeypatch.delenv("REPRO_TELEMETRY", raising=False)
    yield
    # A failing test must never leave the process-wide switch on.
    deactivate()
    METRICS.disable()


def _config(**overrides) -> ExperimentConfig:
    config = ExperimentConfig.from_dict(
        {
            "name": "obs-test",
            "code": {"name": "surface", "distance": 3},
            "noise": {"p": 2e-3, "leakage_ratio": 1.0},
            "execution": dict(SMALL),
        }
    )
    for path, value in overrides.items():
        config = config.override(path, value)
    return config


# --------------------------------------------------------------------- #
# Metrics primitives
# --------------------------------------------------------------------- #
def test_registry_instruments_are_off_by_default():
    registry = MetricsRegistry()
    counter = registry.counter("c", "a counter")
    gauge = registry.gauge("g")
    histogram = registry.histogram("h")
    counter.inc()
    gauge.set(3.0)
    histogram.observe(1.0)
    assert counter.value == 0
    assert gauge.value == 0.0
    assert histogram.count == 0

    registry.enable()
    counter.inc(2)
    gauge.set(3.0)
    histogram.observe(1.0)
    histogram.observe(3.0)
    assert counter.value == 2
    assert gauge.value == 3.0
    assert histogram.count == 2
    assert histogram.percentile(50) == 2.0

    registry.reset()
    assert counter.value == 0
    assert histogram.count == 0


def test_registry_is_get_or_create_and_guards_kinds():
    registry = MetricsRegistry()
    assert registry.counter("x") is registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_counter_merges_per_thread_slots():
    counter = Counter("threads")
    threads = [
        threading.Thread(target=lambda: [counter.inc() for _ in range(100)])
        for _ in range(4)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    counter.inc(10)
    assert counter.value == 410


def test_histogram_snapshot_and_empty_percentile():
    histogram = Histogram("latency")
    assert histogram.percentile(99) == 0.0
    assert histogram.snapshot() == {"count": 0}
    for value in (1.0, 2.0, 3.0, 4.0):
        histogram.observe(value)
    snap = histogram.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10.0
    assert snap["min"] == 1.0 and snap["max"] == 4.0
    assert snap["p50"] == 2.5


def test_registry_snapshot_is_flat_and_sorted():
    registry = MetricsRegistry()
    registry.enable()
    registry.counter("b.count").inc(3)
    registry.gauge("a.depth").set(2)
    snapshot = registry.snapshot()
    assert list(snapshot) == ["a.depth", "b.count"]
    assert snapshot == {"a.depth": 2.0, "b.count": 3}


# --------------------------------------------------------------------- #
# Tracer and spans
# --------------------------------------------------------------------- #
def test_module_span_is_noop_without_active_tracer():
    assert current_tracer() is None
    assert span("anything", key=1) is NULL_SPAN
    with span("anything"):
        pass  # must not raise


def test_tracer_records_schema_complete_events():
    tracer = Tracer()
    activate(tracer)
    try:
        with span("outer", label="x"):
            with span("inner"):
                pass
        tracer.instant("marker", hit=True)
    finally:
        deactivate()
    events = tracer.events()
    assert [e["name"] for e in events] == ["inner", "outer", "marker"]
    for event in events:
        assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
    inner, outer, marker = events
    assert inner["ph"] == outer["ph"] == "X"
    assert marker["ph"] == "i" and marker["s"] == "t"
    # Containment: the viewers reconstruct nesting from it.
    assert outer["ts"] <= inner["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
    assert outer["args"] == {"label": "x"}


def test_tracer_exports_chrome_and_jsonl(tmp_path):
    tracer = Tracer()
    with tracer.span("work", n=1):
        pass
    chrome = tracer.write_chrome(tmp_path / "trace.json")
    jsonl = tracer.write_jsonl(tmp_path / "trace.jsonl")
    document = json.loads(chrome.read_text())
    assert document["displayTimeUnit"] == "ms"
    assert [e["name"] for e in document["traceEvents"]] == ["work"]
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert lines == document["traceEvents"]


# --------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------- #
def test_manifest_carries_provenance_and_config_digest():
    config = _config()
    manifest = build_manifest(config, extra={"note": "hello"})
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["config_digest"] == config.digest()
    assert manifest["seed"] == SMALL["seed"]
    assert manifest["engine_version"] >= 5
    assert "numpy" in manifest["packages"]
    assert manifest["platform"]["python"]
    assert manifest["note"] == "hello"
    # Metrics only embed while the registry is enabled.
    assert "metrics" not in manifest
    METRICS.enable()
    try:
        assert "metrics" in build_manifest(config)
    finally:
        METRICS.disable()


# --------------------------------------------------------------------- #
# Resolution and scope
# --------------------------------------------------------------------- #
def test_resolve_telemetry_precedence(monkeypatch):
    assert resolve_telemetry() is None
    monkeypatch.setenv("REPRO_TELEMETRY", "1")
    assert resolve_telemetry() == "on"
    monkeypatch.setenv("REPRO_TELEMETRY", "off")
    assert resolve_telemetry() is None
    monkeypatch.setenv("REPRO_TELEMETRY", "env.json")
    assert resolve_telemetry() == "env.json"
    config = _config(**{"execution.telemetry": "config.json"})
    assert resolve_telemetry(config) == "config.json"
    assert resolve_telemetry(config, "cli.json") == "cli.json"
    # A config can also switch telemetry *off* against the environment.
    assert resolve_telemetry(_config(**{"execution.telemetry": "off"})) is None


def test_telemetry_scope_none_is_noop():
    with telemetry_scope(None) as tracer:
        assert tracer is None
        assert current_tracer() is None
        assert not METRICS.enabled


def test_telemetry_scope_on_activates_without_files(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with telemetry_scope("on") as tracer:
        assert current_tracer() is tracer
        assert METRICS.enabled
    assert current_tracer() is None
    assert not METRICS.enabled
    assert list(tmp_path.iterdir()) == []


def test_telemetry_scope_writes_trace_jsonl_and_manifest(tmp_path):
    target = tmp_path / "out" / "trace.json"
    with telemetry_scope(str(target), config=_config()):
        with span("unit.test"):
            pass
    document = json.loads(target.read_text())
    assert any(e["name"] == "unit.test" for e in document["traceEvents"])
    assert target.with_suffix(".jsonl").exists()
    manifest = json.loads(target.with_suffix(".manifest.json").read_text())
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert "metrics" in manifest  # captured before the scope disabled them


def test_nested_scopes_join_the_outer_tracer(tmp_path):
    outer_target = tmp_path / "outer.json"
    inner_target = tmp_path / "inner.json"
    with telemetry_scope(str(outer_target)) as outer:
        with telemetry_scope(str(inner_target)) as inner:
            assert inner is outer
    assert outer_target.exists()
    assert not inner_target.exists()


def test_execution_telemetry_is_not_part_of_the_cache_key():
    from repro.api.session import workunit_from_config
    from repro.sweeps.units import unit_key

    plain = _config()
    traced = _config(**{"execution.telemetry": "trace.json"})
    # Telemetry is a performance-only knob: it cannot change results, so it
    # is dropped from the cache payload, the config digest and the sweep
    # cache key alike.
    assert "telemetry" not in plain.cache_payload()["execution"]
    assert plain.digest() == traced.digest()
    assert unit_key(workunit_from_config(plain)) == unit_key(
        workunit_from_config(traced)
    )


# --------------------------------------------------------------------- #
# The RNG-neutrality contract: telemetry on == telemetry off, bit for bit
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("code", ["surface", "color"])
@pytest.mark.parametrize("decoder", ["matching", "union_find"])
@pytest.mark.parametrize("mode", ["offline", "windowed", "sweep"])
def test_telemetry_is_bit_identical_on_and_off(code, decoder, mode, tmp_path):
    config = _config(**{"code.name": code, "decoder.name": decoder})
    if mode == "windowed":
        config = config.override("execution.window_rounds", 2)

    def execute(cfg):
        if mode == "sweep":
            return Session(cfg).sweep({"execution.seed": [1, 2]})
        return [Session(cfg).run().summary()]

    baseline = execute(config)
    trace = tmp_path / f"{code}-{decoder}-{mode}.json"
    traced = execute(config.override("execution.telemetry", str(trace)))
    # Exact equality, perf diagnostics included: the execution path is the
    # same, telemetry only observed it.
    assert traced == baseline
    assert trace.exists()


def test_traced_run_emits_a_valid_nested_trace(tmp_path):
    trace = tmp_path / "run.json"
    Session(_config(**{"execution.telemetry": str(trace)})).run()
    document = json.loads(trace.read_text())
    events = document["traceEvents"]
    assert events
    for event in events:
        assert {"name", "ph", "pid", "tid", "ts"} <= set(event)
        if event["ph"] == "X":
            assert event["dur"] >= 0.0
    # Per thread, complete events must form a laminar family (any two are
    # disjoint or nested) — that is what lets viewers rebuild the stack.
    epsilon = 0.5  # microseconds; adjacent phases share a boundary tick
    by_tid: dict = {}
    for event in events:
        if event["ph"] == "X":
            by_tid.setdefault(event["tid"], []).append(event)
    for spans in by_tid.values():
        spans.sort(key=lambda e: (e["ts"], -e["dur"]))
        for i, a in enumerate(spans):
            for b in spans[i + 1 :]:
                disjoint = b["ts"] >= a["ts"] + a["dur"] - epsilon
                nested = b["ts"] + b["dur"] <= a["ts"] + a["dur"] + epsilon
                assert disjoint or nested, (a, b)
    names = {event["name"] for event in events}
    assert {"sim.run", "sim.round", "sim.phase.noise"} <= names


def test_summary_surfaces_decoder_cache_and_dedup_diagnostics():
    summary = Session(_config()).run().summary()
    assert 0.0 <= summary["decoder_cache_hit_rate"] <= 1.0
    assert 0.0 <= summary["batch_dedup_ratio"] <= 1.0
    # 10 shots at low p share syndromes: dedup must actually have happened.
    assert summary["batch_dedup_ratio"] > 0.0


# --------------------------------------------------------------------- #
# CLI wiring
# --------------------------------------------------------------------- #
def test_cli_run_trace_writes_all_three_artifacts(tmp_path, capsys):
    from repro.__main__ import main

    config = _config()
    config_path = config.save(tmp_path / "experiment.json")
    trace = tmp_path / "cli" / "trace.json"
    assert main(["run", "--config", str(config_path), "--trace", str(trace)]) == 0
    capsys.readouterr()
    document = json.loads(trace.read_text())
    assert document["traceEvents"]
    assert trace.with_suffix(".jsonl").exists()
    manifest = json.loads(trace.with_suffix(".manifest.json").read_text())
    assert manifest["config_digest"]
    assert manifest["config"]["execution"]["telemetry"] == str(trace)


def test_cli_fuzz_trace_writes_report_and_manifest(tmp_path, capsys):
    from repro.__main__ import main

    trace = tmp_path / "fuzz.json"
    report = tmp_path / "fuzz_report.json"
    code = main(
        [
            "fuzz",
            "--budget", "2",
            "--seed", "5",
            "--trace", str(trace),
            "--report", str(report),
        ]
    )
    assert code == 0
    capsys.readouterr()
    payload = json.loads(report.read_text())
    for result in payload["results"]:
        assert "tier_ms" in result
    manifest = json.loads(trace.with_suffix(".manifest.json").read_text())
    assert manifest["fuzz"]["cells_run"] == 2
    names = {e["name"] for e in json.loads(trace.read_text())["traceEvents"]}
    assert "fuzz.cell" in names and "fuzz.tier" in names


# --------------------------------------------------------------------- #
# Realtime accounting on the shared histogram
# --------------------------------------------------------------------- #
def test_latency_recorder_summary_keys_and_percentiles_unchanged():
    from repro.realtime.accounting import LatencyRecorder

    recorder = LatencyRecorder()
    recorder.record(2, 0.4)
    recorder.record(1, 0.1)
    recorder.record(4, 1.2)
    expected = np.array([0.2, 0.1, 0.3])
    assert recorder.percentile(50) == pytest.approx(np.percentile(expected, 50))
    summary = recorder.summary()
    assert set(summary) == {
        "windows",
        "rounds_committed",
        "decode_seconds",
        "round_latency_p50",
        "round_latency_p99",
        "mean_queue_wait",
        "hardware_round_ns",
        "realtime_factor",
    }
    assert summary["windows"] == 3
    assert summary["rounds_committed"] == 7
