"""Session facade tests: one config drives every path, bit-identically.

The acceptance bar of the api redesign: a single ``ExperimentConfig`` JSON
must drive an offline run, a windowed realtime run and a sweep grid point,
each producing results bit-identical (same seeds) to the pre-redesign
construction path (direct ``MemoryExperiment`` / ``WorkUnit`` construction).
"""

import numpy as np
import pytest

from repro import ExperimentConfig, MemoryExperiment, Session, make_code, make_policy
from repro.noise import paper_noise
from repro.sweeps.executor import SweepExecutor
from repro.sweeps.units import WorkUnit, run_unit_serial, unit_key, unit_to_config

SHOTS = 30
ROUNDS = 6

#: A leakage-heavy point so failures actually occur at these tiny budgets.
BASE_CONFIG = {
    "name": "identity-check",
    "code": {"name": "surface", "distance": 3},
    "noise": {"preset": "paper", "p": 3e-3, "leakage_ratio": 1.0},
    "policy": {"name": "gladiator+m"},
    "decoder": {"name": "matching"},
    "execution": {"shots": SHOTS, "rounds": ROUNDS, "seed": 11},
}


def _config(**section_overrides) -> ExperimentConfig:
    data = {key: dict(value) if isinstance(value, dict) else value
            for key, value in BASE_CONFIG.items()}
    for section, fields in section_overrides.items():
        data.setdefault(section, {}).update(fields)
    return ExperimentConfig.from_dict(data)


def _legacy_experiment(config: ExperimentConfig) -> MemoryExperiment:
    """The pre-redesign construction path, spelled out field by field."""
    return MemoryExperiment(
        code=make_code(config.code.name, config.code.distance),
        noise=paper_noise(p=config.noise.p, leakage_ratio=config.noise.leakage_ratio),
        policy=make_policy(config.policy.name),
        decoder_method=config.decoder.name,
        leakage_sampling=False,
        seed=config.execution.seed,
        window_rounds=config.execution.window_rounds,
        commit_rounds=config.execution.commit_rounds,
    )


def _assert_same_result(lhs, rhs):
    assert lhs.failures == rhs.failures
    assert lhs.shots == rhs.shots and lhs.rounds == rhs.rounds
    assert np.array_equal(lhs.dlp_per_round, rhs.dlp_per_round)
    assert lhs.total_leakage_events == rhs.total_leakage_events
    assert lhs.summary() == rhs.summary()


@pytest.mark.parametrize("family, distance", [("surface", 3), ("color", 3)])
@pytest.mark.parametrize("decoder", ["matching", "union_find"])
def test_session_run_matches_direct_memory_experiment(family, distance, decoder):
    config = _config(code={"name": family, "distance": distance},
                     decoder={"name": decoder})
    via_session = Session.from_config(config).run()
    direct = _legacy_experiment(config).run(shots=SHOTS, rounds=ROUNDS)
    _assert_same_result(via_session, direct)


@pytest.mark.parametrize("decoder", ["matching", "union_find"])
def test_windowed_realtime_run_from_the_same_config(decoder):
    """Adding window_rounds to the *same* config routes through the realtime
    path and still matches the pre-redesign windowed construction."""
    config = _config(decoder={"name": decoder},
                     execution={"window_rounds": 4, "commit_rounds": 2})
    via_session = Session.from_config(config).run()
    direct = _legacy_experiment(config).run(shots=SHOTS, rounds=ROUNDS)
    _assert_same_result(via_session, direct)


def test_window_covering_all_rounds_matches_offline_decode():
    offline = Session.from_config(_config()).run()
    windowed = Session.from_config(
        _config(execution={"window_rounds": ROUNDS})
    ).run()
    assert windowed.failures == offline.failures


def test_sweep_grid_point_matches_legacy_workunit():
    """A Session sweep point and a hand-built WorkUnit are the same job."""
    config = _config()
    session = Session.from_config(config)
    legacy_unit = WorkUnit(
        family="surface",
        distance=3,
        noise=paper_noise(p=3e-3, leakage_ratio=1.0),
        policy="gladiator+m",
        shots=SHOTS,
        rounds=ROUNDS,
        decoded=True,
        leakage_sampling=False,
        seed=11,
    )
    (unit,) = session.work_units()
    assert unit_key(unit) == unit_key(legacy_unit)
    rows = session.sweep(executor=SweepExecutor(workers=1, cache=None))
    legacy_row = run_unit_serial(legacy_unit)
    assert rows == [legacy_row]


def test_sweep_axes_label_rows_and_match_serial_runs():
    config = _config()
    session = Session.from_config(config)
    rows = session.sweep(
        axes={"code.distance": [3, 5], "policy.name": ["eraser+m", "gladiator+m"]},
        executor=SweepExecutor(workers=1, cache=None),
    )
    assert len(rows) == 4
    assert [(row["distance"], row["policy_name"]) for row in rows] == [
        (3, "eraser+m"), (3, "gladiator+m"), (5, "eraser+m"), (5, "gladiator+m")
    ]
    # each grid point equals a direct serial run of its own config
    point = _config(code={"distance": 5}, policy={"name": "eraser+m"})
    (unit,) = Session.from_config(point).work_units()
    direct = run_unit_serial(unit)
    matching = [
        r for r in rows if r["distance"] == 5 and r["policy_name"] == "eraser+m"
    ]
    assert matching[0]["ler"] == direct["ler"]


def test_one_config_file_drives_all_three_paths(tmp_path):
    """The acceptance criterion, end to end from a JSON file on disk."""
    path = _config().save(tmp_path / "experiment.json")
    session = Session.from_file(path)

    offline = session.run()
    direct = _legacy_experiment(ExperimentConfig.load(path)).run(
        shots=SHOTS, rounds=ROUNDS
    )
    _assert_same_result(offline, direct)

    windowed_session = Session.from_config(
        ExperimentConfig.load(path).override("execution.window_rounds", ROUNDS)
    )
    assert windowed_session.run().failures == offline.failures

    rows = session.sweep(executor=SweepExecutor(workers=1, cache=None))
    assert rows[0]["ler"] == offline.logical_error_rate


def test_undecoded_config_runs_the_bare_simulator():
    from repro.sim import RunResult

    config = _config(execution={"decoded": False})
    result = Session.from_config(config).run()
    assert isinstance(result, RunResult)
    # undecoded path defaults leakage_sampling on (legacy convention)
    assert config.execution.effective_leakage_sampling is True
    assert result.summary()["policy"] == "gladiator+M"


def test_session_stream_decodes_concurrent_streams():
    config = _config(execution={"window_rounds": 4, "shots": 5, "rounds": 8})
    reports = Session.from_config(config).stream(streams=2, workers=2)
    assert len(reports) == 2
    for report in reports:
        assert report.shots == 5
        assert report.failures is not None


def test_session_stream_requires_window():
    with pytest.raises(ValueError, match="window_rounds"):
        Session.from_config(_config()).stream(streams=1)


def test_unit_to_config_round_trips_through_the_key():
    """unit -> config -> unit preserves the cache key (construction routes
    can never fork the cache)."""
    from repro.api.session import workunit_from_config

    unit = WorkUnit(
        family="color",
        distance=3,
        noise=paper_noise(p=2e-3, leakage_ratio=0.5),
        policy="eraser+m",
        shots=17,
        rounds=5,
        decoded=True,
        leakage_sampling=False,
        decoder_method="union_find",
        decode_batch_size=8,
        seed=4,
    )
    rebuilt = workunit_from_config(unit_to_config(unit))
    assert unit_key(rebuilt) == unit_key(unit)


def test_memory_experiment_from_config_matches_direct_construction():
    config = _config()
    from_config = MemoryExperiment.from_config(config)
    direct = _legacy_experiment(config)
    assert from_config.run(5, 4).summary() == direct.run(5, 4).summary()
