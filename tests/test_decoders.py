"""Tests of the detector graph, MWPM decoder and union-find decoder."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.decoders import DetectorGraph, MatchingDecoder, UnionFindDecoder, make_decoder
from repro.noise import ideal_noise, paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


@pytest.fixture(scope="module")
def graph_d3(surface_d3=None):
    from repro.codes import surface_code

    return DetectorGraph(code=surface_code(3), rounds=4, noise=paper_noise())


def test_graph_node_counts(graph_d3):
    num_z = len([s for s in graph_d3.code.stabilizers if s.basis == "Z"])
    assert graph_d3.num_z_stabs == num_z
    assert graph_d3.num_layers == 5
    assert graph_d3.num_nodes == 5 * num_z + 1
    assert graph_d3.boundary_node == 5 * num_z


def test_graph_edge_kinds(graph_d3):
    kinds = {edge.kind for edge in graph_d3.edges}
    assert kinds == {"space", "time", "boundary"}
    time_edges = [e for e in graph_d3.edges if e.kind == "time"]
    assert len(time_edges) == graph_d3.num_z_stabs * (graph_d3.num_layers - 1)
    assert all(not e.flips_logical for e in time_edges)


def test_some_space_edges_cross_the_logical(graph_d3):
    crossing = [e for e in graph_d3.edges if e.flips_logical]
    assert crossing
    assert all(e.kind in ("space", "boundary") for e in crossing)


def test_flagged_nodes_round_trip(graph_d3):
    history = np.zeros((4, graph_d3.num_z_stabs), dtype=bool)
    final = np.zeros(graph_d3.num_z_stabs, dtype=bool)
    history[2, 1] = True
    final[0] = True
    nodes = graph_d3.flagged_nodes(history, final)
    assert graph_d3.node_index(1, 2) in nodes
    assert graph_d3.node_index(0, 4) in nodes
    assert len(nodes) == 2


def test_rejects_codes_with_hyperedge_structure():
    from repro.codes import color_code

    with pytest.raises(ValueError):
        DetectorGraph(code=color_code(5), rounds=3)


def test_trivial_syndrome_decodes_to_identity(graph_d3):
    history = np.zeros((4, graph_d3.num_z_stabs), dtype=bool)
    final = np.zeros(graph_d3.num_z_stabs, dtype=bool)
    assert MatchingDecoder(graph_d3).decode_shot(history, final) == 0
    assert UnionFindDecoder(graph_d3).decode_shot(history, final) == 0


def test_single_measurement_error_is_benign(graph_d3):
    # A measurement error fires the same detector in two consecutive rounds
    # and must decode to "no logical flip".
    history = np.zeros((4, graph_d3.num_z_stabs), dtype=bool)
    final = np.zeros(graph_d3.num_z_stabs, dtype=bool)
    history[1, 2] = True
    history[2, 2] = True
    assert MatchingDecoder(graph_d3).decode_shot(history, final) == 0
    assert UnionFindDecoder(graph_d3).decode_shot(history, final) == 0


def _logical_failure_rate(code, noise, policy_name, decoder_method, shots, rounds, seed=0):
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy(policy_name),
        options=SimulatorOptions(record_detectors=True),
        seed=seed,
    )
    result = simulator.run(shots=shots, rounds=rounds)
    graph = DetectorGraph(code=code, rounds=rounds, noise=noise)
    decoder = make_decoder(graph, decoder_method)
    predictions = decoder.decode_batch(result.detector_history, result.final_detectors)
    return float((predictions ^ result.observable_flips).mean())


@pytest.mark.parametrize("decoder_method", ["matching", "union_find"])
def test_decoder_corrects_low_noise_runs(surface_d3, decoder_method):
    noise = paper_noise(p=5e-4, leakage_ratio=0.0)
    failure_rate = _logical_failure_rate(
        surface_d3, noise, "no-lrc", decoder_method, shots=150, rounds=6, seed=7
    )
    assert failure_rate < 0.08


@pytest.mark.parametrize("decoder_method", ["matching", "union_find"])
def test_decoder_perfect_without_noise(surface_d3, decoder_method):
    failure_rate = _logical_failure_rate(
        surface_d3, ideal_noise(), "no-lrc", decoder_method, shots=50, rounds=5
    )
    assert failure_rate == 0.0


def test_higher_distance_improves_ler():
    from repro.codes import surface_code

    noise = paper_noise(p=2e-3, leakage_ratio=0.0)
    ler_d3 = _logical_failure_rate(
        surface_code(3), noise, "no-lrc", "matching", shots=400, rounds=6, seed=8
    )
    ler_d5 = _logical_failure_rate(
        surface_code(5), noise, "no-lrc", "matching", shots=400, rounds=6, seed=8
    )
    assert ler_d5 <= ler_d3


def test_make_decoder_factory(graph_d3):
    assert isinstance(make_decoder(graph_d3, "matching"), MatchingDecoder)
    assert isinstance(make_decoder(graph_d3, "union_find"), UnionFindDecoder)
    with pytest.raises(ValueError):
        make_decoder(graph_d3, "bp-osd")


def test_greedy_fallback_used_for_large_syndromes(surface_d3):
    noise = paper_noise(p=2e-2, leakage_ratio=0.0)
    graph = DetectorGraph(code=surface_d3, rounds=8, noise=noise)
    decoder = MatchingDecoder(graph, max_exact_nodes=2)
    rng = np.random.default_rng(9)
    history = rng.random((8, graph.num_z_stabs)) < 0.2
    final = rng.random(graph.num_z_stabs) < 0.2
    # Must complete and return a valid parity even through the greedy path.
    assert decoder.decode_shot(history, final) in (0, 1)


# --------------------------------------------------------------------- #
# Exact -> greedy fallback boundary and decoder tuning knobs
# --------------------------------------------------------------------- #
def _spy_on_strategies(decoder):
    """Count which matching backend a decoder actually invokes.

    A syndrome served whole by the compiled ``dp_decode`` shortcut
    (``_fast_entry``) is an exact matching by construction, so it counts
    toward ``"exact"`` — the tallies describe backend *selection*, not
    which implementation (interpreted or C) carried it out.
    """
    calls = {"exact": 0, "greedy": 0}
    exact, greedy = decoder._exact_matching, decoder._greedy_matching
    fast = decoder._fast_entry

    def count_exact(*args, **kwargs):
        calls["exact"] += 1
        return exact(*args, **kwargs)

    def count_greedy(*args, **kwargs):
        calls["greedy"] += 1
        return greedy(*args, **kwargs)

    def count_fast(*args, **kwargs):
        entry = fast(*args, **kwargs)
        if entry is not None:
            calls["exact"] += 1
        return entry

    decoder._exact_matching = count_exact
    decoder._greedy_matching = count_greedy
    decoder._fast_entry = count_fast
    return calls


def _fire(graph, count):
    """A detector record with exactly ``count`` fired detectors."""
    history = np.zeros((graph.rounds, graph.num_z_stabs), dtype=bool)
    final = np.zeros(graph.num_z_stabs, dtype=bool)
    flat = history.reshape(-1)
    flat[:count] = True
    return history, final


def test_fallback_boundary_empty_at_and_over_threshold(graph_d3):
    threshold = 4
    # Empty syndrome: neither backend runs, the prediction is trivially 0.
    decoder = MatchingDecoder(graph_d3, max_exact_nodes=threshold)
    calls = _spy_on_strategies(decoder)
    assert decoder.decode_shot(*_fire(graph_d3, 0)) == 0
    assert calls == {"exact": 0, "greedy": 0}

    # Exactly at the threshold: still exact.
    decoder = MatchingDecoder(graph_d3, max_exact_nodes=threshold)
    calls = _spy_on_strategies(decoder)
    assert decoder.decode_shot(*_fire(graph_d3, threshold)) in (0, 1)
    assert calls == {"exact": 1, "greedy": 0}

    # One over: greedy takes over.
    decoder = MatchingDecoder(graph_d3, max_exact_nodes=threshold)
    calls = _spy_on_strategies(decoder)
    assert decoder.decode_shot(*_fire(graph_d3, threshold + 1)) in (0, 1)
    assert calls == {"exact": 0, "greedy": 1}


def test_strategy_pin_overrides_threshold(graph_d3):
    # "greedy" ignores how small the syndrome is...
    decoder = MatchingDecoder(graph_d3, max_exact_nodes=60, strategy="greedy")
    calls = _spy_on_strategies(decoder)
    decoder.decode_shot(*_fire(graph_d3, 2))
    assert calls == {"exact": 0, "greedy": 1}
    # ...and "exact" ignores how large it is.
    decoder = MatchingDecoder(graph_d3, max_exact_nodes=2, strategy="exact")
    calls = _spy_on_strategies(decoder)
    decoder.decode_shot(*_fire(graph_d3, 6))
    assert calls == {"exact": 1, "greedy": 0}


def test_matching_decoder_validates_tuning(graph_d3):
    with pytest.raises(ValueError):
        MatchingDecoder(graph_d3, strategy="fastest")
    with pytest.raises(ValueError):
        MatchingDecoder(graph_d3, max_exact_nodes=-1)


def test_make_decoder_forwards_tuning(graph_d3):
    decoder = make_decoder(graph_d3, "matching", max_exact_nodes=7, strategy="greedy")
    assert decoder.max_exact_nodes == 7
    assert decoder.strategy == "greedy"
    # union-find has no such knobs; a requested configuration must not be
    # silently dropped.
    with pytest.raises(ValueError):
        make_decoder(graph_d3, "union_find", max_exact_nodes=7)
    assert isinstance(make_decoder(graph_d3, "union-find"), UnionFindDecoder)


def test_hyperedge_decomposition_opt_in():
    from repro.codes import color_code

    code = color_code(3)
    with pytest.raises(ValueError):
        DetectorGraph(code=code, rounds=3)
    graph = DetectorGraph(code=code, rounds=3, hyperedges="decompose")
    assert graph.edges  # chain decomposition produced a connected graph
    history = np.zeros((3, graph.num_z_stabs), dtype=bool)
    final = np.zeros(graph.num_z_stabs, dtype=bool)
    assert MatchingDecoder(graph).decode_shot(history, final) == 0
    with pytest.raises(ValueError):
        DetectorGraph(code=code, rounds=3, hyperedges="maybe")


def test_hyperedge_decomposition_has_no_conflicting_parallel_edges():
    """Equal-weight parallel edges with different flips_logical would be
    collapsed arbitrarily by the edge lookup; the decomposition must not
    create any (regression: colour-code d=5 chains used to)."""
    from collections import defaultdict

    from repro.codes import color_code

    for distance in (3, 5):
        graph = DetectorGraph(
            code=color_code(distance), rounds=2, hyperedges="decompose"
        )
        flips_by_pair = defaultdict(set)
        for edge in graph.edges:
            key = (min(edge.node_a, edge.node_b), max(edge.node_a, edge.node_b), edge.weight)
            flips_by_pair[key].add(edge.flips_logical)
        conflicts = [key for key, flips in flips_by_pair.items() if len(flips) > 1]
        assert not conflicts, f"d={distance}: {len(conflicts)} ambiguous pairs"
