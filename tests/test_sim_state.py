"""Tests of the batched Pauli-frame + leakage state."""

import numpy as np

from repro.sim import SimState


def make_state(shots=100, num_data=9, num_ancilla=8):
    return SimState(shots=shots, num_data=num_data, num_ancilla=num_ancilla)


def test_initial_state_is_clean():
    state = make_state()
    assert not state.data_x.any()
    assert not state.data_z.any()
    assert not state.data_leaked.any()
    assert not state.anc_leaked.any()
    assert state.leaked_fraction() == 0.0


def test_depolarize_zero_probability_is_identity():
    state = make_state()
    state.depolarize_data(0.0, np.random.default_rng(0))
    assert not state.data_x.any() and not state.data_z.any()


def test_depolarize_hits_expected_fraction():
    state = make_state(shots=4000, num_data=10)
    state.depolarize_data(0.3, np.random.default_rng(1))
    hit_fraction = float((state.data_x | state.data_z).mean())
    assert 0.25 < hit_fraction < 0.35


def test_depolarize_balances_pauli_types():
    state = make_state(shots=6000, num_data=8)
    state.depolarize_data(1.0, np.random.default_rng(2))
    x_only = float((state.data_x & ~state.data_z).mean())
    z_only = float((state.data_z & ~state.data_x).mean())
    both = float((state.data_x & state.data_z).mean())
    for fraction in (x_only, z_only, both):
        assert 0.28 < fraction < 0.39


def test_leakage_injection_marks_new_leaks_only():
    state = make_state(shots=2000)
    rng = np.random.default_rng(3)
    first = state.inject_data_leakage(0.5, rng)
    second = state.inject_data_leakage(0.5, rng)
    assert not (first & second).any()
    assert state.data_leaked.sum() == first.sum() + second.sum()


def test_reset_clears_frames_and_leakage():
    state = make_state()
    rng = np.random.default_rng(4)
    state.anc_x[:] = True
    state.anc_leaked[:, 0] = True
    state.reset_ancillas(0.0, rng, leakage_removal_probability=1.0)
    assert not state.anc_x.any()
    assert not state.anc_leaked.any()


def test_reset_can_preserve_leakage():
    state = make_state()
    rng = np.random.default_rng(5)
    state.anc_leaked[:, 1] = True
    state.reset_ancillas(0.0, rng, leakage_removal_probability=0.0)
    assert state.anc_leaked[:, 1].all()


def test_reset_flip_probability():
    state = make_state(shots=4000)
    state.reset_ancillas(0.25, np.random.default_rng(6))
    fraction = float(state.anc_x.mean())
    assert 0.2 < fraction < 0.3


def test_leaked_counts_per_shot():
    state = make_state(shots=3, num_data=5)
    state.data_leaked[0, [0, 3]] = True
    state.data_leaked[2, 1] = True
    assert state.leaked_counts().tolist() == [2, 0, 1]
