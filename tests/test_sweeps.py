"""Tests of the parallel sweep engine: sharding, seeding, merging, caching."""

import json
import os

import numpy as np
import pytest

from repro.noise import paper_noise
from repro.sweeps import (
    SweepCache,
    SweepExecutor,
    SweepSpec,
    WorkUnit,
    plan_shards,
    run_unit_serial,
    shard_seeds,
    unit_key,
)
from repro.sweeps.registry import build_sweep, sweep_names


def _unit(**overrides):
    defaults = dict(
        family="surface",
        distance=3,
        noise=paper_noise(),
        policy="eraser+m",
        shots=200,
        rounds=10,
        leakage_sampling=True,
        seed=5,
    )
    defaults.update(overrides)
    return WorkUnit(**defaults)


# --------------------------------------------------------------------- #
# Shard planning and seeding
# --------------------------------------------------------------------- #
def test_plan_shards_covers_budget_independent_of_workers():
    assert plan_shards(1000, 250) == [250, 250, 250, 250]
    assert plan_shards(260, 250) == [250, 10]
    assert plan_shards(40, 250) == [40]
    with pytest.raises(ValueError):
        plan_shards(0, 250)


def test_shard_seeds_reproducible_and_distinct():
    unit = _unit()
    first = shard_seeds(unit, 6)
    second = shard_seeds(unit, 6)
    assert first == second
    assert len(set(first)) == 6
    # A prefix of a longer spawn is the same seeds: shard i's seed does not
    # depend on how many shards follow it.
    assert shard_seeds(unit, 3) == first[:3]


def test_shard_seeds_differ_between_units():
    assert shard_seeds(_unit(), 4) != shard_seeds(_unit(policy="gladiator+m"), 4)
    assert shard_seeds(_unit(), 4) != shard_seeds(_unit(seed=6), 4)


def test_unit_key_ignores_labels_but_not_parameters():
    base = _unit()
    assert unit_key(base) == unit_key(_unit(labels=(("distance", 3),)))
    assert unit_key(base) != unit_key(_unit(policy="gladiator+m"))
    assert unit_key(base) != unit_key(_unit(shots=201))
    assert unit_key(base) != unit_key(_unit(seed=6))


# --------------------------------------------------------------------- #
# Sharded execution vs the serial path
# --------------------------------------------------------------------- #
def test_sharded_run_statistically_consistent_with_serial():
    unit = _unit(shots=600, rounds=12)
    serial = run_unit_serial(unit)
    executor = SweepExecutor(workers=2, cache=None, shard_shots=150)
    (sharded,) = executor.run_units([unit])

    assert executor.shards_executed == 4
    assert sharded["shots"] == serial["shots"] == 600
    assert sharded["rounds"] == serial["rounds"]
    # Different (deterministic) RNG streams, same physics: headline metrics
    # agree within sampling tolerance for this shot budget.
    assert sharded["mean_dlp"] == pytest.approx(serial["mean_dlp"], abs=0.03)
    assert sharded["lrcs_per_round"] == pytest.approx(serial["lrcs_per_round"], rel=0.35, abs=0.1)
    assert sharded["fp_per_round"] == pytest.approx(serial["fp_per_round"], rel=0.35, abs=0.1)
    assert sharded["dlp_per_round"].shape == serial["dlp_per_round"].shape


def test_sharded_decoded_run_consistent_with_serial():
    unit = _unit(shots=120, rounds=6, decoded=True, leakage_sampling=False)
    serial = run_unit_serial(unit)
    executor = SweepExecutor(workers=2, cache=None, shard_shots=40)
    (sharded,) = executor.run_units([unit])
    assert sharded["shots"] == serial["shots"]
    assert 0.0 <= sharded["ler"] <= 1.0
    assert sharded["ler"] == pytest.approx(serial["ler"], abs=0.1)


def test_results_identical_across_pool_sizes():
    unit = _unit(shots=300, rounds=8)
    rows = []
    for workers in (2, 3):
        executor = SweepExecutor(workers=workers, cache=None, shard_shots=100)
        rows.append(executor.run_units([unit])[0])
    first, second = rows
    for key, value in first.items():
        if isinstance(value, np.ndarray):
            assert np.array_equal(value, second[key]), key
        else:
            assert value == second[key], key


# --------------------------------------------------------------------- #
# Memoization
# --------------------------------------------------------------------- #
def test_cache_hit_skips_recomputation(tmp_path):
    spec = SweepSpec(
        name="cache-test",
        distances=(3,),
        policies=("eraser+m", "gladiator+m"),
        shots=60,
        rounds=6,
        seed=2,
    )
    first = SweepExecutor(workers=1, cache=SweepCache(tmp_path))
    rows1 = first.run(spec)
    assert first.units_computed == 2
    assert first.cache.stores == 2

    second = SweepExecutor(workers=1, cache=SweepCache(tmp_path))
    rows2 = second.run(spec)
    assert second.units_computed == 0
    assert second.shards_executed == 0
    assert second.cache.hits == 2

    for row1, row2 in zip(rows1, rows2):
        for key, value in row1.items():
            if isinstance(value, np.ndarray):
                assert np.allclose(value, row2[key])
            else:
                assert value == pytest.approx(row2[key]) if isinstance(value, float) else value == row2[key]


def test_cache_restamps_labels_of_requesting_unit(tmp_path):
    cache = SweepCache(tmp_path)
    executor = SweepExecutor(workers=1, cache=cache)
    unit = _unit(shots=40, rounds=5, labels=(("p", 1e-3),))
    (row,) = executor.run_units([unit])
    assert row["p"] == 1e-3

    relabelled = _unit(shots=40, rounds=5, labels=(("p", 0.5),))
    (row2,) = executor.run_units([relabelled])
    assert executor.cache.hits == 1
    assert row2["p"] == 0.5
    assert row2["mean_dlp"] == pytest.approx(row["mean_dlp"])


def test_cache_never_substitutes_sharded_rows_for_serial(tmp_path):
    """Rows computed under different shard plans are different samples: a
    cache populated by a sharded run must not satisfy a serial run."""
    unit = _unit(shots=120, rounds=6)
    sharded = SweepExecutor(workers=2, cache=SweepCache(tmp_path), shard_shots=40)
    sharded.run_units([unit])
    assert sharded.cache.stores == 1

    serial = SweepExecutor(workers=1, cache=SweepCache(tmp_path))
    (row,) = serial.run_units([unit])
    assert serial.units_computed == 1  # miss: serial plan has its own key
    legacy = run_unit_serial(unit)  # bit-identical to the legacy path
    assert row["mean_dlp"] == legacy["mean_dlp"]
    assert np.array_equal(row["dlp_per_round"], legacy["dlp_per_round"])

    # Re-running either configuration hits its own entry.
    again = SweepExecutor(workers=2, cache=SweepCache(tmp_path), shard_shots=40)
    again.run_units([unit])
    assert again.units_computed == 0 and again.cache.hits == 1


def test_wrapper_and_spec_units_share_cache_keys(surface_d3):
    """A code object identical to make_code output gets the declarative
    fingerprint, so legacy wrappers and SweepSpec grids share cache entries."""
    declarative = _unit()
    wrapped = _unit(code=surface_d3)
    assert unit_key(declarative) == unit_key(wrapped)

    # A structurally different code with the same (family, distance) must not alias.
    from repro.codes import color_code

    impostor = _unit(code=color_code(3))
    assert unit_key(impostor) != unit_key(declarative)


def test_default_executor_tracks_environment(monkeypatch, tmp_path):
    from repro.sweeps.executor import default_executor

    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "a"))
    first = default_executor()
    assert first.cache is not None and first.cache.root == tmp_path / "a"

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "b"))
    second = default_executor()
    assert second is not first
    assert second.cache.root == tmp_path / "b"

    monkeypatch.setenv("REPRO_WORKERS", "3")
    assert default_executor().workers == 3

    monkeypatch.delenv("REPRO_CACHE")
    monkeypatch.delenv("REPRO_CACHE_DIR")
    monkeypatch.delenv("REPRO_WORKERS")
    rebuilt = default_executor()
    assert rebuilt.cache is None and rebuilt.workers == 1


def test_cache_survives_corrupt_entries(tmp_path):
    cache = SweepCache(tmp_path)
    key = unit_key(_unit())
    (tmp_path / f"{key}.json").write_text("{not json")
    assert cache.get(key) is None
    assert cache.misses == 1


def test_cache_quarantines_corrupt_entries(tmp_path):
    """A damaged entry is moved to <key>.json.corrupt, not silently re-missed."""
    cache = SweepCache(tmp_path)
    key = unit_key(_unit())
    path = tmp_path / f"{key}.json"
    for bad in ["{not json", "", '{"engine": 0']:
        path.write_text(bad)
        assert cache.get(key) is None
    assert cache.corrupt == 3
    assert not path.exists()
    assert (tmp_path / f"{key}.json.corrupt").exists()
    # A truncated-but-valid-JSON non-payload (e.g. a bare list) also counts.
    path.write_text("[1, 2]")
    assert cache.get(key) is None
    assert cache.corrupt == 4


def test_cache_quarantine_does_not_block_rewrite(tmp_path):
    """put() after a quarantine stores a fresh, loadable entry."""
    cache = SweepCache(tmp_path)
    key = unit_key(_unit())
    (tmp_path / f"{key}.json").write_text("garbage")
    assert cache.get(key) is None and cache.corrupt == 1
    cache.put(key, {"ler": 0.25})
    assert cache.get(key) == {"ler": 0.25}
    assert cache.hits == 1


def test_cache_stale_engine_is_plain_miss_not_corruption(tmp_path):
    """Old-engine entries are valid files — a miss, never quarantined."""
    cache = SweepCache(tmp_path)
    key = unit_key(_unit())
    path = tmp_path / f"{key}.json"
    path.write_text(json.dumps({"engine": -1, "key": key, "row": {"ler": 0.5}}))
    assert cache.get(key) is None
    assert cache.misses == 1 and cache.corrupt == 0
    assert path.exists()


# --------------------------------------------------------------------- #
# Legacy wrapper equivalence
# --------------------------------------------------------------------- #
def test_serial_engine_matches_direct_simulator(surface_d3, noise):
    """The workers=1 path is bit-identical to driving the simulator by hand."""
    from repro.core import make_policy
    from repro.sim import LeakageSimulator, SimulatorOptions

    simulator = LeakageSimulator(
        code=surface_d3,
        noise=noise,
        policy=make_policy("eraser+m"),
        options=SimulatorOptions(leakage_sampling=True),
        seed=5,
    )
    expected = simulator.run(shots=50, rounds=8).summary()

    row = run_unit_serial(_unit(code=surface_d3, shots=50, rounds=8, seed=5))
    for key, value in expected.items():
        assert row[key] == value, key


def test_spec_expansion_grid_order_and_labels():
    spec = SweepSpec(
        name="grid",
        distances=(3, 5),
        error_rates=(1e-3,),
        leakage_ratios=(0.1, 1.0),
        policies=("eraser+m",),
        shots=10,
        rounds=lambda distance: 2 * distance,
    )
    units = spec.units()
    assert len(units) == 4
    assert [unit.rounds for unit in units] == [6, 6, 10, 10]
    assert units[0].labels == (("distance", 3), ("p", 1e-3), ("leakage_ratio", 0.1))
    assert units[1].labels == (("distance", 3), ("p", 1e-3), ("leakage_ratio", 1.0))


def test_named_sweeps_build(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    for name in sweep_names():
        spec = build_sweep(name)
        assert spec.units(), name
    with pytest.raises(ValueError):
        build_sweep("nope")


def test_cli_runs_and_hits_cache(tmp_path, monkeypatch, capsys):
    from repro.sweeps.__main__ import main

    monkeypatch.setenv("REPRO_SCALE", "smoke")
    out = tmp_path / "rows.json"
    argv = ["smoke", "--cache-dir", str(tmp_path / "cache"), "--out", str(out)]
    assert main(argv) == 0
    assert out.exists()
    first = capsys.readouterr().out
    assert "2 computed, 0 cached" in first

    assert main(argv) == 0
    second = capsys.readouterr().out
    assert "0 computed, 2 cached" in second

    from repro.io import load_records

    records = load_records(out)
    assert len(records) == 2
    assert {record.metrics["policy"] for record in records} == {"eraser+M", "gladiator+M"}


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="needs >= 4 CPUs for a meaningful speedup"
)
def test_parallel_speedup_with_four_workers():
    """Acceptance check: 4 workers beat serial by >= 2x on a d=7 comparison."""
    import time

    spec = SweepSpec(
        name="speedup",
        distances=(7,),
        policies=("eraser+m", "gladiator+m", "gladiator-d+m"),
        shots=400,
        rounds=40,
        seed=1,
    )
    serial = SweepExecutor(workers=1, cache=None)
    started = time.perf_counter()
    serial.run(spec)
    serial_elapsed = time.perf_counter() - started

    parallel = SweepExecutor(workers=4, cache=None, shard_shots=50)
    started = time.perf_counter()
    parallel.run(spec)
    parallel_elapsed = time.perf_counter() - started
    assert serial_elapsed / parallel_elapsed >= 2.0


# --------------------------------------------------------------------- #
# Realtime presets, the window axis, and grouped listing
# --------------------------------------------------------------------- #
def test_sweep_groups_cover_every_preset():
    from repro.sweeps.registry import NAMED_SWEEPS, SWEEP_GROUPS, sweep_subsystem

    grouped = {name for names in SWEEP_GROUPS.values() for name in names}
    assert grouped == set(NAMED_SWEEPS)
    assert sweep_subsystem("smoke") == "offline"
    assert sweep_subsystem("realtime-ler") == "realtime"
    assert sweep_subsystem("realtime-throughput") == "realtime"
    with pytest.raises(ValueError):
        sweep_subsystem("nope")


def test_window_axis_expands_and_labels_units():
    spec = SweepSpec(
        name="windowed",
        distances=(3,),
        policies=("eraser+m",),
        shots=10,
        rounds=12,
        decoded=True,
        windows=(None, 4, 8),
        commit_rounds=2,
    )
    units = spec.units()
    assert [unit.window_rounds for unit in units] == [None, 4, 8]
    # commit_rounds only applies where a window does.
    assert [unit.commit_rounds for unit in units] == [None, 2, 2]
    assert [dict(unit.labels)["window"] for unit in units] == [None, 4, 8]
    # Specs that do not sweep windows keep their historical label layout.
    legacy = SweepSpec(name="plain", distances=(3,), policies=("eraser+m",), shots=10, rounds=5)
    assert "window" not in dict(legacy.units()[0].labels)


def test_unit_key_sees_window_and_decoder_tuning():
    base = _unit(decoded=True)
    assert unit_key(base) != unit_key(_unit(decoded=True, window_rounds=6))
    assert unit_key(_unit(decoded=True, window_rounds=6)) != unit_key(
        _unit(decoded=True, window_rounds=6, commit_rounds=2)
    )
    assert unit_key(base) != unit_key(_unit(decoded=True, decoder_max_exact_nodes=10))
    assert unit_key(base) != unit_key(_unit(decoded=True, decoder_strategy="greedy"))
    # Undecoded units never decode, so decoder tuning must not split keys.
    assert unit_key(_unit()) == unit_key(_unit(decoder_max_exact_nodes=10))


def test_windowed_unit_runs_through_engine(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    unit = _unit(decoded=True, leakage_sampling=False, shots=20, rounds=8, window_rounds=4)
    row = run_unit_serial(unit)
    assert 0.0 <= row["ler"] <= 1.0
    # A full-cover window is bit-identical to the offline decode of the unit.
    offline = run_unit_serial(_unit(decoded=True, leakage_sampling=False, shots=20, rounds=8))
    covered = run_unit_serial(
        _unit(decoded=True, leakage_sampling=False, shots=20, rounds=8, window_rounds=8)
    )
    assert covered["ler"] == offline["ler"]


def test_cli_list_groups_presets_by_subsystem(capsys):
    from repro.sweeps.__main__ import main

    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert out.index("offline:") < out.index("  smoke")
    assert out.index("realtime:") < out.index("  realtime-ler")
    assert "other:" not in out


def test_window_axis_rejected_on_undecoded_sweeps():
    """An undecoded unit never decodes, so a window axis would compile to
    identical cache keys under different labels — refuse it outright."""
    spec = SweepSpec(name="bad", distances=(3,), policies=("eraser+m",), shots=10,
                     rounds=5, windows=(4, 8))
    with pytest.raises(ValueError):
        spec.units()
