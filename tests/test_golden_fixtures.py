"""Golden regression fixtures: pinned end-to-end numbers under ``fixtures/``.

Each fixture (written by ``tools/make_golden_fixtures.py``) freezes one
small recorded run — detector record, decoder predictions per method, and
the full decoded ``MemoryExperiment`` summary.  Replaying them here pins the
whole simulate -> decode -> metrics pipeline against silent drift: a change
in simulator RNG consumption, decoder behaviour or metric definitions fails
these tests instead of quietly shifting every benchmark.

If a change *intentionally* alters the pinned numbers, regenerate with
``PYTHONPATH=src python tools/make_golden_fixtures.py`` and review the diff.
"""

import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.api.registry import NOISE_PRESETS
from repro.core import make_policy
from repro.decoders import DetectorGraph, make_decoder
from repro.experiments import MemoryExperiment, make_code
from repro.sim import LeakageSimulator, SimulatorOptions

FIXTURES_DIR = Path(__file__).parent / "fixtures"
FIXTURE_PATHS = sorted(FIXTURES_DIR.glob("golden_*.json"))


def _load(path):
    return json.loads(path.read_text())


def _build_code(scenario):
    return make_code(scenario["family"], scenario["distance"])


def _noise(scenario):
    preset = NOISE_PRESETS.get(scenario["noise"]).obj
    return preset(p=scenario["p"], leakage_ratio=scenario["leakage_ratio"])


def test_fixture_set_is_present():
    """The golden set must never silently disappear (e.g. packaging slip)."""
    names = {path.name for path in FIXTURE_PATHS}
    assert {
        "golden_surface_d3_eraser.json",
        "golden_color_d3_gladiator.json",
        "golden_toric_d3_eraser.json",
        "golden_surface_d3_drift.json",
        "golden_surface_d3_bursts.json",
        "golden_toric_d3_floods.json",
        "golden_surface_d3_windowed.json",
    } <= names


@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_simulator_reproduces_recorded_run(path):
    """Same seed, same record: pins the simulator's RNG consumption order."""
    fixture = _load(path)
    scenario = fixture["scenario"]
    simulator = LeakageSimulator(
        code=_build_code(scenario),
        noise=_noise(scenario),
        policy=make_policy(scenario["policy"]),
        options=SimulatorOptions(record_detectors=True),
        seed=scenario["seed"],
    )
    run = simulator.run(shots=scenario["shots"], rounds=scenario["rounds"])
    assert np.array_equal(
        run.detector_history, np.array(fixture["detector_history"], dtype=bool)
    )
    assert np.array_equal(
        run.final_detectors, np.array(fixture["final_detectors"], dtype=bool)
    )
    assert np.array_equal(
        run.observable_flips, np.array(fixture["observable_flips"], dtype=bool)
    )


@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_decoders_reproduce_pinned_predictions(path, method):
    """Batched decoding of the recorded arrays matches the pinned output."""
    fixture = _load(path)
    scenario = fixture["scenario"]
    history = np.array(fixture["detector_history"], dtype=bool)
    final = np.array(fixture["final_detectors"], dtype=bool)
    observable = np.array(fixture["observable_flips"], dtype=bool)
    graph = DetectorGraph(
        code=_build_code(scenario),
        rounds=scenario["rounds"],
        noise=_noise(scenario),
        hyperedges="decompose",
    )
    predictions = make_decoder(graph, method).decode_batch(history, final)
    pinned = fixture["decoders"][method]
    assert predictions.astype(int).tolist() == pinned["predictions"]
    assert int((predictions ^ observable).sum()) == pinned["failures"]


def _run_pinned_experiment(scenario, method, fused=False):
    """Replay a fixture's MemoryExperiment (window-aware, optionally fused)."""
    return MemoryExperiment(
        code=_build_code(scenario),
        noise=_noise(scenario),
        policy=make_policy(scenario["policy"]),
        decoder_method=method,
        seed=scenario["seed"],
        window_rounds=scenario.get("window_rounds"),
        commit_rounds=scenario.get("commit_rounds"),
        fused=fused,
    ).run(shots=scenario["shots"], rounds=scenario["rounds"])


def _assert_summary_matches(summary, pinned):
    assert set(summary) == set(pinned)
    for key, expected in pinned.items():
        actual = summary[key]
        if isinstance(expected, float):
            assert math.isclose(actual, expected, rel_tol=1e-12, abs_tol=1e-15), key
        else:
            assert actual == expected, key


@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_memory_experiment_reproduces_pinned_summary(path, method):
    """End-to-end LER/metrics summary matches the pinned JSON exactly."""
    fixture = _load(path)
    result = _run_pinned_experiment(fixture["scenario"], method)
    _assert_summary_matches(result.summary(), fixture["memory_summaries"][method])


@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("path", FIXTURE_PATHS, ids=lambda p: p.stem)
def test_fused_pipeline_reproduces_pinned_summary(path, method):
    """The fused zero-copy path replays every golden fixture bit-identically
    — including the perf diagnostics — against summaries that were pinned on
    the two-step path.  The fixtures are NOT regenerated for the fused
    pipeline; equality against the existing bytes is the point."""
    fixture = _load(path)
    result = _run_pinned_experiment(fixture["scenario"], method, fused=True)
    _assert_summary_matches(result.summary(), fixture["memory_summaries"][method])
