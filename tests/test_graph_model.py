"""Tests of GLADIATOR's error-propagation graph model."""

import networkx as nx
import numpy as np
import pytest

from repro.core import CalibrationData, GraphModelConfig, TransitionModel
from repro.core.graph_model import build_transition_graph, labels_for_qubit, qubit_context


def bulk_qubit(code, width=4):
    return next(q for q in range(code.num_data) if code.pattern_width(q) == width)


def test_qubit_context_structure(surface_d5):
    context = qubit_context(surface_d5, bulk_qubit(surface_d5))
    assert context.width == 4
    assert len(context.groups) == 4
    bases = [group.bases for group in context.groups]
    assert bases.count(("X",)) == 2
    assert bases.count(("Z",)) == 2


def test_super_edge_weights_are_probabilities(surface_d5, calibration, graph_config):
    context = qubit_context(surface_d5, bulk_qubit(surface_d5))
    model = TransitionModel(context, calibration, graph_config)
    leakage, nonleakage = model.super_edge_weights()
    assert leakage.shape == (16,)
    assert np.all(leakage >= 0) and np.all(nonleakage >= 0)
    assert leakage.sum() > 0
    assert nonleakage.sum() > 0
    # Non-leakage errors are an order of magnitude more likely overall.
    assert nonleakage.sum() > leakage.sum()


def test_zero_pattern_is_never_flagged(surface_d5, calibration, graph_config):
    labels = labels_for_qubit(surface_d5, bulk_qubit(surface_d5), calibration, graph_config)
    assert not labels[0]


def test_flag_count_between_bounds_and_below_eraser(surface_d5, calibration, graph_config):
    # The paper reports GLADIATOR flagging 7-8 of 16 patterns vs ERASER's 11.
    labels = labels_for_qubit(surface_d5, bulk_qubit(surface_d5), calibration, graph_config)
    assert 4 <= int(labels.sum()) <= 10
    assert int(labels.sum()) < 11


def test_frequent_single_flip_patterns_not_flagged(surface_d5, calibration, graph_config):
    labels = labels_for_qubit(surface_d5, bulk_qubit(surface_d5), calibration, graph_config)
    for bit in range(4):
        assert not labels[1 << bit]


def test_two_round_labels_have_correct_size(surface_d5, calibration, graph_config):
    labels = labels_for_qubit(
        surface_d5, bulk_qubit(surface_d5), calibration, graph_config, two_rounds=True
    )
    assert labels.shape == (256,)
    assert not labels[0]
    assert 0 < int(labels.sum()) < 256


def test_two_round_excludes_first_order_completions(surface_d5, calibration, graph_config):
    # A data error that fires a suffix pattern in one round and its complement
    # in the next is a benign first-order mechanism and must not be flagged.
    context = qubit_context(surface_d5, bulk_qubit(surface_d5))
    model = TransitionModel(context, calibration, graph_config)
    labels = model.label_two_round_patterns()
    width = context.width
    for position in range(width):
        for pauli in ("X", "Y", "Z"):
            suffix = model._pauli_flip_pattern(pauli, position)
            full = model._pauli_flip_pattern(pauli, 0)
            if suffix == 0:
                continue
            key = (full ^ suffix) | (suffix << width)
            assert not labels[key]


def test_threshold_monotonicity(surface_d5, calibration):
    strict = labels_for_qubit(
        surface_d5, bulk_qubit(surface_d5), calibration, GraphModelConfig(threshold=1.0)
    )
    relaxed = labels_for_qubit(
        surface_d5, bulk_qubit(surface_d5), calibration, GraphModelConfig(threshold=0.05)
    )
    assert int(strict.sum()) <= int(relaxed.sum())
    assert np.all(relaxed[strict])  # strict flags are a subset of relaxed flags


def test_higher_leakage_rate_flags_more_patterns(surface_d5, calibration, graph_config):
    lifted = calibration.with_(leakage_rate=calibration.leakage_rate * 10)
    base = labels_for_qubit(surface_d5, bulk_qubit(surface_d5), calibration, graph_config)
    aggressive = labels_for_qubit(surface_d5, bulk_qubit(surface_d5), lifted, graph_config)
    assert int(aggressive.sum()) >= int(base.sum())


def test_color_code_flags_fewer_than_eraser(color_d5, calibration, graph_config):
    qubit = bulk_qubit(color_d5, width=3)
    labels = labels_for_qubit(color_d5, qubit, calibration, graph_config)
    assert int(labels.sum()) < 4  # ERASER flags 4 of 8 three-bit patterns


def test_transition_graph_structure(surface_d5, calibration, graph_config):
    context = qubit_context(surface_d5, bulk_qubit(surface_d5))
    model = TransitionModel(context, calibration, graph_config)
    graph = build_transition_graph(model)
    assert isinstance(graph, nx.MultiDiGraph)
    assert graph.number_of_nodes() == 16
    kinds = {key for _, _, key in graph.edges(keys=True)}
    assert kinds == {"leakage", "nonleakage"}
    labels = {graph.nodes[n]["label"] for n in graph.nodes}
    assert labels == {"leakage", "nonleakage"}


def test_invalid_config_rejected():
    with pytest.raises(ValueError):
        GraphModelConfig(threshold=0.0)
    with pytest.raises(ValueError):
        GraphModelConfig(persistence_rounds=-1.0)
