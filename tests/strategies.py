"""Shared hypothesis strategies and profiles for the whole test suite.

Importing this module registers the two suite-wide hypothesis profiles:

``ci``
    Derandomized (a pinned example sequence — the same inputs on every
    machine, so CI can never flake on an unlucky draw), moderate example
    counts, no deadline.  ``tests/conftest.py`` loads it by default.
``nightly``
    Randomized with large example counts for the unbounded soak job.
    Select it with ``HYPOTHESIS_PROFILE=nightly``.

The strategies below are the vocabulary both ``tests/test_properties.py``
and the scenario-fuzz tier (``tests/test_fuzz.py``) draw from.  The
scenario strategies read the component registries at draw time, so a code
family registered inside a test is immediately reachable from a property
test as well as from the fuzz matrix.
"""

from __future__ import annotations

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st

from repro.fabric.jobstore import FAILED, STATES, TASK_SCHEMA
from repro.fuzz import EXECUTION_MODES, ScenarioCell, SmallInstance, cell_config
from repro.serve.protocol import FrameType

__all__ = [
    "bit_widths",
    "bit_patterns",
    "gf2_matrices",
    "detector_blocks",
    "detector_chunk_pairs",
    "stabilizer_supports",
    "group_bases_lists",
    "scenario_cells",
    "small_instances",
    "fuzz_configs",
    "wire_frames",
    "chunk_payloads",
    "final_payloads",
    "result_payloads",
    "json_summaries",
    "shard_payloads",
    "task_records",
    "torn_journal_bytes",
]

settings.register_profile(
    "ci", derandomize=True, max_examples=25, deadline=None, print_blob=True
)
settings.register_profile("nightly", max_examples=400, deadline=None, print_blob=True)


# --------------------------------------------------------------------------- #
# Bit-pattern vocabulary (repro.core.patterns)
# --------------------------------------------------------------------------- #
def bit_widths(max_width: int = 10) -> st.SearchStrategy[int]:
    """A syndrome-pattern width, as used by the pattern utilities."""
    return st.integers(min_value=1, max_value=max_width)


@st.composite
def bit_patterns(draw, max_width: int = 10) -> tuple[int, int]:
    """``(value, width)`` with ``value`` representable in ``width`` bits."""
    width = draw(bit_widths(max_width))
    value = draw(st.integers(min_value=0, max_value=(1 << width) - 1))
    return value, width


# --------------------------------------------------------------------------- #
# Detector chunks (repro.pipeline packing round trips)
# --------------------------------------------------------------------------- #
@st.composite
def detector_blocks(
    draw, max_shots: int = 5, max_rounds: int = 4, max_detectors: int = 20
) -> np.ndarray:
    """A ``(shots, rounds, num_detectors)`` boolean detector record.

    Deliberately includes the packing edge cases: zero shots, a single
    round, and detector counts that are not multiples of 8 (the last packed
    byte carries padding bits).
    """
    shots = draw(st.integers(min_value=0, max_value=max_shots))
    rounds = draw(st.integers(min_value=1, max_value=max_rounds))
    detectors = draw(st.integers(min_value=1, max_value=max_detectors))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).random((shots, rounds, detectors)) < 0.5


@st.composite
def detector_chunk_pairs(
    draw, max_shots: int = 6, max_detectors: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Two same-shape ``(shots, num_detectors)`` chunks (for XOR linearity)."""
    shots = draw(st.integers(min_value=0, max_value=max_shots))
    detectors = draw(st.integers(min_value=1, max_value=max_detectors))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    return (
        rng.random((shots, detectors)) < 0.5,
        rng.random((shots, detectors)) < 0.5,
    )


# --------------------------------------------------------------------------- #
# GF(2) linear algebra
# --------------------------------------------------------------------------- #
@st.composite
def gf2_matrices(draw, max_rows: int = 6, max_cols: int = 8) -> np.ndarray:
    """A dense 0/1 matrix, seeded so shrinking stays deterministic."""
    rows = draw(st.integers(min_value=1, max_value=max_rows))
    cols = draw(st.integers(min_value=1, max_value=max_cols))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).integers(0, 2, size=(rows, cols))


# --------------------------------------------------------------------------- #
# Scheduling and graph-model inputs
# --------------------------------------------------------------------------- #
def stabilizer_supports(
    max_qubit: int = 15, max_weight: int = 6, max_stabilizers: int = 12
) -> st.SearchStrategy[list[tuple[int, ...]]]:
    """Stabilizer support lists as fed to ``assign_conflict_free_slots``."""
    support = st.lists(
        st.integers(min_value=0, max_value=max_qubit),
        min_size=1,
        max_size=max_weight,
        unique=True,
    ).map(tuple)
    return st.lists(support, min_size=1, max_size=max_stabilizers)


def group_bases_lists(max_groups: int = 4) -> st.SearchStrategy[list[tuple[str, ...]]]:
    """Per-group measurement bases, as consumed by ``QubitContext`` groups."""
    bases = st.sampled_from([("Z",), ("X",), ("Z", "X")])
    return st.lists(bases, min_size=1, max_size=max_groups)


# --------------------------------------------------------------------------- #
# Decode-service wire protocol (repro.serve.protocol)
# --------------------------------------------------------------------------- #
def wire_frames(max_payload: int = 256) -> st.SearchStrategy[tuple[FrameType, bytes]]:
    """An arbitrary ``(frame_type, payload)`` pair for framing round trips.

    Payload *content* is opaque at the framing layer, so any byte string is
    valid here — the typed codecs below cover structured payloads.
    """
    return st.tuples(
        st.sampled_from(list(FrameType)),
        st.binary(min_size=0, max_size=max_payload),
    )


def _bool_block(draw, shape: tuple[int, ...]) -> np.ndarray:
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return np.random.default_rng(seed).random(shape) < 0.5


@st.composite
def chunk_payloads(
    draw, max_shots: int = 6, max_detectors: int = 40
) -> tuple[int, int, np.ndarray]:
    """``(stream, round_index, detectors)`` for the CHUNK codec.

    Zero shots and detector widths that are not byte multiples are the
    packing edge cases; both are drawn deliberately.
    """
    stream = draw(st.integers(min_value=0, max_value=2**32 - 1))
    round_index = draw(st.integers(min_value=0, max_value=2**32 - 1))
    shots = draw(st.integers(min_value=0, max_value=max_shots))
    detectors = draw(st.integers(min_value=1, max_value=max_detectors))
    return stream, round_index, _bool_block(draw, (shots, detectors))


@st.composite
def final_payloads(
    draw, max_shots: int = 6, max_detectors: int = 40
) -> tuple[int, np.ndarray, np.ndarray | None]:
    """``(stream, final_detectors, observable_flips_or_None)`` for FINAL."""
    stream = draw(st.integers(min_value=0, max_value=2**32 - 1))
    shots = draw(st.integers(min_value=0, max_value=max_shots))
    detectors = draw(st.integers(min_value=1, max_value=max_detectors))
    final = _bool_block(draw, (shots, detectors))
    flips = _bool_block(draw, (shots,)) if draw(st.booleans()) else None
    return stream, final, flips


def json_summaries() -> st.SearchStrategy[dict]:
    """Flat JSON-safe summary dicts as RESULT frames carry them."""
    scalars = st.one_of(
        st.integers(min_value=-(2**31), max_value=2**31),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        st.booleans(),
        st.text(max_size=12),
    )
    return st.dictionaries(st.text(min_size=1, max_size=16), scalars, max_size=6)


@st.composite
def result_payloads(
    draw, max_shots: int = 12
) -> tuple[int, np.ndarray, int | None, dict]:
    """``(stream, predictions, failures_or_None, summary)`` for RESULT."""
    stream = draw(st.integers(min_value=0, max_value=2**32 - 1))
    shots = draw(st.integers(min_value=0, max_value=max_shots))
    predictions = _bool_block(draw, (shots,))
    failures = draw(st.one_of(st.none(), st.integers(min_value=0, max_value=shots)))
    return stream, predictions, failures, draw(json_summaries())


# --------------------------------------------------------------------------- #
# Durable fabric journal (repro.fabric.jobstore)
# --------------------------------------------------------------------------- #
@st.composite
def shard_payloads(draw, max_dim: int = 4) -> dict:
    """A shard-result-shaped payload: scalars plus bit-exact ndarrays.

    Mimics what ``run_shard`` returns — nested dicts whose leaves are
    Python scalars or NumPy arrays of the dtypes the merge path carries
    (bool masks, int counters, float accumulators) — so the codec round
    trip is exercised over exactly the value shapes the checkpoint files
    must preserve bit-for-bit.
    """
    dtype = draw(st.sampled_from(["bool", "int64", "float64", "uint8"]))
    shape = tuple(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=max_dim), min_size=1, max_size=3
            )
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if dtype == "bool":
        array = rng.random(shape) < 0.5
    elif dtype == "float64":
        array = rng.standard_normal(shape)
    else:
        array = rng.integers(0, 200, size=shape).astype(dtype)
    scalars = st.one_of(
        st.integers(min_value=-(2**40), max_value=2**40),
        st.floats(allow_nan=False, allow_infinity=False),
        st.booleans(),
        st.none(),
        st.text(max_size=8),
    )
    payload = draw(
        st.dictionaries(st.text(min_size=1, max_size=10), scalars, max_size=4)
    )
    payload["array"] = array
    payload["nested"] = {"values": [array[..., : max(array.shape[-1] // 2, 0)], 7]}
    return payload


@st.composite
def task_records(draw) -> dict:
    """A well-formed journal record, as ``JobStore.write_task`` persists it."""
    state = draw(st.sampled_from(STATES))
    return {
        "schema": TASK_SCHEMA,
        "task": draw(
            st.text(
                alphabet="abcdef0123456789-", min_size=1, max_size=24
            ).filter(lambda s: not s.startswith("."))
        ),
        "state": state,
        "attempts": draw(st.integers(min_value=0, max_value=9)),
        "owner": draw(st.one_of(st.none(), st.text(min_size=1, max_size=12))),
        "error": "boom" if state == FAILED else None,
        "shots": draw(st.integers(min_value=1, max_value=5000)),
        "seed": draw(st.integers(min_value=0, max_value=2**31 - 1)),
        "updated": draw(
            st.floats(min_value=0, max_value=2e9, allow_nan=False)
        ),
    }


@st.composite
def torn_journal_bytes(draw) -> tuple[dict, bytes]:
    """``(record, damaged_bytes)`` — a journal write torn at any offset.

    The damage model matches the chaos harness: the serialized record is
    truncated at an arbitrary point (possibly zero bytes, never the full
    clean payload), exactly what a power cut leaves on a non-atomic
    filesystem.
    """
    import json

    record = draw(task_records())
    data = json.dumps(record, sort_keys=True).encode()
    cut = draw(st.integers(min_value=0, max_value=max(len(data) - 1, 0)))
    return record, data[:cut]


# --------------------------------------------------------------------------- #
# Scenario matrix (repro.fuzz)
# --------------------------------------------------------------------------- #
@st.composite
def scenario_cells(draw, modes=EXECUTION_MODES) -> ScenarioCell:
    """One cell of the live scenario matrix.

    Reads the registries at draw time (not at import), so components
    registered mid-test are drawable without reloading anything.
    """
    from repro.api.registry import all_registries

    registries = all_registries()
    return ScenarioCell(
        code=draw(st.sampled_from(registries["codes"].names())),
        decoder=draw(st.sampled_from(registries["decoders"].names())),
        policy=draw(st.sampled_from(registries["policies"].names())),
        noise=draw(st.sampled_from(registries["noise"].names())),
        mode=draw(st.sampled_from(list(modes))),
    )


def small_instances() -> st.SearchStrategy[SmallInstance]:
    """Experiment knobs in the same small ranges the CLI fuzzer samples."""
    return st.builds(
        SmallInstance,
        shots=st.integers(min_value=3, max_value=6),
        rounds=st.integers(min_value=3, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
        p=st.sampled_from([2e-3, 4e-3, 8e-3]),
        leakage_ratio=st.sampled_from([0.5, 1.0]),
    )


@st.composite
def fuzz_configs(draw, modes=EXECUTION_MODES):
    """``(cell, config)`` — a scenario cell with a concrete small config."""
    cell = draw(scenario_cells(modes=modes))
    config = cell_config(cell, draw(small_instances()))
    return cell, config
