"""End-to-end tests of the decode server (``repro.serve``).

The load-bearing property is bit-identity: predictions that come back over
the wire must equal what the in-process :class:`DecodeService` produces for
the same recorded streams, across the full code-family × decoder-method ×
coalescing matrix.  Around that sit the service-level behaviors: admission
control, per-tenant caps, the live SLO snapshot, the websocket gateway and
graceful drain.
"""

import asyncio
import base64
import os
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.codes import color_code, surface_code, toric_code
from repro.core import make_policy
from repro.noise import paper_noise
from repro.realtime import DecodeService
from repro.serve import (
    FrameType,
    ServeClient,
    ServerConfig,
    ServerThread,
    StreamRejected,
    decode_records,
    encode_frame,
)
from repro.serve.protocol import (
    FrameDecoder,
    decode_result,
    encode_chunk,
    encode_final,
    encode_json,
)
from repro.sim import LeakageSimulator, SimulatorOptions

DISTANCE = 3
SHOTS = 6
ROUNDS = 7
WINDOW = 3
NOISE = {"p": 3e-3, "leakage_ratio": 1.0}
FAMILIES = {"surface": surface_code, "color": color_code, "toric": toric_code}

_RECORD_CACHE: dict[str, list] = {}


def _records(family: str, count: int = 3) -> list:
    """Recorded ``(history, final, flips)`` streams, cached per family."""
    if family not in _RECORD_CACHE:
        records = []
        for index in range(count):
            simulator = LeakageSimulator(
                code=FAMILIES[family](DISTANCE),
                noise=paper_noise(**NOISE),
                policy=make_policy("gladiator+m"),
                options=SimulatorOptions(record_detectors=True),
                seed=31 + 17 * index,
            )
            result = simulator.run(shots=SHOTS, rounds=ROUNDS)
            records.append(
                (
                    result.detector_history,
                    result.final_detectors,
                    result.observable_flips,
                )
            )
        _RECORD_CACHE[family] = records
    return _RECORD_CACHE[family]


def _inprocess(family: str, method: str, coalesce: bool) -> list[np.ndarray]:
    """Reference predictions from the in-process push-mode DecodeService."""
    records = _records(family)
    service = DecodeService(
        window_rounds=WINDOW,
        method=method,
        workers=2,
        fused=True,
        coalesce=coalesce,
    )
    try:
        service.start()
        noise = paper_noise(**NOISE)
        handles = [
            service.open_stream(
                code=FAMILIES[family](DISTANCE),
                noise=noise,
                shots=SHOTS,
                rounds=ROUNDS,
            )
            for _ in records
        ]
        for round_index in range(ROUNDS):
            for (history, _, _), handle in zip(records, handles):
                handle.feed_round(history[:, round_index, :])
        for (_, final, flips), handle in zip(records, handles):
            handle.finish(final, flips)
        for handle in handles:
            handle.result(timeout=120)
        return [handle.predictions for handle in handles]
    finally:
        service.close()


# --------------------------------------------------------------------- #
# Bit-identity across the scenario matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("coalesce", [True, False], ids=["coalesce", "solo"])
@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("family", sorted(FAMILIES))
def test_served_predictions_bit_identical(family, method, coalesce):
    records = _records(family)
    reference = _inprocess(family, method, coalesce)

    config = ServerConfig(
        port=0,
        shards=2,
        workers_per_shard=2,
        window_rounds=WINDOW,
        method=method,
        fused=True,
        coalesce=coalesce,
    )
    with ServerThread(config) as server:
        results = decode_records(
            "127.0.0.1",
            server.port,
            records,
            code={"family": family, "distance": DISTANCE},
            noise=NOISE,
            tenant="matrix",
        )

    assert len(results) == len(records)
    for result, expected, (_, _, flips) in zip(results, reference, records):
        assert np.array_equal(result.predictions, expected)
        assert result.failures == int((expected ^ flips).sum())
        assert result.summary["windows"] > 0


# --------------------------------------------------------------------- #
# Admission control and tenant caps
# --------------------------------------------------------------------- #
def test_admission_cap_rejects_and_counts():
    config = ServerConfig(port=0, shards=1, workers_per_shard=1, max_streams=1)
    with ServerThread(config) as server:

        async def scenario():
            async with ServeClient() as client:
                await client.connect("127.0.0.1", server.port, tenant="cap")
                first = await client.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                )
                with pytest.raises(StreamRejected, match="capacity"):
                    await client.open_stream(
                        code={"family": "surface", "distance": DISTANCE},
                        noise=NOISE,
                        shots=4,
                        rounds=6,
                    )
                await first.close()

        asyncio.run(scenario())
        assert server.status()["admission_rejected"] == 1


def test_per_tenant_cap_is_independent_of_server_cap():
    config = ServerConfig(
        port=0, shards=1, workers_per_shard=1, max_streams=8, max_streams_per_tenant=1
    )
    with ServerThread(config) as server:

        async def scenario():
            async with ServeClient() as hog, ServeClient() as other:
                await hog.connect("127.0.0.1", server.port, tenant="hog")
                await other.connect("127.0.0.1", server.port, tenant="other")
                held = await hog.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                )
                with pytest.raises(StreamRejected, match="tenant at capacity"):
                    await hog.open_stream(
                        code={"family": "surface", "distance": DISTANCE},
                        noise=NOISE,
                        shots=4,
                        rounds=6,
                    )
                # A different tenant is still admitted.
                ok = await other.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                )
                await held.close()
                await ok.close()

        asyncio.run(scenario())


# --------------------------------------------------------------------- #
# Client retry-with-backoff
# --------------------------------------------------------------------- #
def test_open_stream_retries_past_transient_reject():
    """An OPEN bounced by admission control succeeds on retry once capacity
    frees, without the caller seeing the REJECT."""
    config = ServerConfig(port=0, shards=1, workers_per_shard=1, max_streams=1)
    with ServerThread(config) as server:

        async def scenario():
            async with ServeClient() as client:
                await client.connect("127.0.0.1", server.port, tenant="retry")
                first = await client.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                )

                async def release_soon():
                    await asyncio.sleep(0.15)
                    await first.close()

                releaser = asyncio.ensure_future(release_soon())
                second = await client.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                    accept_retries=10,
                    retry_backoff=0.05,
                )
                await releaser
                assert client.reject_retries >= 1
                # Each attempt consumed a fresh stream id.
                assert second.stream_id > first.stream_id + 1
                await second.close()

        asyncio.run(scenario())
        assert server.status()["admission_rejected"] >= 1


def test_open_stream_retry_budget_is_bounded():
    """With capacity never freeing, the retry loop gives up after its budget
    and surfaces the original StreamRejected."""
    config = ServerConfig(port=0, shards=1, workers_per_shard=1, max_streams=1)
    with ServerThread(config) as server:

        async def scenario():
            async with ServeClient() as client:
                await client.connect("127.0.0.1", server.port, tenant="bounded")
                held = await client.open_stream(
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    shots=4,
                    rounds=6,
                )
                with pytest.raises(StreamRejected, match="capacity"):
                    await client.open_stream(
                        code={"family": "surface", "distance": DISTANCE},
                        noise=NOISE,
                        shots=4,
                        rounds=6,
                        accept_retries=2,
                        retry_backoff=0.01,
                    )
                assert client.reject_retries == 2
                await held.close()

        asyncio.run(scenario())
        assert server.status()["admission_rejected"] == 3


def test_connect_retry_bounded_when_nothing_listens():
    """Transient socket errors are retried with backoff, then re-raised."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]

    async def scenario():
        client = ServeClient()
        with pytest.raises(OSError):
            await client.connect("127.0.0.1", dead_port, retries=2, backoff=0.01)
        assert client.connect_retries == 2

    asyncio.run(scenario())


def test_connect_retries_until_server_comes_up():
    """A client started before its server wins the race via connect retries."""
    with socket.socket() as probe:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]

    server_box: dict = {}
    ready = threading.Event()

    def late_start():
        ready.wait()
        # Leave a window in which the client's first attempt must fail, so
        # the success below provably came from a retry.
        time.sleep(0.2)
        server_box["server"] = ServerThread(
            ServerConfig(port=port, shards=1, workers_per_shard=1)
        ).start()

    starter = threading.Thread(target=late_start, daemon=True)
    starter.start()
    try:

        async def scenario():
            async with ServeClient() as client:
                ready.set()
                welcome = await client.connect(
                    "127.0.0.1", port, tenant="late", retries=40, backoff=0.05
                )
                assert welcome["protocol"] >= 1
                assert client.connect_retries >= 1

        asyncio.run(scenario())
    finally:
        starter.join(timeout=30)
        if "server" in server_box:
            server_box["server"].stop()


# --------------------------------------------------------------------- #
# SLO accounting
# --------------------------------------------------------------------- #
def test_slo_snapshot_reflects_served_traffic():
    config = ServerConfig(
        port=0, shards=1, workers_per_shard=2, window_rounds=WINDOW, coalesce=True
    )
    with ServerThread(config) as server:
        records = _records("surface")
        decode_records(
            "127.0.0.1",
            server.port,
            records,
            code={"family": "surface", "distance": DISTANCE},
            noise=NOISE,
            tenant="slo",
        )
        status = server.status()

    assert status["streams_done"] == len(records)
    # Windowed commits report here; the tail commit lands inside finish().
    assert 0 < status["rounds"] <= len(records) * ROUNDS
    assert status["windows"] > 0
    assert status["round_latency_p50_ns"] > 0
    assert status["round_latency_p99_ns"] >= status["round_latency_p50_ns"]
    assert status["round_latency_p999_ns"] >= status["round_latency_p99_ns"]
    assert status["slo_p99"] == pytest.approx(
        status["round_latency_p99_ns"] / status["hardware_round_ns"]
    )
    # All three streams run concurrently, so some windows must coalesce.
    assert status["coalesce_ratio"] > 1.0
    assert status["admission_rejected"] == 0
    assert status["active_streams"] == 0


# --------------------------------------------------------------------- #
# Websocket gateway
# --------------------------------------------------------------------- #
def _ws_connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    sock.settimeout(30)
    key = base64.b64encode(os.urandom(16)).decode("ascii")
    request = (
        f"GET /decode HTTP/1.1\r\nHost: 127.0.0.1:{port}\r\n"
        "Upgrade: websocket\r\nConnection: Upgrade\r\n"
        f"Sec-WebSocket-Key: {key}\r\nSec-WebSocket-Version: 13\r\n\r\n"
    )
    sock.sendall(request.encode("ascii"))
    response = b""
    while b"\r\n\r\n" not in response:
        response += sock.recv(4096)
    assert b" 101 " in response.split(b"\r\n", 1)[0]
    return sock


def _ws_send(sock: socket.socket, frame_type: FrameType, payload: bytes) -> None:
    body = bytes([frame_type]) + payload
    mask = os.urandom(4)
    head = b"\x82"  # FIN + binary opcode
    if len(body) < 126:
        head += bytes([0x80 | len(body)])
    else:
        head += bytes([0x80 | 126]) + struct.pack(">H", len(body))
    masked = bytes(b ^ mask[i % 4] for i, b in enumerate(body))
    sock.sendall(head + mask + masked)


def _ws_recv(sock: socket.socket) -> tuple[FrameType, bytes]:
    def read_exact(n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            chunk = sock.recv(n - len(buf))
            if not chunk:
                raise ConnectionError("websocket closed")
            buf += chunk
        return buf

    first, second = read_exact(2)
    assert first & 0x0F == 0x2, "expected a binary websocket frame"
    length = second & 0x7F
    if length == 126:
        (length,) = struct.unpack(">H", read_exact(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", read_exact(8))
    body = read_exact(length)
    return FrameType(body[0]), body[1:]


def test_websocket_round_trip_matches_tcp():
    config = ServerConfig(
        port=0, shards=1, workers_per_shard=2, window_rounds=WINDOW, coalesce=False
    )
    records = _records("surface")[:1]
    history, final, flips = records[0]
    reference = _inprocess("surface", "matching", False)[0]

    with ServerThread(config, websocket=True) as server:
        with _ws_connect(server.ws_port) as sock:
            _ws_send(
                sock,
                FrameType.HELLO,
                encode_json({"tenant": "ws", "protocol": 1}),
            )
            frame_type, _ = _ws_recv(sock)
            assert frame_type == FrameType.WELCOME
            _ws_send(
                sock,
                FrameType.OPEN,
                encode_json(
                    {
                        "stream": 0,
                        "shots": SHOTS,
                        "rounds": ROUNDS,
                        "code": {"family": "surface", "distance": DISTANCE},
                        "noise": NOISE,
                    }
                ),
            )
            frame_type, _ = _ws_recv(sock)
            assert frame_type == FrameType.ACCEPT
            for round_index in range(ROUNDS):
                _ws_send(
                    sock,
                    FrameType.CHUNK,
                    encode_chunk(0, round_index, history[:, round_index, :]),
                )
            _ws_send(sock, FrameType.FINAL, encode_final(0, final, flips))
            frame_type, payload = _ws_recv(sock)
            assert frame_type == FrameType.RESULT
            stream_id, predictions, failures, summary = decode_result(payload)

    assert stream_id == 0
    assert np.array_equal(predictions, reference)
    assert failures == int((reference ^ flips).sum())
    assert summary["rounds_committed"] == ROUNDS


# --------------------------------------------------------------------- #
# Graceful drain
# --------------------------------------------------------------------- #
def test_shutdown_broadcasts_drain_to_connected_clients():
    config = ServerConfig(port=0, shards=1, workers_per_shard=1)
    server = ServerThread(config).start()
    try:
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=30)
        sock.settimeout(30)
        sock.sendall(
            encode_frame(
                FrameType.HELLO, encode_json({"tenant": "drainee", "protocol": 1})
            )
        )
        decoder = FrameDecoder()
        seen: list[FrameType] = []

        stopper = threading.Thread(target=server.stop)
        while FrameType.DRAIN not in seen:
            data = sock.recv(4096)
            if not data:
                break
            for frame_type, _ in decoder.feed(data):
                seen.append(frame_type)
                if frame_type == FrameType.WELCOME and not stopper.is_alive():
                    stopper.start()
        stopper.join(timeout=60)
        sock.close()
        assert seen[0] == FrameType.WELCOME
        assert FrameType.DRAIN in seen
    finally:
        server.stop()
