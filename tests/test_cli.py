"""Tests of the unified `python -m repro` CLI and the legacy CLI shims."""

import json
import warnings

import pytest

from repro.__main__ import main
from repro.api import ExperimentConfig
from repro.api._deprecation import reset as reset_deprecations

SMALL_EXECUTION = {"shots": 10, "rounds": 4, "seed": 3}


@pytest.fixture()
def config_file(tmp_path):
    config = ExperimentConfig.from_dict(
        {
            "name": "cli-test",
            "code": {"name": "surface", "distance": 3},
            "noise": {"p": 2e-3, "leakage_ratio": 1.0},
            "execution": SMALL_EXECUTION,
        }
    )
    return str(config.save(tmp_path / "experiment.json"))


# --------------------------------------------------------------------- #
# list
# --------------------------------------------------------------------- #
def test_list_prints_every_registry_section(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for fragment in ("code families", "decoder methods", "policies",
                     "noise presets", "sweep presets", "surface",
                     "union_find", "gladiator+m", "smoke"):
        assert fragment in out


def test_list_json_is_machine_readable(capsys):
    assert main(["list", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"codes", "decoders", "policies", "noise", "sweeps"}
    assert "surface" in payload["codes"]
    assert payload["decoders"]["matching"]["aliases"] == ["mwpm"]


# --------------------------------------------------------------------- #
# run
# --------------------------------------------------------------------- #
def test_run_from_config_file_with_overrides(capsys, config_file, tmp_path):
    out_path = tmp_path / "row.json"
    code = main(
        [
            "run",
            "--config", config_file,
            "--set", "decoder.name=union_find",
            "--set", "execution.shots=8",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "cli-test" in out
    assert out_path.exists()
    (record,) = json.loads(out_path.read_text())
    assert record["parameters"]["decoder"]["name"] == "union_find"
    assert record["metrics"]["shots"] == 8


def test_run_rejects_unknown_component_with_suggestion(capsys, config_file):
    assert main(["run", "--config", config_file, "--set", "decoder.name=union_fnd"]) == 2
    err = capsys.readouterr().err
    assert "did you mean 'union_find'" in err


def test_run_rejects_unknown_override_path(capsys, config_file):
    assert main(["run", "--config", config_file, "--set", "decoder.nmae=matching"]) == 2
    assert "did you mean" in capsys.readouterr().err


def test_run_windowed_realtime_path_from_same_config(capsys, config_file):
    assert main(
        ["run", "--config", config_file, "--set", "execution.window_rounds=4"]
    ) == 0


# --------------------------------------------------------------------- #
# sweep
# --------------------------------------------------------------------- #
def test_sweep_named_preset(capsys, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "smoke")
    out_path = tmp_path / "sweep.json"
    assert main(["sweep", "smoke", "--no-cache", "--out", str(out_path)]) == 0
    assert out_path.exists()
    assert "rows" in capsys.readouterr().out


def test_sweep_config_grid_with_axes(capsys, config_file, tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    out_path = tmp_path / "grid.json"
    code = main(
        [
            "sweep",
            "--config", config_file,
            "--axis", "code.distance=3,5",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    records = json.loads(out_path.read_text())
    assert len(records) == 2
    assert [r["metrics"]["distance"] for r in records] == [3, 5]


def test_sweep_rejects_preset_plus_config(capsys, config_file):
    assert main(["sweep", "smoke", "--config", config_file]) == 2


def test_sweep_config_grid_caches_by_default_and_honours_no_cache(
    capsys, config_file, tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    argv = ["sweep", "--config", config_file, "--out", str(tmp_path / "o.json")]
    assert main(argv) == 0
    assert "1 computed, 0 cached" in capsys.readouterr().out
    assert main(argv) == 0  # re-run hits the on-disk cache
    assert "0 computed, 1 cached" in capsys.readouterr().out
    assert main(argv + ["--no-cache"]) == 0  # --no-cache forces recompute
    assert "1 computed, 0 cached" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# realtime
# --------------------------------------------------------------------- #
def test_realtime_streams_from_config(capsys, config_file, tmp_path):
    out_path = tmp_path / "streams.json"
    code = main(
        [
            "realtime",
            "--config", config_file,
            "--set", "execution.window_rounds=4",
            "--set", "execution.shots=4",
            "--streams", "2",
            "--workers", "2",
            "--out", str(out_path),
        ]
    )
    assert code == 0
    assert len(json.loads(out_path.read_text())) == 2


def test_realtime_requires_window(capsys, config_file):
    assert main(["realtime", "--config", config_file]) == 2
    assert "window_rounds" in capsys.readouterr().err


def test_realtime_rejects_non_positive_streams(capsys, config_file):
    assert main(["realtime", "--config", config_file, "--streams", "0"]) == 2
    assert "positive" in capsys.readouterr().err


def test_no_subcommand_prints_help(capsys):
    assert main([]) == 2
    assert "list" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# Deprecation shims: legacy CLIs keep working, warn exactly once
# --------------------------------------------------------------------- #
def test_legacy_sweeps_cli_warns_exactly_once(tmp_path, monkeypatch):
    from repro.sweeps.__main__ import main as sweeps_main

    monkeypatch.setenv("REPRO_SCALE", "smoke")
    reset_deprecations()
    argv = ["smoke", "--no-cache", "--out", str(tmp_path / "s1.json")]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert sweeps_main(argv) == 0
        assert sweeps_main(["smoke", "--no-cache", "--out", str(tmp_path / "s2.json")]) == 0
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "python -m repro sweep" in str(deprecations[0].message)


def test_legacy_realtime_cli_warns_exactly_once(tmp_path):
    from repro.realtime.__main__ import main as realtime_main

    reset_deprecations()
    argv = [
        "--streams", "1", "--shots", "3", "--rounds", "6", "--window", "4",
        "--workers", "1", "--out", str(tmp_path / "r.json"),
    ]
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        assert realtime_main(argv) == 0
        assert realtime_main(argv) == 0
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "python -m repro realtime" in str(deprecations[0].message)
