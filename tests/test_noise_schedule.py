"""Time-structured noise presets: schedules, zero-ness, and RNG invariance.

The contract under test: a scheduled preset is a deterministic function of
the round index, applies strictly positive multiplicative factors (so it
can never create probability mass where the stationary base has none), and
runs bit-identically through the serial and prefetch draw pipelines.
"""

import numpy as np
import pytest

from repro.noise import (
    BurstNoiseParams,
    DriftingNoiseParams,
    FloodNoiseParams,
    NoiseParams,
    burst_noise,
    drifting_noise,
    flood_noise,
    ideal_noise,
    paper_noise,
)


# --------------------------------------------------------------------------- #
# The stationary base: trivially time-structured
# --------------------------------------------------------------------------- #
def test_plain_params_are_stationary():
    noise = paper_noise()
    assert not noise.is_time_structured
    assert noise.params_for_round(0) is noise
    assert noise.params_for_round(10**6) is noise


def test_gate_error_factor_scales_and_caps():
    noise = paper_noise(p=1e-3)
    assert noise.gate_error == 1e-3
    scaled = noise.with_(gate_error_factor=8.0)
    assert scaled.gate_error == pytest.approx(8e-3)
    assert noise.with_(gate_error_factor=10**6).gate_error == 0.5
    with pytest.raises(ValueError):
        noise.with_(gate_error_factor=-1.0)


# --------------------------------------------------------------------------- #
# Schedule shapes
# --------------------------------------------------------------------------- #
def test_burst_raises_only_the_gate_error():
    noise = burst_noise(p=1e-3, burst_period=5, burst_rounds=2, burst_gate_factor=8.0)
    assert noise.is_time_structured
    quiet = noise.params_for_round(4)
    loud = noise.params_for_round(5)
    assert not quiet.is_time_structured and not loud.is_time_structured
    assert loud.gate_error == pytest.approx(8 * quiet.gate_error)
    assert loud.p == quiet.p
    assert loud.leakage_ratio == quiet.leakage_ratio
    # The burst window sits at the start of each period.
    loud_rounds = [r for r in range(10) if noise.params_for_round(r).gate_error > quiet.gate_error]
    assert loud_rounds == [0, 1, 5, 6]


def test_flood_raises_only_the_leakage_rate():
    noise = flood_noise(p=1e-3, leakage_ratio=0.1, flood_period=4, flood_rounds=1, flood_leak_factor=25.0)
    quiet = noise.params_for_round(1)
    flood = noise.params_for_round(4)
    assert flood.leakage_ratio == pytest.approx(25 * quiet.leakage_ratio)
    assert flood.p == quiet.p
    assert flood.gate_error == quiet.gate_error


def test_flood_caps_the_leakage_probability():
    noise = flood_noise(p=1e-2, leakage_ratio=1.0, flood_leak_factor=10**6)
    flood = noise.params_for_round(0)
    assert 0.0 <= flood.leakage_ratio * flood.p <= 1.0


def test_drift_is_piecewise_constant_and_deterministic():
    noise = drifting_noise(p=1e-3, drift_epoch_rounds=3, drift_factor=2.0)
    epoch0 = [noise.params_for_round(r) for r in range(3)]
    epoch1 = [noise.params_for_round(r) for r in range(3, 6)]
    assert len({params.p for params in epoch0}) == 1
    assert len({params.p for params in epoch1}) == 1
    # Different epochs drift differently (with overwhelming probability for
    # these seeds), and the same round always yields the same parameters.
    assert epoch0[0].p != epoch1[0].p or epoch0[0].leakage_ratio != epoch1[0].leakage_ratio
    again = drifting_noise(p=1e-3, drift_epoch_rounds=3, drift_factor=2.0)
    assert again.params_for_round(4) == noise.params_for_round(4)


def test_drift_seed_changes_the_schedule():
    base = DriftingNoiseParams(p=1e-3, drift_seed=0)
    other = DriftingNoiseParams(p=1e-3, drift_seed=1)
    assert base.params_for_round(0) != other.params_for_round(0)


# --------------------------------------------------------------------------- #
# Zero-ness: schedules must never create probability out of nothing
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "cls", [DriftingNoiseParams, BurstNoiseParams, FloodNoiseParams]
)
def test_schedules_preserve_zero_probabilities(cls):
    noiseless = cls(p=0.0, leakage_ratio=0.0)
    for round_index in range(30):
        params = noiseless.params_for_round(round_index)
        assert params.p == 0.0
        assert params.leakage_ratio == 0.0
        assert params.gate_error == 0.0


def test_flat_strips_the_schedule():
    noise = BurstNoiseParams(p=1e-3, burst_period=3)
    flat = noise.flat()
    assert type(flat) is NoiseParams
    assert not flat.is_time_structured
    assert flat.p == noise.p


def test_schedule_validation():
    with pytest.raises(ValueError):
        BurstNoiseParams(burst_period=0)
    with pytest.raises(ValueError):
        BurstNoiseParams(burst_period=3, burst_rounds=4)
    with pytest.raises(ValueError):
        FloodNoiseParams(flood_leak_factor=0.0)
    with pytest.raises(ValueError):
        DriftingNoiseParams(drift_factor=0.5)


# --------------------------------------------------------------------------- #
# End-to-end: scheduled presets through the simulator
# --------------------------------------------------------------------------- #
def _run(noise, prefetch):
    from repro.codes import surface_code
    from repro.core import make_policy
    from repro.sim import LeakageSimulator, SimulatorOptions

    simulator = LeakageSimulator(
        code=surface_code(3),
        noise=noise,
        policy=make_policy("eraser"),
        options=SimulatorOptions(record_detectors=True, rng_prefetch=prefetch),
        seed=7,
    )
    return simulator.run(shots=12, rounds=9)


@pytest.mark.parametrize(
    "preset",
    [
        lambda: drifting_noise(p=4e-3, drift_epoch_rounds=3),
        lambda: burst_noise(p=4e-3, burst_period=3, burst_rounds=1),
        lambda: flood_noise(p=4e-3, flood_period=3, flood_rounds=1),
    ],
    ids=["drift", "bursts", "floods"],
)
def test_scheduled_runs_are_prefetch_invariant(preset):
    serial = _run(preset(), "off")
    threaded = _run(preset(), "on")
    assert np.array_equal(serial.detector_history, threaded.detector_history)
    assert np.array_equal(serial.final_detectors, threaded.final_detectors)
    assert np.array_equal(serial.observable_flips, threaded.observable_flips)


def test_floods_inject_more_leakage_than_the_stationary_base():
    stationary = _run(paper_noise(p=4e-3, leakage_ratio=1.0), "off")
    flooded = _run(
        flood_noise(p=4e-3, leakage_ratio=1.0, flood_period=3, flood_rounds=1, flood_leak_factor=25.0),
        "off",
    )
    assert flooded.total_leakage_events > stationary.total_leakage_events


def test_ideal_noise_stays_noiseless():
    run = _run(ideal_noise(), "off")
    assert not run.detector_history.any()
    assert not run.observable_flips.any()
