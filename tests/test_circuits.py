"""Tests of round schedules, LRC gadget models and the cycle-time model."""

import pytest

from repro.circuits import (
    LRC_GADGETS,
    CycleTimeModel,
    RoundCircuit,
    RoundSchedule,
    default_lrc,
)
from repro.codes import bpc_code, color_code, hypergraph_product_code, surface_code
from repro.codes.scheduling import assign_conflict_free_slots
from repro.noise import paper_noise


@pytest.mark.parametrize(
    "code_factory",
    [lambda: surface_code(5), lambda: color_code(5), hypergraph_product_code, bpc_code],
)
def test_schedules_are_conflict_free(code_factory):
    schedule = RoundSchedule(code_factory())
    schedule.validate()


def test_surface_schedule_uses_four_layers(surface_d5):
    schedule = RoundSchedule(surface_d5)
    assert schedule.num_slots == 4


def test_every_stabilizer_edge_is_scheduled(surface_d5):
    schedule = RoundSchedule(surface_d5)
    total_weight = sum(s.weight for s in surface_d5.stabilizers)
    assert schedule.num_entangling_gates == total_weight


def test_data_qubit_slots_query(surface_d5):
    schedule = RoundSchedule(surface_d5)
    entries = schedule.data_qubit_slots(12)  # a bulk qubit of the d=5 code
    assert len(entries) == 4
    assert len({slot for slot, _ in entries}) == 4


def test_assign_conflict_free_slots_basic():
    supports = [(0, 1, 2), (1, 2, 3), (0, 3)]
    slots = assign_conflict_free_slots(supports)
    # Per stabilizer: no slot reuse.
    for assignment in slots:
        assert len(set(assignment)) == len(assignment)
    # Per data qubit: no slot reuse.
    usage: dict[int, set[int]] = {}
    for support, assignment in zip(supports, slots):
        for qubit, slot in zip(support, assignment):
            assert slot not in usage.setdefault(qubit, set())
            usage[qubit].add(slot)


def test_round_circuit_operation_counts(surface_d5):
    circuit = RoundCircuit(surface_d5)
    resets = [op for op in circuit.operations if op.kind == "reset"]
    measures = [op for op in circuit.operations if op.kind == "measure"]
    cnots = [op for op in circuit.operations if op.kind == "cnot"]
    assert len(resets) == surface_d5.num_ancilla
    assert len(measures) == surface_d5.num_ancilla
    assert len(cnots) == sum(s.weight for s in surface_d5.stabilizers)
    assert circuit.depth == 6


def test_lrc_gadget_costs_scale_with_noise():
    noise = paper_noise()
    for gadget in LRC_GADGETS.values():
        assert gadget.gate_error(noise) > 0
        assert gadget.induced_leakage(noise) >= 0
        assert 0 < gadget.removal_prob <= 1
        assert gadget.latency_ns > 0
        assert gadget.describe()


def test_default_lrc_is_swap_based():
    assert default_lrc().name == "swap"
    assert default_lrc().needs_ancilla


def test_cycle_time_monotone_in_lrc_rate(surface_d7, noise):
    model = CycleTimeModel(surface_d7, noise)
    quiet = model.round_duration_ns(0.0)
    light = model.round_duration_ns(1.0)
    heavy = model.round_duration_ns(49.0)
    assert quiet < light < heavy
    assert model.relative_depth_overhead(0.0) == 0.0


def test_cycle_time_overhead_ratio_tracks_lrc_ratio(surface_d7, noise):
    # The paper observes a ~50x overhead gap between Always-LRC and GLADIATOR
    # at d=11 because the depth overhead is linear in the LRC rate.
    model = CycleTimeModel(surface_d7, noise)
    ratio = model.lrc_overhead_ns(49.0) / model.lrc_overhead_ns(1.0)
    assert ratio == pytest.approx(49.0)


def test_cycle_time_rejects_negative_rate(surface_d5, noise):
    with pytest.raises(ValueError):
        CycleTimeModel(surface_d5, noise).round_duration_ns(-1.0)
