"""Tests of syndrome-pattern utilities."""

import numpy as np
import pytest

from repro.core.patterns import (
    bits_to_int,
    count_eraser_patterns,
    eraser_flags_pattern,
    int_to_bits,
    pattern_to_string,
    popcount,
    string_to_int,
    tag_pattern,
    untag_pattern,
)


def test_bits_int_roundtrip():
    for value in range(16):
        assert bits_to_int(int_to_bits(value, 4)) == value


def test_pattern_string_roundtrip():
    assert pattern_to_string(string_to_int("0011"), 4) == "0011"
    assert pattern_to_string(string_to_int("1001"), 4) == "1001"


def test_string_parsing_rejects_non_binary():
    with pytest.raises(ValueError):
        string_to_int("01x1")


def test_popcount_scalar_and_array():
    assert popcount(0b1011) == 3
    values = np.array([0, 1, 3, 15])
    assert np.array_equal(popcount(values), np.array([0, 1, 2, 4]))


def test_eraser_flag_counts_match_paper():
    # Section 4.1: ERASER flags 11 of 16 4-bit patterns; Section 5.2: 4 of 8
    # 3-bit colour-code patterns.
    assert count_eraser_patterns(4) == 11
    assert count_eraser_patterns(3) == 4
    assert count_eraser_patterns(2) == 3


def test_eraser_flags_half_or_more():
    assert eraser_flags_pattern(string_to_int("0011"), 4)
    assert eraser_flags_pattern(string_to_int("1001"), 4)
    assert not eraser_flags_pattern(string_to_int("0001"), 4)
    assert not eraser_flags_pattern(0, 4)


def test_tagging_produces_five_bit_values():
    # 4-bit patterns prefix "0", 3-bit "10", 2-bit "110" (Section 4.4).
    assert tag_pattern(0b1010, 4) == 0b01010
    assert tag_pattern(0b101, 3) == 0b10000 | 0b101
    assert tag_pattern(0b11, 2) == 0b11000 | 0b11
    for width in (2, 3, 4):
        for value in range(1 << width):
            assert tag_pattern(value, width) < 32


def test_tagging_roundtrip():
    for width in (1, 2, 3, 4):
        for value in range(1 << width):
            recovered_value, recovered_width = untag_pattern(tag_pattern(value, width))
            assert (recovered_value, recovered_width) == (value, width)


def test_tagging_is_injective():
    seen = set()
    for width in (2, 3, 4):
        for value in range(1 << width):
            tagged = tag_pattern(value, width)
            assert tagged not in seen
            seen.add(tagged)


def test_tag_unknown_width_rejected():
    with pytest.raises(ValueError):
        tag_pattern(0, 7)


def test_int_to_bits_range_check():
    with pytest.raises(ValueError):
        int_to_bits(16, 4)
