"""The toric code family: periodic lattice structure and end-to-end decoding.

The toric code is the matrix's periodic-boundary stressor: its detector
graph has *no* boundary node edges, which is exactly the regime that
exposed the union-find growth stall and the matching DP dead end (see
``tests/test_fuzz.py`` for those regressions).
"""

import numpy as np
import pytest

from repro.api.registry import CODES
from repro.codes import surface_code, toric_code
from repro.core import make_policy
from repro.decoders import DetectorGraph, make_decoder
from repro.experiments import MemoryExperiment
from repro.noise import paper_noise


@pytest.mark.parametrize("distance", [2, 3, 4])
def test_toric_counts(distance):
    code = toric_code(distance)
    assert code.num_data == 2 * distance**2
    assert code.num_logical_qubits == 2
    z_stabs = [s for s in code.stabilizers if s.basis == "Z"]
    x_stabs = [s for s in code.stabilizers if s.basis == "X"]
    assert len(z_stabs) == distance**2
    assert len(x_stabs) == distance**2
    assert all(len(s.data_support) == 4 for s in code.stabilizers)


@pytest.mark.parametrize("distance", [2, 3, 4])
def test_toric_css_commutation(distance):
    code = toric_code(distance)
    assert not np.any((code.parity_check_x @ code.parity_check_z.T) % 2)


@pytest.mark.parametrize("distance", [2, 3])
def test_toric_every_data_qubit_touches_two_z_stabs(distance):
    code = toric_code(distance)
    touches = code.parity_check_z.sum(axis=0)
    assert np.all(touches == 2), "a periodic lattice has no boundary qubits"


def test_toric_detector_graph_has_no_boundary_edges():
    graph = DetectorGraph(code=toric_code(3), rounds=3, noise=paper_noise())
    assert not any(edge.kind == "boundary" for edge in graph.edges)
    # ... unlike the planar surface code, which anchors its matchings there.
    planar = DetectorGraph(code=surface_code(3), rounds=3, noise=paper_noise())
    assert any(edge.kind == "boundary" for edge in planar.edges)


def test_toric_logicals_commute_with_stabilizers():
    code = toric_code(3)
    assert not np.any((code.parity_check_x @ code.logical_z.T) % 2)
    assert not np.any((code.parity_check_z @ code.logical_x.T) % 2)
    # Weight-L representatives: one straight loop per direction.
    assert code.logical_z.sum(axis=-1).min() == 3
    assert code.logical_x.sum(axis=-1).min() == 3


def test_toric_is_registered_with_default_distance():
    entry = CODES.get("toric")
    assert entry.metadata.get("default_distance") == 4
    assert "toric" in CODES.names()


@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_toric_memory_experiment_decodes(method):
    result = MemoryExperiment(
        code=toric_code(2),
        noise=paper_noise(p=2e-3, leakage_ratio=1.0),
        policy=make_policy("eraser"),
        decoder_method=method,
        seed=5,
    ).run(shots=16, rounds=4)
    summary = result.summary()
    assert summary["shots"] == 16
    assert 0.0 <= summary["ler"] <= 1.0
    assert summary["ler_low"] <= summary["ler"] <= summary["ler_high"]


def test_toric_decoding_is_deterministic():
    graph = DetectorGraph(code=toric_code(2), rounds=3, noise=paper_noise())
    rng = np.random.default_rng(2)
    history = rng.random((8, 3, graph.num_z_stabs)) < 0.15
    final = rng.random((8, graph.num_z_stabs)) < 0.15
    for method in ("matching", "union_find"):
        first = make_decoder(graph, method).decode_batch(history, final)
        second = make_decoder(graph, method).decode_batch(history, final)
        assert np.array_equal(first, second)
