"""Bit-identity of the fused zero-copy pipeline against the two-step path.

The fused pipeline (``repro.pipeline``) streams detector chunks from the
simulator straight into bit-packed ring buffers and decodes windows out of
them per *unique* syndrome — no recorded ``RunResult`` history, no per-round
allocations.  Its contract is exact equality with the record-then-decode
two-step path: same predictions, same failure counts, same summary, bit for
bit.  These tests pin that contract across the scenario matrix (code family
× decoder backend × execution mode × compiled kernels on/off), mirror the
style of ``tests/test_sim_equivalence.py``, and cover the streaming
plumbing itself: ring-buffer ownership (no aliasing), generator early close
(workspace release) and the exhaustion guard.
"""

import numpy as np
import pytest

from repro.codes import color_code, surface_code, toric_code
from repro.core import make_policy
from repro.decoders import DetectorGraph, make_decoder
from repro.decoders import _ckernels as deckernels
from repro.experiments import MemoryExperiment
from repro.noise import paper_noise
from repro.pipeline import FusedPipeline, PackedRing, pack_chunk, unpack_chunk
from repro.realtime import DecodeService, ReplayStream, SimulatorStream, WindowedDecoder
from repro.sim import LeakageSimulator, SimulatorOptions
from repro.sweeps.units import WorkUnit, run_unit_serial, unit_key

HEAVY = paper_noise(p=2e-3, leakage_ratio=1.0)

CODES = {
    "surface": lambda: surface_code(3),
    "color": lambda: color_code(3),
    "toric": lambda: toric_code(3),
}


def _experiment(code, method, window_rounds, fused, **overrides):
    kwargs = dict(
        code=code,
        noise=HEAVY,
        policy=make_policy("eraser+m"),
        decoder_method=method,
        seed=13,
        window_rounds=window_rounds,
        commit_rounds=1 if window_rounds else None,
        decode_batch_size=20,
        fused=fused,
    )
    kwargs.update(overrides)
    return MemoryExperiment(**kwargs)


def _simulator(code, seed=7, **options):
    return LeakageSimulator(
        code=code,
        noise=HEAVY,
        policy=make_policy("eraser+m"),
        options=SimulatorOptions(**options),
        seed=seed,
    )


# --------------------------------------------------------------------- #
# The equivalence matrix: code × decoder × mode × kernels
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("ckernels", ["0", "1"])
@pytest.mark.parametrize("mode", ["offline", "windowed"])
@pytest.mark.parametrize("method", ["matching", "union_find"])
@pytest.mark.parametrize("family", sorted(CODES))
def test_fused_matches_two_step(monkeypatch, family, method, mode, ckernels):
    """Fused and two-step runs agree on the *entire* summary, perf keys
    included: the fused path drives the same decoder through the same unique
    syndromes in the same order, so even the cache/dedup diagnostics match."""
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", ckernels)
    code = CODES[family]()
    window = 3 if mode == "windowed" else None
    two_step = _experiment(code, method, window, fused=False).run(shots=40, rounds=5)
    fused = _experiment(code, method, window, fused=True).run(shots=40, rounds=5)
    assert fused.summary() == two_step.summary()


def test_fused_kernels_on_off_agree(monkeypatch):
    """The compiled decoder kernels never change a single prediction."""
    code = surface_code(3)
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", "0")
    plain = _experiment(code, "matching", 3, fused=True).run(shots=60, rounds=6)
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", "1")
    if not deckernels.available():
        pytest.skip("no C toolchain available")
    compiled = _experiment(code, "matching", 3, fused=True).run(shots=60, rounds=6)
    assert compiled.summary() == plain.summary()


def test_fused_sweep_unit_matches_and_shares_cache_key():
    """``execution.fused`` through the sweep engine: same summary row, and —
    because the flag is digest-exempt — the *same* unit cache key."""
    base = dict(
        family="surface",
        distance=3,
        noise=HEAVY,
        policy="eraser+m",
        shots=40,
        rounds=5,
        decoded=True,
        window_rounds=3,
        commit_rounds=1,
        seed=5,
    )
    two_step = WorkUnit(**base, fused=False)
    fused = WorkUnit(**base, fused=True)
    assert unit_key(fused) == unit_key(two_step)
    assert run_unit_serial(fused) == run_unit_serial(two_step)


@pytest.mark.parametrize("workers", [1, 3])
def test_fused_service_matches_two_step(workers):
    """The decode service with fused sessions reports identical failures."""

    def streams():
        return [
            SimulatorStream(
                code=surface_code(3),
                noise=HEAVY,
                policy=make_policy("gladiator+m"),
                shots=12,
                rounds=8,
                seed=21 + index,
            )
            for index in range(3)
        ]

    plain = DecodeService(window_rounds=4, workers=workers).run(streams())
    fused = DecodeService(window_rounds=4, workers=workers, fused=True).run(streams())
    assert [r.failures for r in fused] == [r.failures for r in plain]
    assert all(r.failures is not None for r in fused)


def test_windowed_decoder_fused_session_type():
    from repro.pipeline import FusedWindowSession
    from repro.realtime.window import WindowSession

    kwargs = dict(
        code=surface_code(3), noise=HEAVY, rounds=6, window_rounds=3
    )
    assert isinstance(WindowedDecoder(**kwargs).session(5), WindowSession)
    assert isinstance(
        WindowedDecoder(**kwargs, fused=True).session(5), FusedWindowSession
    )


# --------------------------------------------------------------------- #
# Ring-buffer ownership: no aliasing, bounded capacity
# --------------------------------------------------------------------- #
def test_packed_ring_round_trip_and_bounds():
    rng = np.random.default_rng(3)
    ring = PackedRing(capacity=3, shots=5, num_detectors=11)
    rounds = [rng.random((5, 11)) < 0.3 for _ in range(3)]
    for index, chunk in enumerate(rounds):
        ring.push(index, chunk)
    for index, chunk in enumerate(rounds):
        assert np.array_equal(ring.read_round(index), chunk)
    window = ring.window(0, 3)
    assert np.array_equal(window, np.stack(rounds, axis=1))
    with pytest.raises(ValueError):
        ring.push(4, rounds[0])  # out of order
    with pytest.raises(ValueError):
        ring.push(3, rounds[0])  # full: round 0 not released
    ring.release_until(1)
    ring.push(3, rounds[0])
    with pytest.raises(ValueError):
        ring.read_round(0)  # released
    with pytest.raises(ValueError):
        ring.read_round(4)  # not buffered yet


def test_packed_ring_does_not_alias_producer_buffer():
    """``push`` packs the bits out immediately: mutating (or reusing) the
    producer's staging buffer afterwards must not disturb buffered rounds."""
    staging = np.zeros((4, 9), dtype=bool)
    ring = PackedRing(capacity=4, shots=4, num_detectors=9)
    expected = []
    rng = np.random.default_rng(11)
    for round_index in range(4):
        staging[...] = rng.random((4, 9)) < 0.5  # in-place reuse, like _drive
        expected.append(staging.copy())
        ring.push(round_index, staging)
    for round_index in range(4):
        assert np.array_equal(ring.read_round(round_index), expected[round_index])


def test_packed_ring_xor_round_matches_boolean_xor():
    rng = np.random.default_rng(5)
    chunk = rng.random((6, 13)) < 0.4
    mask = rng.random((6, 13)) < 0.2
    ring = PackedRing(capacity=1, shots=6, num_detectors=13)
    ring.push(0, chunk)
    ring.xor_round(0, mask)
    assert np.array_equal(ring.read_round(0), chunk ^ mask)


def test_pack_unpack_validate_out_buffers():
    chunk = np.zeros((3, 10), dtype=bool)
    packed = pack_chunk(chunk)
    assert packed.shape == (3, 2)
    with pytest.raises(ValueError):
        pack_chunk(chunk, out=np.zeros((3, 3), dtype=np.uint8))
    with pytest.raises(ValueError):
        unpack_chunk(packed, 10, out=np.zeros((3, 9), dtype=bool))
    out = np.empty((3, 10), dtype=bool)
    assert unpack_chunk(packed, 10, out=out) is out


def test_fused_staging_buffer_is_reused_in_place():
    """``run_incremental(detector_out=...)`` yields the caller's buffer every
    round — the zero-copy contract the fused pipeline is built on."""
    code = surface_code(3)
    sim = _simulator(code)
    num_z = sum(1 for stab in code.stabilizers if stab.basis == "Z")
    staging = np.zeros((7, num_z), dtype=bool)
    generator = sim.run_incremental(7, 4, detector_out=staging)
    seen = 0
    while True:
        try:
            _, chunk = next(generator)
        except StopIteration:
            break
        assert chunk is staging
        seen += 1
    assert seen == 4


def test_detector_out_shape_is_validated():
    code = surface_code(3)
    sim = _simulator(code)
    with pytest.raises(ValueError):
        next(sim.run_incremental(5, 3, detector_out=np.zeros((5, 3), dtype=bool)))
    with pytest.raises(ValueError):
        next(sim.run_incremental(5, 3, detector_out=np.zeros((5, 8), dtype=np.uint8)))


# --------------------------------------------------------------------- #
# Generator lifecycle: early close releases the workspace, exhaustion guard
# --------------------------------------------------------------------- #
def _capture_workspace(monkeypatch, captured):
    original = LeakageSimulator._make_workspace

    def spy(self, shots):
        workspace = original(self, shots)
        captured.append(workspace)
        return workspace

    monkeypatch.setattr(LeakageSimulator, "_make_workspace", spy)


def test_early_close_releases_pinned_workspace(monkeypatch):
    """Closing a half-consumed ``run_incremental`` generator must free the
    pinned per-round buffers (the mid-stream ``close()`` leak regression)."""
    captured = []
    _capture_workspace(monkeypatch, captured)
    sim = _simulator(surface_code(3))
    generator = sim.run_incremental(6, 5)
    next(generator)
    assert captured and not captured[0].released
    generator.close()
    assert captured[0].released


def test_completed_run_releases_workspace(monkeypatch):
    captured = []
    _capture_workspace(monkeypatch, captured)
    sim = _simulator(surface_code(3))
    result = sim.run(shots=4, rounds=3)
    assert result.shots == 4
    assert captured and all(ws.released for ws in captured)


def test_fused_pipeline_closes_generator_on_decode_error(monkeypatch):
    """If the consumer dies mid-stream the pipeline still closes the
    generator, releasing the simulator workspace."""
    captured = []
    _capture_workspace(monkeypatch, captured)
    sim = _simulator(surface_code(3))
    pipeline = FusedPipeline(sim, shots=5, rounds=4)

    class Boom(Exception):
        pass

    class ExplodingRing:
        def push(self, round_index, detectors):
            raise Boom

    with pytest.raises(Boom):
        pipeline._drive(ExplodingRing())
    assert captured and captured[0].released


def test_fused_pipeline_exhaustion_guard(monkeypatch):
    """A generator that exhausts without returning a RunResult trips the
    guard instead of silently handing the decoder ``None``."""
    code = surface_code(3)
    sim = _simulator(code)
    pipeline = FusedPipeline(sim, shots=4, rounds=3)
    num_z = pipeline.num_z_stabs

    def hollow(shots, rounds, detector_out=None):
        for round_index in range(rounds):
            yield round_index, np.zeros((shots, num_z), dtype=bool)
        # falls off the end: StopIteration carries None, not a RunResult

    monkeypatch.setattr(sim, "run_incremental", hollow)
    with pytest.raises(RuntimeError, match="without producing a RunResult"):
        pipeline.run_offline(object())


# --------------------------------------------------------------------- #
# Windowed regressions: empty commit regions, artifact XOR
# --------------------------------------------------------------------- #
def _quiet_record_with_late_defects(code, rounds=6):
    """An all-zero detector record except one stabilizer flagged in the last
    two rounds: early windows see nothing (or only deferred corrections), so
    their commit regions are empty — the artifact-XOR edge case."""
    graph = DetectorGraph(code=code, rounds=rounds, noise=HEAVY, hyperedges="decompose")
    num_z = graph.num_z_stabs
    history = np.zeros((3, rounds, num_z), dtype=bool)
    history[0, rounds - 2, 0] = True
    history[0, rounds - 1, 0] = True
    history[1, rounds - 1, 1] = True  # terminates against the final readout
    final = np.zeros((3, num_z), dtype=bool)
    return history, final, graph


@pytest.mark.parametrize("fused", [False, True], ids=["two_step", "fused"])
def test_windowed_empty_commit_regions_match_offline(fused):
    """Windows that commit zero corrections (and deposit zero artifacts)
    leave the boundary round untouched; windowed == offline regardless."""
    code = surface_code(3)
    history, final, graph = _quiet_record_with_late_defects(code)
    offline = make_decoder(graph, "matching").decode_batch(history, final)
    windowed = WindowedDecoder(
        code=code,
        noise=HEAVY,
        rounds=history.shape[1],
        window_rounds=3,
        commit_rounds=1,
        fused=fused,
    )
    assert np.array_equal(windowed.decode_batch(history, final), offline)


@pytest.mark.parametrize("fused", [False, True], ids=["two_step", "fused"])
@pytest.mark.parametrize("commit", [1, 2])
def test_windowed_artifact_scenarios_match_offline_experiment(fused, commit):
    """A heavy-noise windowed decode (artifacts in most windows) stays equal
    to the offline decode of the same record across commit granularities."""
    code = surface_code(3)
    result = _simulator(code, seed=31, record_detectors=True).run(shots=30, rounds=7)
    graph = DetectorGraph(code=code, rounds=7, noise=HEAVY, hyperedges="decompose")
    offline = make_decoder(graph, "matching").decode_batch(
        result.detector_history, result.final_detectors
    )
    windowed = WindowedDecoder(
        code=code,
        noise=HEAVY,
        rounds=7,
        window_rounds=3,
        commit_rounds=commit,
        fused=fused,
    )
    stream = ReplayStream.from_run_result(result)
    assert np.array_equal(windowed.decode_stream(stream), offline)


# --------------------------------------------------------------------- #
# Compiled decoder kernels: direct checks of both fast paths
# --------------------------------------------------------------------- #
def test_hash_rows_c_matches_numpy_fallback(monkeypatch):
    packed = np.random.default_rng(9).integers(0, 256, size=(64, 7), dtype=np.uint8)
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", "0")
    fallback = deckernels.hash_rows(packed)
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", "1")
    if not deckernels.available():
        pytest.skip("no C toolchain available")
    compiled = deckernels.hash_rows(packed)
    assert np.array_equal(fallback, compiled)
    # Distinct rows hash apart on real data (FNV-1a, 64-bit).
    assert len(np.unique(fallback)) == len(np.unique(packed, axis=0))


def test_hash_collision_demotes_to_exact_dedup(monkeypatch):
    """If every row hashes identically the dedup must detect the collision
    and fall back to exact row comparison — predictions unchanged."""
    code = surface_code(3)
    result = _simulator(code, seed=17, record_detectors=True).run(shots=20, rounds=5)
    graph = DetectorGraph(code=code, rounds=5, noise=HEAVY, hyperedges="decompose")
    expected = make_decoder(graph, "matching").decode_batch(
        result.detector_history, result.final_detectors
    )
    monkeypatch.setattr(
        deckernels,
        "hash_rows",
        lambda packed: np.zeros(packed.shape[0], dtype=np.uint64),
    )
    collided = make_decoder(graph, "matching").decode_batch(
        result.detector_history, result.final_detectors
    )
    assert np.array_equal(collided, expected)


def test_dp_kernel_rejects_oversized_inputs():
    if not deckernels.available():
        pytest.skip("no C toolchain available")
    costs = np.full((9, 9), 2.0)
    with pytest.raises(ValueError):
        deckernels.dp_match(np.full(9, 1.0), costs)


@pytest.mark.parametrize("family", sorted(CODES))
def test_dp_decode_entry_matches_interpreted_path(monkeypatch, family):
    """The one-call ``dp_decode`` kernel reproduces the interpreted entry
    construction bit for bit — identical edge sequences (same retrace
    order), identical logical parity — across random syndromes on all
    three code families, including the analytic 1/2-detector rules and
    the toric case where the boundary is unreachable."""
    monkeypatch.setenv("REPRO_DECODER_CKERNELS", "1")
    if not deckernels.available():
        pytest.skip("no C toolchain available")
    code = CODES[family]()
    graph = DetectorGraph(code=code, rounds=4, noise=HEAVY, hyperedges="decompose")
    num_z = graph.num_z_stabs
    rng = np.random.default_rng(23)
    checked = 0
    for _ in range(150):
        history = rng.random((4, num_z)) < rng.uniform(0.02, 0.2)
        final = rng.random(num_z) < 0.1
        kernel = make_decoder(graph, "matching")
        kernel_edges = kernel.decode_shot_edges(history, final)
        kernel_flip = kernel.decode_shot(history, final)
        monkeypatch.setenv("REPRO_DECODER_CKERNELS", "0")
        interpreted = make_decoder(graph, "matching")
        assert kernel_edges == interpreted.decode_shot_edges(history, final)
        assert kernel_flip == interpreted.decode_shot(history, final)
        monkeypatch.setenv("REPRO_DECODER_CKERNELS", "1")
        checked += 1
    assert checked == 150
