"""Shared fixtures for the test suite."""

import os

import pytest
from hypothesis import settings

# Importing tests.strategies registers the "ci" and "nightly" hypothesis
# profiles; load one before any test module is imported so per-test
# @settings decorators inherit the right defaults.
import strategies  # noqa: F401  (registers profiles on import)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

from repro.codes import bpc_code, color_code, hypergraph_product_code, surface_code
from repro.core import CalibrationData, GraphModelConfig
from repro.noise import paper_noise


@pytest.fixture(scope="session")
def surface_d3():
    """Distance-3 rotated surface code."""
    return surface_code(3)


@pytest.fixture(scope="session")
def surface_d5():
    """Distance-5 rotated surface code."""
    return surface_code(5)


@pytest.fixture(scope="session")
def surface_d7():
    """Distance-7 rotated surface code."""
    return surface_code(7)


@pytest.fixture(scope="session")
def color_d5():
    """Distance-5 triangular colour code."""
    return color_code(5)


@pytest.fixture(scope="session")
def hgp():
    """Default hypergraph-product code instance."""
    return hypergraph_product_code()


@pytest.fixture(scope="session")
def bpc():
    """Default two-block cyclic (BPC-style) code instance."""
    return bpc_code()


@pytest.fixture(scope="session")
def noise():
    """The paper's default noise profile (p=1e-3, lr=0.1)."""
    return paper_noise()


@pytest.fixture(scope="session")
def calibration(noise):
    """Calibration data matching the default noise profile."""
    return CalibrationData.from_noise(noise)


@pytest.fixture(scope="session")
def graph_config():
    """Default graph-model configuration."""
    return GraphModelConfig()
