"""Tests of the realtime subsystem: streams, sliding windows, decode service."""

import queue
import threading
import time

import numpy as np
import pytest

from repro.codes import color_code, surface_code
from repro.core import make_policy
from repro.decoders import DetectorGraph, SyndromeCache, UnionFindDecoder, make_decoder
from repro.experiments import MemoryExperiment
from repro.experiments.memory import PERF_SUMMARY_KEYS
from repro.noise import ideal_noise, paper_noise
from repro.realtime import (
    DecodeService,
    LatencyRecorder,
    ReplayStream,
    ServiceClosed,
    SimulatorStream,
    WindowedDecoder,
)
from repro.sim import LeakageSimulator, SimulatorOptions

HEAVY = paper_noise(p=2e-3, leakage_ratio=1.0)


def _recorded_run(code, noise, shots, rounds, seed, policy="eraser+m"):
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy(policy),
        options=SimulatorOptions(record_detectors=True),
        seed=seed,
    )
    return simulator.run(shots=shots, rounds=rounds)


# --------------------------------------------------------------------- #
# Streams
# --------------------------------------------------------------------- #
def test_replay_stream_chunks_round_trip(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=12, rounds=5, seed=1)
    stream = ReplayStream.from_run_result(result)
    assert (stream.shots, stream.rounds) == (12, 5)
    chunks = list(stream.chunks())
    assert [c.round_index for c in chunks] == list(range(5))
    for index, chunk in enumerate(chunks):
        assert np.array_equal(chunk.detectors, result.detector_history[:, index, :])
    final = stream.final()
    assert np.array_equal(final.final_detectors, result.final_detectors)
    assert np.array_equal(final.observable_flips, result.observable_flips)


def test_replay_stream_rejects_bad_shapes():
    with pytest.raises(ValueError):
        ReplayStream(np.zeros((3, 4), dtype=bool), np.zeros((3, 4), dtype=bool))
    with pytest.raises(ValueError):
        ReplayStream(np.zeros((3, 4, 2), dtype=bool), np.zeros((3, 5), dtype=bool))


def test_simulator_stream_matches_offline_run(surface_d3):
    """Streaming the simulator is bit-identical to running it offline."""
    offline = _recorded_run(surface_d3, HEAVY, shots=15, rounds=6, seed=9)
    stream = SimulatorStream(
        code=surface_d3,
        noise=HEAVY,
        policy=make_policy("eraser+m"),
        shots=15,
        rounds=6,
        seed=9,
    )
    for chunk in stream.chunks():
        assert np.array_equal(
            chunk.detectors, offline.detector_history[:, chunk.round_index, :]
        )
    final = stream.final()
    assert np.array_equal(final.final_detectors, offline.final_detectors)
    assert np.array_equal(final.observable_flips, offline.observable_flips)
    assert stream.result.summary() == offline.summary()


def test_simulator_stream_final_requires_exhaustion(surface_d3):
    stream = SimulatorStream(
        code=surface_d3, noise=HEAVY, policy=make_policy("no-lrc"), shots=5, rounds=3
    )
    with pytest.raises(RuntimeError):
        stream.final()


# --------------------------------------------------------------------- #
# Windowed decoding: proof-of-equivalence path
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("make_code", [lambda: surface_code(3), lambda: color_code(3)], ids=["surface", "color"])
@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_full_window_matches_offline_memory_experiment(make_code, method):
    """window >= rounds must reproduce offline failure counts bit-for-bit."""
    code = make_code()
    kwargs = dict(
        code=code,
        noise=HEAVY,
        policy=make_policy("eraser+m"),
        decoder_method=method,
        seed=13,
    )
    offline = MemoryExperiment(**kwargs).run(shots=40, rounds=6)
    windowed = MemoryExperiment(**kwargs, window_rounds=6).run(shots=40, rounds=6)
    oversized = MemoryExperiment(**kwargs, window_rounds=50).run(shots=40, rounds=6)
    assert windowed.failures == offline.failures
    assert oversized.failures == offline.failures
    # Perf diagnostics (cache hit rate, dedup ratio) are path-dependent;
    # bit identity is asserted on the physics keys.
    strip = lambda summary: {
        k: v for k, v in summary.items() if k not in PERF_SUMMARY_KEYS
    }
    assert strip(windowed.summary()) == strip(offline.summary())


@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_full_window_stream_pipeline_matches_offline_decode(surface_d3, method):
    """stream -> window -> commit equals offline graph decoding exactly."""
    result = _recorded_run(surface_d3, HEAVY, shots=30, rounds=8, seed=3)
    graph = DetectorGraph(code=surface_d3, rounds=8, noise=HEAVY)
    offline = make_decoder(graph, method).decode_batch(
        result.detector_history, result.final_detectors
    )
    windowed = WindowedDecoder(
        code=surface_d3, noise=HEAVY, rounds=8, window_rounds=8, method=method
    )
    predictions = windowed.decode_stream(ReplayStream.from_run_result(result))
    assert np.array_equal(predictions, offline)


# --------------------------------------------------------------------- #
# Windowed decoding: genuine sliding path
# --------------------------------------------------------------------- #
def test_sliding_window_noiseless_is_perfect(surface_d3):
    result = _recorded_run(
        surface_d3, ideal_noise(), shots=20, rounds=9, seed=2, policy="no-lrc"
    )
    windowed = WindowedDecoder(
        code=surface_d3, noise=paper_noise(), rounds=9, window_rounds=3, commit_rounds=2
    )
    predictions = windowed.decode_stream(ReplayStream.from_run_result(result))
    assert not predictions.any()


@pytest.mark.parametrize("method", ["matching", "union_find"])
def test_sliding_window_tracks_offline_accuracy(surface_d3, method):
    """Short windows lose little accuracy and stay deterministic."""
    result = _recorded_run(surface_d3, HEAVY, shots=80, rounds=12, seed=21)
    graph = DetectorGraph(code=surface_d3, rounds=12, noise=HEAVY)
    offline = make_decoder(graph, method).decode_batch(
        result.detector_history, result.final_detectors
    )
    windowed = WindowedDecoder(
        code=surface_d3, noise=HEAVY, rounds=12, window_rounds=6, commit_rounds=3,
        method=method,
    )
    first = windowed.decode_stream(ReplayStream.from_run_result(result))
    second = windowed.decode_stream(ReplayStream.from_run_result(result))
    assert np.array_equal(first, second)  # deterministic
    offline_failures = int((offline ^ result.observable_flips).sum())
    window_failures = int((first ^ result.observable_flips).sum())
    assert abs(window_failures - offline_failures) <= max(4, offline_failures // 2)


def test_window_session_buffer_stays_bounded_and_records_latency(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=10, rounds=12, seed=4)
    recorder = LatencyRecorder()
    windowed = WindowedDecoder(
        code=surface_d3, noise=HEAVY, rounds=12, window_rounds=4, commit_rounds=2
    )
    session = windowed.session(10, recorder)
    max_buffered = 0
    for chunk in ReplayStream.from_run_result(result).chunks():
        session.feed(chunk)
        while session.ready():
            session.step()
        max_buffered = max(max_buffered, len(session._buffer))
    session.finish(ReplayStream.from_run_result(result).final())
    # The buffer never holds more than window + 1 context rounds.
    assert max_buffered <= 5
    assert recorder.windows == session.windows_decoded
    assert recorder.rounds_committed == 12
    assert recorder.percentile(99) >= recorder.percentile(50) >= 0.0
    summary = recorder.summary()
    assert summary["windows"] == recorder.windows
    assert summary["realtime_factor"] >= 0.0


def test_window_session_rejects_out_of_order_chunks(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=5, rounds=4, seed=5)
    stream = ReplayStream.from_run_result(result)
    chunks = list(stream.chunks())
    session = WindowedDecoder(
        code=surface_d3, noise=HEAVY, rounds=4, window_rounds=4
    ).session(5)
    session.feed(chunks[0])
    with pytest.raises(ValueError):
        session.feed(chunks[2])
    with pytest.raises(RuntimeError):
        session.finish(stream.final())  # incomplete stream


def test_windowed_decoder_validates_configuration(surface_d3):
    with pytest.raises(ValueError):
        WindowedDecoder(code=surface_d3, noise=HEAVY, rounds=0, window_rounds=4)
    with pytest.raises(ValueError):
        WindowedDecoder(code=surface_d3, noise=HEAVY, rounds=8, window_rounds=0)
    with pytest.raises(ValueError):
        WindowedDecoder(
            code=surface_d3, noise=HEAVY, rounds=8, window_rounds=4, commit_rounds=5
        )
    default = WindowedDecoder(code=surface_d3, noise=HEAVY, rounds=20, window_rounds=8)
    assert default.commit_rounds == 4
    assert not default.covers_stream
    assert WindowedDecoder(
        code=surface_d3, noise=HEAVY, rounds=6, window_rounds=8
    ).covers_stream


# --------------------------------------------------------------------- #
# Decode service
# --------------------------------------------------------------------- #
def _make_streams(code, count, shots=15, rounds=12):
    return [
        SimulatorStream(
            code=code,
            noise=HEAVY,
            policy=make_policy("gladiator+m"),
            shots=shots,
            rounds=rounds,
            seed=7 + 11 * index,
        )
        for index in range(count)
    ]


def test_service_multiplexes_four_streams(surface_d3):
    reports = DecodeService(window_rounds=6, workers=3, queue_depth=2).run(
        _make_streams(surface_d3, 4)
    )
    assert len(reports) == 4
    for report in reports:
        assert report.failures is not None
        assert report.recorder.rounds_committed == 12
        summary = report.summary()
        assert summary["rounds_per_second"] > 0
        assert summary["round_latency_p99"] >= summary["round_latency_p50"] > 0
        assert "realtime_factor" in summary


def test_service_results_match_serial_windowed_decode(surface_d3):
    """Concurrency must not change any prediction: service == serial."""
    reports = DecodeService(window_rounds=6, workers=4).run(_make_streams(surface_d3, 4))
    for index, stream in enumerate(_make_streams(surface_d3, 4)):
        windowed = WindowedDecoder(
            code=surface_d3, noise=HEAVY, rounds=12, window_rounds=6
        )
        predictions = windowed.decode_stream(stream)
        failures = int((predictions ^ stream.final().observable_flips).sum())
        assert reports[index].failures == failures


def test_service_accepts_replay_streams_with_provenance(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=10, rounds=6, seed=6)
    stream = ReplayStream.from_run_result(result)
    stream.code, stream.noise = surface_d3, HEAVY
    (report,) = DecodeService(window_rounds=6, workers=1).run([stream])
    assert report.failures is not None


def test_service_rejects_streams_without_provenance(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=4, rounds=4, seed=6)
    with pytest.raises(ValueError):
        DecodeService(window_rounds=4).run([ReplayStream.from_run_result(result)])
    with pytest.raises(ValueError):
        DecodeService(window_rounds=4, workers=0)


def test_service_empty_input():
    assert DecodeService(window_rounds=4).run([]) == []


# --------------------------------------------------------------------- #
# Decode service error paths and backpressure
# --------------------------------------------------------------------- #
def test_service_propagates_worker_configuration_error(surface_d3):
    """A decoder that cannot be built fails the run, not just one worker."""
    service = DecodeService(window_rounds=6, workers=2, method="nonexistent")
    with pytest.raises(ValueError, match="unknown decoder"):
        service.run(_make_streams(surface_d3, 2))


def test_service_propagates_mid_decode_exception(surface_d3, monkeypatch):
    """An exception inside a worker's decode surfaces in run() and the pool
    shuts down cleanly instead of hanging."""

    def explode(self, flagged):
        raise RuntimeError("decoder blew up mid-window")

    monkeypatch.setattr(UnionFindDecoder, "_edges_for_syndrome", explode)
    service = DecodeService(window_rounds=6, workers=2, method="union_find")
    with pytest.raises(RuntimeError, match="blew up mid-window"):
        service.run(_make_streams(surface_d3, 3))
    # The pool is gone: only this test's thread remains of the service.
    assert not [t for t in threading.enumerate() if t.name.startswith("decode-")]


def test_service_backpressure_bounds_queue_under_slow_decoder(surface_d3, monkeypatch):
    """With a slow decoder the bounded queue fills (producer blocks) and the
    results still match the serial windowed decode exactly."""
    from repro.realtime import service as service_module
    from repro.realtime.window import WindowSession

    max_seen = {"depth": 0}
    lock = threading.Lock()
    real_queue = queue.Queue

    class TrackingQueue(real_queue):
        def put(self, item, *args, **kwargs):
            super().put(item, *args, **kwargs)
            with lock:
                max_seen["depth"] = max(max_seen["depth"], self.qsize())

    slow_step = WindowSession.step

    def step(self):
        time.sleep(0.005)
        return slow_step(self)

    monkeypatch.setattr(service_module.queue, "Queue", TrackingQueue)
    monkeypatch.setattr(WindowSession, "step", step)
    service = DecodeService(window_rounds=4, commit_rounds=2, workers=1, queue_depth=1)
    reports = service.run(_make_streams(surface_d3, 3))
    assert max_seen["depth"] == 1  # the queue filled: backpressure engaged
    for index, stream in enumerate(_make_streams(surface_d3, 3)):
        windowed = WindowedDecoder(
            code=surface_d3, noise=HEAVY, rounds=12, window_rounds=4, commit_rounds=2
        )
        predictions = windowed.decode_stream(stream)
        failures = int((predictions ^ stream.final().observable_flips).sum())
        assert reports[index].failures == failures


# --------------------------------------------------------------------- #
# Push mode and shutdown semantics
# --------------------------------------------------------------------- #
def test_push_mode_matches_serial_decode_with_coalescing(surface_d3):
    """Two identical push-mode streams, coalesced, equal the serial decode."""
    result = _recorded_run(surface_d3, HEAVY, shots=10, rounds=8, seed=23)
    service = DecodeService(window_rounds=4, workers=2, fused=True, coalesce=True)
    service.start()
    try:
        handles = [
            service.open_stream(code=surface_d3, noise=HEAVY, shots=10, rounds=8)
            for _ in range(2)
        ]
        for round_index in range(8):
            for handle in handles:
                handle.feed_round(result.detector_history[:, round_index, :])
        for handle in handles:
            handle.finish(result.final_detectors, result.observable_flips)
        reports = [handle.result(timeout=120) for handle in handles]
    finally:
        service.close()
    windowed = WindowedDecoder(code=surface_d3, noise=HEAVY, rounds=8, window_rounds=4)
    expected = windowed.decode_stream(ReplayStream.from_run_result(result))
    for handle, report in zip(handles, reports):
        assert np.array_equal(handle.predictions, expected)
        assert report.failures == int((expected ^ result.observable_flips).sum())


def test_push_mode_validates_round_feeding(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=5, rounds=6, seed=27)
    width = result.detector_history.shape[2]
    service = DecodeService(window_rounds=3, workers=1)
    service.start()
    try:
        with pytest.raises(ValueError, match="positive"):
            service.open_stream(code=surface_d3, noise=HEAVY, shots=5, rounds=0)
        handle = service.open_stream(code=surface_d3, noise=HEAVY, shots=5, rounds=6)
        with pytest.raises(ValueError, match="round chunk must be"):
            handle.feed_round(np.zeros((5, width + 1), dtype=bool))
        # A rejected chunk must not advance the round counter.
        for round_index in range(6):
            handle.feed_round(result.detector_history[:, round_index, :])
        with pytest.raises(ValueError, match="cannot feed more"):
            handle.feed_round(result.detector_history[:, 0, :])
        handle.finish(result.final_detectors, result.observable_flips)
        with pytest.raises(RuntimeError, match="already finished"):
            handle.finish(result.final_detectors)
        handle.result(timeout=120)
        with pytest.raises(ServiceClosed):
            handle.feed_round(result.detector_history[:, 0, :])
    finally:
        service.close()


def test_push_mode_finish_requires_all_rounds(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=4, rounds=6, seed=28)
    service = DecodeService(window_rounds=3, workers=1)
    service.start()
    try:
        handle = service.open_stream(code=surface_d3, noise=HEAVY, shots=4, rounds=6)
        handle.feed_round(result.detector_history[:, 0, :])
        with pytest.raises(ValueError, match="declared 6 rounds but fed 1"):
            handle.finish(result.final_detectors)
    finally:
        service.close(drain=False)


def test_service_close_is_idempotent_and_raceless(surface_d3):
    """Concurrent close() calls while a stream hangs mid-window all return,
    join every thread exactly once, and leave the handle cleanly aborted."""
    result = _recorded_run(surface_d3, HEAVY, shots=4, rounds=8, seed=29)
    service = DecodeService(window_rounds=4, workers=2)
    service.start()
    handle = service.open_stream(code=surface_d3, noise=HEAVY, shots=4, rounds=8)
    for round_index in range(3):  # mid-window: never finishable
        handle.feed_round(result.detector_history[:, round_index, :])

    barrier = threading.Barrier(3)
    errors = []

    def closer():
        barrier.wait()
        try:
            service.close(drain=True, timeout=1)
        except BaseException as exc:  # pragma: no cover - the assert reports it
            errors.append(exc)

    closers = [threading.Thread(target=closer) for _ in range(3)]
    for thread in closers:
        thread.start()
    for thread in closers:
        thread.join(timeout=60)
        assert not thread.is_alive()
    assert errors == []
    assert not [t for t in threading.enumerate() if t.name.startswith("decode-")]
    service.close()  # after full termination: still a no-op
    with pytest.raises(ServiceClosed):
        handle.result(timeout=5)
    with pytest.raises(ServiceClosed):
        service.open_stream(code=surface_d3, noise=HEAVY, shots=4, rounds=8)
    with pytest.raises(ServiceClosed):
        service.run(_make_streams(surface_d3, 1))


def test_service_close_while_streams_backpressured(surface_d3, monkeypatch):
    """Closing while the scheduler is blocked on a full work queue must not
    deadlock: the slow worker drains the queue, aborts land, threads join."""
    from repro.realtime.window import WindowSession

    slow_step = WindowSession.step

    def step(self):
        time.sleep(0.02)
        return slow_step(self)

    monkeypatch.setattr(WindowSession, "step", step)
    result = _recorded_run(surface_d3, HEAVY, shots=4, rounds=12, seed=31)
    service = DecodeService(
        window_rounds=2, commit_rounds=1, workers=1, queue_depth=1, fused=False
    )
    service.start()
    handles = [
        service.open_stream(
            code=surface_d3, noise=HEAVY, shots=4, rounds=12, fused=False
        )
        for _ in range(3)
    ]
    for round_index in range(12):
        for handle in handles:
            handle.feed_round(result.detector_history[:, round_index, :])
    time.sleep(0.05)  # let the scheduler wedge against the depth-1 queue
    service.close(drain=False)
    assert not [t for t in threading.enumerate() if t.name.startswith("decode-")]
    for handle in handles:
        with pytest.raises(ServiceClosed):
            handle.result(timeout=5)
    assert service.backpressure_stalls >= 0  # counter survived the abort


# --------------------------------------------------------------------- #
# Cached batch decoding through windows and the service
# --------------------------------------------------------------------- #
def test_windowed_decoder_cached_batch_path_reuses_syndromes(surface_d3):
    result = _recorded_run(surface_d3, HEAVY, shots=30, rounds=8, seed=19)
    shared = SyndromeCache()
    kwargs = dict(
        code=surface_d3, noise=HEAVY, rounds=8, window_rounds=4, commit_rounds=2
    )
    first = WindowedDecoder(**kwargs, cache=shared).decode_stream(
        ReplayStream.from_run_result(result)
    )
    stats = shared.stats()
    assert stats["misses"] > 0
    # The cache changes speed only: an uncached decode is bit-identical.
    uncached = WindowedDecoder(**kwargs, cache_size=0).decode_stream(
        ReplayStream.from_run_result(result)
    )
    assert np.array_equal(first, uncached)
    # Replaying through the same cache decodes nothing new.
    second = WindowedDecoder(**kwargs, cache=shared).decode_stream(
        ReplayStream.from_run_result(result)
    )
    assert np.array_equal(second, first)
    replay_stats = shared.stats()
    assert replay_stats["misses"] == stats["misses"]
    assert replay_stats["hits"] > stats["hits"]
    with pytest.raises(ValueError):
        WindowedDecoder(**kwargs, cache=shared, cache_size=16)


def test_service_streams_share_one_syndrome_cache(surface_d3):
    """Two identical streams through one service: the second is served almost
    entirely from the first one's cached corrections."""
    def twin_streams():
        return [
            SimulatorStream(
                code=surface_d3,
                noise=HEAVY,
                policy=make_policy("gladiator+m"),
                shots=15,
                rounds=12,
                seed=7,
            )
            for _ in range(2)
        ]

    service = DecodeService(window_rounds=6, workers=1)
    reports = service.run(twin_streams())
    stats = service.cache.stats()
    assert stats["hits"] > 0
    assert reports[0].failures == reports[1].failures
    # Disabling the service cache must not change any prediction.
    uncached = DecodeService(window_rounds=6, workers=1, cache_size=0)
    plain = uncached.run(twin_streams())
    assert not uncached.cache.enabled
    assert [r.failures for r in plain] == [r.failures for r in reports]


# --------------------------------------------------------------------- #
# MemoryExperiment routing and the CLI
# --------------------------------------------------------------------- #
def test_memory_experiment_sliding_window_path(surface_d3):
    experiment = MemoryExperiment(
        code=surface_d3,
        noise=HEAVY,
        policy=make_policy("eraser+m"),
        seed=17,
        window_rounds=4,
        commit_rounds=2,
    )
    result = experiment.run(shots=30, rounds=10)
    assert result.shots == 30
    assert 0 <= result.failures <= 30


def test_realtime_cli_runs_and_writes_records(tmp_path, capsys):
    from repro.io import load_records
    from repro.realtime.__main__ import main

    out = tmp_path / "realtime.json"
    argv = [
        "--streams", "4", "--shots", "6", "--rounds", "8", "--window", "4",
        "--workers", "2", "--out", str(out),
    ]
    assert main(argv) == 0
    printed = capsys.readouterr().out
    assert "4 streams" in printed
    records = load_records(out)
    assert len(records) == 4
    assert all(record.metrics["rounds_committed"] == 8 for record in records)


def test_realtime_cli_rejects_bad_arguments(tmp_path):
    from repro.realtime.__main__ import main

    assert main(["--streams", "0"]) == 2
    assert main(["--family", "nope", "--distance", "3"]) == 2
