"""Tests of result persistence and table rendering."""

import numpy as np
import pytest

from repro.io import (
    ResultRecord,
    banner,
    format_series,
    format_table,
    format_value,
    load_records,
    results_dir,
    save_records,
)


def test_format_value_floats_and_bools():
    assert format_value(True) == "yes"
    assert format_value(False) == "no"
    assert format_value(0.0) == "0"
    assert "e" in format_value(1.2345e-5)
    assert format_value("text") == "text"


def test_format_table_from_dicts():
    rows = [
        {"policy": "eraser+M", "lrc": 0.75, "fp": 0.69},
        {"policy": "gladiator+M", "lrc": 0.55, "fp": 0.52},
    ]
    rendered = format_table(rows, title="Figure 9")
    assert "Figure 9" in rendered
    assert "gladiator+M" in rendered
    assert rendered.count("\n") >= 3


def test_format_table_from_sequences_requires_headers():
    with pytest.raises(ValueError):
        format_table([[1, 2]], headers=None)
    rendered = format_table([[1, 2], [3, 4]], headers=["a", "b"])
    assert "a" in rendered and "3" in rendered


def test_format_table_empty():
    assert "(no rows)" in format_table([], headers=["a"])


def test_format_series_columns():
    rendered = format_series(
        [1, 2, 3],
        {"eraser": [0.1, 0.2, 0.3], "gladiator": [0.05, 0.1, 0.2]},
        x_label="rounds",
    )
    lines = rendered.splitlines()
    assert lines[0].split() == ["rounds", "eraser", "gladiator"]
    assert len(lines) == 5


def test_banner_contains_text():
    assert "Table 5" in banner("Table 5")
    assert len(banner("x")) >= 20


def test_save_and_load_records_roundtrip(tmp_path):
    records = [
        ResultRecord(
            experiment="fig9",
            parameters={"distance": 7, "policy": "gladiator+M"},
            metrics={"fp": np.float64(0.52), "curve": np.array([1.0, 2.0])},
        )
    ]
    path = save_records(records, tmp_path / "out" / "fig9.json")
    loaded = load_records(path)
    assert len(loaded) == 1
    assert loaded[0].experiment == "fig9"
    assert loaded[0].parameters["distance"] == 7
    assert loaded[0].metrics["curve"] == [1.0, 2.0]
    assert loaded[0].flat()["policy"] == "gladiator+M"


def test_results_dir_creates_directory(tmp_path):
    target = results_dir(tmp_path / "results")
    assert target.exists() and target.is_dir()
