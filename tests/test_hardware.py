"""Tests of the FPGA cost model and the speculation microarchitecture."""

import numpy as np
import pytest

from repro.core import GladiatorMPolicy, GladiatorPolicy, make_policy
from repro.hardware import (
    ERASER_TABLE3_LUTS,
    DataParityAdjacencyGenerator,
    GladiatorMicroarchitecture,
    SequenceChecker,
    eraser_luts,
    gladiator_luts,
    lut_reduction_factor,
    luts_for_expression,
    resource_report,
)
from repro.core.boolean_minimize import quine_mccluskey
from repro.noise import paper_noise


def test_gladiator_lut_formula_matches_table3():
    # Table 3: 10, 10, 20, 30, 50, 70 LUTs for d = 5, 9, 13, 17, 21, 25.
    expected = {5: 10, 9: 10, 13: 20, 17: 30, 21: 50, 25: 70}
    for distance, luts in expected.items():
        assert gladiator_luts(distance) == luts


def test_eraser_luts_reproduce_table3_and_interpolate():
    for distance, luts in ERASER_TABLE3_LUTS.items():
        assert eraser_luts(distance) == luts
    assert eraser_luts(7) > eraser_luts(5)
    assert eraser_luts(11) > eraser_luts(9)


def test_lut_reduction_factor_at_least_17x():
    # The paper quotes a 17x-80x reduction across distances 5-25.
    for distance in (5, 9, 13, 17, 21, 25):
        assert lut_reduction_factor(distance) >= 17


def test_resource_report_rows():
    report = resource_report([5, 13, 25])
    assert [row.distance for row in report] == [5, 13, 25]
    assert all(row.reduction > 1 for row in report)


def test_luts_for_expression_scaling():
    narrow = quine_mccluskey({0b01}, 2)
    wide = quine_mccluskey({v for v in range(32) if bin(v).count("1") == 3}, 5)
    assert luts_for_expression(narrow, 2) >= 1
    assert luts_for_expression(wide, 5) > luts_for_expression(narrow, 2)
    assert luts_for_expression([], 4) == 0


def test_adjacency_generator_patterns(surface_d3, noise):
    generator = DataParityAdjacencyGenerator(surface_d3)
    syndrome = np.zeros(surface_d3.num_ancilla, dtype=bool)
    rows = generator.patterns(syndrome)
    assert len(rows) == surface_d3.num_data
    assert all(pattern == 0 for _, pattern, _ in rows)
    syndrome[0] = True
    rows = generator.patterns(syndrome)
    touched = [qubit for qubit, pattern, _ in rows if pattern]
    assert set(touched) == set(surface_d3.stabilizers[0].data_support)
    with pytest.raises(ValueError):
        generator.patterns(np.zeros(3, dtype=bool))


def test_sequence_checker_equivalent_to_table(surface_d5, noise):
    policy = GladiatorPolicy()
    policy.prepare(surface_d5, paper_noise())
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    table = policy.flag_table(qubit)
    checker = SequenceChecker(width=4, flagged_patterns={v for v in range(16) if table[v]})
    assert checker.verify_against_truth_table()
    assert checker.lut_estimate >= 1
    assert checker.expression != "False"


def test_microarchitecture_end_to_end(surface_d3):
    policy = GladiatorMPolicy()
    policy.prepare(surface_d3, paper_noise())
    uarch = GladiatorMicroarchitecture(surface_d3, policy)
    assert set(uarch.checkers) == {2, 3, 4}
    assert all(checker.verify_against_truth_table() for checker in uarch.checkers.values())

    syndrome = np.zeros(surface_d3.num_ancilla, dtype=bool)
    requests = uarch.process_round(syndrome)
    assert not requests.any()

    # A fully scrambled neighbourhood (the leakage signature) must trigger.
    leaked_qubit = next(
        q for q in range(surface_d3.num_data) if surface_d3.pattern_width(q) == 4
    )
    for stab_index, _ in surface_d3.data_adjacency[leaked_qubit]:
        syndrome[stab_index] = True
    requests = uarch.process_round(syndrome, mlr_suspects={0})
    assert requests[0]
    assert uarch.lut_budget() >= 10


def test_microarchitecture_covers_policy_decisions(surface_d3):
    """The shared-checker datapath must flag at least what the per-qubit tables flag.

    The hardware shares one sequence checker per pattern width (Section 4.4),
    so its flagged set is the union over the qubits of that width; it can
    therefore only be more conservative (never less) than the per-qubit
    software tables.
    """
    policy = make_policy("gladiator")
    policy.prepare(surface_d3, paper_noise())
    uarch = GladiatorMicroarchitecture(surface_d3, policy)
    rng = np.random.default_rng(11)
    for _ in range(20):
        syndrome = rng.random(surface_d3.num_ancilla) < 0.3
        requests = uarch.process_round(syndrome)
        for qubit in range(surface_d3.num_data):
            pattern = 0
            for position, group in enumerate(surface_d3.speculation_groups[qubit]):
                if any(syndrome[s] for s in group.stabilizers):
                    pattern |= 1 << position
            if policy.flag_table(qubit)[pattern]:
                assert requests[qubit]
