"""Tests of the calibration-data container."""

import pytest

from repro.core import CalibrationData
from repro.noise import paper_noise


def test_from_noise_copies_rates():
    noise = paper_noise()
    calibration = CalibrationData.from_noise(noise)
    assert calibration.gate_error == noise.p
    assert calibration.leakage_rate == noise.p_leak
    assert calibration.leakage_mobility == noise.leakage_mobility
    assert calibration.mlr_error == noise.mlr_error


def test_isolated_flip_rate_combines_sources():
    calibration = CalibrationData(
        gate_error=1e-3,
        measurement_error=1e-3,
        reset_error=1e-3,
        data_error=1e-3,
        leakage_rate=1e-4,
    )
    assert calibration.isolated_flip_rate == pytest.approx(2.5e-3)


def test_with_replaces_fields():
    calibration = CalibrationData.from_noise(paper_noise())
    updated = calibration.with_(leakage_rate=5e-4)
    assert updated.leakage_rate == 5e-4
    assert updated.gate_error == calibration.gate_error


def test_drifted_stays_within_bounds():
    calibration = CalibrationData.from_noise(paper_noise())
    drifted = calibration.drifted(factor=2.0, seed=1)
    assert drifted != calibration
    for name in ("gate_error", "measurement_error", "reset_error", "data_error", "leakage_rate"):
        original = getattr(calibration, name)
        moved = getattr(drifted, name)
        assert original / 2.01 <= moved <= original * 2.01


def test_drifted_rejects_shrinking_factor():
    with pytest.raises(ValueError):
        CalibrationData.from_noise(paper_noise()).drifted(factor=0.5)


def test_probability_validation():
    with pytest.raises(ValueError):
        CalibrationData(
            gate_error=1.5,
            measurement_error=0.0,
            reset_error=0.0,
            data_error=0.0,
            leakage_rate=0.0,
        )


def test_describe_mentions_rates():
    text = CalibrationData.from_noise(paper_noise()).describe()
    assert "gate=" in text and "leak=" in text
