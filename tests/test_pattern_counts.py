"""Structural pattern-count claims from the paper (Sections 4.1, 4.3 and 5.2).

These tests pin the *qualitative* classification structure the paper reports:
ERASER's fixed heuristic flags more patterns than GLADIATOR on every code,
GLADIATOR never flags the frequent benign patterns (single flips, the
deterministic data-error signatures), and the deferred two-round tables flag
a smaller fraction of their pattern space than the single-round tables.
Exact counts differ slightly from the paper because our error enumeration is
richer (see EXPERIMENTS.md); the inequalities are what the design relies on.
"""

import numpy as np
import pytest

from repro.core import (
    CalibrationData,
    EraserPolicy,
    GladiatorDPolicy,
    GladiatorPolicy,
    count_eraser_patterns,
)
from repro.noise import paper_noise


@pytest.fixture(scope="module")
def prepared_policies():
    from repro.codes import color_code, surface_code

    noise = paper_noise()
    codes = {"surface": surface_code(7), "color": color_code(7)}
    policies = {}
    for name, code in codes.items():
        eraser = EraserPolicy()
        eraser.prepare(code, noise)
        gladiator = GladiatorPolicy()
        gladiator.prepare(code, noise)
        deferred = GladiatorDPolicy()
        deferred.prepare(code, noise)
        policies[name] = (code, eraser, gladiator, deferred)
    return policies


def test_eraser_counts_match_paper_exactly():
    # 11/16 four-bit patterns and 4/8 three-bit patterns (Sections 4.1, 5.2).
    assert count_eraser_patterns(4) == 11
    assert count_eraser_patterns(3) == 4


def test_surface_gladiator_flags_fewer_than_eraser(prepared_policies):
    code, eraser, gladiator, _ = prepared_policies["surface"]
    bulk = next(q for q in range(code.num_data) if code.pattern_width(q) == 4)
    eraser_count = int(eraser.flag_table(bulk).sum())
    gladiator_count = int(gladiator.flag_table(bulk).sum())
    assert eraser_count == 11
    assert gladiator_count < eraser_count
    assert 4 <= gladiator_count <= 10  # the paper reports 7-8


def test_surface_gladiator_excludes_frequent_benign_patterns(prepared_policies):
    code, _, gladiator, _ = prepared_policies["surface"]
    bulk = next(q for q in range(code.num_data) if code.pattern_width(q) == 4)
    table = gladiator.flag_table(bulk)
    # Single detector flips are overwhelmingly measurement noise.
    for bit in range(4):
        assert not table[1 << bit]
    # The full data-error signature (every adjacent check of one basis) is the
    # most common multi-bit benign pattern and must not trigger an LRC.
    z_bits = [
        group.time_slot
        for group in code.speculation_groups[bulk]
        if code.stabilizers[group.stabilizers[0]].basis == "Z"
    ]
    x_error_pattern = sum(1 << b for b in z_bits)
    assert not table[x_error_pattern]


def test_color_code_gladiator_flags_fewer_than_eraser(prepared_policies):
    code, eraser, gladiator, _ = prepared_policies["color"]
    interior = next(q for q in range(code.num_data) if code.pattern_width(q) == 3)
    assert int(eraser.flag_table(interior).sum()) == 4
    assert int(gladiator.flag_table(interior).sum()) < 4


def test_eraser_on_color_code_flags_every_nonzero_narrow_pattern(prepared_policies):
    # Section 3.3: on 1- and 2-bit colour-code patterns the 50% rule degenerates
    # towards Always-LRC.
    code, eraser, _, _ = prepared_policies["color"]
    corner = next(q for q in range(code.num_data) if code.pattern_width(q) == 1)
    assert int(eraser.flag_table(corner).sum()) == 1  # flags the only non-zero pattern
    edge = next(q for q in range(code.num_data) if code.pattern_width(q) == 2)
    assert int(eraser.flag_table(edge).sum()) == 3  # every non-zero 2-bit pattern


def test_two_round_tables_are_structurally_consistent(prepared_policies):
    for family in ("surface", "color"):
        code, _, gladiator, deferred = prepared_policies[family]
        widest = max(code.pattern_widths)
        qubit = next(q for q in range(code.num_data) if code.pattern_width(q) == widest)
        single = gladiator.flag_table(qubit)
        double = deferred.flag_table(qubit)
        assert double.shape[0] == single.shape[0] ** 2
        assert not double[0]
        assert 0 < int(double.sum()) < double.shape[0]
        # A quiet previous round followed by a benign single flip must stay quiet.
        width = code.pattern_width(qubit)
        for bit in range(width):
            assert not double[1 << bit]


def test_flag_tables_shared_between_equivalent_qubits(prepared_policies):
    code, _, gladiator, _ = prepared_policies["surface"]
    bulk_qubits = [q for q in range(code.num_data) if code.pattern_width(q) == 4]
    tables = {tuple(gladiator.flag_table(q)) for q in bulk_qubits}
    # All bulk qubits fall into at most two context classes (the two CNOT
    # orderings of the checkerboard), so tables are heavily shared.
    assert len(tables) <= 2


def test_zero_pattern_never_flagged_anywhere(prepared_policies):
    for family in ("surface", "color"):
        code, eraser, gladiator, deferred = prepared_policies[family]
        for qubit in range(code.num_data):
            assert not eraser.flag_table(qubit)[0]
            assert not gladiator.flag_table(qubit)[0]
            assert not deferred.flag_table(qubit)[0]
