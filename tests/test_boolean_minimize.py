"""Tests of the Quine-McCluskey Boolean minimiser."""

import pytest

from repro.core.boolean_minimize import (
    Implicant,
    count_literals,
    evaluate,
    expression_to_string,
    quine_mccluskey,
)


def _truth_table_matches(minterms, width):
    implicants = quine_mccluskey(minterms, width)
    minterm_set = set(minterms)
    return all(
        evaluate(implicants, value) == (value in minterm_set)
        for value in range(1 << width)
    )


def test_empty_function_is_constant_false():
    assert quine_mccluskey(set(), 4) == []
    assert expression_to_string([], 4) == "False"


def test_full_function_is_constant_true():
    implicants = quine_mccluskey(set(range(16)), 4)
    assert len(implicants) == 1
    assert implicants[0].mask == 0
    assert expression_to_string(implicants, 4) == "True"


def test_single_minterm():
    implicants = quine_mccluskey({0b1010}, 4)
    assert len(implicants) == 1
    assert implicants[0].num_literals(4) == 4
    assert evaluate(implicants, 0b1010)
    assert not evaluate(implicants, 0b1000)


def test_adjacent_minterms_merge():
    # 0b000 and 0b001 differ only in bit 0, so one variable disappears.
    implicants = quine_mccluskey({0b000, 0b001}, 3)
    assert len(implicants) == 1
    assert implicants[0].num_literals(3) == 2


def test_classic_example():
    # f(x2, x1, x0) true on {1, 3, 5, 7} reduces to the single literal x0.
    implicants = quine_mccluskey({1, 3, 5, 7}, 3)
    assert len(implicants) == 1
    assert implicants[0].literals(3) == [(0, True)]


@pytest.mark.parametrize(
    "minterms,width",
    [
        ({0b0011, 0b0110, 0b1100, 0b1001}, 4),
        ({1, 2, 4, 8}, 4),
        (set(range(0, 32, 3)), 5),
        ({0b10101, 0b01010, 0b11111, 0b00000}, 5),
    ],
)
def test_minimisation_preserves_truth_table(minterms, width):
    assert _truth_table_matches(minterms, width)


def test_eraser_truth_table_minimises_correctly():
    # ERASER's 4-bit rule (>= 2 bits set): the minimised expression must still
    # flag exactly the 11 patterns of the paper.
    minterms = {v for v in range(16) if bin(v).count("1") >= 2}
    implicants = quine_mccluskey(minterms, 4)
    assert _truth_table_matches(minterms, 4)
    assert count_literals(implicants, 4) < 4 * len(minterms)


def test_out_of_range_minterm_rejected():
    with pytest.raises(ValueError):
        quine_mccluskey({16}, 4)


def test_implicant_covers():
    implicant = Implicant(mask=0b1100, value=0b0100)
    assert implicant.covers(0b0101)
    assert implicant.covers(0b0110)
    assert not implicant.covers(0b1100)


def test_expression_string_uses_polarity():
    implicants = quine_mccluskey({0b01}, 2)
    rendered = expression_to_string(implicants, 2)
    assert "x0" in rendered and "~x1" in rendered
