"""Tests of the product-code constructions (HGP, BPC) and classical ingredients."""

import numpy as np
import pytest

from repro.codes import (
    bpc_code,
    hgp_code_from_checks,
    hypergraph_product_code,
    two_block_cyclic_code,
)
from repro.codes.classical import (
    circulant_matrix,
    hamming_parity_check,
    polynomial_to_circulant,
    random_regular_ldpc,
    repetition_parity_check,
)


def test_hamming_matrix_shape_and_columns():
    matrix = hamming_parity_check()
    assert matrix.shape == (3, 7)
    columns = {tuple(matrix[:, c]) for c in range(7)}
    assert len(columns) == 7
    assert (0, 0, 0) not in columns


def test_circulant_rows_are_shifts():
    matrix = circulant_matrix(np.array([1, 0, 1, 0]))
    for shift in range(4):
        assert np.array_equal(matrix[shift], np.roll(matrix[0], shift))


def test_polynomial_circulant_weight():
    matrix = polynomial_to_circulant([0, 1, 3], 7)
    assert matrix.shape == (7, 7)
    assert int(matrix.sum(axis=1)[0]) == 3


def test_random_ldpc_column_weight():
    matrix = random_regular_ldpc(num_checks=6, num_bits=12, column_weight=3, seed=1)
    assert np.array_equal(matrix.sum(axis=0), np.full(12, 3))


def test_random_ldpc_is_deterministic_for_seed():
    a = random_regular_ldpc(5, 10, 3, seed=9)
    b = random_regular_ldpc(5, 10, 3, seed=9)
    assert np.array_equal(a, b)


def test_hgp_default_instance_dimensions(hgp):
    # Hypergraph product of two Hamming [7,4] codes: 7*7 + 3*3 = 58 qubits,
    # 21 X checks + 21 Z checks, 16 logical qubits.
    assert hgp.num_data == 58
    assert hgp.num_ancilla == 42
    assert hgp.metadata["num_logical"] == 16


def test_hgp_css_commutation(hgp):
    assert not np.any((hgp.parity_check_x @ hgp.parity_check_z.T) % 2)


def test_hgp_has_irregular_pattern_widths(hgp):
    widths = set(hgp.pattern_widths)
    assert len(widths) >= 4
    assert max(widths) >= 6


def test_hgp_from_repetition_codes_is_surface_like():
    h = repetition_parity_check(3)
    code = hgp_code_from_checks(h, h, name="hgp_rep3")
    assert code.num_data == 3 * 3 + 2 * 2
    assert code.num_logical_qubits == 1


def test_bpc_default_instance(bpc):
    assert bpc.num_data == 24
    assert bpc.num_ancilla == 24
    assert bpc.metadata["num_logical"] == 4
    assert not np.any((bpc.parity_check_x @ bpc.parity_check_z.T) % 2)


def test_bpc_checks_have_uniform_weight(bpc):
    weights = {s.weight for s in bpc.stabilizers}
    assert weights == {9}


def test_two_block_cyclic_rejects_trivial_code():
    # Polynomials with no common factor with x^l - 1 encode zero logical qubits.
    with pytest.raises(ValueError):
        two_block_cyclic_code(7, (0, 1, 3), (0, 2, 3))


def test_logical_operators_commute_with_stabilizers(hgp, bpc):
    for code in (hgp, bpc):
        assert not np.any((code.parity_check_x @ code.logical_z) % 2)
        assert not np.any((code.parity_check_z @ code.logical_x) % 2)
        assert int(code.logical_x @ code.logical_z) % 2 == 1
