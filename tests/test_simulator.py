"""Tests of the leakage-aware QEC round simulator."""

import numpy as np
import pytest

from repro.core import make_policy
from repro.noise import NoiseParams, ideal_noise, paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


def run(code, noise, policy_name, shots=100, rounds=20, seed=0, **options):
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy(policy_name),
        options=SimulatorOptions(**options),
        seed=seed,
    )
    return simulator.run(shots=shots, rounds=rounds)


def test_noiseless_run_is_trivial(surface_d3):
    result = run(surface_d3, ideal_noise(), "no-lrc", shots=50, rounds=10)
    assert result.mean_dlp == 0.0
    assert result.total_data_lrcs == 0
    assert result.total_false_positives == 0
    assert not result.observable_flips.any()


def test_noiseless_detectors_are_silent(surface_d3):
    result = run(
        surface_d3, ideal_noise(), "no-lrc", shots=20, rounds=5, record_detectors=True
    )
    assert not result.detector_history.any()
    assert not result.final_detectors.any()


def test_leakage_sampling_seeds_one_leak_per_shot(surface_d5, noise):
    result = run(
        surface_d5,
        noise.with_(p=0.0, leakage_ratio=0.0, leakage_mobility=0.0),
        "no-lrc",
        shots=64,
        rounds=3,
        leakage_sampling=True,
    )
    # With no further noise, no transport and no LRCs exactly the seeded leak persists.
    assert result.final_data_leaked.sum(axis=1).min() >= 1
    assert result.dlp_per_round[0] == pytest.approx(1 / surface_d5.num_data)


def test_leakage_accumulates_without_mitigation(surface_d7, noise):
    result = run(surface_d7, noise, "no-lrc", shots=100, rounds=60)
    dlp = result.dlp_per_round
    assert dlp[-1] > dlp[5]
    assert result.total_data_lrcs == 0


def test_always_lrc_bounds_leakage(surface_d7, noise):
    unmitigated = run(surface_d7, noise, "no-lrc", shots=100, rounds=60, seed=1)
    mitigated = run(surface_d7, noise, "always-lrc", shots=100, rounds=60, seed=1)
    assert mitigated.mean_dlp < unmitigated.mean_dlp / 5
    # LRCs decided in round r execute in round r+1, so the first round is LRC-free.
    expected = surface_d7.num_data * (60 - 1) / 60
    assert mitigated.lrcs_per_round == pytest.approx(expected, rel=0.01)


def test_oracle_has_no_fp_or_fn(surface_d5, noise):
    result = run(surface_d5, noise, "ideal", shots=100, rounds=30, leakage_sampling=True)
    assert result.total_false_positives == 0
    assert result.total_false_negatives == 0


def test_closed_loop_uses_fewer_lrcs_than_open_loop(surface_d7, noise):
    always = run(surface_d7, noise, "always-lrc", shots=50, rounds=30, seed=2)
    eraser = run(surface_d7, noise, "eraser+m", shots=50, rounds=30, seed=2)
    gladiator = run(surface_d7, noise, "gladiator+m", shots=50, rounds=30, seed=2)
    assert eraser.lrcs_per_round < always.lrcs_per_round / 5
    assert gladiator.lrcs_per_round < eraser.lrcs_per_round


def test_gladiator_reduces_false_positives(surface_d7, noise):
    eraser = run(
        surface_d7, noise, "eraser+m", shots=300, rounds=50, seed=3, leakage_sampling=True
    )
    gladiator = run(
        surface_d7, noise, "gladiator+m", shots=300, rounds=50, seed=3, leakage_sampling=True
    )
    assert gladiator.false_positives_per_round < eraser.false_positives_per_round
    assert gladiator.false_negatives_per_round >= eraser.false_negatives_per_round


def test_detector_history_shape(surface_d3, noise):
    result = run(
        surface_d3, noise, "eraser+m", shots=10, rounds=7, record_detectors=True
    )
    assert result.detector_history.shape == (10, 7, len(surface_d3.z_stabilizers))
    assert result.final_detectors.shape == (10, len(surface_d3.z_stabilizers))
    assert result.observable_flips.shape == (10,)


def test_pattern_histogram_recording(surface_d3, noise):
    simulator = LeakageSimulator(
        code=surface_d3,
        noise=noise,
        policy=make_policy("eraser"),
        options=SimulatorOptions(record_patterns=True, leakage_sampling=True),
        seed=4,
    )
    result = simulator.run(shots=30, rounds=10)
    assert set(result.pattern_histogram) <= {2, 3, 4}
    for width, histogram in result.pattern_histogram.items():
        assert len(histogram) == 1 << width
        total = sum(leaked + clean for leaked, clean in histogram.values())
        qubits_of_width = sum(1 for w in surface_d3.pattern_widths if w == width)
        assert total == 30 * 10 * qubits_of_width


def test_round_records_cover_every_round(surface_d3, noise):
    result = run(surface_d3, noise, "eraser+m", shots=20, rounds=15)
    assert len(result.round_records) == 15
    assert [record.round_index for record in result.round_records] == list(range(15))


def test_summary_contains_headline_metrics(surface_d3, noise):
    summary = run(surface_d3, noise, "gladiator+m", shots=20, rounds=10).summary()
    for key in ("mean_dlp", "lrcs_per_round", "fp_per_round", "fn_per_round"):
        assert key in summary


def test_invalid_shot_and_round_counts(surface_d3, noise):
    simulator = LeakageSimulator(surface_d3, noise, make_policy("no-lrc"))
    with pytest.raises(ValueError):
        simulator.run(shots=0, rounds=10)
    with pytest.raises(ValueError):
        simulator.run(shots=10, rounds=0)


def test_runs_are_reproducible_for_fixed_seed(surface_d5, noise):
    first = run(surface_d5, noise, "gladiator+m", shots=50, rounds=20, seed=11)
    second = run(surface_d5, noise, "gladiator+m", shots=50, rounds=20, seed=11)
    assert first.total_data_lrcs == second.total_data_lrcs
    assert first.total_false_positives == second.total_false_positives
    assert np.array_equal(first.final_data_leaked, second.final_data_leaked)


def test_higher_leakage_ratio_increases_leakage(surface_d5):
    low = run(surface_d5, paper_noise(leakage_ratio=0.01), "eraser+m", shots=150, rounds=40, seed=5)
    high = run(surface_d5, paper_noise(leakage_ratio=1.0), "eraser+m", shots=150, rounds=40, seed=5)
    assert high.mean_dlp > low.mean_dlp
    assert high.total_leakage_events > low.total_leakage_events


def test_mobility_spreads_leakage(surface_d5):
    frozen = NoiseParams(p=1e-3, leakage_ratio=0.5, leakage_mobility=0.0)
    mobile = NoiseParams(p=1e-3, leakage_ratio=0.5, leakage_mobility=0.5)
    frozen_run = run(surface_d5, frozen, "no-lrc", shots=150, rounds=40, seed=6)
    mobile_run = run(surface_d5, mobile, "no-lrc", shots=150, rounds=40, seed=6)
    assert mobile_run.mean_dlp > frozen_run.mean_dlp
