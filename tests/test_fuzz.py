"""The scenario-matrix fuzzer: harness behaviour, CI smoke tier, regressions.

Three groups:

* harness mechanics — enumeration, budgets, report serialization, and the
  plugin contract (a code registered inside a test is fuzzed with no
  fuzzer changes);
* the CI smoke gate — a seed-shuffled bounded slice of the full matrix
  (the unbounded soak runs nightly via ``python -m repro fuzz``);
* regressions for bugs the first full-matrix runs flushed out: the
  union-find cluster-growth stall and the exact-matching DP dead end on
  detector graphs with no reachable boundary (periodic codes).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import fuzz_configs

from repro.api.registry import CODES
from repro.codes import surface_code, toric_code
from repro.decoders import DetectorGraph, MatchingDecoder, UnionFindDecoder
from repro.fuzz import (
    EXECUTION_MODES,
    ScenarioCell,
    check_schema,
    cell_config,
    enumerate_cells,
    run_fuzz,
    small_distance,
    small_instance,
)
from repro.noise import paper_noise


# --------------------------------------------------------------------------- #
# Matrix enumeration
# --------------------------------------------------------------------------- #
def test_matrix_is_the_full_registry_cross_product():
    from repro.api.registry import all_registries

    registries = all_registries()
    expected = (
        len(registries["codes"].names())
        * len(registries["decoders"].names())
        * len(registries["policies"].names())
        * len(registries["noise"].names())
        * len(EXECUTION_MODES)
    )
    cells = enumerate_cells()
    assert len(cells) == expected
    assert len({cell.key for cell in cells}) == expected


def test_pattern_filters_select_cells():
    cells = enumerate_cells(patterns=["toric/*/eraser/paper/*"])
    assert cells
    assert all(
        cell.code == "toric" and cell.policy == "eraser" and cell.noise == "paper"
        for cell in cells
    )
    assert {cell.mode for cell in cells} == set(EXECUTION_MODES)


def test_instances_are_deterministic_per_seed_and_vary_across_cells():
    cell_a = ScenarioCell("toric", "matching", "eraser", "paper", "offline")
    cell_b = ScenarioCell("toric", "matching", "eraser", "paper", "windowed")
    assert small_instance(cell_a, 7) == small_instance(cell_a, 7)
    assert small_instance(cell_a, 7) != small_instance(cell_a, 8) or small_instance(
        cell_b, 7
    ) != small_instance(cell_b, 8)


def test_registered_dummy_code_is_picked_up_without_fuzzer_changes():
    CODES.add(
        "dummy-lattice",
        lambda distance: surface_code(distance),
        default_distance=3,
        description="test-only plugin family",
    )
    try:
        cells = enumerate_cells(patterns=["dummy-lattice/*"])
        assert cells, "a freshly registered code must appear in the matrix"
        report = run_fuzz(patterns=["dummy-lattice/matching/no-lrc/paper/*"])
        assert report.cells_run == len(EXECUTION_MODES)
        assert report.ok, report.describe()
    finally:
        CODES.unregister("dummy-lattice")
    assert not enumerate_cells(patterns=["dummy-lattice/*"])


def test_small_distance_probes_new_families_fresh():
    # An odd-only family must be sized by probing, not assumed.
    def odd_only(distance):
        if distance % 2 == 0:
            raise ValueError("odd distances only")
        return surface_code(distance)

    CODES.add("odd-only", odd_only, default_distance=5)
    try:
        assert small_distance("odd-only") == 3
    finally:
        CODES.unregister("odd-only")


# --------------------------------------------------------------------------- #
# Schema tier on hypothesis-drawn cells (shared strategies)
# --------------------------------------------------------------------------- #
@given(fuzz_configs())
@settings(max_examples=15, deadline=None)
def test_schema_tier_holds_on_random_cells(cell_and_config):
    _, config = cell_and_config
    assert check_schema(config) == []


# --------------------------------------------------------------------------- #
# Harness + report
# --------------------------------------------------------------------------- #
def test_report_serializes_and_counts(tmp_path):
    report = run_fuzz(patterns=["toric/union_find/ideal/ideal/*"], seed=3)
    assert report.cells_run == len(EXECUTION_MODES)
    payload = json.loads(report.to_json())
    assert payload["cells_run"] == report.cells_run
    assert payload["crashes"] == 0 and payload["violations"] == 0
    assert {r["cell"] for r in payload["results"]} == {
        r.cell for r in report.results
    }
    assert "fuzz OK" in report.describe()


def test_integer_budget_bounds_the_run():
    report = run_fuzz(budget="5", patterns=["surface/*", "color/*", "toric/*"])
    assert report.cells_run == 5
    assert report.cells_total > 5
    assert report.ok, report.describe()


def test_budget_rejects_garbage():
    with pytest.raises(ValueError):
        run_fuzz(budget="lots")
    with pytest.raises(ValueError):
        run_fuzz(budget="0")


def test_crash_is_filed_not_raised():
    def explode(distance):
        raise RuntimeError("boom at build time")

    CODES.add("broken-family", explode, default_distance=3)
    try:
        report = run_fuzz(patterns=["broken-family/matching/no-lrc/paper/offline"])
        assert report.cells_run == 1
        assert len(report.crashes) == 1
        assert not report.ok
        result = report.crashes[0]
        assert "boom at build time" in (result.error or "")
        assert result.traceback
    finally:
        CODES.unregister("broken-family")


# --------------------------------------------------------------------------- #
# The CI smoke gate: a bounded seed-shuffled slice of the full matrix
# --------------------------------------------------------------------------- #
def test_fuzz_smoke_slice_of_full_matrix():
    budget = os.environ.get("FUZZ_SMOKE_BUDGET", "40")
    report = run_fuzz(seed=int(os.environ.get("FUZZ_SMOKE_SEED", "0")), budget=budget)
    assert report.ok, report.describe() + "".join(
        f"\n  {r.cell}: {r.violations or r.error}"
        for r in report.crashes + report.violations
    )


@pytest.mark.skipif(
    not os.environ.get("FUZZ_NIGHTLY"), reason="unbounded soak runs nightly"
)
def test_fuzz_full_matrix_soak():
    report = run_fuzz(budget="full")
    assert report.ok, report.describe()


# --------------------------------------------------------------------------- #
# Fuzzer-found regressions (periodic detector graphs have no boundary)
# --------------------------------------------------------------------------- #
def _odd_unreachable_syndrome(graph):
    """One fired detector: odd parity, and toric graphs have no boundary."""
    rounds = graph.num_layers - 1
    history = np.zeros((rounds, graph.num_z_stabs), dtype=bool)
    history[1, 0] = True
    final = np.zeros(graph.num_z_stabs, dtype=bool)
    return history, final


def test_union_find_stalls_resolve_on_boundaryless_graphs():
    # Before the stall fix this spun to the iteration cap and raised
    # "union-find cluster growth did not converge".
    graph = DetectorGraph(code=toric_code(2), rounds=3, noise=paper_noise())
    assert not any(edge.kind == "boundary" for edge in graph.edges)
    decoder = UnionFindDecoder(graph)
    history, final = _odd_unreachable_syndrome(graph)
    assert decoder.decode_shot(history, final) in (0, 1)


def test_matching_falls_back_when_no_completion_is_finite():
    # Before the DP fallback this crashed unpacking choice[-1] (None).
    graph = DetectorGraph(code=toric_code(2), rounds=3, noise=paper_noise())
    decoder = MatchingDecoder(graph)
    history, final = _odd_unreachable_syndrome(graph)
    assert decoder.decode_shot(history, final) in (0, 1)


def test_toric_cells_decode_identically_across_paths():
    cell = ScenarioCell("toric", "union_find", "gladiator", "bursts", "sweep-shard")
    config = cell_config(cell, small_instance(cell, 11))
    from repro.fuzz.invariants import RunCache, check_bit_identity

    assert check_bit_identity(cell, config, RunCache()) == []
