"""Property tests of the decode-service wire protocol (``repro.serve.protocol``).

Round-trips every codec under hypothesis, fuzzes the incremental
:class:`FrameDecoder` with arbitrary split points and garbage bytes, and
checks the robustness contract end to end: a hostile byte stream costs the
sender its connection (an ``ERROR`` frame, then hang-up) but never the
server's event loop.
"""

import socket
import struct

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.serve import ServerConfig, ServerThread
from repro.serve.protocol import (
    MAX_PAYLOAD,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_chunk,
    decode_final,
    decode_json,
    decode_result,
    encode_chunk,
    encode_final,
    encode_frame,
    encode_json,
    encode_result,
    pack_bools,
    unpack_bools,
)
from strategies import (
    chunk_payloads,
    final_payloads,
    json_summaries,
    result_payloads,
    wire_frames,
)


# --------------------------------------------------------------------- #
# Framing layer
# --------------------------------------------------------------------- #
@given(st.lists(wire_frames(), min_size=1, max_size=6), st.data())
def test_frame_round_trip_any_split_points(frames, data):
    """A frame stream reassembles identically however the bytes arrive."""
    wire = b"".join(encode_frame(t, p) for t, p in frames)
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(min_value=0, max_value=len(wire)), max_size=8
            )
        )
    )
    decoder = FrameDecoder()
    decoded = []
    previous = 0
    for cut in [*cuts, len(wire)]:
        decoded.extend(decoder.feed(wire[previous:cut]))
        previous = cut
    assert decoded == frames
    assert decoder.buffered == 0


@given(wire_frames())
def test_partial_frame_stays_buffered(frame):
    """All but the last byte of a frame parses to nothing, poison-free."""
    wire = encode_frame(*frame)
    decoder = FrameDecoder()
    assert decoder.feed(wire[:-1]) == []
    assert decoder.buffered == len(wire) - 1
    assert decoder.feed(wire[-1:]) == [frame]


@given(st.binary(max_size=512))
def test_garbage_bytes_never_raise_unexpectedly(data):
    """Arbitrary bytes either parse or raise ProtocolError — nothing else."""
    decoder = FrameDecoder()
    try:
        decoder.feed(data)
    except ProtocolError:
        # Poisoned decoders refuse further input by contract.
        with pytest.raises(ProtocolError):
            decoder.feed(b"")


def test_oversized_length_rejected_before_buffering():
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
        decoder.feed(struct.pack(">I", MAX_PAYLOAD + 1))


def test_zero_length_frame_rejected():
    with pytest.raises(ProtocolError, match="zero-length"):
        FrameDecoder().feed(struct.pack(">I", 0))


def test_unknown_frame_type_rejected():
    with pytest.raises(ProtocolError, match="unknown frame type"):
        FrameDecoder().feed(struct.pack(">I", 1) + b"\xff")


def test_encode_frame_rejects_oversized_payload():
    with pytest.raises(ProtocolError, match="exceeds MAX_PAYLOAD"):
        encode_frame(FrameType.CHUNK, b"\x00" * MAX_PAYLOAD)


# --------------------------------------------------------------------- #
# Typed payload codecs
# --------------------------------------------------------------------- #
@given(json_summaries())
def test_json_round_trip(obj):
    assert decode_json(encode_json(obj)) == obj


@given(st.binary(max_size=64))
def test_decode_json_garbage_is_protocol_error(data):
    try:
        decode_json(data)
    except ProtocolError:
        pass


def test_decode_json_rejects_non_object():
    with pytest.raises(ProtocolError, match="must be an object"):
        decode_json(b"[1,2,3]")


@given(chunk_payloads())
def test_chunk_round_trip(payload):
    stream, round_index, detectors = payload
    out_stream, out_round, out = decode_chunk(encode_chunk(*payload))
    assert (out_stream, out_round) == (stream, round_index)
    assert out.shape == detectors.shape
    assert np.array_equal(out, detectors)


@given(chunk_payloads())
def test_chunk_truncation_rejected(payload):
    wire = encode_chunk(*payload)
    for cut in {0, 3, len(wire) - 1} - {len(wire)}:
        with pytest.raises(ProtocolError):
            decode_chunk(wire[:cut])
    with pytest.raises(ProtocolError):
        decode_chunk(wire + b"\x00")


@given(final_payloads())
def test_final_round_trip(payload):
    stream, final, flips = payload
    out_stream, out_final, out_flips = decode_final(encode_final(*payload))
    assert out_stream == stream
    assert np.array_equal(out_final, final)
    if flips is None:
        assert out_flips is None
    else:
        assert np.array_equal(out_flips, flips)


def test_final_unknown_flags_rejected():
    wire = bytearray(encode_final(1, np.zeros((2, 3), dtype=bool)))
    wire[12] = 0x80  # flags byte of the _FINAL_HEADER
    with pytest.raises(ProtocolError, match="unknown final flags"):
        decode_final(bytes(wire))


def test_final_trailing_bytes_rejected():
    wire = encode_final(1, np.zeros((2, 3), dtype=bool))
    with pytest.raises(ProtocolError, match="trailing bytes"):
        decode_final(wire + b"\x00")


@given(result_payloads())
def test_result_round_trip(payload):
    stream, predictions, failures, summary = payload
    out_stream, out_pred, out_failures, out_summary = decode_result(
        encode_result(*payload)
    )
    assert (out_stream, out_failures) == (stream, failures)
    assert np.array_equal(out_pred, predictions)
    assert out_summary == summary


def test_result_truncation_rejected():
    wire = encode_result(3, np.ones(9, dtype=bool), 2, {"windows": 4})
    with pytest.raises(ProtocolError):
        decode_result(wire[:6])


@given(st.integers(min_value=0, max_value=5), st.integers(min_value=1, max_value=40))
def test_pack_unpack_inverse(shots, detectors):
    block = np.random.default_rng(shots * 41 + detectors).random(
        (shots, detectors)
    ) < 0.5
    assert np.array_equal(unpack_bools(pack_bools(block), block.shape), block)


def test_unpack_wrong_size_rejected():
    with pytest.raises(ProtocolError, match="packed block"):
        unpack_bools(b"\x00", (3, 3))  # 9 bits pack to 2 bytes, not 1


# --------------------------------------------------------------------- #
# The server survives hostile bytes
# --------------------------------------------------------------------- #
def _raw_connect(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10)
    sock.settimeout(10)
    return sock


def _read_frames(
    sock: socket.socket, until: FrameType | None = None
) -> list[tuple[FrameType, bytes]]:
    """Collect frames until EOF (or until a frame of type ``until`` lands)."""
    decoder = FrameDecoder()
    frames: list[tuple[FrameType, bytes]] = []
    while True:
        try:
            data = sock.recv(4096)
        except TimeoutError:
            break
        if not data:
            break
        frames.extend(decoder.feed(data))
        if until is not None and any(t == until for t, _ in frames):
            break
    return frames


def test_garbage_connection_gets_error_frame_and_server_survives():
    """Malformed frames kill one connection, never the event loop."""
    config = ServerConfig(port=0, shards=1, workers_per_shard=1)
    with ServerThread(config) as server:
        hostile = [
            b"\x00\x00\x00\x00garbage",  # zero-length frame
            struct.pack(">I", MAX_PAYLOAD + 7),  # absurd length prefix
            struct.pack(">I", 1) + b"\xee",  # unknown frame type
            encode_frame(FrameType.HELLO, b"\xff\xfenot json"),  # bad JSON
        ]
        for wire in hostile:
            with _raw_connect(server.port) as sock:
                sock.sendall(wire)
                frames = _read_frames(sock)
                # The server either got far enough to answer ERROR or hung
                # up immediately; either way the connection is done.
                assert all(t == FrameType.ERROR for t, _ in frames)
        # A well-formed session still works afterwards.
        with _raw_connect(server.port) as sock:
            sock.sendall(
                encode_frame(
                    FrameType.HELLO, encode_json({"tenant": "probe", "protocol": 1})
                )
            )
            sock.sendall(encode_frame(FrameType.STATUS, encode_json({})))
            frames = _read_frames(sock, until=FrameType.STATUS_REPLY)
        types = [t for t, _ in frames]
        assert FrameType.WELCOME in types
        assert FrameType.STATUS_REPLY in types
