"""Tests of the noise-model parameter container."""

import pytest

from repro.noise import NoiseParams, ideal_noise, paper_noise


def test_paper_defaults():
    noise = paper_noise()
    assert noise.p == pytest.approx(1e-3)
    assert noise.leakage_ratio == pytest.approx(0.1)
    assert noise.p_leak == pytest.approx(1e-4)
    assert noise.mlr_error == pytest.approx(1e-2)


def test_ideal_noise_is_noiseless():
    noise = ideal_noise()
    assert noise.p == 0
    assert noise.p_leak == 0
    assert noise.mlr_error == 0


def test_with_replaces_fields():
    noise = paper_noise().with_(leakage_ratio=1.0, leakage_mobility=0.05)
    assert noise.leakage_ratio == 1.0
    assert noise.leakage_mobility == 0.05
    assert noise.p == pytest.approx(1e-3)


def test_mlr_error_is_capped():
    noise = NoiseParams(p=0.1, mlr_error_factor=10.0)
    assert noise.mlr_error == 0.5


def test_lrc_derived_probabilities():
    noise = NoiseParams(p=1e-3, leakage_ratio=0.1, lrc_error_factor=2.0, lrc_leakage_factor=3.0)
    assert noise.lrc_gate_error == pytest.approx(2e-3)
    assert noise.lrc_leak_prob == pytest.approx(3e-4)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"p": -1e-3},
        {"p": 0.6},
        {"leakage_mobility": 1.5},
        {"lrc_removal_prob": -0.1},
        {"ancilla_reset_removes_leakage": 2.0},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    with pytest.raises(ValueError):
        NoiseParams(**kwargs)


def test_describe_mentions_key_rates():
    text = paper_noise().describe()
    assert "p=0.001" in text
    assert "lr=0.1" in text
