"""Tests of the closed-loop speculation policies (ERASER and GLADIATOR families)."""

import numpy as np
import pytest

from repro.core import (
    CalibrationData,
    EraserMPolicy,
    EraserPolicy,
    GladiatorDMPolicy,
    GladiatorDPolicy,
    GladiatorMPolicy,
    GladiatorPolicy,
    GraphModelConfig,
    make_policy,
)
from repro.core.speculator import SpeculationInput


def make_ctx(code, pattern_ints, prev=None, round_index=1, mlr_neighbor=None):
    shots = pattern_ints.shape[0]
    return SpeculationInput(
        round_index=round_index,
        pattern_ints=pattern_ints,
        prev_pattern_ints=prev if prev is not None else np.zeros_like(pattern_ints),
        detectors=np.zeros((shots, code.num_ancilla), dtype=bool),
        mlr_flags=None,
        mlr_neighbor=mlr_neighbor,
        data_leaked=np.zeros((shots, code.num_data), dtype=bool),
    )


def test_eraser_flag_table_matches_heuristic(surface_d5, noise):
    policy = EraserPolicy()
    policy.prepare(surface_d5, noise)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    table = policy.flag_table(qubit)
    assert int(table.sum()) == 11
    assert not table[0]
    assert table[0b0011]


def test_eraser_triggers_on_half_flips(surface_d5, noise):
    policy = EraserPolicy()
    policy.prepare(surface_d5, noise)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    patterns = np.zeros((1, surface_d5.num_data), dtype=np.int64)
    patterns[0, qubit] = 0b0011
    decision = policy.decide(make_ctx(surface_d5, patterns))
    assert decision.data_lrc[0, qubit]
    patterns[0, qubit] = 0b0001
    decision = policy.decide(make_ctx(surface_d5, patterns))
    assert not decision.data_lrc[0, qubit]


def test_gladiator_flags_fewer_patterns_than_eraser(surface_d5, noise):
    eraser = EraserPolicy()
    eraser.prepare(surface_d5, noise)
    gladiator = GladiatorPolicy()
    gladiator.prepare(surface_d5, noise)
    for qubit in range(surface_d5.num_data):
        if surface_d5.pattern_width(qubit) == 4:
            assert gladiator.flag_table(qubit).sum() < eraser.flag_table(qubit).sum()


def test_gladiator_quiet_on_zero_syndrome(surface_d5, noise):
    policy = GladiatorPolicy()
    policy.prepare(surface_d5, noise)
    patterns = np.zeros((3, surface_d5.num_data), dtype=np.int64)
    decision = policy.decide(make_ctx(surface_d5, patterns))
    assert not decision.data_lrc.any()


def test_gladiator_uses_custom_calibration(surface_d5, noise):
    drifted = CalibrationData.from_noise(noise).with_(leakage_rate=5e-3)
    policy = GladiatorPolicy(calibration=drifted)
    policy.prepare(surface_d5, noise)
    default = GladiatorPolicy()
    default.prepare(surface_d5, noise)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    assert policy.flag_table(qubit).sum() >= default.flag_table(qubit).sum()


def test_gladiator_recalibrate_updates_tables(surface_d5, noise):
    policy = GladiatorPolicy()
    policy.prepare(surface_d5, noise)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    before = int(policy.flag_table(qubit).sum())
    policy.recalibrate(CalibrationData.from_noise(noise).with_(leakage_rate=1e-2))
    after = int(policy.flag_table(qubit).sum())
    assert after >= before


def test_gladiator_d_uses_two_round_history(surface_d5, noise):
    policy = GladiatorDPolicy()
    policy.prepare(surface_d5, noise)
    assert policy.uses_two_rounds
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    table = policy.flag_table(qubit)
    assert table.shape == (256,)

    # A suffix pattern followed by its complement (a plain data error) must
    # not trigger, whereas the same suffix followed by an unrelated random
    # pattern (the signature of persistent leakage) should.
    patterns = np.zeros((1, surface_d5.num_data), dtype=np.int64)
    prev = np.zeros((1, surface_d5.num_data), dtype=np.int64)
    context_groups = surface_d5.speculation_groups[qubit]
    z_positions = [
        g.time_slot
        for g in context_groups
        if surface_d5.stabilizers[g.stabilizers[0]].basis == "Z"
    ]
    suffix = sum(1 << p for p in z_positions if p >= z_positions[0])
    complement = sum(1 << p for p in z_positions) ^ suffix
    prev[0, qubit] = suffix
    patterns[0, qubit] = complement
    benign = policy.decide(make_ctx(surface_d5, patterns, prev=prev))
    assert not benign.data_lrc[0, qubit]


def test_gladiator_d_silent_in_round_zero(surface_d5, noise):
    policy = GladiatorDPolicy()
    policy.prepare(surface_d5, noise)
    patterns = np.full((1, surface_d5.num_data), 0, dtype=np.int64)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    patterns[0, qubit] = 0b0101
    decision = policy.decide(make_ctx(surface_d5, patterns, round_index=0))
    assert not decision.data_lrc.any()


def test_mlr_variants_report_usage(surface_d5, noise):
    assert EraserMPolicy().uses_mlr
    assert GladiatorMPolicy().uses_mlr
    assert GladiatorDMPolicy().uses_mlr
    assert not EraserPolicy().uses_mlr
    assert not GladiatorPolicy().uses_mlr


def test_mlr_neighbor_trigger_optional(surface_d5, noise):
    policy = EraserMPolicy(trigger_on_mlr_neighbor=True)
    policy.prepare(surface_d5, noise)
    patterns = np.zeros((1, surface_d5.num_data), dtype=np.int64)
    mlr_neighbor = np.zeros((1, surface_d5.num_data), dtype=bool)
    mlr_neighbor[0, 3] = True
    decision = policy.decide(make_ctx(surface_d5, patterns, mlr_neighbor=mlr_neighbor))
    assert decision.data_lrc[0, 3]


def test_make_policy_registry_names():
    for name in ("eraser", "eraser+m", "gladiator", "gladiator+m", "gladiator-d+m"):
        policy = make_policy(name)
        assert policy is not None
    with pytest.raises(ValueError):
        make_policy("not-a-policy")


def test_policy_config_is_forwarded(surface_d5, noise):
    config = GraphModelConfig(threshold=0.05)
    aggressive = make_policy("gladiator", config=config)
    aggressive.prepare(surface_d5, noise)
    default = make_policy("gladiator")
    default.prepare(surface_d5, noise)
    qubit = next(q for q in range(surface_d5.num_data) if surface_d5.pattern_width(q) == 4)
    assert aggressive.flag_table(qubit).sum() >= default.flag_table(qubit).sum()


def test_flagged_fraction_diagnostic(surface_d5, noise):
    policy = GladiatorPolicy()
    policy.prepare(surface_d5, noise)
    fractions = policy.flagged_fraction()
    assert set(fractions) == {2, 3, 4}
    assert all(0 <= fraction <= 1 for fraction in fractions.values())
