"""Figure 4(b): logical error rate of open-loop policies vs ERASER+M.

Compares No-LRC, Always-LRC, Staggered Always-LRC and ERASER+M on decoded
surface-code memory experiments.  The paper's takeaway: structured open-loop
scheduling (staggering) narrows, but does not close, the gap to closed-loop
speculation.  Quick scale decodes d = 3 and 5; paper scale adds d = 7.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.experiments import compare_policies_decoded, make_code
from repro.noise import paper_noise

POLICIES = ("no-lrc", "always-lrc", "staggered", "eraser+m")


def test_fig04b_openloop_ler(benchmark):
    scale = current_scale()
    distances = [3, 5] if scale.name != "paper" else [3, 5, 7]
    shots = scale.decoded_shots(300)
    noise = paper_noise(p=2e-3, leakage_ratio=0.5)

    def workload():
        rows = []
        for distance in distances:
            code = make_code("surface", distance)
            for row in compare_policies_decoded(
                code,
                noise,
                list(POLICIES),
                shots=shots,
                rounds=3 * distance,
                seed=4,
                leakage_sampling=False,
            ):
                row["distance"] = distance
                rows.append(row)
        return rows

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "d": row["distance"],
            "policy": row["policy"],
            "LER": row["ler"],
            "LRC/round": row["lrcs_per_round"],
            "mean DLP": row["mean_dlp"],
        }
        for row in rows
    ]
    emit("Figure 4(b): open-loop vs closed-loop logical error rate", format_table(table_rows))
    save("fig04b_openloop_ler", {"shots": shots, "p": 2e-3, "lr": 0.5}, table_rows)

    for distance in distances:
        by_policy = {
            row["policy"]: row for row in rows if row["distance"] == distance
        }
        # Unmitigated leakage is never better than the mitigated policies, and
        # the closed-loop policy never needs more LRCs than the open-loop ones.
        assert (
            by_policy["eraser+M"]["lrcs_per_round"]
            < by_policy["staggered"]["lrcs_per_round"]
            < by_policy["always-lrc"]["lrcs_per_round"]
        )
        assert by_policy["eraser+M"]["mean_dlp"] <= by_policy["no-lrc"]["mean_dlp"]
