"""Figure 9: false negatives, false positives and LRC counts per policy.

Surface code, d = 7, p = 1e-3, leakage ratio 0.1 (the paper's Figure 9
configuration).  The paper reports GLADIATOR+M reducing false positives by
~1.56x and LRC insertions by ~1.53x relative to ERASER+M at a ~1.16x increase
in false negatives; GLADIATOR-D+M pushes the FP/LRC reductions further.
"""

from _common import CLOSED_LOOP_POLICIES, current_scale, emit, format_table, run_once, save

from repro.experiments import compare_policies, make_code
from repro.noise import paper_noise


def test_fig09_speculation_accuracy(benchmark):
    scale = current_scale()
    shots = scale.shots(300)
    rounds = scale.rounds(70)
    code = make_code("surface", 7)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        return compare_policies(
            code, noise, list(CLOSED_LOOP_POLICIES), shots=shots, rounds=rounds, seed=9
        )

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "policy": row["policy"],
            "FN/round": row["fn_per_round"],
            "FP/round": row["fp_per_round"],
            "LRC/round": row["lrcs_per_round"],
        }
        for row in rows
    ]
    emit("Figure 9: speculation accuracy (surface d=7, p=1e-3, lr=0.1)", format_table(table_rows))
    save("fig09_speculation_accuracy", {"shots": shots, "rounds": rounds}, table_rows)

    by_policy = {row["policy"]: row for row in rows}
    eraser = by_policy["eraser+M"]
    gladiator = by_policy["gladiator+M"]
    deferred = by_policy["gladiator-d+M"]
    # Paper shape: GLADIATOR variants cut FPs and LRCs, at slightly more FNs.
    assert gladiator["fp_per_round"] < eraser["fp_per_round"]
    assert deferred["fp_per_round"] < gladiator["fp_per_round"]
    assert gladiator["lrcs_per_round"] < eraser["lrcs_per_round"]
    assert deferred["lrcs_per_round"] < eraser["lrcs_per_round"]
    assert gladiator["fn_per_round"] >= eraser["fn_per_round"]
