"""Decode-service capacity curve: sustained streams vs tail round latency.

Drives a real :class:`repro.serve` TCP server (sharded workers, coalescing
on) with growing fleets of concurrent client streams over the wire and
records, per fleet size, the aggregate round throughput and the server's
live SLO percentiles (p50/p99/p999 per-round decode latency priced against
``ROUND_LATENCY_NS``).  The rows land in ``results/BENCH_service.json`` —
the served-capacity twin of ``BENCH_realtime.json`` — and the assertions
pin the capacity floor: the server must sustain ``FLOOR_STREAMS``
concurrent streams with every stream completing, bit-identical failure
accounting, and a bounded p99 round latency.
"""

import time

from _common import current_scale, emit, format_table, run_once, save

from repro.core import make_policy
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.serve import ServerConfig, ServerThread, decode_records
from repro.sim import LeakageSimulator, SimulatorOptions

STREAM_COUNTS = (2, 4, 8)
#: The asserted capacity floor: this many sustained concurrent streams.
FLOOR_STREAMS = 8
#: Generous per-round p99 bound (seconds) for the pure-Python decoder at the
#: floor; the point is a hard regression tripwire, not a absolute target.
P99_BUDGET_SECONDS = 0.25

NOISE = {"p": 1e-3, "leakage_ratio": 1.0}
DISTANCE = 3
SHARDS = 2


def _record(code, shots, rounds, seed):
    simulator = LeakageSimulator(
        code=code,
        noise=paper_noise(**NOISE),
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(record_detectors=True),
        seed=seed,
    )
    result = simulator.run(shots=shots, rounds=rounds)
    return (
        result.detector_history,
        result.final_detectors,
        result.observable_flips,
    )


def test_service_capacity(benchmark):
    scale = current_scale()
    code = make_code("surface", DISTANCE)
    shots = scale.decoded_shots(30)
    rounds = scale.rounds(16)
    window = 4

    # Two distinct recorded runs, cycled to any fleet size: recording is
    # simulator time, not serving time, so keep it out of the hot loop.
    base = [_record(code, shots, rounds, seed) for seed in (41, 97)]

    def workload():
        rows = []
        for count in STREAM_COUNTS:
            records = [base[index % len(base)] for index in range(count)]
            config = ServerConfig(
                port=0,
                shards=SHARDS,
                workers_per_shard=2,
                window_rounds=window,
                fused=True,
                coalesce=True,
                max_streams=4 * FLOOR_STREAMS,
            )
            with ServerThread(config) as server:
                started = time.perf_counter()
                results = decode_records(
                    "127.0.0.1",
                    server.port,
                    records,
                    code={"family": "surface", "distance": DISTANCE},
                    noise=NOISE,
                    tenant="bench",
                )
                elapsed = time.perf_counter() - started
                status = server.status()
            rows.append(
                {
                    "streams": count,
                    "shots": shots,
                    "rounds": rounds,
                    "window": window,
                    "shards": SHARDS,
                    "wall_seconds": elapsed,
                    "streams_per_second": count / elapsed,
                    "rounds_per_second": count * rounds / elapsed,
                    "round_latency_p50_ns": status["round_latency_p50_ns"],
                    "round_latency_p99_ns": status["round_latency_p99_ns"],
                    "round_latency_p999_ns": status["round_latency_p999_ns"],
                    "slo_p99": status["slo_p99"],
                    "coalesce_ratio": status["coalesce_ratio"],
                    "max_queue_depth": status["max_queue_depth"],
                    "streams_done": status["streams_done"],
                    "failures": [result.failures for result in results],
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    table = [{k: v for k, v in row.items() if k != "failures"} for row in rows]
    emit(
        "Decode service capacity: sustained streams vs tail latency",
        format_table(table),
    )
    save(
        "BENCH_service",
        {
            "stream_counts": list(STREAM_COUNTS),
            "floor_streams": FLOOR_STREAMS,
            "p99_budget_seconds": P99_BUDGET_SECONDS,
            "shots": shots,
            "rounds": rounds,
            "shards": SHARDS,
            "noise": NOISE,
        },
        rows,
    )

    # Capacity floor: every fleet size fully served, and at the floor the
    # p99 round latency stays bounded while streams actually coalesced.
    by_streams = {row["streams"]: row for row in rows}
    assert FLOOR_STREAMS in by_streams
    for row in rows:
        assert row["streams_done"] == row["streams"]
        assert all(f is not None for f in row["failures"])
        assert row["round_latency_p99_ns"] >= row["round_latency_p50_ns"] > 0
        # Identical recorded streams must score identical failure counts —
        # the coalesced, sharded, served path cannot change a prediction.
        for index, failures in enumerate(row["failures"]):
            assert failures == row["failures"][index % 2]
    floor = by_streams[FLOOR_STREAMS]
    assert floor["round_latency_p99_ns"] * 1e-9 < P99_BUDGET_SECONDS
    assert floor["coalesce_ratio"] > 1.0
