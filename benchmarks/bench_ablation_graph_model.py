"""Ablation: which parts of the graph model matter (design-choice study).

DESIGN.md calls out three modelling choices behind GLADIATOR's tables: the
FP/FN cost-asymmetry threshold, the second-order non-leakage mechanisms, and
the neighbour-leakage mechanism that keeps dense codes from over-triggering.
This benchmark sweeps those knobs on the d=7 surface code and reports the
resulting LRC / FP / FN operating points, reproducing the trade-off curve the
threshold moves along.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.core import GraphModelConfig, make_policy
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions

CONFIGS = {
    "default (th=0.2)": GraphModelConfig(),
    "threshold 0.5": GraphModelConfig(threshold=0.5),
    "threshold 0.1": GraphModelConfig(threshold=0.1),
    "no second order": GraphModelConfig(include_second_order=False),
    "no neighbor leakage": GraphModelConfig(include_neighbor_leakage=False),
    "no prior completion": GraphModelConfig(include_prior_round_completion=False),
}


def test_ablation_graph_model_choices(benchmark):
    scale = current_scale()
    shots = scale.shots(200)
    rounds = scale.rounds(60)
    code = make_code("surface", 7)
    noise = paper_noise()

    def workload():
        rows = []
        for label, config in CONFIGS.items():
            policy = make_policy("gladiator+m", config=config)
            simulator = LeakageSimulator(
                code,
                noise,
                policy,
                options=SimulatorOptions(leakage_sampling=True),
                seed=77,
            )
            summary = simulator.run(shots=shots, rounds=rounds).summary()
            summary["config"] = label
            rows.append(summary)
        eraser = LeakageSimulator(
            code,
            noise,
            make_policy("eraser+m"),
            options=SimulatorOptions(leakage_sampling=True),
            seed=77,
        ).run(shots=shots, rounds=rounds).summary()
        eraser["config"] = "eraser+M (reference)"
        rows.append(eraser)
        return rows

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "configuration": row["config"],
            "LRC/round": row["lrcs_per_round"],
            "FP/round": row["fp_per_round"],
            "FN/round": row["fn_per_round"],
            "mean DLP": row["mean_dlp"],
        }
        for row in rows
    ]
    emit("Ablation: graph-model design choices (surface d=7)", format_table(table_rows))
    save("ablation_graph_model", {"shots": shots, "rounds": rounds}, table_rows)

    by_config = {row["config"]: row for row in rows}
    # Raising the threshold trades FPs for FNs and vice versa.
    assert (
        by_config["threshold 0.5"]["fp_per_round"]
        <= by_config["default (th=0.2)"]["fp_per_round"]
        <= by_config["threshold 0.1"]["fp_per_round"] + 1e-9
    )
    assert (
        by_config["threshold 0.1"]["fn_per_round"]
        <= by_config["default (th=0.2)"]["fn_per_round"]
        <= by_config["threshold 0.5"]["fn_per_round"] + 1e-9
    )
    # Every ablated variant still beats the ERASER reference on FPs.
    for label in CONFIGS:
        assert by_config[label]["fp_per_round"] < by_config["eraser+M (reference)"]["fp_per_round"]
