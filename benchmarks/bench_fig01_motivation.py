"""Figure 1(b,c): the motivating comparison of ERASER and GLADIATOR.

Panel (b) compares false negatives, false positives and LRC utilisation;
panel (c) tracks the data-leakage population over 100d rounds.  The paper
uses d = 11; the quick configuration runs d = 7 to stay laptop-friendly and
the paper-scale preset restores d = 11.
"""

from _common import current_scale, emit, format_series, format_table, run_once, save

from repro.experiments import compare_policies, make_code
from repro.noise import paper_noise


def test_fig01_motivation(benchmark):
    scale = current_scale()
    distance = 7 if scale.name != "paper" else 11
    shots = scale.shots(250)
    rounds = scale.rounds(120)
    code = make_code("surface", distance)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        return compare_policies(
            code,
            noise,
            ["eraser+m", "gladiator+m", "ideal"],
            shots=shots,
            rounds=rounds,
            seed=1,
        )

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "policy": row["policy"],
            "FN/round": row["fn_per_round"],
            "FP/round": row["fp_per_round"],
            "LRC/round": row["lrcs_per_round"],
            "final DLP": row["final_dlp"],
        }
        for row in rows
    ]
    emit(f"Figure 1(b): speculation comparison (surface d={distance})", format_table(table_rows))
    sample_points = list(range(0, rounds, max(1, rounds // 10)))
    emit(
        f"Figure 1(c): data leakage population (surface d={distance})",
        format_series(
            sample_points,
            {row["policy"]: [float(row["dlp_per_round"][r]) for r in sample_points] for row in rows},
            x_label="round",
        ),
    )
    save("fig01_motivation", {"distance": distance, "shots": shots, "rounds": rounds}, table_rows)

    by_policy = {row["policy"]: row for row in rows}
    assert by_policy["gladiator+M"]["fp_per_round"] < by_policy["eraser+M"]["fp_per_round"]
    assert by_policy["gladiator+M"]["lrcs_per_round"] < by_policy["eraser+M"]["lrcs_per_round"]
    assert by_policy["ideal+M"]["mean_dlp"] <= by_policy["gladiator+M"]["mean_dlp"]
