"""Benchmark-suite configuration.

Makes the in-tree package and the shared benchmark helpers importable, and
prints every reproduced table/figure in the terminal summary so the rows
appear in the benchmark log (pytest captures per-test stdout otherwise).
"""

import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Replay the reproduced tables after the benchmark timing report."""
    try:
        import _common
    except ImportError:  # pragma: no cover - defensive
        return
    if not _common.EMITTED:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "reproduced tables and figure series")
    for title, text in _common.EMITTED:
        terminalreporter.write_line("")
        terminalreporter.write_line(_common.banner(title))
        for line in text.splitlines():
            terminalreporter.write_line(line)
