"""Table 2: leakage-detection efficacy of ERASER and the baselines.

Reports false negatives, false positives, LRC usage and the data-leakage
population after short (70-round) and long (210-round) runs for Always-LRC,
ERASER, ERASER+M, MLR-only, Staggered Always-LRC and GLADIATOR+M — the same
policy line-up as the paper's Table 2 (its "Ours" column).
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.experiments import compare_policies, leakage_equilibrium, make_code
from repro.noise import paper_noise

POLICIES = ("always-lrc", "eraser", "eraser+m", "mlr-only", "staggered", "gladiator+m")


def test_table2_detection_efficacy(benchmark):
    scale = current_scale()
    shots = scale.shots(250)
    short_rounds = scale.rounds(70)
    long_rounds = scale.rounds(210)
    code = make_code("surface", 7)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        short = compare_policies(
            code, noise, list(POLICIES), shots=shots, rounds=short_rounds, seed=2
        )
        long = compare_policies(
            code, noise, list(POLICIES), shots=max(50, shots // 2), rounds=long_rounds, seed=2
        )
        return short, long

    short, long = run_once(benchmark, workload)
    rows = []
    for short_row, long_row in zip(short, long):
        rows.append(
            {
                "policy": short_row["policy"],
                "FN/round": short_row["fn_per_round"],
                "FP/round": short_row["fp_per_round"],
                "LRC/round": short_row["lrcs_per_round"],
                "Leak-short (1e-3)": 1e3 * leakage_equilibrium(short_row["dlp_per_round"]),
                "Leak-long (1e-3)": 1e3 * leakage_equilibrium(long_row["dlp_per_round"]),
            }
        )
    emit("Table 2: leakage-detection efficacy (surface d=7)", format_table(rows))
    save("table2_efficacy", {"shots": shots, "rounds": [short_rounds, long_rounds]}, rows)

    by_policy = {row["policy"]: row for row in rows}
    # Qualitative Table 2 structure:
    #  * Always-LRC has no false negatives but the largest LRC bill,
    #  * MLR-only misses the most leakage (highest FN of the detectors),
    #  * GLADIATOR uses fewer LRCs than ERASER.
    assert by_policy["always-lrc"]["FN/round"] == 0
    assert by_policy["always-lrc"]["LRC/round"] > 10 * by_policy["eraser+M"]["LRC/round"]
    assert by_policy["mlr-only+M"]["FN/round"] >= by_policy["eraser+M"]["FN/round"]
    assert by_policy["gladiator+M"]["LRC/round"] < by_policy["eraser+M"]["LRC/round"]
