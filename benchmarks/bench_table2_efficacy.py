"""Table 2: leakage-detection efficacy of ERASER and the baselines.

Reports false negatives, false positives, LRC usage and the data-leakage
population after short (70-round) and long (210-round) runs for Always-LRC,
ERASER, ERASER+M, MLR-only, Staggered Always-LRC and GLADIATOR+M — the same
policy line-up as the paper's Table 2 (its "Ours" column).
"""

from _common import ExperimentConfig, current_scale, emit, format_table, run_config, run_once, save

from repro.experiments import leakage_equilibrium

POLICIES = ("always-lrc", "eraser", "eraser+m", "mlr-only", "staggered", "gladiator+m")


def test_table2_detection_efficacy(benchmark):
    scale = current_scale()
    shots = scale.shots(250)
    short_rounds = scale.rounds(70)
    long_rounds = scale.rounds(210)
    # One declarative config describes the workload; the short and long runs
    # differ only in their execution budget, and the policy line-up is a
    # sweep axis.  run_config executes on the shared sweep engine, so the
    # rows are bit-identical to the historical compare_policies loop.
    base = ExperimentConfig.from_dict(
        {
            "name": "table2",
            "code": {"name": "surface", "distance": 7},
            "noise": {"preset": "paper", "p": 1e-3, "leakage_ratio": 0.1},
            "execution": {"shots": shots, "rounds": short_rounds, "seed": 2,
                          "decoded": False},
        }
    )
    axes = {"policy.name": list(POLICIES)}

    def workload():
        short = run_config(base, axes)
        long = run_config(
            base.override("execution.shots", max(50, shots // 2)).override(
                "execution.rounds", long_rounds
            ),
            axes,
        )
        return short, long

    short, long = run_once(benchmark, workload)
    rows = []
    for short_row, long_row in zip(short, long):
        rows.append(
            {
                "policy": short_row["policy"],
                "FN/round": short_row["fn_per_round"],
                "FP/round": short_row["fp_per_round"],
                "LRC/round": short_row["lrcs_per_round"],
                "Leak-short (1e-3)": 1e3 * leakage_equilibrium(short_row["dlp_per_round"]),
                "Leak-long (1e-3)": 1e3 * leakage_equilibrium(long_row["dlp_per_round"]),
            }
        )
    emit("Table 2: leakage-detection efficacy (surface d=7)", format_table(rows))
    save("table2_efficacy", {"shots": shots, "rounds": [short_rounds, long_rounds]}, rows)

    by_policy = {row["policy"]: row for row in rows}
    # Qualitative Table 2 structure:
    #  * Always-LRC has no false negatives but the largest LRC bill,
    #  * MLR-only misses the most leakage (highest FN of the detectors),
    #  * GLADIATOR uses fewer LRCs than ERASER.
    assert by_policy["always-lrc"]["FN/round"] == 0
    assert by_policy["always-lrc"]["LRC/round"] > 10 * by_policy["eraser+M"]["LRC/round"]
    assert by_policy["mlr-only+M"]["FN/round"] >= by_policy["eraser+M"]["FN/round"]
    assert by_policy["gladiator+M"]["LRC/round"] < by_policy["eraser+M"]["LRC/round"]
