"""Realtime decoding throughput: streams/sec and per-round latency vs window.

Drives the :mod:`repro.realtime` decode service with four concurrent
GLADIATOR+M syndrome streams per window size and reports, per window size,
the service throughput (streams/sec, rounds/sec) and the p50/p99 per-round
decode latency, priced against the microarchitecture round cadence
(``realtime_factor`` = hardware budget / measured decode time).  The rows
land in ``results/BENCH_realtime.json`` so the perf trajectory of the
streaming pipeline has data points alongside the figure benchmarks.
"""

import time

from _common import current_scale, emit, format_table, run_once, save

from repro.core import make_policy
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.realtime import DecodeService, SimulatorStream

#: Concurrent streams per window size (the acceptance floor is 4).
NUM_STREAMS = 4
WINDOW_SIZES = (4, 8, 16)


def test_realtime_throughput(benchmark):
    scale = current_scale()
    code = make_code("surface", 3)
    noise = paper_noise(p=1e-3, leakage_ratio=1.0)
    shots = scale.decoded_shots(60)
    rounds = scale.rounds(24)

    def workload():
        rows = []
        for window in WINDOW_SIZES:
            streams = [
                SimulatorStream(
                    code=code,
                    noise=noise,
                    policy=make_policy("gladiator+m"),
                    shots=shots,
                    rounds=rounds,
                    seed=31 + 17 * index,
                )
                for index in range(NUM_STREAMS)
            ]
            service = DecodeService(window_rounds=window, workers=NUM_STREAMS)
            started = time.perf_counter()
            reports = service.run(streams)
            elapsed = time.perf_counter() - started
            summaries = [report.summary() for report in reports]
            rows.append(
                {
                    "window": window,
                    "streams": len(reports),
                    "shots": shots,
                    "rounds": rounds,
                    "windows_decoded": sum(s["windows"] for s in summaries),
                    "streams_per_second": len(reports) / elapsed,
                    "rounds_per_second": sum(s["rounds_per_second"] for s in summaries),
                    "round_latency_p50": max(s["round_latency_p50"] for s in summaries),
                    "round_latency_p99": max(s["round_latency_p99"] for s in summaries),
                    "mean_queue_wait": sum(s["mean_queue_wait"] for s in summaries)
                    / len(summaries),
                    "realtime_factor": min(s["realtime_factor"] for s in summaries),
                    "failures": sum(s["failures"] for s in summaries),
                    "per_stream": summaries,
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    table = [{k: v for k, v in row.items() if k != "per_stream"} for row in rows]
    emit(
        "Realtime decode service: throughput and latency vs window size",
        format_table(table),
    )
    save(
        "BENCH_realtime",
        {"streams": NUM_STREAMS, "shots": shots, "rounds": rounds, "policy": "gladiator+M"},
        rows,
    )

    # Shape: every configuration served all four streams, decoded every
    # round, and produced finite latency accounting.
    for row in rows:
        assert row["streams"] == NUM_STREAMS
        assert row["windows_decoded"] >= NUM_STREAMS
        assert row["round_latency_p50"] > 0
        assert row["round_latency_p99"] >= row["round_latency_p50"]
        assert all(s["rounds_committed"] == rounds for s in row["per_stream"])
