"""Figure 11: leakage population and LRC usage on the colour code.

The paper runs a distance-19 colour code for 100 QEC cycles; the quick
configuration uses distance 7 (distance 11 at paper scale) which already
exhibits the qualitative behaviour: ERASER's 50% heuristic over-triggers on
the narrow colour-code patterns, while the GLADIATOR variants insert far
fewer LRCs.
"""

from _common import current_scale, emit, format_series, format_table, run_once, save

from repro.experiments import compare_policies, make_code
from repro.noise import paper_noise

POLICIES = ("eraser+m", "gladiator+m", "gladiator-d+m", "ideal")


def test_fig11_color_code_dlp_and_lrc(benchmark):
    scale = current_scale()
    distance = 7 if scale.name != "paper" else 11
    shots = scale.shots(250)
    rounds = scale.rounds(100)
    code = make_code("color", distance)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        return compare_policies(
            code, noise, list(POLICIES), shots=shots, rounds=rounds, seed=11
        )

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "policy": row["policy"],
            "LRC/round": row["lrcs_per_round"],
            "mean DLP": row["mean_dlp"],
            "final DLP": row["final_dlp"],
        }
        for row in rows
    ]
    emit(f"Figure 11: colour code d={distance}, {rounds} cycles", format_table(table_rows))
    sample_points = list(range(0, rounds, max(1, rounds // 10)))
    emit(
        "Figure 11(a): colour-code data leakage population",
        format_series(
            sample_points,
            {row["policy"]: [float(row["dlp_per_round"][r]) for r in sample_points] for row in rows},
            x_label="round",
        ),
    )
    save("fig11_color_dlp", {"distance": distance, "shots": shots, "rounds": rounds}, table_rows)

    by_policy = {row["policy"]: row for row in rows}
    # ERASER's heuristic over-triggers on narrow colour-code patterns; the
    # GLADIATOR variants insert fewer LRCs (Figure 11(b)).
    assert by_policy["gladiator+M"]["lrcs_per_round"] < by_policy["eraser+M"]["lrcs_per_round"]
    assert by_policy["gladiator-d+M"]["lrcs_per_round"] < by_policy["eraser+M"]["lrcs_per_round"]
    assert by_policy["ideal+M"]["mean_dlp"] <= by_policy["gladiator+M"]["mean_dlp"]
