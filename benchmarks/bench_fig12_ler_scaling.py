"""Figure 12: logical error rate vs code distance.

Decoded memory experiments for increasing surface-code distance under the
paper's noise profile, comparing Always-LRC, ERASER+M, GLADIATOR+M and the
NO-LRC reference whose LER *grows* with distance because unmitigated leakage
accumulates.  Also reports the error-suppression factor Lambda.
"""

from _common import SweepSpec, current_scale, emit, format_table, run_once, run_sweep, save

from repro.experiments import average_suppression_factor

POLICIES = ("no-lrc", "always-lrc", "eraser+m", "gladiator+m")


def test_fig12_ler_vs_distance(benchmark):
    scale = current_scale()
    distances = [3, 5] if scale.name != "paper" else [3, 5, 7]
    shots = scale.decoded_shots(400)
    spec = SweepSpec(
        name="fig12_ler_scaling",
        distances=tuple(distances),
        error_rates=(1e-3,),
        leakage_ratios=(1.0,),
        policies=POLICIES,
        shots=shots,
        rounds=lambda distance: 4 * distance,
        decoded=True,
        seed=12,
    )

    def workload():
        return run_sweep(spec)

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "d": row["distance"],
            "policy": row["policy"],
            "LER": row["ler"],
            "LER/round": row["ler_per_round"],
            "mean DLP": row["mean_dlp"],
        }
        for row in rows
    ]
    emit("Figure 12: logical error rate vs code distance", format_table(table_rows))

    lambda_rows = []
    for policy in ("eraser+M", "gladiator+M", "no-lrc"):
        lers = {
            row["distance"]: max(row["ler_per_round"], 1e-6)
            for row in rows
            if row["policy"] == policy
        }
        lambda_rows.append(
            {"policy": policy, "Lambda (per-round)": average_suppression_factor(lers)}
        )
    emit("Figure 12: error-suppression factor", format_table(lambda_rows))
    save("fig12_ler_scaling", {"shots": shots, "p": 1e-3, "lr": 1.0}, table_rows + lambda_rows)

    # Shape: with mitigation, larger distance suppresses the per-round LER;
    # without any LRC the leakage population at the larger distance is worse.
    for policy in ("eraser+M", "gladiator+M"):
        per_round = {
            row["distance"]: row["ler_per_round"] for row in rows if row["policy"] == policy
        }
        assert per_round[distances[-1]] <= per_round[distances[0]] + 0.02
    no_lrc_dlp = {row["distance"]: row["mean_dlp"] for row in rows if row["policy"] == "no-lrc"}
    mitigated_dlp = {
        row["distance"]: row["mean_dlp"] for row in rows if row["policy"] == "gladiator+M"
    }
    for distance in distances:
        assert mitigated_dlp[distance] < no_lrc_dlp[distance]
