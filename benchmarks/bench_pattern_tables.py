"""Pattern-classification tables (Sections 4.1-4.3, 5.2 and Appendix B).

Summarises, for every code family, how many syndrome patterns each policy
flags as leakage-critical, alongside the minimised Boolean expression that
the hardware sequence checker would implement.  These are the offline
artefacts of GLADIATOR (no simulation involved), so this benchmark also
measures how long the offline stage takes.
"""

from _common import emit, format_table, run_once, save

from repro.core import (
    EraserPolicy,
    GladiatorDPolicy,
    GladiatorPolicy,
    expression_to_string,
    quine_mccluskey,
)
from repro.experiments import make_code
from repro.noise import paper_noise

FAMILIES = (("surface", 7), ("color", 7), ("hgp", None), ("bpc", None))


def test_pattern_classification_tables(benchmark):
    noise = paper_noise()

    def workload():
        rows = []
        expressions = []
        for family, distance in FAMILIES:
            code = make_code(family, distance)
            eraser = EraserPolicy()
            eraser.prepare(code, noise)
            gladiator = GladiatorPolicy()
            gladiator.prepare(code, noise)
            widest = max(code.pattern_widths)
            qubit = next(q for q in range(code.num_data) if code.pattern_width(q) == widest)
            eraser_count = int(eraser.flag_table(qubit).sum())
            gladiator_count = int(gladiator.flag_table(qubit).sum())
            # The deferred two-round tables grow as 4**width; enumerate them
            # only for the narrow-pattern codes (surface, colour), as the
            # paper does.
            if widest <= 6:
                deferred = GladiatorDPolicy()
                deferred.prepare(code, noise)
                deferred_count = f"{int(deferred.flag_table(qubit).sum())}/{1 << (2 * widest)}"
            else:
                deferred_count = "-"
            rows.append(
                {
                    "code": code.name,
                    "pattern width": widest,
                    "eraser flags": f"{eraser_count}/{1 << widest}",
                    "gladiator flags": f"{gladiator_count}/{1 << widest}",
                    "gladiator-d flags": deferred_count,
                }
            )
            if widest <= 6:
                table = gladiator.flag_table(qubit)
                minterms = {v for v in range(table.shape[0]) if table[v]}
                implicants = quine_mccluskey(minterms, widest)
                expressions.append(
                    {
                        "code": code.name,
                        "minimised GLADIATOR expression": expression_to_string(
                            implicants, widest
                        ),
                    }
                )
        return rows, expressions

    rows, expressions = run_once(benchmark, workload)
    emit("Pattern classification summary (widest qubits per code)", format_table(rows))
    emit("Appendix B style minimised expressions", format_table(expressions))
    save("pattern_tables", {}, rows + expressions)

    by_code = {row["code"].split("_")[0]: row for row in rows}
    # ERASER's fixed 50% rule flags 11/16 surface and 4/8 colour patterns.
    assert by_code["surface"]["eraser flags"] == "11/16"
    assert by_code["color"]["eraser flags"] == "4/8"
    # GLADIATOR flags strictly fewer single-round patterns on those codes.
    for family in ("surface", "color"):
        gladiator_count = int(by_code[family]["gladiator flags"].split("/")[0])
        eraser_count = int(by_code[family]["eraser flags"].split("/")[0])
        assert gladiator_count < eraser_count
