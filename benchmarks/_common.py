"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it simulates
the relevant workload, prints the same rows/series the paper reports, saves a
JSON record under ``results/`` and asserts the qualitative shape (who wins,
roughly by how much).  Absolute numbers differ from the paper because the
substrate is a pure-Python simulator with scaled-down shot counts; set
``REPRO_SCALE=paper`` for larger runs.

All benchmarks run their workload exactly once through
``benchmark.pedantic`` so that pytest-benchmark reports the wall-clock cost
of regenerating the experiment without re-running it dozens of times.
"""

from __future__ import annotations

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.api import ExperimentConfig, Session  # noqa: E402
from repro.experiments import current_scale  # noqa: E402
from repro.io import ResultRecord, banner, format_series, format_table, results_dir, save_records  # noqa: E402
from repro.sweeps import SweepSpec, default_executor  # noqa: E402

__all__ = [
    "current_scale",
    "run_once",
    "emit",
    "save",
    "run_sweep",
    "run_config",
    "group_rows",
    "ExperimentConfig",
    "Session",
    "SweepSpec",
    "format_table",
    "format_series",
    "banner",
]

#: Policies compared in most closed-loop benchmarks, in the paper's order.
CLOSED_LOOP_POLICIES = (
    "eraser",
    "gladiator",
    "gladiator-d",
    "eraser+m",
    "gladiator+m",
    "gladiator-d+m",
)


def run_once(benchmark, workload):
    """Execute ``workload`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(workload, iterations=1, rounds=1)


def run_sweep(spec: SweepSpec) -> list[dict]:
    """Execute a declarative sweep on the shared engine.

    The engine honours ``REPRO_WORKERS`` (process pool size; default 1 =
    serial) and ``REPRO_CACHE=1`` (memoize completed units under
    ``.repro_cache/``), so benchmark runs parallelise and deduplicate
    without per-script changes.
    """
    return default_executor().run(spec)


def run_config(config: ExperimentConfig | dict, axes: dict | None = None) -> list[dict]:
    """Execute one declarative config (optionally gridded) on the sweep engine.

    The config-first twin of :func:`run_sweep` for benchmarks that describe
    their workload as an :class:`repro.api.ExperimentConfig` (or its dict
    form) instead of a :class:`SweepSpec`.  ``axes`` maps dotted config
    paths to value lists, exactly as :meth:`repro.api.Session.sweep` takes
    them.
    """
    return Session.from_config(config).sweep(axes)


def group_rows(rows: list[dict], key: str) -> dict:
    """Group summary rows by one of their grid-coordinate labels."""
    grouped: dict = {}
    for row in rows:
        grouped.setdefault(row[key], []).append(row)
    return grouped


#: Tables and series emitted by benchmarks during this session; the
#: benchmarks' conftest prints them in the terminal summary so they appear in
#: the benchmark log even though pytest captures per-test output.
EMITTED: list[tuple[str, str]] = []


def emit(title: str, text: str) -> None:
    """Record and print one reproduced table/figure with a separating banner."""
    EMITTED.append((title, text))
    stream = sys.__stdout__ or sys.stdout
    stream.write("\n" + banner(title) + "\n" + text + "\n")
    stream.flush()


def save(experiment: str, parameters: dict, rows: list[dict]) -> None:
    """Persist benchmark rows as a JSON record under ``results/``."""
    records = [
        ResultRecord(experiment=experiment, parameters=parameters, metrics=row)
        for row in rows
    ]
    save_records(records, results_dir() / f"{experiment}.json")
