"""Figure 8: leakage-pattern classification on the colour code.

The paper compares how many of the 3-bit colour-code patterns (and of the
two-round pattern pairs) each policy flags: ERASER marks 4/8 single-round
patterns, GLADIATOR slightly fewer, and the deferred GLADIATOR-D flags a far
smaller fraction of the 64 two-round pairs than ERASER's two-round
equivalent (both rounds >= 50% flipped).
"""

from _common import emit, format_table, run_once, save

from repro.core import (
    EraserPolicy,
    GladiatorDPolicy,
    GladiatorPolicy,
    eraser_flags_pattern,
)
from repro.experiments import make_code
from repro.noise import paper_noise


def test_fig08_color_pattern_classification(benchmark):
    code = make_code("color", 7)
    noise = paper_noise()

    def workload():
        eraser = EraserPolicy()
        eraser.prepare(code, noise)
        gladiator = GladiatorPolicy()
        gladiator.prepare(code, noise)
        deferred = GladiatorDPolicy()
        deferred.prepare(code, noise)
        interior = next(q for q in range(code.num_data) if code.pattern_width(q) == 3)
        return {
            "eraser": eraser.flag_table(interior),
            "gladiator": gladiator.flag_table(interior),
            "gladiator-d": deferred.flag_table(interior),
        }

    tables = run_once(benchmark, workload)
    eraser_two_round = sum(
        1
        for prev in range(8)
        for cur in range(8)
        if eraser_flags_pattern(prev, 3) and eraser_flags_pattern(cur, 3)
    )
    rows = [
        {
            "policy": "eraser",
            "3-bit patterns flagged": int(tables["eraser"].sum()),
            "two-round pairs flagged": eraser_two_round,
        },
        {
            "policy": "gladiator",
            "3-bit patterns flagged": int(tables["gladiator"].sum()),
            "two-round pairs flagged": "-",
        },
        {
            "policy": "gladiator-d",
            "3-bit patterns flagged": "-",
            "two-round pairs flagged": int(tables["gladiator-d"].sum()),
        },
    ]
    emit("Figure 8: colour-code pattern classification (interior qubits)", format_table(rows))
    save("fig08_color_patterns", {"distance": 7}, rows)

    assert int(tables["eraser"].sum()) == 4  # the paper's 4/8
    assert int(tables["gladiator"].sum()) < 4
    # The deferred table flags a minority of the two-round space (the paper
    # reports 11/64 vs ERASER's 16/64; our richer error enumeration lands in
    # the same ballpark but not on the identical count, see EXPERIMENTS.md).
    assert 0 < int(tables["gladiator-d"].sum()) < 32
