"""Figure 5: per-pattern LRC breakdown for ERASER+M vs GLADIATOR+M.

For every 4-bit surface-code syndrome pattern the paper shows how many LRCs
each policy inserts when the data qubit is genuinely leaked (useful LRCs)
versus not leaked (unnecessary LRCs).  ERASER's heuristic spends most of its
LRCs on frequent benign patterns such as the deterministic data-error
signatures; GLADIATOR's flagged set avoids them.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.core import EraserPolicy, GladiatorPolicy, make_policy, pattern_to_string
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


def test_fig05_pattern_breakdown(benchmark):
    scale = current_scale()
    shots = scale.shots(200)
    rounds = scale.rounds(60)
    code = make_code("surface", 7)
    noise = paper_noise()

    def workload():
        simulator = LeakageSimulator(
            code,
            noise,
            make_policy("eraser+m"),
            options=SimulatorOptions(leakage_sampling=True, record_patterns=True),
            seed=5,
        )
        return simulator.run(shots=shots, rounds=rounds)

    result = run_once(benchmark, workload)
    histogram = result.pattern_histogram[4]

    eraser = EraserPolicy()
    eraser.prepare(code, noise)
    gladiator = GladiatorPolicy()
    gladiator.prepare(code, noise)
    bulk = next(q for q in range(code.num_data) if code.pattern_width(q) == 4)
    eraser_table = eraser.flag_table(bulk)
    gladiator_table = gladiator.flag_table(bulk)

    rows = []
    for value in range(1, 16):
        leaked, clean = histogram[value]
        rows.append(
            {
                "pattern": pattern_to_string(value, 4),
                "observed (leaked)": leaked,
                "observed (clean)": clean,
                "eraser LRC": "yes" if eraser_table[value] else "no",
                "gladiator LRC": "yes" if gladiator_table[value] else "no",
            }
        )
    emit("Figure 5: per-pattern LRC breakdown (4-bit surface patterns)", format_table(rows))
    save("fig05_pattern_breakdown", {"shots": shots, "rounds": rounds}, rows)

    # Shape: the clean-dominated patterns flagged by ERASER but not GLADIATOR
    # are exactly where the unnecessary LRCs come from.
    eraser_clean = sum(
        histogram[v][1] for v in range(1, 16) if eraser_table[v]
    )
    gladiator_clean = sum(
        histogram[v][1] for v in range(1, 16) if gladiator_table[v]
    )
    assert gladiator_clean < eraser_clean
    assert int(gladiator_table.sum()) < int(eraser_table.sum())
