"""Decode throughput: the batched engine vs the per-shot decode loop.

One d=5, p=1e-3 memory batch (10k shots at the default scale) is decoded
four ways per decoder backend:

* ``legacy``  — the pre-engine per-shot loop, reproduced verbatim below
  (per-syndrome dijkstra, blossom matching for every exact syndrome, no
  caching): the hot path as it stood before the batched engine landed,
  frozen here so the baseline cannot drift as the library improves,
* ``per_shot`` — the engine's own ``decode_shot`` looped shot by shot with
  the syndrome cache disabled,
* ``batch``   — ``decode_batch`` on a cold cache: whole-batch NumPy
  syndrome extraction, deduplication, analytic/DP fast paths and all-pairs
  shortest-path tables,
* ``warm``    — ``decode_batch`` again on the now-populated cache: the
  steady state every later chunk of a sweep (and every multiplexed realtime
  stream) runs at.

All four produce predictions that are checked for consistency; the engine
rows must be bit-identical to each other by construction.  Rows land in
``results/BENCH_decode.json`` so the decode-throughput trajectory has data
points alongside ``BENCH_realtime.json``.
"""

import time

import networkx as nx
import numpy as np
from scipy.sparse.csgraph import dijkstra

from _common import current_scale, emit, format_table, run_once, save

from repro.core import make_policy
from repro.decoders import DetectorGraph, make_decoder
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions

DISTANCE = 5
BASE_SHOTS = 10_000
BASE_ROUNDS = 10
#: The acceptance floor: the batched engine must beat the legacy per-shot
#: loop by at least this factor on the matching backend.
SPEEDUP_FLOOR = 5.0


# --------------------------------------------------------------------- #
# Frozen baseline: the per-shot matching decode as of the pre-batch engine
# --------------------------------------------------------------------- #
def _legacy_exact_matching(flagged, distances, boundary):
    """Blossom matching with per-detector virtual boundary copies."""
    count = flagged.size
    graph = nx.Graph()
    large = 1e9
    for i in range(count):
        for j in range(i + 1, count):
            graph.add_edge(("d", i), ("d", j), weight=large - distances[i, int(flagged[j])])
        graph.add_edge(("d", i), ("b", i), weight=large - distances[i, boundary])
    for i in range(count):
        for j in range(i + 1, count):
            graph.add_edge(("b", i), ("b", j), weight=large)
    matching = nx.max_weight_matching(graph, maxcardinality=True)
    pairs = []
    for left, right in matching:
        kinds = {left[0], right[0]}
        if kinds == {"d"}:
            pairs.append((int(flagged[left[1]]), int(flagged[right[1]])))
        elif kinds == {"d", "b"}:
            detector = left if left[0] == "d" else right
            pairs.append((int(flagged[detector[1]]), boundary))
    return pairs


def _legacy_decode_shot(graph, greedy_fallback, history, final, max_exact_nodes=60):
    """One shot through the legacy path: dijkstra + blossom, no fast paths."""
    flagged = graph.flagged_nodes(history, final)
    if flagged.size == 0:
        return 0
    distances, predecessors = dijkstra(
        graph.sparse_weights, directed=False, indices=flagged, return_predecessors=True
    )
    boundary = graph.boundary_node
    if flagged.size <= max_exact_nodes:
        pairs = _legacy_exact_matching(flagged, distances, boundary)
    else:
        pairs = greedy_fallback(flagged, distances, boundary)
    index_of = {int(node): i for i, node in enumerate(flagged)}
    parity = 0
    for node_a, node_b in pairs:
        source_row = predecessors[index_of[node_a]]
        node = int(node_b)
        while True:
            previous = source_row[node]
            if previous < 0:
                break
            edge = graph.edge_between(int(previous), node)
            if edge is not None and edge.flips_logical:
                parity ^= 1
            node = int(previous)
    return parity


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_decode_batch_throughput(benchmark):
    scale = current_scale()
    shots = scale.decoded_shots(BASE_SHOTS)
    rounds = scale.rounds(BASE_ROUNDS)
    code = make_code("surface", DISTANCE)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(record_detectors=True),
        seed=101,
    )
    run = simulator.run(shots=shots, rounds=rounds)
    history, final = run.detector_history, run.final_detectors
    events = np.concatenate([history.reshape(shots, -1), final], axis=1)
    unique_syndromes = len(np.unique(np.packbits(events, axis=1), axis=0))
    graph = DetectorGraph(code=code, rounds=rounds, noise=noise, hyperedges="decompose")

    def workload():
        rows = []
        for method in ("matching", "union_find"):
            if method == "matching":
                fallback = make_decoder(graph, method, cache_size=0)._greedy_matching
                legacy, legacy_s = _timed(
                    lambda: np.array(
                        [
                            bool(_legacy_decode_shot(graph, fallback, history[i], final[i]))
                            for i in range(shots)
                        ]
                    )
                )
            else:
                # Union-find predates the engine unchanged: its legacy loop
                # is the engine's own per-shot path without the cache.
                uncached = make_decoder(graph, method, cache_size=0)
                legacy, legacy_s = _timed(
                    lambda: np.array(
                        [bool(uncached.decode_shot(history[i], final[i])) for i in range(shots)]
                    )
                )
            per_shot_decoder = make_decoder(graph, method, cache_size=0)
            per_shot, per_shot_s = _timed(
                lambda: np.array(
                    [
                        bool(per_shot_decoder.decode_shot(history[i], final[i]))
                        for i in range(shots)
                    ]
                )
            )
            engine = make_decoder(graph, method)
            batch, batch_s = _timed(lambda: engine.decode_batch(history, final))
            warm, warm_s = _timed(lambda: engine.decode_batch(history, final))

            # Correctness before speed: the engine is bit-identical to its
            # own per-shot loop, warm replay included.
            assert np.array_equal(batch, per_shot)
            assert np.array_equal(batch, warm)
            failures = int((batch ^ run.observable_flips).sum())
            legacy_failures = int((legacy ^ run.observable_flips).sum())
            rows.append(
                {
                    "method": method,
                    "shots": shots,
                    "rounds": rounds,
                    "unique_syndromes": unique_syndromes,
                    "legacy_seconds": legacy_s,
                    "per_shot_seconds": per_shot_s,
                    "batch_seconds": batch_s,
                    "warm_seconds": warm_s,
                    "speedup_vs_legacy": legacy_s / batch_s,
                    "speedup_warm": legacy_s / warm_s,
                    "batch_shots_per_second": shots / batch_s,
                    "warm_shots_per_second": shots / warm_s,
                    "failures": failures,
                    "legacy_failures": legacy_failures,
                    "cache": engine.cache.stats(),
                }
            )
        return rows

    rows = run_once(benchmark, workload)
    table = [{k: v for k, v in row.items() if k != "cache"} for row in rows]
    emit("Batched decode engine vs per-shot loops (d=5, p=1e-3)", format_table(table))
    save(
        "BENCH_decode",
        {
            "distance": DISTANCE,
            "p": 1e-3,
            "leakage_ratio": 0.1,
            "shots": shots,
            "rounds": rounds,
            "policy": "gladiator+m",
        },
        rows,
    )

    for row in rows:
        # Dedup really happened, the cache really filled, results agree.
        assert row["unique_syndromes"] < row["shots"]
        assert row["cache"]["entries"] > 0
        # Tie syndromes may decode to different (equal-weight) corrections
        # across backends; the failure counts must still agree closely.
        assert abs(row["failures"] - row["legacy_failures"]) <= max(
            2, row["shots"] // 500
        )
    matching_row = next(row for row in rows if row["method"] == "matching")
    assert matching_row["speedup_vs_legacy"] >= SPEEDUP_FLOOR, matching_row
    union_find_row = next(row for row in rows if row["method"] == "union_find")
    assert union_find_row["speedup_vs_legacy"] >= 1.0, union_find_row
