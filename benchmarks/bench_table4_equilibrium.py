"""Table 4: leakage equilibrium across leakage ratios and speculation inaccuracy across p.

The paper reports, for d = 11, the steady-state leakage population of
GLADIATOR+M and ERASER+M at lr = 0.01, 0.1 and 1.0, and their combined
FP+FN ("speculation inaccuracy") at p = 1e-3 and 1e-4.  The quick preset
uses d = 7.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.experiments import compare_policies, leakage_equilibrium, make_code
from repro.noise import paper_noise

POLICIES = ("eraser+m", "gladiator+m")


def test_table4_equilibrium_and_inaccuracy(benchmark):
    scale = current_scale()
    distance = 7 if scale.name != "paper" else 11
    shots = scale.shots(200)
    rounds = scale.rounds(120)
    code = make_code("surface", distance)

    def workload():
        equilibrium = {}
        for leakage_ratio in (0.01, 0.1, 1.0):
            noise = paper_noise(p=1e-3, leakage_ratio=leakage_ratio)
            equilibrium[leakage_ratio] = compare_policies(
                code, noise, list(POLICIES), shots=shots, rounds=rounds, seed=4
            )
        inaccuracy = {}
        for p in (1e-3, 1e-4):
            noise = paper_noise(p=p, leakage_ratio=0.1)
            inaccuracy[p] = compare_policies(
                code, noise, list(POLICIES), shots=shots, rounds=scale.rounds(60), seed=4
            )
        return equilibrium, inaccuracy

    equilibrium, inaccuracy = run_once(benchmark, workload)

    rows = []
    for policy_index, policy_name in enumerate(("eraser+M", "gladiator+M")):
        row = {"method": policy_name}
        for leakage_ratio, results in equilibrium.items():
            row[f"equilibrium lr={leakage_ratio}"] = leakage_equilibrium(
                results[policy_index]["dlp_per_round"]
            )
        for p, results in inaccuracy.items():
            row[f"inaccuracy p={p}"] = results[policy_index]["speculation_inaccuracy"]
        rows.append(row)
    emit(f"Table 4: leakage equilibrium and speculation inaccuracy (d={distance})", format_table(rows))
    save("table4_equilibrium", {"distance": distance, "shots": shots}, rows)

    # Shape: equilibrium leakage grows with the leakage ratio (compared
    # between the two well-populated operating points, lr = 0.1 and 1.0; the
    # lr = 0.01 column is dominated by the seeded-leak transient at quick
    # scale), and lowering p reduces the speculation inaccuracy for both.
    for row in rows:
        assert row["equilibrium lr=1.0"] > row["equilibrium lr=0.1"]
        assert row["inaccuracy p=0.0001"] < row["inaccuracy p=0.001"]
    # GLADIATOR keeps its lower-FP advantage at both error rates.
    for p, results in inaccuracy.items():
        assert results[1]["fp_per_round"] < results[0]["fp_per_round"]
