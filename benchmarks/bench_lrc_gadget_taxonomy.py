"""LRC gadget taxonomy study (Section 2.4).

The paper classifies leakage-reduction circuits into reset-based (SWAP),
specialised-hardware (DQLR-style) and other families, each with different
latency, added gate error and induced leakage.  This benchmark runs the same
GLADIATOR+M speculation with each gadget model and reports how the gadget
choice moves the leakage population and the cycle-time overhead — the reason
LRC *scheduling* (not just the gadget) matters.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.circuits import LRC_GADGETS, CycleTimeModel
from repro.core import make_policy
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions


def test_lrc_gadget_taxonomy(benchmark):
    scale = current_scale()
    shots = scale.shots(200)
    rounds = scale.rounds(60)
    code = make_code("surface", 7)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        results = {}
        for name, gadget in LRC_GADGETS.items():
            simulator = LeakageSimulator(
                code=code,
                noise=noise,
                policy=make_policy("gladiator+m"),
                gadget=gadget,
                options=SimulatorOptions(leakage_sampling=True),
                seed=33,
            )
            results[name] = simulator.run(shots=shots, rounds=rounds)
        return results

    results = run_once(benchmark, workload)
    rows = []
    for name, result in results.items():
        gadget = LRC_GADGETS[name]
        cycle = CycleTimeModel(code, noise, gadget=gadget)
        rows.append(
            {
                "gadget": name,
                "latency (ns)": gadget.latency_ns,
                "removal prob": gadget.removal_prob,
                "LRCs/round": result.lrcs_per_round,
                "mean DLP": result.mean_dlp,
                "cycle time (ns)": cycle.round_duration_ns(result.lrcs_per_round),
            }
        )
    emit("Section 2.4: LRC gadget taxonomy under GLADIATOR+M (surface d=7)", format_table(rows))
    save("lrc_gadget_taxonomy", {"shots": shots, "rounds": rounds}, rows)

    by_gadget = {row["gadget"]: row for row in rows}
    # Every gadget keeps the leakage population bounded under speculation,
    # and the faster DQLR-style gadget yields the shortest cycle time.
    for row in rows:
        assert row["mean DLP"] < 0.05
    assert by_gadget["dqlr"]["cycle time (ns)"] <= by_gadget["swap"]["cycle time (ns)"]
