"""Disabled-telemetry overhead: the instrumented round loop vs a frozen bare one.

The ``repro.obs`` contract is that telemetry costs nothing measurable when
it is off: a disabled instrument is one attribute load and one branch, and
the simulator's span hooks reduce to a hoisted ``is not None`` check per
round.  This benchmark pins that contract.  :class:`BareLeakageSimulator`
freezes the pre-telemetry ``_run_round`` *verbatim* (phase accounting via
``self._phase_ns`` only, no tracer hooks) so the baseline cannot drift as
instrumentation accumulates, then races the instrumented engine against it
on the same reference configuration ``bench_sim_round.py`` asserts its
speedup floor on (d=5, 100 rounds, 20k shots, leakage sampling on).

Runs are interleaved and each side takes its min-of-N, which strips
scheduler jitter; the asserted bound is ``OVERHEAD_CEILING`` (<=2%).  Both
sides consume the identical RNG stream — telemetry never touches the
simulation RNG — so the race is also a bit-identity check.  Rows land in
``results/BENCH_obs.json``.
"""

import time

import numpy as np

from _common import emit, format_table, run_once, save

from repro.core import make_policy
from repro.core.speculator import SpeculationInput
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.obs.metrics import METRICS
from repro.obs.trace import current_tracer
from repro.sim import LeakageSimulator, SimulatorOptions
from repro.sim.simulator import (
    RoundRecord,
    _pack_register,
    _unpack_register,
)

#: The acceptance ceiling: with telemetry disabled, the instrumented round
#: loop must stay within this factor of the frozen uninstrumented baseline.
OVERHEAD_CEILING = 1.02

#: Interleaved repetitions per side; min-of-N strips scheduler jitter.
REPETITIONS = 3

#: The reference configuration of ``bench_sim_round.py``'s speedup floor,
#: deliberately *not* scaled by REPRO_SCALE: the overhead bound is asserted
#: on the same workload everywhere, laptop and CI alike.
FLOOR_DISTANCE = 5
FLOOR_SHOTS = 20_000
FLOOR_ROUNDS = 100


class BareLeakageSimulator(LeakageSimulator):
    """The pre-telemetry round loop, frozen for baseline timing.

    ``_run_round`` is the body as it stood before the ``repro.obs`` span
    hooks landed: phase accounting through the optional ``self._phase_ns``
    dict only.  The signature is unchanged, so ``run_incremental`` (which
    now also primes ``self._round_tracer``) drives it as-is — with no
    tracer active the two engines draw the identical RNG stream.
    """

    def _run_round(
        self,
        state,
        round_index,
        ws,
        source,
        totals,
        detector_history,
        pattern_histogram,
    ):
        noise = self.noise.params_for_round(round_index)
        shots = state.shots
        timing = self._phase_ns
        tick = time.perf_counter_ns() if timing is not None else 0

        lrcs_this_round = int(np.count_nonzero(ws.data_lrc))
        anc_lrcs_this_round = int(np.count_nonzero(ws.anc_lrc))
        source.start_round(bool(lrcs_this_round), bool(anc_lrcs_this_round))
        totals["lrc"] += lrcs_this_round
        totals["anc_lrc"] += anc_lrcs_this_round
        if lrcs_this_round:
            self._apply_lrc(
                ws.data_lrc, state.data_leaked, state.data_x, state.data_z,
                ws.data, source, totals, return_flips=True,
            )
        if anc_lrcs_this_round:
            self._apply_lrc(
                ws.anc_lrc, state.anc_leaked, state.anc_x, state.anc_z,
                ws.anc, source, totals, return_flips=False,
            )

        state.depolarize_data(noise.p, source=source, scratch=ws.data)
        totals["leak_events"] += state.inject_data_leakage(
            noise.p_leak, source=source, scratch=ws.data
        )

        state.reset_ancillas(
            noise.p,
            leakage_removal_probability=noise.ancilla_reset_removes_leakage,
            source=source,
            scratch=ws.anc,
        )
        totals["leak_events"] += state.inject_ancilla_leakage(
            noise.p_leak, source=source, scratch=ws.anc
        )
        if timing is not None:
            now = time.perf_counter_ns()
            timing["noise"] += now - tick
            tick = now

        _pack_register(ws.data_pack, state.data_x, state.data_z, state.data_leaked, ws.data_u8)
        _pack_register(ws.anc_pack, state.anc_x, state.anc_z, state.anc_leaked, ws.anc_u8)
        for layer_index in range(len(self._slot_anc)):
            totals["leak_events"] += self._apply_cnot_layer(layer_index, ws, source)
        _unpack_register(ws.data_pack, state.data_x, state.data_z, state.data_leaked, ws.data_u8)
        _unpack_register(ws.anc_pack, state.anc_x, state.anc_z, state.anc_leaked, ws.anc_u8)
        if timing is not None:
            now = time.perf_counter_ns()
            timing["cnot_layers"] += now - tick
            tick = now

        self._measure(state, ws, source)
        np.logical_xor(ws.measurement, state.prev_measurement, out=ws.detectors)
        if round_index == 0:
            ws.detectors[:, self._x_stab_indices] = False
        state.prev_measurement, ws.measurement = ws.measurement, state.prev_measurement
        z_detectors = ws.detectors[:, self._z_stab_indices]
        if detector_history is not None:
            detector_history[:, round_index, :] = z_detectors
        if timing is not None:
            now = time.perf_counter_ns()
            timing["measure"] += now - tick
            tick = now

        self._extract_patterns(ws.detectors, ws.pattern_a, ws)
        if ws.mlr_flags is not None and ws.mlr_neighbor is not None:
            self._mlr_neighbor(ws.mlr_flags, ws.mlr_neighbor, ws)
        ctx = SpeculationInput(
            round_index=round_index,
            pattern_ints=ws.pattern_a,
            prev_pattern_ints=ws.pattern_b,
            detectors=ws.detectors,
            mlr_flags=ws.mlr_flags,
            mlr_neighbor=ws.mlr_neighbor,
            data_leaked=state.data_leaked,
        )
        self.policy.decide_into(
            ctx, ws.data_lrc, ws.anc_lrc if ws.emits_ancilla_lrc else None
        )
        if timing is not None:
            now = time.perf_counter_ns()
            timing["speculate"] += now - tick
            tick = now

        data = ws.data
        lrc_u8 = ws.data_lrc.view(np.uint8)
        leaked_u8 = state.data_leaked.view(np.uint8)
        np.bitwise_xor(leaked_u8, 1, out=data.t1)
        np.bitwise_and(lrc_u8, data.t1, out=data.t2)
        false_positives = int(np.count_nonzero(data.t2))
        np.bitwise_xor(lrc_u8, 1, out=data.t1)
        np.bitwise_and(leaked_u8, data.t1, out=data.t2)
        false_negatives = int(np.count_nonzero(data.t2))
        np.bitwise_and(lrc_u8, leaked_u8, out=data.t2)
        true_positives = int(np.count_nonzero(data.t2))
        totals["fp"] += false_positives
        totals["fn"] += false_negatives
        totals["tp"] += true_positives

        if self.options.record_patterns:
            self._record_patterns(ws.pattern_a, state.data_leaked, pattern_histogram)

        record = RoundRecord(
            round_index=round_index,
            data_leakage_population=state.leaked_fraction(),
            ancilla_leakage_population=float(state.anc_leaked.mean()),
            lrcs_applied=lrcs_this_round / shots,
            false_positives=false_positives / shots,
            false_negatives=false_negatives / shots,
            true_positives=true_positives / shots,
        )
        ws.pattern_a, ws.pattern_b = ws.pattern_b, ws.pattern_a
        if timing is not None:
            timing["bookkeeping"] += time.perf_counter_ns() - tick
        return record, z_detectors


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #
def _build(simulator_cls):
    return simulator_cls(
        code=make_code("surface", FLOOR_DISTANCE),
        noise=paper_noise(p=1e-3, leakage_ratio=0.1),
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(leakage_sampling=True, record_detectors=False),
        seed=202,
    )


def _timed_run(simulator_cls):
    simulator = _build(simulator_cls)
    simulator.run(shots=128, rounds=2)  # prime kernels and policy tables
    started = time.perf_counter()
    result = simulator.run(shots=FLOOR_SHOTS, rounds=FLOOR_ROUNDS)
    return result, time.perf_counter() - started


def test_disabled_telemetry_overhead(benchmark):
    # The whole point is the *disabled* path: fail loudly if something left
    # telemetry on, because the measurement would be meaningless.
    assert current_tracer() is None
    assert not METRICS.enabled

    def workload():
        bare_seconds = []
        instrumented_seconds = []
        reference = None
        for _ in range(REPETITIONS):
            # Interleaved A/B: thermal and scheduler drift hits both sides.
            bare_result, bare_s = _timed_run(BareLeakageSimulator)
            inst_result, inst_s = _timed_run(LeakageSimulator)
            bare_seconds.append(bare_s)
            instrumented_seconds.append(inst_s)
            # Telemetry never touches the RNG: identical stream, identical run.
            assert bare_result.round_records == inst_result.round_records
            assert np.array_equal(
                bare_result.final_data_leaked, inst_result.final_data_leaked
            )
            assert np.array_equal(
                bare_result.observable_flips, inst_result.observable_flips
            )
            reference = inst_result
        assert reference is not None
        bare_best = min(bare_seconds)
        instrumented_best = min(instrumented_seconds)
        return [
            {
                "config": "leakage-population",
                "distance": FLOOR_DISTANCE,
                "shots": FLOOR_SHOTS,
                "rounds": FLOOR_ROUNDS,
                "repetitions": REPETITIONS,
                "bare_seconds": bare_best,
                "instrumented_seconds": instrumented_best,
                "overhead_ratio": instrumented_best / bare_best,
                "ceiling": OVERHEAD_CEILING,
            }
        ]

    rows = run_once(benchmark, workload)
    emit(
        "Telemetry-off overhead: instrumented round loop vs frozen bare baseline",
        format_table(rows),
    )
    save(
        "BENCH_obs",
        {
            "p": 1e-3,
            "leakage_ratio": 0.1,
            "policy": "gladiator+m",
            "ceiling": OVERHEAD_CEILING,
            "repetitions": REPETITIONS,
        },
        rows,
    )
    assert rows[0]["overhead_ratio"] <= OVERHEAD_CEILING, rows[0]
