"""Table 6: leakage-mobility classification via GLADIATOR + MLR.

Sweeps the true leakage mobility of the simulated device and checks that the
conditional co-flagging estimator classifies each point into the low/high
regime with the paper's 5% threshold.  Points far from the threshold are
classified reliably; the 5% point itself is borderline by construction (the
paper reports 50% accuracy there).
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.core import MobilityEstimator
from repro.experiments import make_code
from repro.noise import paper_noise

MOBILITIES = (0.01, 0.025, 0.05, 0.06, 0.09)
TRUE_REGIMES = ("low", "low", "high", "high", "high")


def test_table6_mobility_classification(benchmark):
    scale = current_scale()
    shots = scale.shots(200)
    rounds = scale.rounds(50)
    code = make_code("surface", 5)

    def workload():
        estimates = []
        for mobility in MOBILITIES:
            noise = paper_noise(p=1e-3, leakage_ratio=0.1).with_(leakage_mobility=mobility)
            estimate = MobilityEstimator(code, noise, seed=6).estimate(
                shots=shots, rounds=rounds
            )
            estimates.append(estimate)
        return estimates

    estimates = run_once(benchmark, workload)
    rows = [
        {
            "mobility (%)": 100 * mobility,
            "true regime": true_regime,
            "estimated P(ancilla leaked | flagged)": estimate.conditional_probability,
            "classified": estimate.regime,
            "correct": estimate.regime == true_regime,
        }
        for mobility, true_regime, estimate in zip(MOBILITIES, TRUE_REGIMES, estimates)
    ]
    emit("Table 6: leakage-mobility classification", format_table(rows))
    save("table6_mobility", {"shots": shots, "rounds": rounds}, rows)

    # The points far from the 5% threshold must be classified correctly; the
    # threshold point itself is allowed to go either way (paper: 50%).
    for row in rows:
        if abs(row["mobility (%)"] - 5.0) > 0.5:
            assert row["correct"]
    # The estimate grows monotonically enough to separate the extremes.
    assert (
        rows[-1]["estimated P(ancilla leaked | flagged)"]
        > rows[0]["estimated P(ancilla leaked | flagged)"]
    )
