"""Simulator round throughput: the workspace hot path vs the frozen baseline.

The simulator core is the substrate every workload sits on — sweeps,
realtime streaming, batched decoding all bottom out in
``LeakageSimulator._run_round``.  This benchmark freezes the pre-workspace
simulator *verbatim* as :class:`ReferenceLeakageSimulator` (per-round
allocation of every temporary, chained boolean expressions, per-column
Python loops over pattern gathers, the ``2**width`` pattern-accounting scan)
so the baseline cannot drift as the library improves, then races the
optimized engine against it:

* a d=3/5/7 grid, with and without ``record_detectors``, reporting
  rounds/sec and shots*rounds/sec for both implementations,
* the paper's leakage-population configuration (d=5, 100 rounds, 20k shots,
  leakage sampling on — Section 6, "Scaling Simulations using Leakage
  Sampling"), on which a >=2x speedup floor is asserted.

Both implementations consume the identical RNG stream, so every race is
also a bit-identity check: the grid rows are compared result-for-result
here, and ``tests/test_sim_equivalence.py`` pins the full scenario matrix.
Rows land in ``results/BENCH_sim.json`` alongside BENCH_decode /
BENCH_realtime.
"""

import time

import numpy as np

from _common import current_scale, emit, format_table, run_once, save

from repro.core import make_policy
from repro.core.speculator import SpeculationInput
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.sim import LeakageSimulator, SimulatorOptions
from repro.sim.simulator import RoundRecord, RunResult
from repro.sim.state import SimState

#: The acceptance floor: the workspace engine must beat the frozen baseline
#: by at least this factor on the leakage-population configuration.
SPEEDUP_FLOOR = 2.0

GRID_DISTANCES = (3, 5, 7)
GRID_BASE_SHOTS = 5_000
GRID_BASE_ROUNDS = 20

#: The pinned floor configuration (d=5, 100 rounds, 20k shots, leakage
#: sampling on).  Deliberately *not* scaled by REPRO_SCALE: the floor is
#: asserted on the same workload everywhere, laptop and CI alike.
FLOOR_DISTANCE = 5
FLOOR_SHOTS = 20_000
FLOOR_ROUNDS = 100


# --------------------------------------------------------------------- #
# Frozen baseline: the simulator hot path as of the pre-workspace engine.
# Reproduced verbatim (allocating noise channels included) so the baseline
# cannot drift as sim/state.py and sim/simulator.py improve.
# --------------------------------------------------------------------- #
def _ref_depolarize_data(state, probability, rng):
    if probability <= 0:
        return
    hit = rng.random(state.data_x.shape) < probability
    pauli = rng.integers(0, 3, size=state.data_x.shape)
    state.data_x ^= hit & (pauli != 2)
    state.data_z ^= hit & (pauli != 0)


def _ref_inject_leakage(leaked, probability, rng):
    if probability <= 0:
        return np.zeros_like(leaked)
    new_leak = (rng.random(leaked.shape) < probability) & ~leaked
    leaked |= new_leak
    return new_leak


def _ref_reset_ancillas(state, flip_probability, rng, leakage_removal_probability):
    state.anc_x[:] = False
    state.anc_z[:] = False
    if flip_probability > 0:
        state.anc_x ^= rng.random(state.anc_x.shape) < flip_probability
        state.anc_z ^= rng.random(state.anc_z.shape) < flip_probability
    if leakage_removal_probability > 0:
        cleared = state.anc_leaked & (
            rng.random(state.anc_leaked.shape) < leakage_removal_probability
        )
        state.anc_leaked &= ~cleared


class ReferenceLeakageSimulator(LeakageSimulator):
    """The pre-workspace simulator, frozen for baseline timing.

    Overrides every hot-path method with the historical implementation:
    fresh ``(shots, n)`` arrays for every Bernoulli draw and boolean
    temporary, gather/scatter copies per entangling layer, per-column loops
    in the pattern gathers, a Python loop over ``2**width`` values in the
    pattern accounting, and the unbuffered ``policy.decide()`` interface.
    Construction (index structures, policy tables) is shared with the
    optimized engine — only the round loop differs.
    """

    def run_incremental(self, shots, rounds):
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        noise, rng, code = self.noise, self.rng, self.code
        state = SimState(shots, code.num_data, code.num_ancilla)
        if self.options.leakage_sampling:
            seeded = rng.integers(0, code.num_data, size=shots)
            state.data_leaked[np.arange(shots), seeded] = True

        pending_lrc = np.zeros((shots, code.num_data), dtype=bool)
        pending_anc_lrc = np.zeros((shots, code.num_ancilla), dtype=bool)
        prev_pattern_ints = np.zeros((shots, code.num_data), dtype=np.int64)
        detector_history = (
            np.zeros((shots, rounds, len(self._z_stab_indices)), dtype=bool)
            if self.options.record_detectors
            else None
        )
        pattern_histogram = {}

        round_records = []
        totals = {"lrc": 0, "anc_lrc": 0, "fp": 0, "fn": 0, "tp": 0, "leak_events": 0}

        for round_index in range(rounds):
            (
                record,
                pending_lrc,
                pending_anc_lrc,
                prev_pattern_ints,
                z_detectors,
            ) = self._run_round(
                state,
                round_index,
                pending_lrc,
                pending_anc_lrc,
                prev_pattern_ints,
                totals,
                detector_history,
                pattern_histogram,
            )
            round_records.append(record)
            yield round_index, z_detectors

        final_detectors, observable_flips = self._final_readout(state)

        return RunResult(
            code_name=code.name,
            policy_name=self.policy.describe(),
            shots=shots,
            rounds=rounds,
            noise=noise,
            round_records=round_records,
            total_data_lrcs=totals["lrc"],
            total_ancilla_lrcs=totals["anc_lrc"],
            total_false_positives=totals["fp"],
            total_false_negatives=totals["fn"],
            total_true_positives=totals["tp"],
            total_leakage_events=totals["leak_events"],
            final_data_leaked=state.data_leaked.copy(),
            detector_history=detector_history,
            final_detectors=final_detectors,
            observable_flips=observable_flips,
            pattern_histogram=pattern_histogram,
        )

    def _run_round(
        self,
        state,
        round_index,
        pending_lrc,
        pending_anc_lrc,
        prev_pattern_ints,
        totals,
        detector_history,
        pattern_histogram,
    ):
        noise, rng = self.noise, self.rng
        shots = state.shots

        lrcs_this_round = int(pending_lrc.sum())
        anc_lrcs_this_round = int(pending_anc_lrc.sum())
        totals["lrc"] += lrcs_this_round
        totals["anc_lrc"] += anc_lrcs_this_round
        self._apply_data_lrc(state, pending_lrc, totals)
        self._apply_ancilla_lrc(state, pending_anc_lrc, totals)

        _ref_depolarize_data(state, noise.p, rng)
        new_leak = _ref_inject_leakage(state.data_leaked, noise.p_leak, rng)
        totals["leak_events"] += int(new_leak.sum())

        _ref_reset_ancillas(state, noise.p, rng, noise.ancilla_reset_removes_leakage)
        new_anc_leak = _ref_inject_leakage(state.anc_leaked, noise.p_leak, rng)
        totals["leak_events"] += int(new_anc_leak.sum())

        for anc_idx, data_idx, is_z in zip(self._slot_anc, self._slot_data, self._slot_is_z):
            totals["leak_events"] += self._apply_cnot_layer(state, anc_idx, data_idx, is_z)

        measurement, mlr_flags = self._measure(state)
        detectors = measurement ^ state.prev_measurement
        if round_index == 0:
            detectors[:, ~self._anc_is_z] = False
        state.prev_measurement = measurement
        z_detectors = detectors[:, self._z_stab_indices]
        if detector_history is not None:
            detector_history[:, round_index, :] = z_detectors

        pattern_ints = self._extract_patterns(detectors)
        mlr_neighbor = self._mlr_neighbor(mlr_flags) if mlr_flags is not None else None
        ctx = SpeculationInput(
            round_index=round_index,
            pattern_ints=pattern_ints,
            prev_pattern_ints=prev_pattern_ints,
            detectors=detectors,
            mlr_flags=mlr_flags,
            mlr_neighbor=mlr_neighbor,
            data_leaked=state.data_leaked,
        )
        decision = self.policy.decide(ctx)
        next_lrc = np.asarray(decision.data_lrc, dtype=bool)
        next_anc_lrc = (
            np.asarray(decision.ancilla_lrc, dtype=bool)
            if decision.ancilla_lrc is not None
            else np.zeros((shots, self.code.num_ancilla), dtype=bool)
        )

        false_positive = next_lrc & ~state.data_leaked
        false_negative = state.data_leaked & ~next_lrc
        true_positive = next_lrc & state.data_leaked
        totals["fp"] += int(false_positive.sum())
        totals["fn"] += int(false_negative.sum())
        totals["tp"] += int(true_positive.sum())

        if self.options.record_patterns:
            self._record_patterns(pattern_ints, state.data_leaked, pattern_histogram)

        record = RoundRecord(
            round_index=round_index,
            data_leakage_population=state.leaked_fraction(),
            ancilla_leakage_population=float(state.anc_leaked.mean()),
            lrcs_applied=lrcs_this_round / shots,
            false_positives=float(false_positive.sum()) / shots,
            false_negatives=float(false_negative.sum()) / shots,
            true_positives=float(true_positive.sum()) / shots,
        )
        return record, next_lrc, next_anc_lrc, pattern_ints, z_detectors

    def _apply_data_lrc(self, state, mask, totals):
        if not mask.any():
            return
        noise, rng = self.noise, self.rng
        removed = mask & state.data_leaked & (
            rng.random(mask.shape) < self.gadget.removal_prob
        )
        state.data_leaked &= ~removed
        state.data_x ^= removed & (rng.random(mask.shape) < 0.5)
        state.data_z ^= removed & (rng.random(mask.shape) < 0.5)
        gate_error = self.gadget.gate_error(noise)
        hit = mask & (rng.random(mask.shape) < gate_error)
        pauli = rng.integers(0, 3, size=mask.shape)
        state.data_x ^= hit & (pauli != 2)
        state.data_z ^= hit & (pauli != 0)
        induced = mask & (rng.random(mask.shape) < self.gadget.induced_leakage(noise))
        new_leak = induced & ~state.data_leaked
        state.data_leaked |= new_leak
        totals["leak_events"] += int(new_leak.sum())

    def _apply_ancilla_lrc(self, state, mask, totals):
        if not mask.any():
            return
        noise, rng = self.noise, self.rng
        removed = mask & state.anc_leaked & (
            rng.random(mask.shape) < self.gadget.removal_prob
        )
        state.anc_leaked &= ~removed
        gate_error = self.gadget.gate_error(noise)
        hit = mask & (rng.random(mask.shape) < gate_error)
        pauli = rng.integers(0, 3, size=mask.shape)
        state.anc_x ^= hit & (pauli != 2)
        state.anc_z ^= hit & (pauli != 0)
        induced = mask & (rng.random(mask.shape) < self.gadget.induced_leakage(noise))
        new_leak = induced & ~state.anc_leaked
        state.anc_leaked |= new_leak
        totals["leak_events"] += int(new_leak.sum())

    def _apply_cnot_layer(self, state, anc_idx, data_idx, is_z):
        noise, rng = self.noise, self.rng
        shots = state.shots
        gates = anc_idx.shape[0]
        shape = (shots, gates)

        data_x = state.data_x[:, data_idx]
        data_z = state.data_z[:, data_idx]
        anc_x = state.anc_x[:, anc_idx]
        anc_z = state.anc_z[:, anc_idx]
        data_leak = state.data_leaked[:, data_idx]
        anc_leak = state.anc_leaked[:, anc_idx]
        healthy = ~data_leak & ~anc_leak
        is_z_row = is_z[np.newaxis, :]

        new_anc_x = anc_x ^ (data_x & healthy & is_z_row)
        new_data_z = data_z ^ (anc_z & healthy & is_z_row)
        new_data_x = data_x ^ (anc_x & healthy & ~is_z_row)
        new_anc_z = anc_z ^ (data_z & healthy & ~is_z_row)

        data_only = data_leak & ~anc_leak
        anc_only = anc_leak & ~data_leak
        transport = rng.random(shape) < noise.leakage_mobility
        anc_gets_leak = data_only & transport
        data_gets_leak = anc_only & transport
        scramble_anc = data_only & ~transport
        scramble_data = anc_only & ~transport
        rand_x = rng.random(shape) < 0.5
        rand_z = rng.random(shape) < 0.5
        new_anc_x ^= scramble_anc & rand_x
        new_anc_z ^= scramble_anc & rand_z
        rand_x2 = rng.random(shape) < 0.5
        rand_z2 = rng.random(shape) < 0.5
        new_data_x ^= scramble_data & rand_x2
        new_data_z ^= scramble_data & rand_z2

        gate_hit = rng.random(shape) < noise.p
        pauli_pair = rng.integers(1, 16, size=shape)
        new_data_x ^= gate_hit & ((pauli_pair & 1) != 0)
        new_data_z ^= gate_hit & ((pauli_pair & 2) != 0)
        new_anc_x ^= gate_hit & ((pauli_pair & 4) != 0)
        new_anc_z ^= gate_hit & ((pauli_pair & 8) != 0)

        data_gate_leak = rng.random(shape) < noise.p_leak
        anc_gate_leak = rng.random(shape) < noise.p_leak

        state.data_x[:, data_idx] = new_data_x
        state.data_z[:, data_idx] = new_data_z
        state.anc_x[:, anc_idx] = new_anc_x
        state.anc_z[:, anc_idx] = new_anc_z

        new_data_leak_mask = (data_gets_leak | data_gate_leak) & ~state.data_leaked[:, data_idx]
        new_anc_leak_mask = (anc_gets_leak | anc_gate_leak) & ~state.anc_leaked[:, anc_idx]
        state.data_leaked[:, data_idx] |= new_data_leak_mask
        state.anc_leaked[:, anc_idx] |= new_anc_leak_mask
        return int(new_data_leak_mask.sum()) + int(new_anc_leak_mask.sum())

    def _measure(self, state):
        noise, rng = self.noise, self.rng
        raw = np.where(self._anc_is_z[np.newaxis, :], state.anc_x, state.anc_z)
        outcome = raw ^ (rng.random(raw.shape) < noise.p)
        if noise.readout_leak_random:
            random_bits = rng.random(raw.shape) < 0.5
            outcome = np.where(state.anc_leaked, random_bits, outcome)
        else:
            outcome = np.where(state.anc_leaked, True, outcome)

        mlr_flags = None
        if self.policy.uses_mlr:
            missed = rng.random(raw.shape) < noise.mlr_error
            false_flag = rng.random(raw.shape) < noise.p
            mlr_flags = (state.anc_leaked & ~missed) | (~state.anc_leaked & false_flag)
            state.anc_leaked &= ~(mlr_flags & state.anc_leaked)
        return outcome, mlr_flags

    def _extract_patterns(self, detectors):
        shots = detectors.shape[0]
        pattern_ints = np.zeros((shots, self.code.num_data), dtype=np.int64)
        for position, qubits, stab_groups in self._pattern_gather:
            if stab_groups.shape[1] == 1:
                bits = detectors[:, stab_groups[:, 0]]
            else:
                bits = detectors[:, stab_groups[:, 0]]
                for column in range(1, stab_groups.shape[1]):
                    bits = bits | detectors[:, stab_groups[:, column]]
            pattern_ints[:, qubits] |= bits.astype(np.int64) << position
        return pattern_ints

    def _mlr_neighbor(self, mlr_flags):
        shots = mlr_flags.shape[0]
        result = np.zeros((shots, self.code.num_data), dtype=bool)
        for qubits, ancilla_rows in self._neighbor_gather:
            flags = mlr_flags[:, ancilla_rows[:, 0]]
            for column in range(1, ancilla_rows.shape[1]):
                flags = flags | mlr_flags[:, ancilla_rows[:, column]]
            result[:, qubits] = flags
        return result

    def _record_patterns(self, pattern_ints, data_leaked, histogram):
        widths = np.asarray(self.code.pattern_widths)
        for width in np.unique(widths):
            qubits = np.nonzero(widths == width)[0]
            values = pattern_ints[:, qubits].ravel()
            leaked = data_leaked[:, qubits].ravel()
            width_hist = histogram.setdefault(int(width), {})
            for value in range(1 << int(width)):
                select = values == value
                leaked_count = int((select & leaked).sum())
                clean_count = int((select & ~leaked).sum())
                if value in width_hist:
                    old_leaked, old_clean = width_hist[value]
                    width_hist[value] = (old_leaked + leaked_count, old_clean + clean_count)
                else:
                    width_hist[value] = (leaked_count, clean_count)

    def _final_readout(self, state):
        noise, rng = self.noise, self.rng
        data_meas = state.data_x ^ (rng.random(state.data_x.shape) < noise.p)
        if noise.readout_leak_random:
            random_bits = rng.random(data_meas.shape) < 0.5
            data_meas = np.where(state.data_leaked, random_bits, data_meas)
        else:
            data_meas = np.where(state.data_leaked, True, data_meas)
        z_parity = (data_meas.astype(np.uint8) @ self._z_support.T.astype(np.uint8)) % 2
        last_z = state.prev_measurement[:, self._z_stab_indices]
        final_detectors = z_parity.astype(bool) ^ last_z
        observable = (
            data_meas[:, self._logical_z_support].sum(axis=1) % 2
        ).astype(bool)
        return final_detectors, observable


# --------------------------------------------------------------------- #
# Harness
# --------------------------------------------------------------------- #
def _build(simulator_cls, distance, options, seed=202):
    return simulator_cls(
        code=make_code("surface", distance),
        noise=paper_noise(p=1e-3, leakage_ratio=0.1),
        policy=make_policy("gladiator+m"),
        options=options,
        seed=seed,
    )


def _timed_run(simulator, shots, rounds, warmup=True):
    if warmup:
        # Identical tiny warmup on both implementations: primes allocator
        # pools, the compiled-kernel load and the policy tables so the timed
        # section measures steady-state round cost, not first-touch noise.
        # (Both sides advance their RNG identically, so the bit-identity
        # comparison between them is unaffected.)
        simulator.run(shots=128, rounds=2)
    started = time.perf_counter()
    result = simulator.run(shots=shots, rounds=rounds)
    return result, time.perf_counter() - started


def assert_results_identical(reference, optimized):
    """Bit-for-bit comparison of two RunResults (shared RNG contract)."""
    assert reference.round_records == optimized.round_records
    assert reference.total_data_lrcs == optimized.total_data_lrcs
    assert reference.total_ancilla_lrcs == optimized.total_ancilla_lrcs
    assert reference.total_false_positives == optimized.total_false_positives
    assert reference.total_false_negatives == optimized.total_false_negatives
    assert reference.total_true_positives == optimized.total_true_positives
    assert reference.total_leakage_events == optimized.total_leakage_events
    assert np.array_equal(reference.final_data_leaked, optimized.final_data_leaked)
    for attr in ("detector_history", "final_detectors", "observable_flips"):
        left, right = getattr(reference, attr), getattr(optimized, attr)
        assert (left is None) == (right is None), attr
        if left is not None:
            assert np.array_equal(left, right), attr
    assert reference.pattern_histogram == optimized.pattern_histogram


def test_sim_round_throughput(benchmark):
    scale = current_scale()
    grid_shots = scale.shots(GRID_BASE_SHOTS)
    grid_rounds = scale.rounds(GRID_BASE_ROUNDS)

    def workload():
        rows = []
        for distance in GRID_DISTANCES:
            for record_detectors in (False, True):
                options = SimulatorOptions(record_detectors=record_detectors)
                reference_sim = _build(ReferenceLeakageSimulator, distance, options)
                optimized_sim = _build(LeakageSimulator, distance, options)
                ref_result, ref_s = _timed_run(reference_sim, grid_shots, grid_rounds)
                opt_result, opt_s = _timed_run(optimized_sim, grid_shots, grid_rounds)
                # Correctness before speed: identical RNG stream, identical run.
                assert_results_identical(ref_result, opt_result)
                rows.append(
                    {
                        "config": "grid",
                        "distance": distance,
                        "shots": grid_shots,
                        "rounds": grid_rounds,
                        "record_detectors": record_detectors,
                        "leakage_sampling": False,
                        "reference_seconds": ref_s,
                        "optimized_seconds": opt_s,
                        "speedup": ref_s / opt_s,
                        "reference_rounds_per_second": grid_rounds / ref_s,
                        "optimized_rounds_per_second": grid_rounds / opt_s,
                        "reference_shot_rounds_per_second": grid_shots * grid_rounds / ref_s,
                        "optimized_shot_rounds_per_second": grid_shots * grid_rounds / opt_s,
                    }
                )

        # The paper's leakage-population configuration, pinned unscaled: this
        # row carries the asserted floor.
        options = SimulatorOptions(leakage_sampling=True, record_detectors=False)
        reference_sim = _build(ReferenceLeakageSimulator, FLOOR_DISTANCE, options)
        optimized_sim = _build(LeakageSimulator, FLOOR_DISTANCE, options)
        ref_result, ref_s = _timed_run(reference_sim, FLOOR_SHOTS, FLOOR_ROUNDS)
        opt_result, opt_s = _timed_run(optimized_sim, FLOOR_SHOTS, FLOOR_ROUNDS)
        assert_results_identical(ref_result, opt_result)
        rows.append(
            {
                "config": "leakage-population",
                "distance": FLOOR_DISTANCE,
                "shots": FLOOR_SHOTS,
                "rounds": FLOOR_ROUNDS,
                "record_detectors": False,
                "leakage_sampling": True,
                "reference_seconds": ref_s,
                "optimized_seconds": opt_s,
                "speedup": ref_s / opt_s,
                "reference_rounds_per_second": FLOOR_ROUNDS / ref_s,
                "optimized_rounds_per_second": FLOOR_ROUNDS / opt_s,
                "reference_shot_rounds_per_second": FLOOR_SHOTS * FLOOR_ROUNDS / ref_s,
                "optimized_shot_rounds_per_second": FLOOR_SHOTS * FLOOR_ROUNDS / opt_s,
            }
        )
        return rows

    rows = run_once(benchmark, workload)
    emit("Simulator round throughput: workspace engine vs frozen baseline", format_table(rows))
    save(
        "BENCH_sim",
        {
            "p": 1e-3,
            "leakage_ratio": 0.1,
            "policy": "gladiator+m",
            "floor": SPEEDUP_FLOOR,
            "floor_config": {
                "distance": FLOOR_DISTANCE,
                "shots": FLOOR_SHOTS,
                "rounds": FLOOR_ROUNDS,
                "leakage_sampling": True,
            },
        },
        rows,
    )

    floor_row = next(row for row in rows if row["config"] == "leakage-population")
    assert floor_row["speedup"] >= SPEEDUP_FLOOR, floor_row
    # Regression canary for the grid: single unwarmed timings at smoke scale
    # are noisy, so allow for scheduler jitter rather than demanding a strict
    # win on every tiny row (the floor row above is the real gate).
    for row in rows:
        assert row["speedup"] >= 0.8, row
