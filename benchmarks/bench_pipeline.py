"""End-to-end pipeline throughput: fused zero-copy vs the two-step path.

One d=5 windowed streaming workload (simulate ``rounds`` of syndrome
extraction, decode through overlapping sliding windows) runs twice:

* ``two_step`` — the pre-fusion pipeline, reproduced verbatim below: the
  simulator records the full detector history into a ``RunResult``
  (``record_detectors=True``), the record is replayed round by round into a
  dict-buffered window session, and every window commits with a per-shot
  Python loop.  It runs with ``REPRO_DECODER_CKERNELS=0``, which selects
  the decoder's interpreted fallbacks — the Python bitmask-DP matching and
  the row-sort ``np.unique`` dedup, byte-for-byte the pre-fusion decode
  engine.  Frozen here so the baseline cannot drift as the library
  improves.
* ``fused`` — :class:`repro.pipeline.FusedPipeline`: detector chunks stream
  from ``run_incremental(detector_out=...)`` straight into bit-packed ring
  buffers, windows decode per *unique* syndrome through the compiled
  kernels (row hashing for dedup, the one-call ``dp_decode`` entry
  construction for ≤8-detector syndromes), and no detector history is
  ever materialised.

Both sides consume the identical RNG stream (recording never touches it),
so the predictions must be bit-identical — asserted before any timing
claim.  The fused path must beat the frozen two-step path end-to-end
(simulation included) by at least ``SPEEDUP_FLOOR``; rows land in
``results/BENCH_pipeline.json``.
"""

import os
import time
from contextlib import contextmanager

import numpy as np

from _common import current_scale, emit, format_table, run_once, save

from repro.core import make_policy
from repro.experiments import make_code
from repro.noise import paper_noise
from repro.pipeline import FusedPipeline
from repro.realtime import WindowedDecoder
from repro.sim import LeakageSimulator, SimulatorOptions

DISTANCE = 5
BASE_SHOTS = 6000
BASE_ROUNDS = 12
WINDOW_ROUNDS = 4
COMMIT_ROUNDS = 1
#: Matching tuning for the streaming workload: exact matching up to the
#: bitmask-DP bound, greedy above it.  This mirrors how a realtime decoder
#: is deployed (bounded worst-case latency per window) and keeps the
#: comparison about the pipeline engines rather than the shared
#: Python-blossom cost that would otherwise dominate both sides equally.
MAX_EXACT_NODES = 8
#: The acceptance floor: the fused pipeline must beat the frozen two-step
#: path end-to-end (simulate + decode) by at least this factor.
SPEEDUP_FLOOR = 1.5


@contextmanager
def _decoder_kernels(enabled: bool):
    """Pin the decoder C kernels on or off for one timed region."""
    previous = os.environ.get("REPRO_DECODER_CKERNELS")
    os.environ["REPRO_DECODER_CKERNELS"] = "1" if enabled else "0"
    try:
        yield
    finally:
        if previous is None:
            del os.environ["REPRO_DECODER_CKERNELS"]
        else:
            os.environ["REPRO_DECODER_CKERNELS"] = previous


# --------------------------------------------------------------------- #
# Frozen baseline: the two-step record-then-decode path as of pre-fusion
# --------------------------------------------------------------------- #
def _frozen_commit_edges(edges, graph, commit_layer):
    """Verbatim pre-fusion ``repro.realtime.window._commit_edges``."""
    num_z = graph.num_z_stabs
    boundary_node = graph.boundary_node
    parity = False
    artifacts = []
    for node_a, node_b in edges:
        layer_a = node_a // num_z if node_a != boundary_node else None
        layer_b = node_b // num_z if node_b != boundary_node else None
        if layer_a is None:
            layer_a = layer_b
        if layer_b is None:
            layer_b = layer_a
        low, high = min(layer_a, layer_b), max(layer_a, layer_b)
        if high < commit_layer:
            edge = graph.edge_between(node_a, node_b)
            if edge is not None and edge.flips_logical:
                parity = not parity
        elif low == commit_layer - 1 and high == commit_layer:
            upper = node_a if node_a // num_z == commit_layer else node_b
            artifacts.append(upper % num_z)
    return parity, artifacts


class _FrozenWindowSession:
    """Verbatim pre-fusion ``WindowSession``: dict round buffer, per-shot
    commit loop, fresh ``np.stack`` window assembly every step."""

    def __init__(self, windowed, shots):
        self.windowed = windowed
        self.shots = shots
        self.start = 0
        self._buffer = {}
        self._parity = np.zeros(shots, dtype=bool)
        self._next_round = 0

    def feed(self, round_index, detectors):
        self._buffer[round_index] = np.array(detectors, dtype=bool)
        self._next_round += 1

    def ready(self):
        window = self.windowed.effective_window
        end = self.start + window
        return end < self.windowed.rounds and end in self._buffer

    def step(self):
        window = self.windowed.effective_window
        commit = self.windowed.commit_rounds
        start = self.start
        history = np.stack(
            [self._buffer[r] for r in range(start, start + window)], axis=1
        )
        context = self._buffer[start + window]
        graph, decoder = self.windowed.decoder_for(window)
        artifacts = np.zeros((self.shots, graph.num_z_stabs), dtype=bool)
        for shot, edges in enumerate(decoder.decode_edges_batch(history, context)):
            flip, artifact_stabs = _frozen_commit_edges(edges, graph, commit)
            self._parity[shot] ^= flip
            for z_local in artifact_stabs:
                artifacts[shot, z_local] ^= True
        self._buffer[start + commit] ^= artifacts
        for done in range(start, start + commit):
            del self._buffer[done]
        self.start += commit

    def finish(self, final_detectors):
        while self.ready():
            self.step()
        tail = self.windowed.rounds - self.start
        history = np.stack(
            [self._buffer[r] for r in range(self.start, self.start + tail)], axis=1
        )
        graph, decoder = self.windowed.decoder_for(tail)
        commit_all = graph.num_layers
        for shot, edges in enumerate(
            decoder.decode_edges_batch(history, np.asarray(final_detectors, dtype=bool))
        ):
            flip, artifact_stabs = _frozen_commit_edges(edges, graph, commit_all)
            assert not artifact_stabs
            self._parity[shot] ^= flip
        self._buffer.clear()
        return self._parity.copy()


def _two_step(code, noise, shots, rounds, seed):
    """Record the full detector history, then window-decode the replay."""
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(record_detectors=True),
        seed=seed,
    )
    result = simulator.run(shots=shots, rounds=rounds)
    windowed = _windowed_decoder(code, noise, rounds)
    session = _FrozenWindowSession(windowed, shots)
    for round_index in range(rounds):
        session.feed(round_index, result.detector_history[:, round_index, :])
        while session.ready():
            session.step()
    predictions = session.finish(result.final_detectors)
    return predictions, result


def _fused(code, noise, shots, rounds, seed):
    """Stream chunks straight into the packed rings; no recorded history."""
    simulator = LeakageSimulator(
        code=code,
        noise=noise,
        policy=make_policy("gladiator+m"),
        options=SimulatorOptions(record_detectors=False),
        seed=seed,
    )
    pipeline = FusedPipeline(simulator, shots, rounds)
    run = pipeline.run_windowed(_windowed_decoder(code, noise, rounds))
    return run.predictions, run.result


def _windowed_decoder(code, noise, rounds):
    return WindowedDecoder(
        code=code,
        noise=noise,
        rounds=rounds,
        window_rounds=WINDOW_ROUNDS,
        commit_rounds=COMMIT_ROUNDS,
        method="matching",
        # Realtime tuning: syndromes beyond the bitmask-DP reach fall to the
        # greedy matcher instead of the O(n^3) Python blossom.  Both sides
        # share this decoder configuration (identical corrections either
        # way), so the comparison times the engines, not the blossom.
        max_exact_nodes=MAX_EXACT_NODES,
    )


def _timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def test_fused_pipeline_throughput(benchmark):
    scale = current_scale()
    shots = scale.decoded_shots(BASE_SHOTS)
    rounds = scale.rounds(BASE_ROUNDS)
    code = make_code("surface", DISTANCE)
    noise = paper_noise(p=1e-3, leakage_ratio=1.0)

    # Warm both engines outside the timed region: compiled sim/decoder
    # kernels build on first use and would otherwise bill one side only.
    with _decoder_kernels(False):
        _two_step(code, noise, 8, rounds, seed=1)
    with _decoder_kernels(True):
        _fused(code, noise, 8, rounds, seed=1)

    def workload():
        with _decoder_kernels(False):
            (two_step_pred, two_step_run), two_step_s = _timed(
                lambda: _two_step(code, noise, shots, rounds, seed=101)
            )
        with _decoder_kernels(True):
            (fused_pred, fused_run), fused_s = _timed(
                lambda: _fused(code, noise, shots, rounds, seed=101)
            )

        # Correctness before speed: identical RNG stream, identical windows,
        # identical predictions — bit for bit.
        assert np.array_equal(fused_pred, two_step_pred)
        assert np.array_equal(
            fused_run.observable_flips, two_step_run.observable_flips
        )
        assert fused_run.detector_history is None  # nothing was materialised
        failures = int((fused_pred ^ fused_run.observable_flips).sum())
        return [
            {
                "pipeline": "two_step",
                "shots": shots,
                "rounds": rounds,
                "window_rounds": WINDOW_ROUNDS,
                "commit_rounds": COMMIT_ROUNDS,
                "seconds": two_step_s,
                "shots_per_second": shots / two_step_s,
                "failures": failures,
                "speedup": 1.0,
            },
            {
                "pipeline": "fused",
                "shots": shots,
                "rounds": rounds,
                "window_rounds": WINDOW_ROUNDS,
                "commit_rounds": COMMIT_ROUNDS,
                "seconds": fused_s,
                "shots_per_second": shots / fused_s,
                "failures": failures,
                "speedup": two_step_s / fused_s,
            },
        ]

    rows = run_once(benchmark, workload)
    emit(
        "Fused zero-copy pipeline vs two-step record-then-decode "
        f"(d={DISTANCE} windowed streaming)",
        format_table(rows),
    )
    save(
        "BENCH_pipeline",
        {
            "distance": DISTANCE,
            "p": 1e-3,
            "leakage_ratio": 1.0,
            "policy": "gladiator+m",
            "window_rounds": WINDOW_ROUNDS,
            "commit_rounds": COMMIT_ROUNDS,
            "max_exact_nodes": MAX_EXACT_NODES,
            "speedup_floor": SPEEDUP_FLOOR,
        },
        rows,
    )

    fused_row = next(row for row in rows if row["pipeline"] == "fused")
    assert fused_row["speedup"] >= SPEEDUP_FLOOR, fused_row
