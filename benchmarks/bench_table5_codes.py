"""Table 5: GLADIATOR-over-ERASER reduction factors across code families.

For the surface code, the triangular colour code, a hypergraph-product code
and a two-block cyclic (BPC-style) code, reports the LRC-count, data-leakage
population and QEC-cycle-time reduction factors of GLADIATOR+M relative to
ERASER+M.  Cycle times come from the SWAP-LRC latency model, matching the
paper's methodology of converting average LRC counts into latency overhead.
"""

from _common import current_scale, emit, format_table, run_once, save

from repro.circuits import CycleTimeModel
from repro.experiments import compare_policies, make_code, reduction_factor
from repro.noise import paper_noise

FAMILIES = (("surface", 7), ("color", 7), ("hgp", None), ("bpc", None))


def test_table5_code_family_reduction_factors(benchmark):
    scale = current_scale()
    shots = scale.shots(200)
    rounds = scale.rounds(80)
    noise = paper_noise(p=1e-3, leakage_ratio=0.1)

    def workload():
        results = {}
        for family, distance in FAMILIES:
            code = make_code(family, distance)
            rows = compare_policies(
                code, noise, ["eraser+m", "gladiator+m"], shots=shots, rounds=rounds, seed=55
            )
            results[family] = (code, {row["policy"]: row for row in rows})
        return results

    results = run_once(benchmark, workload)

    table_rows = []
    for family, (code, by_policy) in results.items():
        eraser, gladiator = by_policy["eraser+M"], by_policy["gladiator+M"]
        cycle_model = CycleTimeModel(code, noise)
        eraser_cycle = cycle_model.round_duration_ns(eraser["lrcs_per_round"])
        gladiator_cycle = cycle_model.round_duration_ns(gladiator["lrcs_per_round"])
        table_rows.append(
            {
                "code": code.name,
                "LRC reduction": reduction_factor(
                    eraser["lrcs_per_round"], gladiator["lrcs_per_round"]
                ),
                "DLP reduction": reduction_factor(eraser["mean_dlp"], gladiator["mean_dlp"]),
                "cycle-time reduction": eraser_cycle / gladiator_cycle,
                "eraser LRC/round": eraser["lrcs_per_round"],
                "gladiator LRC/round": gladiator["lrcs_per_round"],
            }
        )
    emit("Table 5: reduction factors of GLADIATOR+M over ERASER+M", format_table(table_rows))
    save("table5_codes", {"shots": shots, "rounds": rounds}, table_rows)

    by_family = {row["code"].split("_")[0]: row for row in table_rows}
    # Paper shape: clear LRC and cycle-time gains on the surface, colour and
    # HGP codes.  On the dense BPC-style code our richer background-noise
    # model erodes the advantage to rough parity (documented deviation).
    for family in ("surface", "color", "hgp"):
        assert by_family[family]["LRC reduction"] > 1.0
        assert by_family[family]["cycle-time reduction"] > 1.0
    assert by_family["bpc"]["LRC reduction"] > 0.7
