"""Figure 14: total leakage events and total LRCs vs code distance.

Even under good mitigation the absolute number of leakage events grows with
distance (quadratically more qubits and gates per round), and so does the
total LRC count; the gap between ERASER+M and GLADIATOR+M widens with
distance, which is the paper's scalability argument.
"""

from _common import SweepSpec, current_scale, emit, format_table, run_once, run_sweep, save

POLICIES = ("eraser+m", "gladiator+m", "ideal")


def test_fig14_distance_sensitivity(benchmark):
    scale = current_scale()
    distances = [5, 7, 9] if scale.name != "paper" else [7, 11, 13, 17]
    shots = scale.shots(150)
    spec = SweepSpec(
        name="fig14_distance_sensitivity",
        distances=tuple(distances),
        policies=POLICIES,
        shots=shots,
        rounds=lambda distance: scale.rounds(10 * distance),
        seed=14,
    )

    def workload():
        rows = run_sweep(spec)
        for row in rows:
            row["total_lrcs"] = row["lrcs_per_round"] * row["rounds"]
            row["leakage_events_per_shot"] = row["total_leakage_events"] / shots
        return rows

    rows = run_once(benchmark, workload)
    table_rows = [
        {
            "d": row["distance"],
            "policy": row["policy"],
            "total leakages/shot": row["leakage_events_per_shot"],
            "total LRCs/shot": row["total_lrcs"],
        }
        for row in rows
    ]
    emit("Figure 14: total leakages and LRC usage vs distance", format_table(table_rows))
    save("fig14_distance_sensitivity", {"shots": shots}, table_rows)

    # Total leakage events grow with distance for every policy (more qubits
    # and gates per round), and GLADIATOR uses fewer LRCs than ERASER at
    # every distance, with the absolute gap widening.
    gaps = []
    for distance in distances:
        by_policy = {row["policy"]: row for row in rows if row["distance"] == distance}
        assert by_policy["gladiator+M"]["total_lrcs"] < by_policy["eraser+M"]["total_lrcs"]
        gaps.append(
            by_policy["eraser+M"]["total_lrcs"] - by_policy["gladiator+M"]["total_lrcs"]
        )
    assert gaps[-1] > gaps[0]
    for policy in ("eraser+M", "gladiator+M", "ideal+M"):
        events = [
            row["leakage_events_per_shot"]
            for row in rows
            if row["policy"] == policy
        ]
        assert events[-1] > events[0]
