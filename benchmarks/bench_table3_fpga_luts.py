"""Table 3: FPGA LUTs per logical qubit, GLADIATOR vs ERASER.

Reproduces the resource comparison for code distances 5-25 using the
analytic sequence-checker model (10 LUTs per replicated checker, one checker
per 100 data qubits) and the re-synthesised ERASER FSM counts, and
cross-checks the per-checker estimate against the Boolean-minimised
expressions actually generated for the surface code (Appendix B machinery).
"""

from _common import emit, format_table, run_once, save

from repro.core import GladiatorPolicy
from repro.experiments import make_code
from repro.hardware import GladiatorMicroarchitecture, resource_report
from repro.noise import paper_noise


def test_table3_fpga_resources(benchmark):
    distances = [5, 9, 13, 17, 21, 25]

    def workload():
        report = resource_report(distances)
        code = make_code("surface", 5)
        policy = GladiatorPolicy()
        policy.prepare(code, paper_noise())
        microarchitecture = GladiatorMicroarchitecture(code, policy)
        return report, microarchitecture

    report, microarchitecture = run_once(benchmark, workload)
    rows = [
        {
            "d": entry.distance,
            "GLADIATOR LUTs": entry.gladiator_luts,
            "ERASER LUTs": entry.eraser_luts,
            "reduction": f"{entry.reduction:.1f}x",
        }
        for entry in report
    ]
    emit("Table 3: LUTs per logical qubit (Kintex UltraScale+ model)", format_table(rows))

    checker_rows = [
        {
            "pattern width": width,
            "minimised terms": len(checker.implicants),
            "LUT estimate": checker.lut_estimate,
            "expression": checker.expression[:70],
        }
        for width, checker in microarchitecture.checkers.items()
    ]
    emit("Appendix B: minimised sequence-checker expressions (surface d=5)", format_table(checker_rows))
    save("table3_fpga_luts", {"distances": distances}, rows + checker_rows)

    # Table 3 shape: 10-70 LUTs for GLADIATOR, 17x-81x reduction, and the
    # synthesised checkers stay within the paper's 10-LUT-per-checker budget.
    for entry in report:
        assert entry.gladiator_luts <= 70
        assert entry.reduction >= 17
    assert microarchitecture.lut_budget() <= 20
    assert all(
        checker.verify_against_truth_table()
        for checker in microarchitecture.checkers.values()
    )
