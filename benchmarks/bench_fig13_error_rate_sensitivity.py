"""Figure 13: sensitivity to the physical error rate (p = 1e-3 vs 1e-4).

As the operational error rate drops, both the logical error rate and the
number of LRCs per shot fall; GLADIATOR adapts its speculation to the lower
leakage rate and keeps its LRC advantage over ERASER at both operating
points (the paper's Table 4 "speculation inaccuracy" companion numbers are
reproduced by bench_table4).
"""

from _common import SweepSpec, current_scale, emit, format_table, group_rows, run_once, run_sweep, save

POLICIES = ("eraser+m", "gladiator+m", "gladiator-d+m")


def test_fig13_error_rate_sensitivity(benchmark):
    scale = current_scale()
    shots = scale.shots(300)
    decoded_shots = scale.decoded_shots(300)
    undecoded_spec = SweepSpec(
        name="fig13_undecoded",
        distances=(5,),
        error_rates=(1e-3, 1e-4),
        policies=POLICIES,
        shots=shots,
        rounds=scale.rounds(60),
        seed=13,
    )
    decoded_spec = SweepSpec(
        name="fig13_decoded",
        distances=(5,),
        error_rates=(1e-3, 1e-4),
        policies=("eraser+m", "gladiator+m"),
        shots=decoded_shots,
        rounds=15,
        decoded=True,
        seed=13,
    )

    def workload():
        return (
            group_rows(run_sweep(undecoded_spec), "p"),
            group_rows(run_sweep(decoded_spec), "p"),
        )

    undecoded, decoded = run_once(benchmark, workload)

    table_rows = []
    for p, rows in undecoded.items():
        for row in rows:
            table_rows.append(
                {
                    "p": p,
                    "policy": row["policy"],
                    "LRC/round": row["lrcs_per_round"],
                    "FP/round": row["fp_per_round"],
                    "FN/round": row["fn_per_round"],
                }
            )
    emit("Figure 13(b): LRC usage vs physical error rate (surface d=5)", format_table(table_rows))

    ler_rows = []
    for p, rows in decoded.items():
        for row in rows:
            ler_rows.append({"p": p, "policy": row["policy"], "LER": row["ler"]})
    emit("Figure 13(a): logical error rate vs physical error rate", format_table(ler_rows))
    save("fig13_error_rate_sensitivity", {"distance": 5}, table_rows + ler_rows)

    for p in (1e-3, 1e-4):
        by_policy = {row["policy"]: row for row in undecoded[p]}
        assert by_policy["gladiator+M"]["lrcs_per_round"] < by_policy["eraser+M"]["lrcs_per_round"]
    # Lower physical error rate means fewer LRCs for every policy.
    for policy in ("eraser+M", "gladiator+M"):
        high = next(r for r in undecoded[1e-3] if r["policy"] == policy)
        low = next(r for r in undecoded[1e-4] if r["policy"] == policy)
        assert low["lrcs_per_round"] < high["lrcs_per_round"]
