"""Figure 3: leakage-injection characterisation of a CNOT.

Panel (a): the measured two-bit distribution of one CNOT whose control is
prepared in the leaked |2> state — the target toggles roughly 50/50.
Panel (c): the leakage population of the target under repeated CNOTs, with
and without injecting leakage on the control.
"""

from _common import emit, format_series, format_table, run_once, save

from repro.experiments import leakage_growth, single_cnot_distribution


def test_fig03_leakage_injection(benchmark):
    def workload():
        distribution = single_cnot_distribution(shots=10_000, leaked_control=True, seed=3)
        healthy = single_cnot_distribution(shots=10_000, leaked_control=False, seed=3)
        injected = leakage_growth(max_cnots=60, shots=5_000, inject=True, seed=3)
        clean = leakage_growth(max_cnots=60, shots=5_000, inject=False, seed=3)
        return distribution, healthy, injected, clean

    distribution, healthy, injected, clean = run_once(benchmark, workload)

    rows = [
        {"outcome": key, "leaked control": distribution[key], "healthy control": healthy[key]}
        for key in sorted(distribution)
    ]
    emit("Figure 3(a): CNOT outcome distribution", format_table(rows))
    series = format_series(
        injected.cnot_counts.tolist()[::6],
        {
            "injected": injected.leakage_population[::6].tolist(),
            "no injection": clean.leakage_population[::6].tolist(),
        },
        x_label="CNOTs",
    )
    emit("Figure 3(c): leakage population vs repeated CNOTs", series)
    save(
        "fig03_injection",
        {"shots": 10_000},
        rows
        + [
            {
                "cnots": int(k),
                "injected": float(v),
                "clean": float(c),
            }
            for k, v, c in zip(
                injected.cnot_counts, injected.leakage_population, clean.leakage_population
            )
        ],
    )

    # Shape checks: ~50% bit flips with a leaked control, monotone-ish growth.
    target_flip = distribution["01"] + distribution["11"]
    assert 0.4 < target_flip < 0.6
    assert healthy["11"] > 0.9
    assert injected.leakage_population[-1] > 5 * max(clean.leakage_population[-1], 1e-3)
