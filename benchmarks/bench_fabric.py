"""Durable-fabric overhead: journaled execution vs the in-memory executor.

The ``repro.fabric`` contract is that durability is cheap: promoting every
(unit, shard) task to a journaled job with leases, checkpoints and retry
accounting must cost at most ``DURABLE_CEILING`` (1.25×) over the
in-memory :class:`SweepExecutor` on the reference d=3 sweep grid.  This
benchmark pins that contract, and re-asserts the house bit-identity
invariant while it is at it: both executors share deterministic shard
plans and seeds, so their rows must match bit-for-bit.

Runs are interleaved and each side takes its min-of-N, which strips
scheduler jitter; both sides run the same two-worker process pool so the
race isolates the journal/lease overhead rather than pool mechanics.
Every durable repetition gets a fresh store (a resumed store would serve
checkpoints and measure nothing).  Rows land in
``results/BENCH_fabric.json``.
"""

import shutil
import tempfile
import time

import numpy as np

from _common import emit, format_table, run_once, save

from repro.fabric import FabricExecutor
from repro.noise import paper_noise
from repro.sweeps import SweepExecutor, WorkUnit

#: The acceptance ceiling: durable execution stays within this factor of
#: the in-memory executor on the reference grid.
DURABLE_CEILING = 1.25

#: Interleaved repetitions per side; min-of-N strips scheduler jitter.
REPETITIONS = 3

#: The reference d=3 grid, deliberately *not* scaled by REPRO_SCALE: the
#: overhead bound is asserted on the same workload everywhere.
DISTANCE = 3
POLICIES = ("eraser+m", "gladiator+m")
SHOTS = 6400
ROUNDS = 10
SHARD_SHOTS = 1600
WORKERS = 2


def _units() -> list[WorkUnit]:
    return [
        WorkUnit(
            family="surface",
            distance=DISTANCE,
            noise=paper_noise(),
            policy=policy,
            shots=SHOTS,
            rounds=ROUNDS,
            leakage_sampling=True,
            seed=9,
        )
        for policy in POLICIES
    ]


def _timed_memory(units):
    executor = SweepExecutor(workers=WORKERS, cache=None, shard_shots=SHARD_SHOTS)
    started = time.perf_counter()
    rows = executor.run_units(units)
    return rows, time.perf_counter() - started


def _timed_durable(units):
    # A fresh store per repetition: resuming a finished store would serve
    # checkpoints and measure nothing.
    root = tempfile.mkdtemp(prefix="bench_fabric_")
    try:
        executor = FabricExecutor(
            workers=WORKERS, cache=None, shard_shots=SHARD_SHOTS, root=root
        )
        started = time.perf_counter()
        rows = executor.run_units(units)
        elapsed = time.perf_counter() - started
        assert executor.shards_executed == len(units) * (SHOTS // SHARD_SHOTS)
        assert not executor.failed_units
        return rows, elapsed
    finally:
        shutil.rmtree(root, ignore_errors=True)


def _assert_rows_equal(durable_rows, memory_rows):
    for durable, memory in zip(durable_rows, memory_rows):
        assert durable.keys() == memory.keys()
        for key, value in memory.items():
            if isinstance(value, np.ndarray):
                assert np.array_equal(durable[key], value), key
            else:
                assert durable[key] == value, key


def test_durable_fabric_overhead(benchmark):
    units = _units()

    def workload():
        memory_seconds = []
        durable_seconds = []
        for _ in range(REPETITIONS):
            # Interleaved A/B: thermal and scheduler drift hits both sides.
            memory_rows, memory_s = _timed_memory(units)
            durable_rows, durable_s = _timed_durable(units)
            memory_seconds.append(memory_s)
            durable_seconds.append(durable_s)
            # Same shard plans, same seeds: the durable run must merge
            # bit-identical to the in-memory one.
            _assert_rows_equal(durable_rows, memory_rows)
        memory_best = min(memory_seconds)
        durable_best = min(durable_seconds)
        return [
            {
                "config": "d3-policy-grid",
                "distance": DISTANCE,
                "policies": len(POLICIES),
                "shots": SHOTS,
                "rounds": ROUNDS,
                "shards_per_unit": SHOTS // SHARD_SHOTS,
                "workers": WORKERS,
                "repetitions": REPETITIONS,
                "memory_seconds": memory_best,
                "durable_seconds": durable_best,
                "overhead_ratio": durable_best / memory_best,
                "ceiling": DURABLE_CEILING,
            }
        ]

    rows = run_once(benchmark, workload)
    emit(
        "Durable-fabric overhead: journaled execution vs in-memory executor",
        format_table(rows),
    )
    save(
        "BENCH_fabric",
        {
            "policies": list(POLICIES),
            "shard_shots": SHARD_SHOTS,
            "ceiling": DURABLE_CEILING,
            "repetitions": REPETITIONS,
        },
        rows,
    )
    assert rows[0]["overhead_ratio"] <= DURABLE_CEILING, rows[0]
