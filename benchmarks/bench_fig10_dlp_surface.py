"""Figure 10: data-leakage population over long surface-code runs.

The paper tracks the leaked-data-qubit fraction over 100d rounds for
d = 7 and 11 and leakage ratios 0.1 and 1, comparing ERASER+M, GLADIATOR+M,
GLADIATOR-D+M and the IDEAL oracle.  The quick configuration uses d = 7 with
a reduced round count; ``REPRO_SCALE=paper`` extends the sweep.

The workload is declared as a :class:`SweepSpec` grid and executed by the
shared sweep engine, so ``REPRO_WORKERS=N`` shards it across processes and
``REPRO_CACHE=1`` memoizes the (policy, leakage-ratio) units.
"""

from _common import SweepSpec, current_scale, emit, format_series, group_rows, run_once, run_sweep, save

POLICIES = ("eraser+m", "gladiator+m", "gladiator-d+m", "ideal")


def test_fig10_dlp_long_runs(benchmark):
    scale = current_scale()
    distance = 7 if scale.name != "paper" else 11
    shots = scale.shots(200)
    rounds = scale.rounds(150)
    spec = SweepSpec(
        name="fig10_dlp_surface",
        distances=(distance,),
        error_rates=(1e-3,),
        leakage_ratios=(0.1, 1.0),
        policies=POLICIES,
        shots=shots,
        rounds=rounds,
        seed=10,
    )

    def workload():
        return group_rows(run_sweep(spec), "leakage_ratio")

    results = run_once(benchmark, workload)

    all_rows = []
    for leakage_ratio, rows in results.items():
        sample_points = list(range(0, rounds, max(1, rounds // 12)))
        series = {
            row["policy"]: [float(row["dlp_per_round"][r]) for r in sample_points]
            for row in rows
        }
        emit(
            f"Figure 10: data leakage population (surface d={distance}, lr={leakage_ratio})",
            format_series(sample_points, series, x_label="round"),
        )
        for row in rows:
            all_rows.append(
                {
                    "lr": leakage_ratio,
                    "policy": row["policy"],
                    "mean_dlp": row["mean_dlp"],
                    "final_dlp": row["final_dlp"],
                }
            )
    save("fig10_dlp_surface", {"distance": distance, "rounds": rounds, "shots": shots}, all_rows)

    for leakage_ratio, rows in results.items():
        by_policy = {row["policy"]: row for row in rows}
        # The oracle bounds every speculative policy from below.
        for name in ("eraser+M", "gladiator+M", "gladiator-d+M"):
            assert by_policy["ideal+M"]["mean_dlp"] <= by_policy[name]["mean_dlp"]
        # Leakage stays bounded (no runaway growth) for every mitigated policy.
        for name in ("eraser+M", "gladiator+M", "gladiator-d+M"):
            assert by_policy[name]["final_dlp"] < 0.1
