"""Deterministic fault injection for the durable sweep fabric.

Every recovery path in :mod:`repro.fabric` — lease expiry after a worker
dies, retry-with-backoff around transient shard failures, torn-journal
quarantine on resume — is only as trustworthy as the tests that exercise
it.  This module injects those faults on demand, gated entirely by the
``REPRO_CHAOS`` environment variable so production runs never pay for it.

The spec is a comma-separated list of ``site=probability[:limit]`` terms::

    REPRO_CHAOS="crash=1:1,flaky=0.5:2,stall=0.3,torn=0.25"

* ``crash`` — the worker process SIGKILLs itself (a *real* ``kill -9``,
  not an exception: the process pool breaks exactly as it would under an
  OOM kill) before running its shard.
* ``stall`` — the worker sleeps for ``REPRO_CHAOS_STALL_S`` seconds
  (default 0.05) before running, long enough to expire short test leases.
* ``flaky`` — the shard raises :class:`ChaosError`, a transient failure
  the retry policy must absorb.
* ``torn`` — a journal write lands truncated at the destination path (as
  if the host lost power mid-write on a non-atomic filesystem), so the
  next reader must quarantine it and recover.

``limit`` caps injection to the first ``limit`` attempts of each task
(``crash=1:1`` kills every task's first attempt and only its first), which
is how tests pin "dies once, then recovers" without flakiness.  Decisions
are a pure hash of ``(REPRO_CHAOS_SEED, site, key, attempt)``: the same
spec and seed inject exactly the same faults on every run, on every
machine, in every worker process.  The simulation RNG is never touched —
chaos lives entirely outside the frozen RNG-draw-order contract.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from functools import lru_cache

from ..obs.metrics import METRICS

__all__ = ["ChaosError", "ChaosConfig", "active_chaos", "parse_chaos_spec"]

#: Injection sites the spec may name.
SITES = ("crash", "stall", "flaky", "torn")

_OBS_INJECTED = METRICS.counter(
    "fabric.chaos.injections", "faults injected by the chaos harness"
)


class ChaosError(RuntimeError):
    """A transient failure injected by the chaos harness."""


@dataclass(frozen=True)
class ChaosConfig:
    """Parsed ``REPRO_CHAOS`` spec: per-site probabilities and attempt caps."""

    sites: dict[str, tuple[float, int | None]] = field(default_factory=dict)
    seed: int = 0
    stall_seconds: float = 0.05

    # ------------------------------------------------------------------ #
    # Decision
    # ------------------------------------------------------------------ #
    def should_inject(self, site: str, key: str, attempt: int) -> bool:
        """Deterministically decide whether to fault ``key``'s ``attempt``."""
        entry = self.sites.get(site)
        if entry is None:
            return False
        probability, limit = entry
        if limit is not None and attempt >= limit:
            return False
        digest = hashlib.sha256(
            f"{self.seed}:{site}:{key}:{attempt}".encode()
        ).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < probability

    # ------------------------------------------------------------------ #
    # Worker-side injection points
    # ------------------------------------------------------------------ #
    def maybe_stall(self, key: str, attempt: int) -> None:
        if self.should_inject("stall", key, attempt):
            _OBS_INJECTED.inc()
            time.sleep(self.stall_seconds)

    def maybe_crash(self, key: str, attempt: int) -> None:
        """SIGKILL the current process — the real ``kill -9`` failure mode."""
        if self.should_inject("crash", key, attempt):
            _OBS_INJECTED.inc()
            os.kill(os.getpid(), signal.SIGKILL)

    def maybe_raise(self, key: str, attempt: int) -> None:
        if self.should_inject("flaky", key, attempt):
            _OBS_INJECTED.inc()
            raise ChaosError(f"injected transient failure ({key} attempt {attempt})")

    # ------------------------------------------------------------------ #
    # Journal-side injection point
    # ------------------------------------------------------------------ #
    def torn_write(self, key: str, sequence: int, data: bytes) -> bytes | None:
        """Truncated bytes to tear a journal write with, or None to write clean.

        The truncation point is derived from the same hash as the decision,
        so a torn write is torn at the same offset on every run.
        """
        if not self.should_inject("torn", key, sequence):
            return None
        _OBS_INJECTED.inc()
        digest = hashlib.sha256(
            f"{self.seed}:torn-at:{key}:{sequence}".encode()
        ).digest()
        # Never the full payload (that would be a clean write) and never
        # empty on multi-byte payloads, so the reader always sees garbage.
        cut = int.from_bytes(digest[:4], "big") % max(len(data), 1)
        return data[:cut]


@lru_cache(maxsize=8)
def parse_chaos_spec(spec: str, seed: int, stall_seconds: float) -> ChaosConfig:
    """Parse a ``site=p[:limit]`` comma list; unknown sites fail loudly."""
    sites: dict[str, tuple[float, int | None]] = {}
    for term in spec.split(","):
        term = term.strip()
        if not term:
            continue
        if "=" not in term:
            raise ValueError(f"REPRO_CHAOS term {term!r} is not site=probability")
        site, _, value = term.partition("=")
        site = site.strip()
        if site not in SITES:
            raise ValueError(
                f"unknown REPRO_CHAOS site {site!r} (known: {', '.join(SITES)})"
            )
        raw_p, _, raw_limit = value.partition(":")
        probability = float(raw_p)
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"REPRO_CHAOS {site} probability must be in [0, 1]")
        limit = int(raw_limit) if raw_limit else None
        sites[site] = (probability, limit)
    return ChaosConfig(sites=sites, seed=seed, stall_seconds=stall_seconds)


def active_chaos() -> ChaosConfig | None:
    """The chaos config from the environment, or None when chaos is off.

    Read per call (not cached at import) so scheduler *and* forked worker
    processes see the same spec, and tests can flip it with ``monkeypatch``.
    """
    spec = os.environ.get("REPRO_CHAOS", "").strip()
    if not spec:
        return None
    seed = int(os.environ.get("REPRO_CHAOS_SEED", "0"))
    stall = float(os.environ.get("REPRO_CHAOS_STALL_S", "0.05"))
    config = parse_chaos_spec(spec, seed, stall)
    return config if config.sites else None
