"""Durable job journal: task records and shard result checkpoints on disk.

One :class:`JobStore` holds the state of one sweep's (unit, shard) tasks
under the cache directory::

    <cache>/fabric/<sweep_id>/
        manifest.json          # what this sweep is (engine version, tasks)
        tasks/<task_id>.json   # journaled state record, atomically rewritten
        results/<task_id>.json # shard payload checkpoint, written once
        leases/<task_id>.json  # worker lease (see repro.fabric.lease)

Every write follows the crash-safe discipline: serialise to a temp file in
the same directory, flush + ``fsync``, then ``os.replace`` onto the final
path — a reader never observes a partially written record, no matter when
the writer dies.  Reads are correspondingly paranoid: a record that fails
to parse (torn by a non-atomic writer, truncated by the chaos harness, or
half a file from a dying disk) is *quarantined* to ``<name>.corrupt`` and
reported as absent, so the scheduler re-queues the task instead of
crashing or trusting garbage.

Shard payloads contain NumPy arrays whose bit-exact round-trip the merge
invariant depends on, so arrays are encoded as ``{"__ndarray__": ...}``
envelopes carrying dtype, shape and base64 of the raw buffer — a resumed
merge sees byte-identical arrays, not float-repr approximations.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
from pathlib import Path
from typing import Any

import numpy as np

from ..obs.metrics import METRICS
from .chaos import active_chaos

__all__ = [
    "JobStore",
    "TaskSpec",
    "STATES",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "encode_payload",
    "decode_payload",
    "atomic_write_bytes",
]

SCHEMA = "repro.fabric/v1"
TASK_SCHEMA = "repro.fabric.task/v1"

#: Task journal states.  PENDING -> LEASED -> DONE | FAILED; a LEASED task
#: whose lease expires is PENDING again in the eyes of every scheduler.
PENDING = "PENDING"
LEASED = "LEASED"
DONE = "DONE"
FAILED = "FAILED"
STATES = (PENDING, LEASED, DONE, FAILED)

_OBS_CORRUPT = METRICS.counter(
    "fabric.journal.corrupt", "journal files quarantined as corrupt"
)


# --------------------------------------------------------------------- #
# Payload codec: JSON with bit-exact ndarray envelopes
# --------------------------------------------------------------------- #
def encode_payload(value: Any) -> Any:
    """JSON-safe form of a shard payload; arrays keep dtype/shape/bytes."""
    if isinstance(value, np.ndarray):
        return {
            "__ndarray__": True,
            "dtype": value.dtype.str,
            "shape": list(value.shape),
            "data": base64.b64encode(np.ascontiguousarray(value).tobytes()).decode(),
        }
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {str(k): encode_payload(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_payload(v) for v in value]
    return value


def decode_payload(value: Any) -> Any:
    """Inverse of :func:`encode_payload`; arrays come back bit-identical."""
    if isinstance(value, dict):
        if value.get("__ndarray__"):
            raw = base64.b64decode(value["data"])
            array = np.frombuffer(raw, dtype=np.dtype(value["dtype"]))
            return array.reshape(value["shape"]).copy()
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


# --------------------------------------------------------------------- #
# Crash-safe file primitives
# --------------------------------------------------------------------- #
def atomic_write_bytes(path: Path, data: bytes, *, chaos_key: str | None = None,
                       chaos_sequence: int = 0) -> None:
    """Write-temp + fsync + atomic rename; optionally torn by chaos.

    When the chaos harness injects a torn write, the truncated bytes land
    directly at the destination (simulating a power cut on a non-atomic
    filesystem) — the caller believes the write succeeded, and only a
    later *reader* discovers the damage.  That is exactly the failure the
    quarantine path exists for.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    if chaos_key is not None:
        chaos = active_chaos()
        if chaos is not None:
            torn = chaos.torn_write(chaos_key, chaos_sequence, data)
            if torn is not None:
                path.write_bytes(torn)
                return
    # Pid + thread id: cooperating schedulers may be threads of one
    # process, and two writers of the same record must never share a temp.
    tmp = path.with_name(
        f"{path.name}.tmp.{os.getpid()}.{threading.get_ident()}"
    )
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def _quarantine(path: Path) -> None:
    """Move a corrupt journal file aside (never delete evidence)."""
    try:
        path.replace(Path(f"{path}.corrupt"))
    except OSError:
        pass
    _OBS_CORRUPT.inc()


# --------------------------------------------------------------------- #
# Task specs and the store
# --------------------------------------------------------------------- #
class TaskSpec:
    """Immutable identity of one (unit, shard) task."""

    __slots__ = ("task_id", "unit_index", "shard_index", "shots", "seed")

    def __init__(self, task_id: str, unit_index: int, shard_index: int,
                 shots: int, seed: int) -> None:
        self.task_id = task_id
        self.unit_index = unit_index
        self.shard_index = shard_index
        self.shots = shots
        self.seed = seed

    def fresh_record(self) -> dict[str, Any]:
        return {
            "schema": TASK_SCHEMA,
            "task": self.task_id,
            "state": PENDING,
            "attempts": 0,
            "owner": None,
            "error": None,
            "shots": self.shots,
            "seed": self.seed,
            "updated": time.time(),
        }


class JobStore:
    """Journal + checkpoint store for one sweep under ``root``.

    ``corrupt`` counts quarantined files over this instance's lifetime, and
    ``writes`` the journal writes issued.  Torn-write chaos is sequenced
    *per journal file* (first write of a record, second write, ...) so the
    same spec tears the same transitions regardless of how the scheduler
    interleaved unrelated tasks.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.results_dir = self.root / "results"
        self.leases_dir = self.root / "leases"
        self.corrupt = 0
        self.writes = 0
        self._sequences: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Layout / manifest
    # ------------------------------------------------------------------ #
    def attach(self, manifest: dict[str, Any]) -> bool:
        """Create the layout (and manifest) if new; returns True when fresh.

        Attaching to an existing store validates nothing beyond the
        manifest being readable — task records are the source of truth and
        each is independently recoverable.  A corrupt manifest is
        quarantined and rewritten (the caller re-derives it from the same
        units every time, so nothing is lost).
        """
        for directory in (self.tasks_dir, self.results_dir, self.leases_dir):
            directory.mkdir(parents=True, exist_ok=True)
        path = self.root / "manifest.json"
        existing = self._read_json(path)
        if existing is not None and existing.get("schema") == SCHEMA:
            return False
        payload = {"schema": SCHEMA, **manifest}
        self._write_json(path, payload, chaos_key=None)
        return existing is None

    # ------------------------------------------------------------------ #
    # Task records
    # ------------------------------------------------------------------ #
    def task_path(self, task_id: str) -> Path:
        return self.tasks_dir / f"{task_id}.json"

    def load_task(self, task_id: str) -> dict[str, Any] | None:
        """The journaled record for a task, or None if absent/quarantined."""
        record = self._read_json(self.task_path(task_id))
        if record is None:
            return None
        if record.get("schema") != TASK_SCHEMA or record.get("state") not in STATES:
            self.corrupt += 1
            _quarantine(self.task_path(task_id))
            return None
        return record

    def write_task(self, record: dict[str, Any]) -> None:
        """Journal one task state transition (atomic, fsynced)."""
        record = {**record, "updated": time.time()}
        self._write_json(
            self.task_path(record["task"]), record, chaos_key=record["task"]
        )

    # ------------------------------------------------------------------ #
    # Result checkpoints
    # ------------------------------------------------------------------ #
    def result_path(self, task_id: str) -> Path:
        return self.results_dir / f"{task_id}.json"

    def write_result(self, task_id: str, payload: dict[str, Any]) -> None:
        """Checkpoint a completed shard's payload (written exactly once)."""
        body = {"schema": TASK_SCHEMA, "task": task_id,
                "payload": encode_payload(payload)}
        self._write_json(self.result_path(task_id), body,
                         chaos_key=f"result:{task_id}")

    def load_result(self, task_id: str) -> dict[str, Any] | None:
        """A checkpointed shard payload, or None if absent or quarantined."""
        body = self._read_json(self.result_path(task_id))
        if body is None:
            return None
        if body.get("task") != task_id or "payload" not in body:
            self.corrupt += 1
            _quarantine(self.result_path(task_id))
            return None
        return decode_payload(body["payload"])

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _read_json(self, path: Path) -> dict[str, Any] | None:
        try:
            text = path.read_text()
        except OSError:
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("journal payload is not an object")
        except (ValueError, json.JSONDecodeError):
            self.corrupt += 1
            _quarantine(path)
            return None
        return payload

    def _write_json(self, path: Path, payload: dict[str, Any],
                    chaos_key: str | None) -> None:
        data = json.dumps(payload, sort_keys=True).encode()
        self.writes += 1
        sequence = 0
        if chaos_key is not None:
            sequence = self._sequences.get(chaos_key, 0)
            self._sequences[chaos_key] = sequence + 1
        atomic_write_bytes(path, data, chaos_key=chaos_key,
                           chaos_sequence=sequence)
