"""Retry policy: bounded exponential backoff, jitter, poison quarantine.

Shard execution fails for two very different reasons.  *Transient* faults
— a worker OOM-killed under memory pressure, a chaos-injected exception, a
broken process pool — deserve another attempt after a short, growing
pause.  *Poison* shards — ones that fail deterministically, attempt after
attempt — must not wedge the sweep: after ``max_attempts`` strikes the
task is journaled FAILED with its captured traceback, the sweep keeps
going, and the affected unit degrades to an error row in the output
instead of hanging the whole grid.

The jitter is a pure hash of ``(task_id, attempt)`` rather than a live
RNG draw: retries desynchronise (no thundering herd when a pool dies and
ten shards retry together) while the schedule stays exactly reproducible
and the simulation RNG contract stays untouched.
"""

from __future__ import annotations

import hashlib
import traceback
from dataclasses import dataclass

__all__ = ["RetryPolicy", "format_failure"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often to retry a shard and how long to wait between strikes.

    ``max_attempts`` counts executions, not retries: 5 means one initial
    try plus four retries, then quarantine.  Delays follow
    ``base_delay * 2**(attempt-1)`` capped at ``max_delay``, plus up to
    ``jitter`` fractional spread derived deterministically from the task.
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError("need 0 <= base_delay <= max_delay")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must lie in [0, 1]")

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` executions have failed (quarantine time)."""
        return attempts >= self.max_attempts

    def delay(self, task_id: str, attempts: int) -> float:
        """Seconds to wait before running attempt ``attempts`` (1-based count
        of failures so far); deterministic per (task, attempt)."""
        if attempts <= 0:
            return 0.0
        backoff = min(self.base_delay * (2.0 ** (attempts - 1)), self.max_delay)
        digest = hashlib.sha256(f"{task_id}:{attempts}".encode()).digest()
        spread = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return backoff * (1.0 + self.jitter * spread)


def format_failure(exc: BaseException) -> str:
    """Traceback text captured into a FAILED task's journal record."""
    return "".join(
        traceback.format_exception(type(exc), exc, exc.__traceback__)
    ).strip()
