"""Worker leases: TTL claims on tasks, renewed by heartbeats.

A scheduler claims a task by *atomically creating* its lease file
(``O_CREAT | O_EXCL`` — the filesystem arbitrates between cooperating
scheduler processes on one host).  While the task runs, the scheduler
heartbeats by rewriting the lease with a fresh expiry; a scheduler that
dies (SIGKILL, OOM) simply stops heartbeating, the lease expires, and any
other scheduler *steals* it — overwriting the stale lease and re-queuing
the shard.

The steal path has a deliberate, documented race: two schedulers that
observe the same expired lease at the same instant can both take it and
both run the shard.  That is safe here because shards are deterministic
and idempotent — ``run_shard(unit, shots, seed)`` produces bit-identical
payloads wherever and however often it runs, and checkpoint writes are
atomic last-writer-wins of identical bytes.  Leases are an *efficiency*
mechanism (don't run work twice when you can help it), never a
correctness mechanism; correctness comes from determinism plus the
journal.  Wall-clock time (``time.time``) is used rather than a monotonic
clock because expiry must be comparable across processes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from ..obs.metrics import METRICS
from .jobstore import JobStore, atomic_write_bytes

__all__ = ["Lease", "LeaseManager"]

_OBS_STOLEN = METRICS.counter(
    "fabric.leases.stolen", "expired leases taken over from a dead owner"
)
_OBS_EXPIRED = METRICS.counter(
    "fabric.leases.expired", "leases observed past their deadline"
)


class Lease:
    """Decoded contents of one lease file."""

    __slots__ = ("owner", "expires", "acquired")

    def __init__(self, owner: str, expires: float, acquired: float) -> None:
        self.owner = owner
        self.expires = expires
        self.acquired = acquired

    def expired(self, now: float | None = None) -> bool:
        return (time.time() if now is None else now) >= self.expires


class LeaseManager:
    """Claim, renew and release task leases in a :class:`JobStore`.

    ``ttl`` is how long a lease lives without a heartbeat; renew at
    ``ttl / 3`` or faster.  ``owner`` defaults to ``host:pid`` so lease
    files are attributable in post-mortems.
    """

    def __init__(self, store: JobStore, owner: str | None = None,
                 ttl: float = 30.0) -> None:
        self.store = store
        self.owner = owner or f"{os.uname().nodename}:{os.getpid()}"
        self.ttl = float(ttl)
        self.acquired = 0
        self.stolen = 0

    # ------------------------------------------------------------------ #
    def _path(self, task_id: str) -> Path:
        return self.store.leases_dir / f"{task_id}.json"

    def peek(self, task_id: str) -> Lease | None:
        """Read a lease without touching it; corrupt leases read as absent."""
        try:
            raw = json.loads(self._path(task_id).read_text())
            return Lease(str(raw["owner"]), float(raw["expires"]),
                         float(raw["acquired"]))
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def try_acquire(self, task_id: str) -> bool:
        """Claim a task: atomic create, or steal if the holder's TTL lapsed."""
        path = self._path(task_id)
        now = time.time()
        body = self._body(now)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            current = self.peek(task_id)
            if current is not None and not current.expired(now):
                return current.owner == self.owner
            # Holder is dead (or the lease is unreadable): take over.  See
            # the module docstring for why the takeover race is benign.
            if current is not None:
                _OBS_EXPIRED.inc()
            atomic_write_bytes(path, body)
            self.acquired += 1
            self.stolen += 1
            _OBS_STOLEN.inc()
            return True
        try:
            os.write(fd, body)
            os.fsync(fd)
        finally:
            os.close(fd)
        self.acquired += 1
        return True

    def renew(self, task_id: str) -> bool:
        """Heartbeat: extend our lease; False if we no longer hold it."""
        current = self.peek(task_id)
        if current is None or current.owner != self.owner:
            return False
        atomic_write_bytes(self._path(task_id), self._body(time.time()))
        return True

    def release(self, task_id: str) -> None:
        """Drop our claim (no-op if somebody stole it meanwhile)."""
        current = self.peek(task_id)
        if current is not None and current.owner == self.owner:
            try:
                self._path(task_id).unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def _body(self, now: float) -> bytes:
        payload: dict[str, Any] = {
            "owner": self.owner,
            "acquired": now,
            "expires": now + self.ttl,
        }
        return json.dumps(payload, sort_keys=True).encode()
