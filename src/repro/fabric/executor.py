"""The durable sweep executor: journaled tasks, leases, retries, resume.

:class:`FabricExecutor` is a drop-in peer of
:class:`~repro.sweeps.executor.SweepExecutor` — same ``run_units`` rows,
same :class:`~repro.sweeps.cache.SweepCache` interop, same deterministic
shard plans and seeds — but every (unit, shard) task is promoted to a
durable job in a :class:`~repro.fabric.jobstore.JobStore` under the cache
directory.  The differences only show up when something dies:

* A worker process that is SIGKILLed mid-shard breaks the process pool;
  the scheduler rebuilds the pool, counts a strike against the in-flight
  tasks, and retries them under the
  :class:`~repro.fabric.retry.RetryPolicy`'s backoff.
* A scheduler that dies leaves journaled PENDING/LEASED records and DONE
  checkpoints behind; re-running the same sweep attaches to the same
  store, loads every checkpointed shard without recomputing it, lets the
  dead scheduler's leases expire, and finishes the rest.
* Multiple scheduler processes pointed at one store cooperate through
  file-claim leases (:mod:`repro.fabric.lease`); because shards are
  deterministic, even a duplicated shard merges to identical bytes.
* A shard that fails ``max_attempts`` times is quarantined FAILED with
  its traceback; the sweep completes and its unit degrades to an error
  row instead of hanging the grid.

The house invariant holds throughout: the shard plan and per-shard seeds
are exactly :class:`SweepExecutor`'s, so a durable, resumed, crashed-and-
recovered run merges bit-identical to the equivalent in-memory run (and,
for units that fit in one shard, to ``workers=1``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..obs.metrics import METRICS
from ..obs.trace import instant, span
from ..sweeps.cache import SweepCache, default_cache_dir
from ..sweeps.executor import (
    DEFAULT_SHARD_SHOTS,
    _worker_init,
    default_workers,
    plan_shards,
    shard_seeds,
)
from ..sweeps.spec import SweepSpec
from ..sweeps.units import (
    ENGINE_VERSION,
    WorkUnit,
    apply_unit_labels,
    merge_shards,
    run_shard,
    summarize_unit,
    unit_key,
)
from .chaos import active_chaos
from .jobstore import DONE, FAILED, LEASED, PENDING, JobStore, TaskSpec
from .lease import LeaseManager
from .retry import RetryPolicy, format_failure

__all__ = ["FabricExecutor", "FabricInterrupted", "sweep_store_root"]

_OBS_COMPLETED = METRICS.counter(
    "fabric.tasks.completed", "shard tasks executed to DONE by this process"
)
_OBS_CHECKPOINT = METRICS.counter(
    "fabric.tasks.checkpoint_hits", "shards restored from journal checkpoints"
)
_OBS_RETRIED = METRICS.counter(
    "fabric.tasks.retried", "shard attempts that failed and were re-queued"
)
_OBS_QUARANTINED = METRICS.counter(
    "fabric.tasks.quarantined", "poison shards journaled FAILED after max strikes"
)
_OBS_POOL_REBUILDS = METRICS.counter(
    "fabric.pool.rebuilds", "process pools rebuilt after a worker died"
)
_OBS_UNITS_FAILED = METRICS.counter(
    "fabric.units.failed", "units degraded to error rows by quarantined shards"
)
_OBS_ADOPTED = METRICS.counter(
    "fabric.tasks.adopted", "shards completed by a cooperating scheduler"
)


class FabricInterrupted(RuntimeError):
    """A budget-bounded scheduling slice ran out before the sweep finished.

    Raised by ``run_units(..., max_new_tasks=N)`` once N tasks completed
    with open tasks remaining.  Everything completed so far is journaled
    and checkpointed; re-running the same sweep resumes where this slice
    stopped.  (Tests use this to simulate a scheduler crash without
    killing the test process.)
    """

    def __init__(self, completed: int, open_tasks: int) -> None:
        super().__init__(
            f"fabric slice stopped after {completed} tasks with "
            f"{open_tasks} still open; re-run to resume from the journal"
        )
        self.completed = completed
        self.open_tasks = open_tasks


def sweep_store_root(task_ids: Sequence[str], root: str | Path | None = None) -> Path:
    """The store directory for one sweep: ``<root>/<digest of task ids>``.

    Derived purely from the task identity set, so every scheduler process
    that compiles the same units attaches to the same store — and a
    different grid can never collide with it.
    """
    base = Path(root) if root is not None else default_cache_dir() / "fabric"
    digest = hashlib.sha256(
        json.dumps({"engine": ENGINE_VERSION, "tasks": sorted(task_ids)}).encode()
    ).hexdigest()[:20]
    return base / digest


# --------------------------------------------------------------------- #
# Worker side (runs in pool processes)
# --------------------------------------------------------------------- #
def _fabric_run_shard(
    unit: WorkUnit, shots: int, seed: int, task_id: str, attempt: int
) -> dict[str, Any]:
    """Run one shard in a worker, passing through the chaos gauntlet first."""
    chaos = active_chaos()
    if chaos is not None:
        chaos.maybe_stall(task_id, attempt)
        chaos.maybe_crash(task_id, attempt)
        chaos.maybe_raise(task_id, attempt)
    return run_shard(unit, shots, seed)


@dataclass(frozen=True)
class _Task:
    """One schedulable (unit, shard) job."""

    spec: TaskSpec
    unit: WorkUnit


@dataclass(frozen=True)
class _PendingUnit:
    """A unit the cache could not satisfy, with its compiled tasks."""

    index: int
    unit: WorkUnit
    key: str
    task_ids: tuple[str, ...]


class FabricExecutor:
    """Durable peer of :class:`~repro.sweeps.executor.SweepExecutor`.

    Parameters beyond the SweepExecutor trio (``workers`` / ``cache`` /
    ``shard_shots``):

    root:
        Directory holding per-sweep job stores (default
        ``<REPRO_CACHE_DIR>/fabric``).
    retry:
        The :class:`RetryPolicy` wrapped around shard execution.
    lease_ttl:
        Seconds a lease survives without a heartbeat; heartbeats fire at a
        third of this.  Size it well above one shard's runtime.
    owner:
        Lease owner label (default ``host:pid``).
    poll_interval:
        Scheduler loop granularity in seconds.

    Counter attributes mirror SweepExecutor's (``units_computed``,
    ``units_from_cache``, ``shards_executed``) plus the durability set:
    ``shards_from_checkpoint``, ``shards_retried``, ``shards_quarantined``,
    ``shards_adopted``, ``pool_rebuilds`` and the ``failed_units`` list of
    ``(unit, error)`` rows that degraded.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: SweepCache | str | Path | None = None,
        shard_shots: int = DEFAULT_SHARD_SHOTS,
        *,
        root: str | Path | None = None,
        retry: RetryPolicy | None = None,
        lease_ttl: float = 30.0,
        owner: str | None = None,
        poll_interval: float = 0.05,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        if cache is None:
            self.cache: SweepCache | None = None
        elif isinstance(cache, SweepCache):
            self.cache = cache
        else:
            self.cache = SweepCache(cache)
        self.shard_shots = int(shard_shots)
        self.root = Path(root) if root is not None else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.lease_ttl = float(lease_ttl)
        self.owner = owner
        self.poll_interval = float(poll_interval)

        self.units_computed = 0
        self.units_from_cache = 0
        self.shards_executed = 0
        self.shards_from_checkpoint = 0
        self.shards_retried = 0
        self.shards_quarantined = 0
        self.shards_adopted = 0
        self.pool_rebuilds = 0
        self.failed_units: list[tuple[WorkUnit, str]] = []

    # ------------------------------------------------------------------ #
    # Entry points (SweepExecutor-compatible)
    # ------------------------------------------------------------------ #
    def run(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """Compile a spec and execute it durably; one summary row per unit."""
        return self.run_units(spec.units())

    def shard_plan(self, unit: WorkUnit) -> list[tuple[int, int]]:
        """(shots, seed) per shard — identical to SweepExecutor's plan.

        Single-shard units keep their base seed (the legacy ``workers=1``
        stream), multi-shard units derive seeds from the unit's content
        hash; either way the plan never depends on worker count, lease
        timing, crashes or resume, which is what makes durable runs merge
        bit-identical to in-memory ones.
        """
        sizes = plan_shards(unit.shots, self.shard_shots)
        if len(sizes) == 1:
            return [(sizes[0], unit.seed)]
        return list(zip(sizes, shard_seeds(unit, len(sizes))))

    def run_units(
        self,
        units: Sequence[WorkUnit],
        *,
        max_new_tasks: int | None = None,
    ) -> list[dict[str, Any]]:
        """Execute units durably; rows come back in input order.

        ``max_new_tasks`` bounds how many shard tasks this call may
        execute before raising :class:`FabricInterrupted` (checkpointing
        everything it did finish) — an operator's budgeted slice, and the
        test suite's simulated scheduler crash.
        """
        rows: list[dict[str, Any] | None] = [None] * len(units)
        pending: list[_PendingUnit] = []
        tasks: list[_Task] = []
        for index, unit in enumerate(units):
            plan = self.shard_plan(unit)
            key = unit_key(unit, tuple(shots for shots, _ in plan))
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self.units_from_cache += 1
                instant("fabric.unit.cache_hit", family=unit.family, policy=unit.policy)
                rows[index] = apply_unit_labels(unit, cached)
                continue
            task_ids = []
            for shard_index, (shots, seed) in enumerate(plan):
                task_id = f"{key[:20]}-{shard_index:03d}"
                task_ids.append(task_id)
                tasks.append(
                    _Task(TaskSpec(task_id, index, shard_index, shots, seed), unit)
                )
            pending.append(_PendingUnit(index, unit, key, tuple(task_ids)))

        if not pending:
            return rows  # type: ignore[return-value]

        store = JobStore(sweep_store_root([t.spec.task_id for t in tasks], self.root))
        store.attach(
            {
                "engine": ENGINE_VERSION,
                "tasks": {
                    t.spec.task_id: {"shots": t.spec.shots, "seed": t.spec.seed}
                    for t in tasks
                },
            }
        )
        with span(
            "fabric.run", tasks=len(tasks), units=len(pending), workers=self.workers
        ):
            results, failures = self._drive(store, tasks, max_new_tasks)

        for entry in pending:
            errors = [
                failures[task_id] for task_id in entry.task_ids if task_id in failures
            ]
            if errors:
                self.failed_units.append((entry.unit, errors[0]))
                _OBS_UNITS_FAILED.inc()
                rows[entry.index] = apply_unit_labels(
                    entry.unit,
                    {
                        "error": errors[0].strip().splitlines()[-1],
                        "failed_shards": len(errors),
                        "policy": entry.unit.policy,
                        "shots": entry.unit.shots,
                    },
                )
                continue
            payloads = [results[task_id] for task_id in entry.task_ids]
            row = summarize_unit(
                entry.unit, merge_shards(entry.unit, payloads), apply_labels=False
            )
            if self.cache is not None:
                self.cache.put(entry.key, row)
            self.units_computed += 1
            rows[entry.index] = apply_unit_labels(entry.unit, row)
        return rows  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # The scheduling loop
    # ------------------------------------------------------------------ #
    def _drive(
        self,
        store: JobStore,
        tasks: list[_Task],
        max_new_tasks: int | None,
    ) -> tuple[dict[str, dict[str, Any]], dict[str, str]]:
        """Drive every task to DONE/FAILED; returns (payloads, errors)."""
        lease = LeaseManager(store, owner=self.owner, ttl=self.lease_ttl)
        by_id = {task.spec.task_id: task for task in tasks}
        results: dict[str, dict[str, Any]] = {}
        failures: dict[str, str] = {}
        attempts: dict[str, int] = {}
        next_try: dict[str, float] = {}

        # Bootstrap from the journal: adopt checkpoints, honour quarantines.
        for task in tasks:
            task_id = task.spec.task_id
            record = store.load_task(task_id)
            if record is None:
                record = task.spec.fresh_record()
                store.write_task(record)
            attempts[task_id] = int(record.get("attempts", 0))
            if record["state"] == FAILED:
                failures[task_id] = str(record.get("error") or "failed")
                continue
            # A readable checkpoint is adopted whatever the record says:
            # checkpoints are written once, atomically, and self-validate,
            # so even a scheduler killed between its result write and the
            # DONE transition leaves nothing to recompute.
            payload = store.load_result(task_id)
            if payload is not None:
                results[task_id] = payload
                self.shards_from_checkpoint += 1
                _OBS_CHECKPOINT.inc()
            elif record["state"] == DONE:
                # DONE record without a readable checkpoint (torn write,
                # quarantined file): recompute the shard.
                store.write_task({**record, "state": PENDING})

        if len(results) + len(failures) == len(tasks):
            return results, failures

        completed_new = 0
        inflight: dict[Future, _Task] = {}
        pool = self._new_pool(len(tasks))
        last_heartbeat = time.time()
        try:
            while len(results) + len(failures) < len(tasks):
                now = time.time()
                budget_open = (
                    max_new_tasks is None
                    or completed_new + len(inflight) < max_new_tasks
                )
                # ---------------- submissions / remote adoption ---------- #
                inflight_ids = {task.spec.task_id for task in inflight.values()}
                for task in tasks:
                    task_id = task.spec.task_id
                    if (
                        task_id in results
                        or task_id in failures
                        or task_id in inflight_ids
                    ):
                        continue
                    holder = lease.peek(task_id)
                    if (
                        holder is not None
                        and holder.owner != lease.owner
                        and not holder.expired(now)
                    ):
                        # A cooperating scheduler is on it; adopt its outcome
                        # if it already journaled one.
                        record = store.load_task(task_id)
                        if record is not None and record["state"] == DONE:
                            payload = store.load_result(task_id)
                            if payload is not None:
                                results[task_id] = payload
                                self.shards_adopted += 1
                                _OBS_ADOPTED.inc()
                        elif record is not None and record["state"] == FAILED:
                            failures[task_id] = str(record.get("error") or "failed")
                        continue
                    record = store.load_task(task_id)
                    if record is not None and record["state"] == DONE:
                        payload = store.load_result(task_id)
                        if payload is not None:
                            results[task_id] = payload
                            self.shards_adopted += 1
                            _OBS_ADOPTED.inc()
                            continue
                        store.write_task({**record, "state": PENDING})
                    elif record is not None and record["state"] == FAILED:
                        failures[task_id] = str(record.get("error") or "failed")
                        continue
                    if next_try.get(task_id, 0.0) > now or not budget_open:
                        continue
                    if not lease.try_acquire(task_id):
                        continue
                    store.write_task(
                        {
                            **(record or task.spec.fresh_record()),
                            "state": LEASED,
                            "owner": lease.owner,
                            "attempts": attempts[task_id],
                        }
                    )
                    try:
                        future = pool.submit(
                            _fabric_run_shard,
                            task.unit,
                            task.spec.shots,
                            task.spec.seed,
                            task_id,
                            attempts[task_id],
                        )
                    except BrokenProcessPool:
                        # A worker died between loop passes; rebuild and let
                        # the next pass re-submit (no strike — the shard
                        # never ran).
                        pool.shutdown(wait=False, cancel_futures=True)
                        pool = self._new_pool(len(tasks))
                        self.pool_rebuilds += 1
                        _OBS_POOL_REBUILDS.inc()
                        lease.release(task_id)
                        break
                    inflight[future] = task
                    inflight_ids.add(task_id)
                    budget_open = (
                        max_new_tasks is None
                        or completed_new + len(inflight) < max_new_tasks
                    )

                if not inflight:
                    open_ids = [
                        t.spec.task_id
                        for t in tasks
                        if t.spec.task_id not in results
                        and t.spec.task_id not in failures
                    ]
                    if not open_ids:
                        break
                    if max_new_tasks is not None and completed_new >= max_new_tasks:
                        raise FabricInterrupted(completed_new, len(open_ids))
                    time.sleep(self.poll_interval)
                    continue

                # ---------------- completions ---------------------------- #
                done, _ = wait(
                    set(inflight), timeout=self.poll_interval,
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for future in done:
                    task = inflight.pop(future)
                    task_id = task.spec.task_id
                    try:
                        payload = future.result()
                    except BrokenProcessPool as exc:
                        pool_broken = True
                        self._record_failure(
                            store, lease, task, exc, attempts, next_try, failures
                        )
                    except (CancelledError, Exception) as exc:  # noqa: BLE001 —
                        # every shard failure (including a future cancelled by
                        # a dying pool) is journaled, retried or quarantined.
                        self._record_failure(
                            store, lease, task, exc, attempts, next_try, failures
                        )
                    else:
                        store.write_result(task_id, payload)
                        store.write_task(
                            {
                                **task.spec.fresh_record(),
                                "state": DONE,
                                "owner": lease.owner,
                                "attempts": attempts[task_id],
                            }
                        )
                        lease.release(task_id)
                        results[task_id] = payload
                        completed_new += 1
                        self.shards_executed += 1
                        _OBS_COMPLETED.inc()
                if pool_broken:
                    # A worker died (SIGKILL/OOM): the pool is unusable.
                    # Remaining in-flight futures resolve exceptionally on
                    # their own; build a fresh pool for the retries.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._new_pool(len(tasks))
                    self.pool_rebuilds += 1
                    _OBS_POOL_REBUILDS.inc()
                    instant("fabric.pool.rebuilt")

                # ---------------- heartbeats ----------------------------- #
                if time.time() - last_heartbeat >= self.lease_ttl / 3.0:
                    for task in inflight.values():
                        lease.renew(task.spec.task_id)
                    last_heartbeat = time.time()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return results, failures

    def _record_failure(
        self,
        store: JobStore,
        lease: LeaseManager,
        task: _Task,
        exc: BaseException,
        attempts: dict[str, int],
        next_try: dict[str, float],
        failures: dict[str, str],
    ) -> None:
        """One strike against a shard: re-queue with backoff or quarantine."""
        task_id = task.spec.task_id
        attempts[task_id] += 1
        if self.retry.exhausted(attempts[task_id]):
            error = format_failure(exc)
            store.write_task(
                {
                    **task.spec.fresh_record(),
                    "state": FAILED,
                    "attempts": attempts[task_id],
                    "error": error,
                }
            )
            failures[task_id] = error
            self.shards_quarantined += 1
            _OBS_QUARANTINED.inc()
            instant("fabric.task.quarantined", task=task_id)
        else:
            store.write_task(
                {
                    **task.spec.fresh_record(),
                    "state": PENDING,
                    "attempts": attempts[task_id],
                }
            )
            next_try[task_id] = time.time() + self.retry.delay(
                task_id, attempts[task_id]
            )
            self.shards_retried += 1
            _OBS_RETRIED.inc()
            instant("fabric.task.retried", task=task_id, attempts=attempts[task_id])
        lease.release(task_id)

    def _new_pool(self, open_tasks: int) -> ProcessPoolExecutor:
        src_path = str(Path(__file__).resolve().parent.parent.parent)
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        return ProcessPoolExecutor(
            max_workers=min(self.workers, max(open_tasks, 1)),
            mp_context=context,
            initializer=_worker_init,
            initargs=(src_path,),
        )
