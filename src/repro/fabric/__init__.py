"""Durable sweep fabric: checkpointed jobs, leases, crash-safe resume.

``repro.fabric`` is the durability layer under the sweep engine.  Where
:class:`~repro.sweeps.executor.SweepExecutor` holds all in-flight progress
in one process's memory, :class:`FabricExecutor` journals every
(unit, shard) task to a :class:`JobStore` on disk, hands shards to
workers under TTL :class:`leases <repro.fabric.lease.LeaseManager>`,
wraps execution in a :class:`RetryPolicy` with poison-shard quarantine,
and resumes crash-safely: re-running the same sweep loads completed shard
checkpoints instead of recomputing them and merges bit-identical to an
uninterrupted run.

Turn it on with ``execution.durable`` in an
:class:`~repro.api.config.ExperimentConfig` (digest-exempt — durable and
in-memory runs of the same physics share cache entries) or from the CLI::

    python -m repro sweep --distributed --config grid.json --axis code.distance=3,5

Fault injection for tests and CI lives in :mod:`repro.fabric.chaos`,
gated by the ``REPRO_CHAOS`` environment variable.
"""

from .chaos import ChaosConfig, ChaosError, active_chaos
from .executor import FabricExecutor, FabricInterrupted, sweep_store_root
from .jobstore import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    JobStore,
    TaskSpec,
    decode_payload,
    encode_payload,
)
from .lease import Lease, LeaseManager
from .retry import RetryPolicy

__all__ = [
    "FabricExecutor",
    "FabricInterrupted",
    "sweep_store_root",
    "JobStore",
    "TaskSpec",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "encode_payload",
    "decode_payload",
    "Lease",
    "LeaseManager",
    "RetryPolicy",
    "ChaosConfig",
    "ChaosError",
    "active_chaos",
]
