"""Minimal RFC 6455 websocket adapter for the decode server.

Browsers and websocket-only infrastructure cannot speak raw length-prefixed
TCP, so this gateway exposes the same session protocol over websockets:
each *binary websocket message* carries exactly one protocol frame body —
the one type byte followed by the payload; the 4-byte length prefix of the
TCP transport is dropped because websocket framing already delimits
messages.  Everything above the transport (HELLO/OPEN/CHUNK/... dispatch,
admission, SLO accounting) is the shared
:meth:`~repro.serve.server.DecodeServer.handle_session` path, so the two
front doors cannot drift apart.

Implementation scope (stdlib only, no websocket dependency): server side
of the handshake (``Sec-WebSocket-Accept``), single-frame (FIN=1) binary
messages, masked client payloads, ping/pong and close.  Fragmented
messages and extensions are rejected as :class:`ProtocolError` — ample for
the protocol's small control frames and one-round data frames.
"""

from __future__ import annotations

import asyncio
import base64
import contextlib
import hashlib
import struct

import numpy as np

from .protocol import MAX_PAYLOAD, FrameType, ProtocolError
from .server import DecodeServer, Transport

__all__ = ["WebSocketGateway"]

#: Fixed GUID from RFC 6455 §1.3 used to derive Sec-WebSocket-Accept.
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

_OP_BINARY = 0x2
_OP_CLOSE = 0x8
_OP_PING = 0x9
_OP_PONG = 0xA


def _accept_key(client_key: str) -> str:
    digest = hashlib.sha1(client_key.strip().encode("ascii") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def _ws_message(opcode: int, payload: bytes) -> bytes:
    """One unmasked (server-to-client) websocket frame."""
    head = bytes([0x80 | opcode])
    length = len(payload)
    if length < 126:
        head += bytes([length])
    elif length < 1 << 16:
        head += bytes([126]) + struct.pack(">H", length)
    else:
        head += bytes([127]) + struct.pack(">Q", length)
    return head + payload


async def _read_message(reader: asyncio.StreamReader) -> tuple[int, bytes]:
    """Read one client websocket frame; returns ``(opcode, payload)``."""
    header = await reader.readexactly(2)
    fin, opcode = header[0] & 0x80, header[0] & 0x0F
    if not fin or header[0] & 0x70:
        raise ProtocolError("fragmented or extended websocket frames not supported")
    masked, length = header[1] & 0x80, header[1] & 0x7F
    if not masked:
        raise ProtocolError("client websocket frames must be masked")
    if length == 126:
        (length,) = struct.unpack(">H", await reader.readexactly(2))
    elif length == 127:
        (length,) = struct.unpack(">Q", await reader.readexactly(8))
    if length > MAX_PAYLOAD:
        raise ProtocolError(f"websocket frame of {length} bytes exceeds MAX_PAYLOAD")
    mask = np.frombuffer(await reader.readexactly(4), dtype=np.uint8)
    payload = np.frombuffer(await reader.readexactly(length), dtype=np.uint8)
    if length:
        repeats = -(-length // 4)
        payload = payload ^ np.tile(mask, repeats)[:length]
    return opcode, payload.tobytes()


class _WsTransport(Transport):
    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer

    async def send(self, frame_type: int, payload: bytes) -> None:
        body = bytes([FrameType(frame_type)]) + payload
        self.writer.write(_ws_message(_OP_BINARY, body))
        await self.writer.drain()

    def close(self) -> None:
        self.writer.close()


class WebSocketGateway:
    """Accept websocket connections and bridge them onto a DecodeServer."""

    def __init__(
        self, server: DecodeServer, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.server = server
        self.host = host
        self._port = port
        self._listener: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        assert self._listener is not None and self._listener.sockets
        return self._listener.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._listener = await asyncio.start_server(
            self._handle, host=self.host, port=self._port
        )

    async def stop(self) -> None:
        if self._listener is not None:
            self._listener.close()
            await self._listener.wait_closed()
            self._listener = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            if not await self._handshake(reader, writer):
                return
            transport = _WsTransport(writer)

            async def frames():
                while True:
                    try:
                        opcode, payload = await _read_message(reader)
                    except asyncio.IncompleteReadError:
                        return
                    if opcode == _OP_CLOSE:
                        with contextlib.suppress(Exception):
                            writer.write(_ws_message(_OP_CLOSE, payload[:2]))
                            await writer.drain()
                        return
                    if opcode == _OP_PING:
                        writer.write(_ws_message(_OP_PONG, payload))
                        await writer.drain()
                        continue
                    if opcode != _OP_BINARY:
                        raise ProtocolError(
                            f"unsupported websocket opcode {opcode:#x}"
                        )
                    if not payload:
                        raise ProtocolError("empty websocket protocol frame")
                    try:
                        frame_type = FrameType(payload[0])
                    except ValueError as exc:
                        raise ProtocolError(
                            f"unknown frame type {payload[0]}"
                        ) from exc
                    yield frame_type, payload[1:]

            await self.server.handle_session(transport, frames())
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    @staticmethod
    async def _handshake(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        try:
            request = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=10.0
            )
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            asyncio.LimitOverrunError,
        ):
            return False
        headers = {}
        for line in request.split(b"\r\n")[1:]:
            if b":" in line:
                name, _, value = line.partition(b":")
                headers[name.strip().lower()] = value.strip()
        key = headers.get(b"sec-websocket-key")
        if key is None or b"websocket" not in headers.get(b"upgrade", b"").lower():
            writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            await writer.drain()
            return False
        response = (
            "HTTP/1.1 101 Switching Protocols\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Accept: {_accept_key(key.decode('ascii'))}\r\n"
            "\r\n"
        )
        writer.write(response.encode("ascii"))
        await writer.drain()
        return True
