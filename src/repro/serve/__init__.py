"""Decode-as-a-service: the network front end over the realtime decoder.

``repro.serve`` turns the in-process :class:`~repro.realtime.DecodeService`
into a served product: an asyncio TCP server speaking a length-prefixed
binary frame protocol (:mod:`repro.serve.protocol`), an optional websocket
gateway (:mod:`repro.serve.websocket`), sharded decode workers with
admission control and per-tenant token-bucket backpressure
(:mod:`repro.serve.server`), live SLO accounting priced against the
hardware round budget (:mod:`repro.serve.slo`), and the client library the
examples and benchmarks drive it with (:mod:`repro.serve.client`).

Start one from the CLI (``python -m repro serve``), or in-process::

    from repro.serve import ServerConfig, ServerThread

    with ServerThread(ServerConfig(port=0)) as handle:
        results = decode_records("127.0.0.1", handle.port, records,
                                 code={"family": "surface", "distance": 3},
                                 noise={"p": 2e-3, "leakage_ratio": 1.0})

Served predictions are bit-identical to in-process decoding — the server
only ever reaches the decoder through the same public
:class:`DecodeService` API, and the equivalence is pinned across the full
code × decoder × coalescing matrix by ``tests/test_serve.py``.
"""

from __future__ import annotations

import asyncio
import threading

from .client import ClientStream, ServeClient, StreamRejected, StreamResult, decode_records
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    ProtocolError,
    encode_frame,
)
from .server import DecodeServer, ServerConfig, TokenBucket
from .slo import SloTracker
from .websocket import WebSocketGateway

__all__ = [
    "PROTOCOL_VERSION",
    "FrameType",
    "FrameDecoder",
    "ProtocolError",
    "encode_frame",
    "ServerConfig",
    "DecodeServer",
    "TokenBucket",
    "SloTracker",
    "ServeClient",
    "ClientStream",
    "StreamResult",
    "StreamRejected",
    "decode_records",
    "WebSocketGateway",
    "ServerThread",
]


class ServerThread:
    """Run a :class:`DecodeServer` on a background event-loop thread.

    The harness tests, the quickstart example and the capacity benchmark
    all use this: enter the context, read :attr:`port` (and
    :attr:`ws_port` with ``websocket=True``), drive it with any client,
    and exit for a graceful drain + full thread join.
    """

    def __init__(
        self, config: ServerConfig | None = None, websocket: bool = False
    ) -> None:
        self.config = config or ServerConfig()
        self.websocket = websocket
        self.server: DecodeServer | None = None
        self.gateway: WebSocketGateway | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------ #
    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="serve-loop"
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("decode server failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is None or self.server is None:
            return
        future = asyncio.run_coroutine_threadsafe(self._shutdown(), self._loop)
        future.result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=60)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def ws_port(self) -> int:
        assert self.gateway is not None
        return self.gateway.port

    def status(self) -> dict:
        """Live status snapshot (reads counters; safe from any thread)."""
        assert self.server is not None
        return self.server.status()

    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            self.server = DecodeServer(self.config)
            await self.server.start()
            if self.websocket:
                self.gateway = WebSocketGateway(self.server)
                await self.gateway.start()

        try:
            loop.run_until_complete(boot())
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            loop.close()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(loop.shutdown_asyncgens())
            loop.close()

    async def _shutdown(self) -> None:
        if self.gateway is not None:
            await self.gateway.stop()
        assert self.server is not None
        await self.server.shutdown()
