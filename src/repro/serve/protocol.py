"""Wire protocol of the decode service: length-prefixed binary frames.

One frame is ``[u32 big-endian length][u8 type][payload]`` where ``length``
counts the type byte plus the payload.  Control frames (session setup,
stream management, status) carry UTF-8 JSON payloads; data frames (round
chunks, final readouts, results) carry a fixed binary header followed by
``np.packbits``-packed detector bits — eight detectors per byte, the same
packed domain the fused pipeline's ring buffers use, so a round chunk on
the wire is one eighth of its boolean footprint.

Robustness contract: anything a peer can send — truncated frames, garbage
bytes, oversized lengths, unknown types, malformed JSON, packed payloads
of the wrong size — surfaces as :class:`ProtocolError` from the incremental
:class:`FrameDecoder` or the typed ``decode_*`` helpers.  Connection
handlers catch it, answer with an ``ERROR`` frame and drop that one
connection; it never propagates into the event loop.  The hypothesis suite
in ``tests/test_serve_protocol.py`` round-trips and fuzzes every codec in
this module.
"""

from __future__ import annotations

import json
import struct
from enum import IntEnum

import numpy as np

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD",
    "FrameType",
    "ProtocolError",
    "FrameDecoder",
    "encode_frame",
    "encode_json",
    "decode_json",
    "pack_bools",
    "unpack_bools",
    "encode_chunk",
    "decode_chunk",
    "encode_final",
    "decode_final",
    "encode_result",
    "decode_result",
]

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload (type byte included).  A d=25 toric
#: round for 4096 shots packs well under 1 MiB; 16 MiB leaves headroom for
#: large final readouts while bounding what a hostile peer can make the
#: server buffer.
MAX_PAYLOAD = 16 * 1024 * 1024

_LENGTH = struct.Struct(">I")
_CHUNK_HEADER = struct.Struct(">IIII")  # stream, round, shots, detectors
_FINAL_HEADER = struct.Struct(">IIIB")  # stream, shots, detectors, flags
_RESULT_HEADER = struct.Struct(">IIi")  # stream, shots, failures (-1: unknown)


class FrameType(IntEnum):
    """Frame type tags; JSON unless noted as binary."""

    HELLO = 1  # client->server: {tenant, protocol}
    WELCOME = 2  # server->client: {server, protocol, shards}
    OPEN = 3  # client->server: {stream, shots, rounds, code, noise, ...}
    ACCEPT = 4  # server->client: {stream}
    REJECT = 5  # server->client: {stream, reason}
    CHUNK = 6  # client->server: binary round chunk
    FINAL = 7  # client->server: binary final readout
    RESULT = 8  # server->client: binary predictions + JSON summary
    STREAM_ERROR = 9  # server->client: {stream, error}
    CLOSE_STREAM = 10  # client->server: {stream}  (abort)
    STATUS = 11  # client->server: {}
    STATUS_REPLY = 12  # server->client: live SLO/stats snapshot
    ERROR = 13  # server->client: {error}; the connection is then closed
    DRAIN = 14  # server->client: {reason}; no new OPENs will be accepted


class ProtocolError(ValueError):
    """A malformed frame or payload; kills the connection, not the server."""


def encode_frame(frame_type: int, payload: bytes = b"") -> bytes:
    """Serialise one frame (length prefix + type byte + payload)."""
    if len(payload) + 1 > MAX_PAYLOAD:
        raise ProtocolError(f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD")
    return _LENGTH.pack(len(payload) + 1) + bytes([FrameType(frame_type)]) + payload


class FrameDecoder:
    """Incremental frame parser over an arbitrary byte-chunk stream.

    ``feed`` accepts whatever the transport produced (any split points) and
    returns the complete frames it can now parse, in order.  Malformed
    input raises :class:`ProtocolError` and poisons the decoder — the
    connection is unrecoverable by design, there is no resynchronisation.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._poisoned = False

    @property
    def buffered(self) -> int:
        """Bytes held waiting for the rest of a frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[tuple[FrameType, bytes]]:
        if self._poisoned:
            raise ProtocolError("decoder already failed; connection must close")
        self._buffer.extend(data)
        frames: list[tuple[FrameType, bytes]] = []
        try:
            while True:
                if len(self._buffer) < _LENGTH.size:
                    return frames
                (length,) = _LENGTH.unpack_from(self._buffer)
                if length == 0:
                    raise ProtocolError("zero-length frame")
                if length > MAX_PAYLOAD:
                    raise ProtocolError(
                        f"frame of {length} bytes exceeds MAX_PAYLOAD ({MAX_PAYLOAD})"
                    )
                if len(self._buffer) < _LENGTH.size + length:
                    return frames
                body = bytes(self._buffer[_LENGTH.size : _LENGTH.size + length])
                del self._buffer[: _LENGTH.size + length]
                try:
                    frame_type = FrameType(body[0])
                except ValueError as exc:
                    raise ProtocolError(f"unknown frame type {body[0]}") from exc
                frames.append((frame_type, body[1:]))
        except ProtocolError:
            self._poisoned = True
            raise


# --------------------------------------------------------------------- #
# JSON control payloads
# --------------------------------------------------------------------- #
def encode_json(obj: dict) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("JSON payload must be an object")
    return obj


# --------------------------------------------------------------------- #
# Packed boolean blocks
# --------------------------------------------------------------------- #
def pack_bools(array: np.ndarray) -> bytes:
    """Bit-pack a boolean array (row-major, 8 bits per byte)."""
    return np.packbits(np.asarray(array, dtype=bool).reshape(-1)).tobytes()


def unpack_bools(data: bytes, shape: tuple[int, ...]) -> np.ndarray:
    """Inverse of :func:`pack_bools`; validates the byte count exactly."""
    bits = int(np.prod(shape, dtype=np.int64)) if shape else 1
    expected = (bits + 7) // 8
    if len(data) != expected:
        raise ProtocolError(
            f"packed block of {len(data)} bytes; expected {expected} for shape {shape}"
        )
    flat = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=bits)
    return flat.astype(bool).reshape(shape)


def _packed_size(bits: int) -> int:
    return (bits + 7) // 8


def _split(payload: bytes, offset: int, size: int, what: str) -> bytes:
    if len(payload) < offset + size:
        raise ProtocolError(f"truncated {what}: {len(payload)} bytes")
    return payload[offset : offset + size]


# --------------------------------------------------------------------- #
# CHUNK: one syndrome round for one stream
# --------------------------------------------------------------------- #
def encode_chunk(stream: int, round_index: int, detectors: np.ndarray) -> bytes:
    """Payload of a ``CHUNK`` frame for a ``(shots, detectors)`` bool round."""
    chunk = np.asarray(detectors, dtype=bool)
    if chunk.ndim != 2:
        raise ProtocolError("round chunk must be 2-D (shots, detectors)")
    shots, width = chunk.shape
    header = _CHUNK_HEADER.pack(stream, round_index, shots, width)
    return header + pack_bools(chunk)


def decode_chunk(payload: bytes) -> tuple[int, int, np.ndarray]:
    """``(stream, round_index, detectors)`` from a ``CHUNK`` payload."""
    try:
        stream, round_index, shots, width = _CHUNK_HEADER.unpack_from(payload)
    except struct.error as exc:
        raise ProtocolError(f"truncated chunk header: {len(payload)} bytes") from exc
    packed = payload[_CHUNK_HEADER.size :]
    detectors = unpack_bools(packed, (shots, width))
    return stream, round_index, detectors


# --------------------------------------------------------------------- #
# FINAL: end-of-stream transversal readout (+ optional true observables)
# --------------------------------------------------------------------- #
def encode_final(
    stream: int,
    final_detectors: np.ndarray,
    observable_flips: np.ndarray | None = None,
) -> bytes:
    final = np.asarray(final_detectors, dtype=bool)
    if final.ndim != 2:
        raise ProtocolError("final readout must be 2-D (shots, detectors)")
    shots, width = final.shape
    flags = 0
    tail = b""
    if observable_flips is not None:
        flips = np.asarray(observable_flips, dtype=bool).reshape(-1)
        if flips.shape != (shots,):
            raise ProtocolError(f"observable_flips must have {shots} entries")
        flags |= 1
        tail = pack_bools(flips)
    header = _FINAL_HEADER.pack(stream, shots, width, flags)
    return header + pack_bools(final) + tail


def decode_final(payload: bytes) -> tuple[int, np.ndarray, np.ndarray | None]:
    try:
        stream, shots, width, flags = _FINAL_HEADER.unpack_from(payload)
    except struct.error as exc:
        raise ProtocolError(f"truncated final header: {len(payload)} bytes") from exc
    if flags & ~1:
        raise ProtocolError(f"unknown final flags {flags:#x}")
    offset = _FINAL_HEADER.size
    final_size = _packed_size(shots * width)
    final = unpack_bools(
        _split(payload, offset, final_size, "final readout"), (shots, width)
    )
    offset += final_size
    flips: np.ndarray | None = None
    if flags & 1:
        flips_size = _packed_size(shots)
        flips = unpack_bools(
            _split(payload, offset, flips_size, "observable flips"), (shots,)
        )
        offset += flips_size
    if len(payload) != offset:
        raise ProtocolError(f"{len(payload) - offset} trailing bytes in final frame")
    return stream, final, flips


# --------------------------------------------------------------------- #
# RESULT: per-shot predictions plus the stream's latency summary
# --------------------------------------------------------------------- #
def encode_result(
    stream: int,
    predictions: np.ndarray,
    failures: int | None,
    summary: dict,
) -> bytes:
    flips = np.asarray(predictions, dtype=bool).reshape(-1)
    header = _RESULT_HEADER.pack(
        stream, flips.shape[0], -1 if failures is None else int(failures)
    )
    return header + pack_bools(flips) + encode_json(summary)


def decode_result(payload: bytes) -> tuple[int, np.ndarray, int | None, dict]:
    try:
        stream, shots, failures = _RESULT_HEADER.unpack_from(payload)
    except struct.error as exc:
        raise ProtocolError(f"truncated result header: {len(payload)} bytes") from exc
    offset = _RESULT_HEADER.size
    packed_size = _packed_size(shots)
    predictions = unpack_bools(
        _split(payload, offset, packed_size, "predictions"), (shots,)
    )
    summary = decode_json(payload[offset + packed_size :])
    return stream, predictions, None if failures < 0 else failures, summary
