"""Client library for the decode server.

:class:`ServeClient` is the asyncio client: connect, open streams, feed
round chunks, await results.  Incoming frames are demultiplexed by a
single reader task, so any number of streams can be in flight on one
connection concurrently.  :func:`decode_records` is the synchronous
convenience wrapper the examples and the capacity benchmark use: it runs
one event loop, fans every record out as its own stream (round chunks
interleaved, as a control system would deliver them) and returns the
per-stream results in order.

The client never decodes anything itself — predictions, failure counts
and latency summaries all come back over the wire, which is what makes
the end-to-end bit-identity tests meaningful.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_json,
    decode_result,
    encode_chunk,
    encode_final,
    encode_frame,
    encode_json,
)

__all__ = ["ServeClient", "ClientStream", "StreamResult", "StreamRejected", "decode_records"]


class StreamRejected(RuntimeError):
    """The server refused the stream (admission control or drain)."""


class ServerError(RuntimeError):
    """The server reported a stream or connection error."""


@dataclass(frozen=True)
class StreamResult:
    """What the server sent back for one finished stream."""

    stream: int
    predictions: np.ndarray
    failures: int | None
    summary: dict

    @property
    def logical_error_rate(self) -> float | None:
        if self.failures is None or self.predictions.size == 0:
            return None
        return self.failures / self.predictions.size


class ClientStream:
    """One open stream: feed rounds, finish, await the result."""

    def __init__(self, client: "ServeClient", stream_id: int, shots: int, rounds: int):
        self._client = client
        self.stream_id = stream_id
        self.shots = shots
        self.rounds = rounds
        self._fed = 0
        self.accepted: asyncio.Future = client._loop.create_future()
        self.outcome: asyncio.Future = client._loop.create_future()

    async def feed_round(self, detectors: np.ndarray) -> None:
        await self._client._write(
            FrameType.CHUNK, encode_chunk(self.stream_id, self._fed, detectors)
        )
        self._fed += 1

    async def finish(
        self,
        final_detectors: np.ndarray,
        observable_flips: np.ndarray | None = None,
    ) -> None:
        await self._client._write(
            FrameType.FINAL,
            encode_final(self.stream_id, final_detectors, observable_flips),
        )

    async def close(self) -> None:
        """Abort the stream server-side (no result will arrive)."""
        await self._client._write(
            FrameType.CLOSE_STREAM, encode_json({"stream": self.stream_id})
        )

    async def result(self) -> StreamResult:
        """Wait for the server's RESULT frame (raises on stream errors)."""
        return await self.outcome


class ServeClient:
    """Asyncio client for one connection to a decode server."""

    def __init__(self) -> None:
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._streams: dict[int, ClientStream] = {}
        self._status_waiters: list[asyncio.Future] = []
        self._next_stream = 0
        self._reader_task: asyncio.Task | None = None
        self._write_lock = asyncio.Lock()
        self._loop: asyncio.AbstractEventLoop = None  # type: ignore[assignment]
        self.welcome: dict | None = None
        self.draining = False
        self._closed_exc: BaseException | None = None
        self.connect_retries = 0
        self.reject_retries = 0

    # ------------------------------------------------------------------ #
    # Connection lifecycle
    # ------------------------------------------------------------------ #
    async def connect(
        self,
        host: str,
        port: int,
        tenant: str = "anonymous",
        *,
        retries: int = 0,
        backoff: float = 0.05,
    ) -> dict:
        """Connect and handshake; raises the server's first-frame errors.

        ``retries`` bounds extra connection attempts after a transient
        socket failure (refused, reset, unreachable); waits between
        attempts grow as ``backoff * 2**attempt``, capped at one second.
        The handshake itself is never retried — a server that answers
        with an ERROR frame is up and saying no.
        """
        self._loop = asyncio.get_running_loop()
        attempt = 0
        while True:
            try:
                self._reader, self._writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                if attempt >= retries:
                    raise
                await asyncio.sleep(min(backoff * 2**attempt, 1.0))
                attempt += 1
                self.connect_retries += 1
        await self._write(
            FrameType.HELLO,
            encode_json({"tenant": tenant, "protocol": PROTOCOL_VERSION}),
        )
        frame_type, payload = await self._read_frame()
        if frame_type == FrameType.ERROR:
            raise ServerError(decode_json(payload).get("error", "rejected"))
        if frame_type != FrameType.WELCOME:
            raise ProtocolError(f"expected WELCOME, got {frame_type.name}")
        self.welcome = decode_json(payload)
        self._reader_task = self._loop.create_task(self._read_loop())
        return self.welcome

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # Streams
    # ------------------------------------------------------------------ #
    async def open_stream(
        self,
        *,
        code: dict,
        noise: dict,
        shots: int,
        rounds: int,
        accept_retries: int = 0,
        retry_backoff: float = 0.05,
        **overrides,
    ) -> ClientStream:
        """OPEN a stream and wait for ACCEPT (raises :class:`StreamRejected`).

        ``code`` is ``{"family": "surface"|"color"|"toric", "distance": d}``
        and ``noise`` is ``{"p": ..., "leakage_ratio": ...}``; ``overrides``
        pass through per-stream decoder knobs (``window_rounds``,
        ``commit_rounds``, ``method``, ``strategy``, ``fused``).

        ``accept_retries`` bounds re-OPEN attempts after a ``REJECT``
        (admission control pushes back when the server or tenant is at
        capacity — transient by design, capacity frees as streams finish).
        Each attempt uses a fresh stream id and waits
        ``retry_backoff * 2**attempt`` (capped at one second) first.
        Stream errors and protocol errors are never retried.
        """
        attempt = 0
        while True:
            stream_id = self._next_stream
            self._next_stream += 1
            stream = ClientStream(self, stream_id, shots, rounds)
            self._streams[stream_id] = stream
            request = {
                "stream": stream_id,
                "shots": int(shots),
                "rounds": int(rounds),
                "code": code,
                "noise": noise,
            }
            request.update({k: v for k, v in overrides.items() if v is not None})
            await self._write(FrameType.OPEN, encode_json(request))
            try:
                await stream.accepted
            except StreamRejected:
                # The server never saw this id accept; drop the handle so a
                # late RESULT for a recycled id cannot alias onto it.
                self._streams.pop(stream_id, None)
                if attempt >= accept_retries:
                    raise
                await asyncio.sleep(min(retry_backoff * 2**attempt, 1.0))
                attempt += 1
                self.reject_retries += 1
                continue
            return stream

    async def status(self) -> dict:
        """Fetch the server's live SLO/status snapshot."""
        future: asyncio.Future = self._loop.create_future()
        self._status_waiters.append(future)
        await self._write(FrameType.STATUS, encode_json({}))
        return await future

    # ------------------------------------------------------------------ #
    # Wire internals
    # ------------------------------------------------------------------ #
    async def _write(self, frame_type: FrameType, payload: bytes) -> None:
        if self._writer is None:
            raise ConnectionError("client is not connected")
        if self._closed_exc is not None:
            raise ServerError(str(self._closed_exc))
        async with self._write_lock:
            self._writer.write(encode_frame(frame_type, payload))
            await self._writer.drain()

    async def _read_frame(self) -> tuple[FrameType, bytes]:
        assert self._reader is not None
        decoder = FrameDecoder()
        while True:
            data = await self._reader.read(64 * 1024)
            if not data:
                raise ConnectionError("server closed the connection")
            frames = decoder.feed(data)
            if frames:
                if decoder.buffered or len(frames) > 1:
                    # Pre-reader-task frames arrive one at a time (handshake).
                    raise ProtocolError("unexpected pipelined frames in handshake")
                return frames[0]

    async def _read_loop(self) -> None:
        assert self._reader is not None
        decoder = FrameDecoder()
        try:
            while True:
                data = await self._reader.read(64 * 1024)
                if not data:
                    raise ConnectionError("server closed the connection")
                for frame_type, payload in decoder.feed(data):
                    self._handle_frame(frame_type, payload)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            self._closed_exc = exc
            for stream in self._streams.values():
                for future in (stream.accepted, stream.outcome):
                    if not future.done():
                        future.set_exception(ServerError(str(exc)))
            for future in self._status_waiters:
                if not future.done():
                    future.set_exception(ServerError(str(exc)))

    def _handle_frame(self, frame_type: FrameType, payload: bytes) -> None:
        if frame_type == FrameType.RESULT:
            stream_id, predictions, failures, summary = decode_result(payload)
            stream = self._streams.get(stream_id)
            if stream is not None and not stream.outcome.done():
                stream.outcome.set_result(
                    StreamResult(stream_id, predictions, failures, summary)
                )
        elif frame_type == FrameType.ACCEPT:
            message = decode_json(payload)
            stream = self._streams.get(int(message.get("stream", -1)))
            if stream is not None and not stream.accepted.done():
                stream.accepted.set_result(True)
        elif frame_type == FrameType.REJECT:
            message = decode_json(payload)
            stream = self._streams.get(int(message.get("stream", -1)))
            if stream is not None and not stream.accepted.done():
                stream.accepted.set_exception(
                    StreamRejected(message.get("reason", "rejected"))
                )
        elif frame_type == FrameType.STREAM_ERROR:
            message = decode_json(payload)
            stream = self._streams.get(int(message.get("stream", -1)))
            if stream is not None:
                error = ServerError(message.get("error", "stream failed"))
                for future in (stream.accepted, stream.outcome):
                    if not future.done():
                        future.set_exception(error)
        elif frame_type == FrameType.STATUS_REPLY:
            if self._status_waiters:
                future = self._status_waiters.pop(0)
                if not future.done():
                    future.set_result(decode_json(payload))
        elif frame_type == FrameType.DRAIN:
            self.draining = True
        elif frame_type == FrameType.ERROR:
            raise ServerError(decode_json(payload).get("error", "server error"))
        else:
            raise ProtocolError(f"unexpected server frame {frame_type.name}")


async def _drive_streams(
    host: str,
    port: int,
    tenant: str,
    records,
    code: dict,
    noise: dict,
    connect_retries: int,
    accept_retries: int,
    retry_backoff: float,
    **overrides,
) -> list[StreamResult]:
    async with ServeClient() as client:
        await client.connect(
            host, port, tenant=tenant, retries=connect_retries, backoff=retry_backoff
        )
        streams = []
        for history, final, flips in records:
            history = np.asarray(history, dtype=bool)
            streams.append(
                await client.open_stream(
                    code=code,
                    noise=noise,
                    shots=history.shape[0],
                    rounds=history.shape[1],
                    accept_retries=accept_retries,
                    retry_backoff=retry_backoff,
                    **overrides,
                )
            )
        # Interleave: round r of every stream before round r+1 of any —
        # the arrival order a multiplexed control system produces.
        max_rounds = max((np.asarray(h).shape[1] for h, _, _ in records), default=0)
        for round_index in range(max_rounds):
            for (history, _, _), stream in zip(records, streams):
                if round_index < np.asarray(history).shape[1]:
                    await stream.feed_round(
                        np.asarray(history, dtype=bool)[:, round_index, :]
                    )
        for (_, final, flips), stream in zip(records, streams):
            await stream.finish(final, flips)
        return list(
            await asyncio.gather(*(stream.result() for stream in streams))
        )


def decode_records(
    host: str,
    port: int,
    records,
    *,
    code: dict,
    noise: dict,
    tenant: str = "anonymous",
    connect_retries: int = 0,
    accept_retries: int = 0,
    retry_backoff: float = 0.05,
    **overrides,
) -> list[StreamResult]:
    """Decode recorded streams through a running server, synchronously.

    ``records`` is a sequence of ``(detector_history, final_detectors,
    observable_flips_or_None)`` triples; each becomes one concurrent stream
    on a single connection.  Returns the per-stream results in input order.
    ``connect_retries``/``accept_retries``/``retry_backoff`` bound retries
    of transient socket failures and admission ``REJECT``s (see
    :meth:`ServeClient.connect` and :meth:`ServeClient.open_stream`); they
    are client-side knobs and never appear in the wire request.
    """
    return asyncio.run(
        _drive_streams(
            host,
            port,
            tenant,
            list(records),
            code,
            noise,
            connect_retries,
            accept_retries,
            retry_backoff,
            **overrides,
        )
    )
