"""Live SLO accounting for the decode server.

:class:`SloTracker` is the :class:`~repro.realtime.service.ServiceObserver`
every shard reports into.  It maintains the serving-side latency
distribution (decode seconds per committed round, the same per-round unit
:class:`~repro.realtime.accounting.LatencyRecorder` uses) in an always-on
:class:`~repro.obs.metrics.Histogram`, mirrors the headline counters into
the global :data:`~repro.obs.metrics.METRICS` registry under ``serve.*``
names, and renders the p50/p99/p999 tail priced against the
microarchitecture round budget (``ROUND_LATENCY_NS``) — the number a
control system actually cares about: *how many hardware round periods does
one served round cost at the tail?*

Everything here is called from scheduler/worker threads of several shards
concurrently, so state updates take one short lock and snapshots copy
under it.
"""

from __future__ import annotations

import threading

from ..hardware.microarchitecture import ROUND_LATENCY_NS
from ..obs.metrics import METRICS, Histogram

__all__ = ["SloTracker"]

#: Serving telemetry mirrored into the global registry; no-ops unless a
#: telemetry scope is active (the private histogram below is always on).
_OBS_ROUNDS = METRICS.counter("serve.rounds", "syndrome rounds committed by the server")
_OBS_WINDOWS = METRICS.counter("serve.windows", "stream windows decoded by the server")
_OBS_BATCHES = METRICS.counter("serve.batches", "coalesced decode dispatches")
_OBS_STREAMS = METRICS.counter("serve.streams", "streams completed by the server")
_OBS_REJECTED = METRICS.counter("serve.admission_rejected", "streams refused admission")
_OBS_QUEUE_DEPTH = METRICS.gauge("serve.queue_depth", "max shard queue depth observed")


class SloTracker:
    """Aggregates per-window observations from every shard into live SLOs."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._latency = Histogram("serve.round_latency")
        self._wait = Histogram("serve.window_wait")
        self.rounds = 0
        self.windows = 0
        self.batches = 0
        self.batched_windows = 0
        self.streams_done = 0
        self.stream_errors = 0
        self.admission_rejected = 0
        self.queue_depth = 0
        self.max_queue_depth = 0

    # ---------------- ServiceObserver interface ---------------- #
    def on_window(
        self,
        stream_id: int,
        label: str | None,
        committed_rounds: int,
        service_seconds: float,
        wait_seconds: float,
    ) -> None:
        per_round = service_seconds / max(1, committed_rounds)
        with self._lock:
            self.rounds += committed_rounds
            self.windows += 1
            self._latency.observe(per_round)
            self._wait.observe(wait_seconds)
        _OBS_ROUNDS.inc(committed_rounds)
        _OBS_WINDOWS.inc()

    def on_batch(self, windows: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_windows += windows
        _OBS_BATCHES.inc()

    def on_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            self.max_queue_depth = max(self.max_queue_depth, depth)
        if METRICS.enabled:
            _OBS_QUEUE_DEPTH.set(depth)

    def on_stream_done(
        self, stream_id: int, label: str | None, error: BaseException | None
    ) -> None:
        with self._lock:
            self.streams_done += 1
            if error is not None:
                self.stream_errors += 1
        _OBS_STREAMS.inc()

    # ---------------- server-side events ---------------- #
    def on_rejected(self) -> None:
        with self._lock:
            self.admission_rejected += 1
        _OBS_REJECTED.inc()

    # ---------------- snapshots ---------------- #
    def percentile(self, q: float) -> float:
        """Per-round decode latency percentile in seconds."""
        return self._latency.percentile(q)

    def snapshot(self) -> dict:
        """Flat live-SLO dictionary (the ``--status`` payload body).

        ``round_latency_*_ns`` are the per-round decode percentiles;
        ``slo_*`` divides them by the hardware round cadence
        (``ROUND_LATENCY_NS``) — 1.0 means that percentile exactly keeps up
        with syndrome extraction.
        """
        with self._lock:
            p50 = self._latency.percentile(50)
            p99 = self._latency.percentile(99)
            p999 = self._latency.percentile(99.9)
            wait_p99 = self._wait.percentile(99)
            windows = self.windows
            batches = self.batches
            batched = self.batched_windows
            snapshot = {
                "rounds": self.rounds,
                "windows": windows,
                "streams_done": self.streams_done,
                "stream_errors": self.stream_errors,
                "admission_rejected": self.admission_rejected,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
            }
        budget_seconds = ROUND_LATENCY_NS * 1e-9
        snapshot.update(
            {
                "round_latency_p50_ns": p50 * 1e9,
                "round_latency_p99_ns": p99 * 1e9,
                "round_latency_p999_ns": p999 * 1e9,
                "window_wait_p99_ns": wait_p99 * 1e9,
                "hardware_round_ns": ROUND_LATENCY_NS,
                "slo_p50": p50 / budget_seconds,
                "slo_p99": p99 / budget_seconds,
                "slo_p999": p999 / budget_seconds,
                # Windows per decode dispatch; 1.0 with coalescing off.
                # Single-window dispatches never fire on_batch, so they are
                # (windows - batched) extra dispatches of one window each.
                "coalesce_ratio": windows / max(1, batches + max(0, windows - batched)),
            }
        )
        return snapshot
