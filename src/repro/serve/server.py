"""The asyncio decode server: tenants, shards, admission, drain.

Topology: one asyncio event loop owns every connection; decoding happens on
``shards`` independent :class:`~repro.realtime.DecodeService` instances
(each with its own scheduler, worker pool, bounded queue and shared
syndrome cache), so network I/O never waits on a window decode and one
hot tenant cannot monopolise every worker thread.  Streams are assigned to
shards round-robin at ``OPEN`` time and stay there for life — per-stream
ordering is the shard's problem, exactly as in-process.

Flow control happens at three rings:

* **admission** — an ``OPEN`` is rejected (``REJECT`` frame, counted in
  the SLO snapshot) when the server-wide or per-tenant concurrent-stream
  cap is reached; the client may retry later,
* **per-tenant token bucket** — each tenant's inbound ``CHUNK`` frames
  drain a token bucket (``tenant_rate`` rounds/s, burst ``tenant_burst``);
  an empty bucket suspends *that tenant's* connections' reads, which TCP
  turns into backpressure on the sender while other tenants keep flowing,
* **shard queue** — inside a shard the bounded window queue blocks the
  scheduler exactly as the in-process service always has.

Shutdown is a graceful drain: stop accepting connections, broadcast
``DRAIN``, give in-flight streams ``drain_timeout`` seconds to deliver
their final readouts and collect results, then abort stragglers and join
every shard thread (:meth:`DecodeService.close` is idempotent and raceless
against streams closing mid-window, so a drain racing a disconnect is
safe).

The module is stdlib-only (asyncio + the repo's own packages): no
framework, nothing to install.
"""

from __future__ import annotations

import asyncio
import contextlib
import time
from dataclasses import dataclass, field

import numpy as np

from ..codes import color_code, surface_code, toric_code
from ..noise import NoiseParams, paper_noise
from ..obs.trace import span
from ..realtime.service import DecodeService, ServiceClosed, StreamHandle
from .protocol import (
    PROTOCOL_VERSION,
    FrameDecoder,
    FrameType,
    ProtocolError,
    decode_chunk,
    decode_final,
    decode_json,
    encode_frame,
    encode_json,
    encode_result,
)
from .slo import SloTracker

__all__ = ["ServerConfig", "DecodeServer", "TokenBucket", "resolve_code", "resolve_noise"]

_CODE_FAMILIES = {
    "surface": surface_code,
    "color": color_code,
    "toric": toric_code,
}


def resolve_code(spec: dict):
    """Build a code from its wire spec ``{"family": ..., "distance": ...}``."""
    if not isinstance(spec, dict):
        raise ProtocolError("code spec must be an object")
    family = spec.get("family", "surface")
    builder = _CODE_FAMILIES.get(family)
    if builder is None:
        raise ProtocolError(
            f"unknown code family {family!r}; expected one of {sorted(_CODE_FAMILIES)}"
        )
    try:
        return builder(int(spec.get("distance", 3)))
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad code spec {spec!r}: {exc}") from exc


def resolve_noise(spec: dict) -> NoiseParams:
    """Build noise from its wire spec ``{"p": ..., "leakage_ratio": ...}``."""
    if not isinstance(spec, dict):
        raise ProtocolError("noise spec must be an object")
    try:
        return paper_noise(
            p=float(spec.get("p", 1e-3)),
            leakage_ratio=float(spec.get("leakage_ratio", 0.1)),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad noise spec {spec!r}: {exc}") from exc


class TokenBucket:
    """Async token bucket: ``rate`` tokens/second, burst capacity ``burst``.

    ``acquire`` waits until a token is available, so an over-rate tenant's
    coroutine simply stops reading its socket — kernel buffers fill and TCP
    pushes back on the sender without the server buffering anything.
    ``rate=None`` disables metering (every acquire returns immediately).
    """

    def __init__(self, rate: float | None, burst: float) -> None:
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = max(1.0, float(burst))
        self._tokens = self.burst
        self._stamp = time.monotonic()
        self._lock = asyncio.Lock()

    async def acquire(self, tokens: float = 1.0) -> None:
        if self.rate is None:
            return
        async with self._lock:
            while True:
                now = time.monotonic()
                self._tokens = min(
                    self.burst, self._tokens + (now - self._stamp) * self.rate
                )
                self._stamp = now
                if self._tokens >= tokens:
                    self._tokens -= tokens
                    return
                await asyncio.sleep((tokens - self._tokens) / self.rate)


@dataclass
class ServerConfig:
    """Deployment shape of one decode server (not part of any experiment
    digest — these knobs change capacity and latency, never results)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port; read it back from DecodeServer.port
    shards: int = 2
    workers_per_shard: int = 2
    queue_depth: int | None = None
    max_streams: int = 256
    max_streams_per_tenant: int = 64
    tenant_rate: float | None = None  # round chunks/second; None: unmetered
    tenant_burst: float = 64.0
    window_rounds: int = 4
    commit_rounds: int | None = None
    method: str = "matching"
    strategy: str | None = None
    cache_size: int | None = None
    fused: bool = True
    coalesce: bool = True
    drain_timeout: float = 10.0

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValueError("shards must be positive")
        if self.max_streams <= 0 or self.max_streams_per_tenant <= 0:
            raise ValueError("admission caps must be positive")


@dataclass
class _OpenStream:
    """Server-side bookkeeping for one admitted stream."""

    client_id: int
    tenant: str
    handle: StreamHandle
    rounds: int
    rounds_fed: int = 0
    closed: bool = False


class Transport:
    """What a connection needs from its wire: framed sends and a close.

    The TCP path writes length-prefixed frames to a stream writer; the
    websocket adapter wraps the same ``(type, payload)`` pairs in RFC 6455
    binary messages.  Everything above this interface is shared.
    """

    async def send(self, frame_type: int, payload: bytes) -> None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class _TcpTransport(Transport):
    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer

    async def send(self, frame_type: int, payload: bytes) -> None:
        self.writer.write(encode_frame(frame_type, payload))
        await self.writer.drain()

    def close(self) -> None:
        self.writer.close()


@dataclass(eq=False)
class _Connection:
    """Per-connection state: identity plus the streams it opened."""

    transport: Transport
    tenant: str | None = None
    streams: dict[int, _OpenStream] = field(default_factory=dict)
    send_lock: asyncio.Lock = field(default_factory=asyncio.Lock)


class DecodeServer:
    """Serve decode streams over TCP using the frame protocol.

    Lifecycle::

        server = DecodeServer(ServerConfig(port=0))
        await server.start()
        ...
        await server.shutdown()     # graceful drain

    ``serve_forever`` wraps the above for the CLI.  The server works
    entirely through its shards' public :class:`DecodeService` API, so
    anything it serves is bit-identical to in-process decoding by
    construction — pinned end to end in ``tests/test_serve.py``.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.slo = SloTracker()
        self.shards = [
            DecodeService(
                window_rounds=self.config.window_rounds,
                commit_rounds=self.config.commit_rounds,
                method=self.config.method,
                strategy=self.config.strategy,
                workers=self.config.workers_per_shard,
                queue_depth=self.config.queue_depth,
                cache_size=self.config.cache_size,
                fused=self.config.fused,
                coalesce=self.config.coalesce,
                observer=self.slo,
            )
            for _ in range(self.config.shards)
        ]
        self._server: asyncio.AbstractServer | None = None
        self._connections: set[_Connection] = set()
        self._tasks: set[asyncio.Task] = set()
        self._buckets: dict[str, TokenBucket] = {}
        self._tenant_streams: dict[str, int] = {}
        self._active_streams = 0
        self._next_shard = 0
        self._draining = False
        self.started_at: float | None = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        for shard in self.shards:
            shard.start()
        self._server = await asyncio.start_server(
            self._handle_tcp, host=self.config.host, port=self.config.port
        )
        self.started_at = time.monotonic()

    async def shutdown(self) -> None:
        """Graceful drain: finish what can finish, then abort and join."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for connection in list(self._connections):
            await self._send_safe(connection, FrameType.DRAIN, encode_json({"reason": "shutdown"}))
        deadline = time.monotonic() + self.config.drain_timeout
        while self._active_streams > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        loop = asyncio.get_running_loop()
        for shard in self.shards:
            # close() joins threads; keep the event loop responsive.
            await loop.run_in_executor(None, lambda s=shard: s.close(True, 1.0))
        for connection in list(self._connections):
            connection.transport.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def status(self) -> dict:
        """The live status document (``STATUS_REPLY`` / ``--status`` body)."""
        snapshot = self.slo.snapshot()
        snapshot.update(
            {
                "active_streams": self._active_streams,
                "connections": len(self._connections),
                "draining": self._draining,
                "uptime_seconds": (
                    0.0 if self.started_at is None else time.monotonic() - self.started_at
                ),
                "shards": [shard.stats() for shard in self.shards],
            }
        )
        return snapshot

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_tcp(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        async def frames():
            decoder = FrameDecoder()
            while True:
                data = await reader.read(64 * 1024)
                if not data:
                    return
                for item in decoder.feed(data):
                    yield item

        try:
            await self.handle_session(_TcpTransport(writer), frames())
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def handle_session(self, transport: Transport, frames) -> None:
        """Run one client session: ``frames`` is an async iterator of
        ``(FrameType, payload)`` pairs (the websocket adapter supplies its
        own); :class:`ProtocolError` from it or from dispatch answers with
        an ``ERROR`` frame and ends the session — never the event loop."""
        connection = _Connection(transport=transport)
        self._connections.add(connection)
        try:
            async for frame_type, payload in frames:
                await self._dispatch(connection, frame_type, payload)
        except ProtocolError as exc:
            # One bad peer never takes down the loop: answer and hang up.
            await self._send_safe(
                connection, FrameType.ERROR, encode_json({"error": str(exc)})
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            for stream in list(connection.streams.values()):
                if not stream.closed:
                    stream.handle.abort()

    async def _dispatch(
        self, connection: _Connection, frame_type: FrameType, payload: bytes
    ) -> None:
        if frame_type == FrameType.HELLO:
            hello = decode_json(payload)
            if hello.get("protocol", PROTOCOL_VERSION) != PROTOCOL_VERSION:
                raise ProtocolError(
                    f"unsupported protocol {hello.get('protocol')!r}; "
                    f"server speaks {PROTOCOL_VERSION}"
                )
            connection.tenant = str(hello.get("tenant", "anonymous"))
            await self._send(
                connection,
                FrameType.WELCOME,
                encode_json(
                    {
                        "server": "repro.serve",
                        "protocol": PROTOCOL_VERSION,
                        "shards": len(self.shards),
                    }
                ),
            )
            return
        if connection.tenant is None:
            raise ProtocolError(f"first frame must be HELLO, not {frame_type.name}")
        if frame_type == FrameType.OPEN:
            await self._handle_open(connection, decode_json(payload))
        elif frame_type == FrameType.CHUNK:
            await self._handle_chunk(connection, payload)
        elif frame_type == FrameType.FINAL:
            await self._handle_final(connection, payload)
        elif frame_type == FrameType.CLOSE_STREAM:
            message = decode_json(payload)
            stream = connection.streams.get(int(message.get("stream", -1)))
            if stream is not None and not stream.closed:
                stream.handle.abort()
        elif frame_type == FrameType.STATUS:
            await self._send(
                connection, FrameType.STATUS_REPLY, encode_json(self.status())
            )
        else:
            raise ProtocolError(f"unexpected client frame {frame_type.name}")

    async def _handle_open(self, connection: _Connection, request: dict) -> None:
        tenant = connection.tenant
        assert tenant is not None
        try:
            client_id = int(request["stream"])
            shots = int(request["shots"])
            rounds = int(request["rounds"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad OPEN request: {exc}") from exc
        if client_id in connection.streams:
            raise ProtocolError(f"stream {client_id} already open on this connection")
        reason = None
        if self._draining:
            reason = "server is draining"
        elif self._active_streams >= self.config.max_streams:
            reason = f"server at capacity ({self.config.max_streams} streams)"
        elif self._tenant_streams.get(tenant, 0) >= self.config.max_streams_per_tenant:
            reason = (
                f"tenant at capacity ({self.config.max_streams_per_tenant} streams)"
            )
        if reason is not None:
            self.slo.on_rejected()
            await self._send(
                connection,
                FrameType.REJECT,
                encode_json({"stream": client_id, "reason": reason}),
            )
            return
        code = resolve_code(request.get("code", {}))
        noise = resolve_noise(request.get("noise", {}))
        shard = self.shards[self._next_shard % len(self.shards)]
        self._next_shard += 1
        try:
            with span("serve.open", tenant=tenant, shard=self._next_shard - 1):
                handle = shard.open_stream(
                    code=code,
                    noise=noise,
                    shots=shots,
                    rounds=rounds,
                    label=tenant,
                    window_rounds=request.get("window_rounds"),
                    commit_rounds=request.get("commit_rounds"),
                    method=request.get("method"),
                    strategy=request.get("strategy"),
                    fused=request.get("fused"),
                )
        except ServiceClosed:
            self.slo.on_rejected()
            await self._send(
                connection,
                FrameType.REJECT,
                encode_json({"stream": client_id, "reason": "shard is closed"}),
            )
            return
        except (TypeError, ValueError) as exc:
            raise ProtocolError(f"bad OPEN request: {exc}") from exc
        stream = _OpenStream(
            client_id=client_id, tenant=tenant, handle=handle, rounds=rounds
        )
        connection.streams[client_id] = stream
        self._active_streams += 1
        self._tenant_streams[tenant] = self._tenant_streams.get(tenant, 0) + 1
        loop = asyncio.get_running_loop()

        def _spawn_finish() -> None:
            task = loop.create_task(self._finish_stream(connection, stream))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

        def _on_done() -> None:
            # Fires on a shard thread; hop to the loop.  A loop torn down
            # mid-shutdown just means nobody is left to read the result.
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(_spawn_finish)

        handle.add_done_callback(_on_done)
        await self._send(
            connection, FrameType.ACCEPT, encode_json({"stream": client_id})
        )

    async def _handle_chunk(self, connection: _Connection, payload: bytes) -> None:
        client_id, round_index, detectors = decode_chunk(payload)
        stream = self._stream_for(connection, client_id)
        if stream is None:
            return  # stream already errored/aborted; drop quietly
        if round_index != stream.rounds_fed:
            raise ProtocolError(
                f"stream {client_id} expected round {stream.rounds_fed}, "
                f"got {round_index}"
            )
        bucket = self._bucket_for(stream.tenant)
        await bucket.acquire()
        try:
            stream.handle.feed_round(detectors)
        except (ServiceClosed, RuntimeError):
            return  # racing its own completion/abort; result frame explains
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc
        stream.rounds_fed += 1

    async def _handle_final(self, connection: _Connection, payload: bytes) -> None:
        client_id, final, flips = decode_final(payload)
        stream = self._stream_for(connection, client_id)
        if stream is None:
            return
        try:
            stream.handle.finish(final, flips)
        except (ServiceClosed, RuntimeError):
            return
        except ValueError as exc:
            raise ProtocolError(str(exc)) from exc

    def _stream_for(self, connection: _Connection, client_id: int) -> _OpenStream | None:
        stream = connection.streams.get(client_id)
        if stream is None:
            raise ProtocolError(f"stream {client_id} is not open")
        return None if stream.closed else stream

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = TokenBucket(self.config.tenant_rate, self.config.tenant_burst)
            self._buckets[tenant] = bucket
        return bucket

    async def _finish_stream(self, connection: _Connection, stream: _OpenStream) -> None:
        """Deliver the outcome of a finished stream (runs on the loop)."""
        if stream.closed:
            return
        stream.closed = True
        self._active_streams -= 1
        count = self._tenant_streams.get(stream.tenant, 1) - 1
        if count <= 0:
            self._tenant_streams.pop(stream.tenant, None)
        else:
            self._tenant_streams[stream.tenant] = count
        handle = stream.handle
        if handle.error is not None:
            await self._send_safe(
                connection,
                FrameType.STREAM_ERROR,
                encode_json({"stream": stream.client_id, "error": str(handle.error)}),
            )
            return
        predictions = handle.predictions
        if predictions is None:  # aborted
            return
        await self._send_safe(
            connection,
            FrameType.RESULT,
            encode_result(
                stream.client_id,
                np.asarray(predictions, dtype=bool),
                handle.failures,
                handle.report().summary(),
            ),
        )

    # ------------------------------------------------------------------ #
    # Frame output
    # ------------------------------------------------------------------ #
    async def _send(
        self, connection: _Connection, frame_type: FrameType, payload: bytes
    ) -> None:
        async with connection.send_lock:
            await connection.transport.send(frame_type, payload)

    async def _send_safe(
        self, connection: _Connection, frame_type: FrameType, payload: bytes
    ) -> None:
        with contextlib.suppress(Exception):
            await self._send(connection, frame_type, payload)
