"""Optional runtime-compiled C kernels for the decoder hot path.

Two pure-Python loops dominate batched decoding once the NumPy-level work
is vectorised, and both follow the :mod:`repro.sim._ckernels` pattern —
compile on demand with the system C compiler, cache the shared library,
fall back to bit-identical NumPy/Python when no compiler is available:

* **Batch syndrome hashing.**  Deduplication
  (:meth:`~repro.decoders.base.DecoderBase._deduplicate`) has to group
  identical packed syndrome rows; ``np.unique(..., axis=0)`` lex-sorts the
  full ``(shots, nbytes)`` matrix.  ``hash_rows`` collapses each row to one
  FNV-1a 64-bit value in a single pass so the grouping runs on a flat
  uint64 vector instead.  The caller verifies the grouping against the raw
  rows (collisions demote to the exact path), so hashing never changes
  results — only the representative *order*, which the inverse-scatter
  erases.
* **The ≤8-detector bitmask DP.**
  :meth:`~repro.decoders.matching.MatchingDecoder._dp_matching` enumerates
  matchings over subsets in pure Python; at the paper's error rates it is
  the single hottest decoder loop.  ``dp_match`` is a line-for-line C
  mirror — same mask iteration order, same lowest-free-bit commit, same
  strict ``<`` tie-breaking, same IEEE double arithmetic — so the chosen
  pairs (not just their weight) are identical to the Python DP.
* **The whole small-syndrome decode.**  Even with the DP compiled, a
  decoded unique syndrome still pays ~20µs of interpreter overhead: slicing
  dijkstra rows, walking predecessor chains, and looking up per-edge
  logical parities.  ``dp_decode`` runs the entire entry construction for a
  ≤8-detector syndrome in one call against a :class:`DecodeContext` of
  pinned all-pairs matrices — cost extraction, the analytic 1/2-detector
  rules, the bitmask DP, the retrace and the parity — emitting the exact
  edge sequence the interpreted path would produce.

Gating: set ``REPRO_DECODER_CKERNELS=0`` to force the fallbacks; when that
variable is unset the sim-wide ``REPRO_SIM_CKERNELS`` switch applies, so
one variable still disables every compiled kernel in the repo.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
import threading

import numpy as np

__all__ = ["available", "hash_rows", "dp_match", "dp_decode", "DecodeContext"]

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* FNV-1a 64-bit over each row of a (rows, nbytes) uint8 matrix. */
void hash_rows(const uint8_t* data, int64_t rows, int64_t nbytes,
               uint64_t* out) {
    for (int64_t r = 0; r < rows; r++) {
        const uint8_t* p = data + r * nbytes;
        uint64_t h = 14695981039346656037ULL;
        for (int64_t b = 0; b < nbytes; b++) {
            h ^= (uint64_t)p[b];
            h *= 1099511628211ULL;
        }
        out[r] = h;
    }
}

/* Exact minimum-weight matching by DP over matched-detector subsets: the
 * line-for-line mirror of MatchingDecoder._dp_matching.  boundary_cost is
 * double[count], pair_cost double[count*count]; out_pairs receives up to
 * count (i, j) index pairs with j == -1 meaning "matched to the boundary",
 * in the Python retrace order (full mask walking back to empty).  Returns
 * the number of pairs, or -1 when every complete matching has infinite
 * cost (the caller falls back to greedy, as the Python DP does). */
int32_t dp_match(int32_t count, const double* boundary_cost,
                 const double* pair_cost, int32_t* out_pairs);

/* One-call decode of a small syndrome against a graph's cached all-pairs
 * arrays: cost extraction, exact matching (analytic for one or two fired
 * detectors, the bitmask DP for 3..8), shortest-path retrace and the
 * logical parity, all without crossing back into Python.  ``dist`` is the
 * (num_nodes, num_nodes) float64 distance matrix, ``pred`` the int32
 * predecessor matrix (negative = no predecessor, as scipy emits), and
 * ``flips`` a dense symmetric uint8 matrix with 1 where the (collapsed)
 * edge between two nodes crosses the logical.  Emits (a, b) node pairs
 * into out_edges in exactly the Python retrace order and returns their
 * number, or -1 when the DP hits the infinite dead end (the caller falls
 * back to the interpreted path, which demotes to greedy). */
int32_t dp_decode(int32_t count, const int64_t* flagged, int64_t num_nodes,
                  int64_t boundary, const double* dist, const int32_t* pred,
                  const uint8_t* flips, int32_t* out_edges,
                  int32_t* out_parity) {
    int32_t pair_idx[16];  /* (i, j) index pairs, j == -1 for the boundary */
    int32_t num_pairs;
    if (count == 1) {
        pair_idx[0] = 0; pair_idx[1] = -1;
        num_pairs = 1;
    } else if (count == 2) {
        /* Mirror of _exact_matching's analytic two-detector rule,
         * including the <= that prefers pairing on exact ties. */
        double paired = dist[flagged[0] * num_nodes + flagged[1]];
        double via_boundary = dist[flagged[0] * num_nodes + boundary]
                            + dist[flagged[1] * num_nodes + boundary];
        if (paired <= via_boundary) {
            pair_idx[0] = 0; pair_idx[1] = 1;
            num_pairs = 1;
        } else {
            pair_idx[0] = 0; pair_idx[1] = -1;
            pair_idx[2] = 1; pair_idx[3] = -1;
            num_pairs = 2;
        }
    } else {
        double bcost[8];
        double pcost[64];
        for (int32_t i = 0; i < count; i++) {
            const double* row = dist + flagged[i] * num_nodes;
            bcost[i] = row[boundary];
            for (int32_t j = 0; j < count; j++)
                pcost[i * count + j] = row[flagged[j]];
        }
        num_pairs = dp_match(count, bcost, pcost, pair_idx);
        if (num_pairs < 0) return -1;
    }
    int32_t n = 0;
    int32_t parity = 0;
    for (int32_t k = 0; k < num_pairs; k++) {
        int32_t i = pair_idx[2 * k];
        int32_t j = pair_idx[2 * k + 1];
        const int32_t* row = pred + flagged[i] * num_nodes;
        int64_t node = (j < 0) ? boundary : flagged[j];
        for (;;) {
            int32_t prev = row[node];
            if (prev < 0) break;
            out_edges[2 * n] = prev;
            out_edges[2 * n + 1] = (int32_t)node;
            n++;
            parity ^= flips[(int64_t)prev * num_nodes + node];
            node = prev;
        }
    }
    *out_parity = parity;
    return n;
}

int32_t dp_match(int32_t count, const double* boundary_cost,
                 const double* pair_cost, int32_t* out_pairs) {
    if (count <= 0) return 0;
    int32_t size = 1 << count;
    double best[256];
    int32_t prev[256], pick_i[256], pick_j[256];
    for (int32_t m = 0; m < size; m++) { best[m] = INFINITY; prev[m] = -1; }
    best[0] = 0.0;
    for (int32_t mask = 0; mask < size - 1; mask++) {
        double cost = best[mask];
        /* !(cost < inf) == Python's `cost == infinite`: costs are never NaN
         * (finite + inf stays inf), so the two predicates agree exactly. */
        if (!(cost < INFINITY)) continue;
        int32_t free_bits = ~mask & (size - 1);
        int32_t low = free_bits & -free_bits;
        int32_t i = __builtin_ctz((unsigned)low);
        int32_t with_boundary = mask | low;
        double cand = cost + boundary_cost[i];
        if (cand < best[with_boundary]) {
            best[with_boundary] = cand;
            prev[with_boundary] = mask;
            pick_i[with_boundary] = i;
            pick_j[with_boundary] = -1;
        }
        int32_t rest = free_bits ^ low;
        while (rest) {
            int32_t pb = rest & -rest;
            int32_t j = __builtin_ctz((unsigned)pb);
            int32_t with_pair = mask | low | pb;
            cand = cost + pair_cost[(int64_t)i * count + j];
            if (cand < best[with_pair]) {
                best[with_pair] = cand;
                prev[with_pair] = mask;
                pick_i[with_pair] = i;
                pick_j[with_pair] = j;
            }
            rest ^= pb;
        }
    }
    if (prev[size - 1] < 0) return -1;
    int32_t pairs = 0;
    int32_t mask = size - 1;
    while (mask) {
        out_pairs[2 * pairs] = pick_i[mask];
        out_pairs[2 * pairs + 1] = pick_j[mask];
        pairs++;
        mask = prev[mask];
    }
    return pairs;
}
"""

#: Largest syndrome the C DP accepts (its DP tables are stack-allocated for
#: 2^8 masks, matching ``matching._DP_EXACT_MAX``).
DP_MAX_COUNT = 8

_FNV_OFFSET = np.uint64(14695981039346656037)
_FNV_PRIME = np.uint64(1099511628211)

_lib: ctypes.CDLL | None = None


def _cpu_tag() -> str:
    """A machine fingerprint for the build cache (see sim/_ckernels.py)."""
    parts = [platform.machine()]
    try:
        with open("/proc/cpuinfo") as handle:
            for line in handle:
                if line.startswith(("model name", "flags", "Features")):
                    parts.append(line.strip())
                    break
    except OSError:
        parts.append(platform.processor())
    return "|".join(parts)


def _build() -> ctypes.CDLL | None:
    """Compile (or load the cached build of) the kernel library."""
    digest = hashlib.sha256(
        (_SOURCE + "|O3-native|" + _cpu_tag()).encode()
    ).hexdigest()[:16]
    cache_dir = os.environ.get("REPRO_CKERNEL_DIR") or os.path.join(
        tempfile.gettempdir(), "repro-ckernels"
    )
    so_path = os.path.join(cache_dir, f"deckernels-{digest}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(cache_dir, exist_ok=True)
            src_path = os.path.join(cache_dir, f"deckernels-{digest}.c")
            with open(src_path, "w") as handle:
                handle.write(_SOURCE)
            tmp_path = f"{so_path}.{os.getpid()}.tmp"
            for extra in (["-march=native"], []):
                try:
                    subprocess.run(
                        ["cc", "-O3", "-fPIC", "-shared", *extra, src_path, "-o", tmp_path],
                        check=True,
                        capture_output=True,
                        timeout=120,
                    )
                    break
                except subprocess.CalledProcessError:
                    if not extra:
                        raise
            os.replace(tmp_path, so_path)  # atomic under concurrent builds
        except Exception:
            return None
    try:
        lib = ctypes.CDLL(so_path)
    except OSError:
        return None
    lib.hash_rows.argtypes = [
        ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64, ctypes.c_void_p,
    ]
    lib.hash_rows.restype = None
    lib.dp_match.argtypes = [
        ctypes.c_int32, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
    ]
    lib.dp_match.restype = ctypes.c_int32
    lib.dp_decode.argtypes = [
        ctypes.c_int32, ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64,
        ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p, ctypes.c_void_p,
        ctypes.c_void_p,
    ]
    lib.dp_decode.restype = ctypes.c_int32
    return lib


def available() -> bool:
    """Whether the compiled decoder kernels can be used in this environment."""
    global _lib
    flag = os.environ.get("REPRO_DECODER_CKERNELS")
    if flag is None:
        flag = os.environ.get("REPRO_SIM_CKERNELS", "1")
    if flag == "0":
        return False
    if _lib is None:
        _lib = _build()
    return _lib is not None


def _ptr(array: np.ndarray) -> ctypes.c_void_p:
    return ctypes.c_void_p(array.ctypes.data)


class _DPScratch(threading.local):
    """Per-thread reusable buffers for :func:`dp_match`.

    The DP itself runs in well under a microsecond, so per-call array
    allocation and ``ctypes`` pointer construction would dominate.  Each
    thread (the realtime service decodes from worker threads) gets one set
    of maximum-size buffers with their pointers extracted once; every call
    just copies ``count``-sized inputs in.  The pair matrix is flattened
    with the *runtime* ``count`` stride the kernel indexes by.
    """

    def __init__(self) -> None:
        self.boundary = np.empty(DP_MAX_COUNT, dtype=np.float64)
        self.pair = np.empty(DP_MAX_COUNT * DP_MAX_COUNT, dtype=np.float64)
        self.out = np.empty(2 * DP_MAX_COUNT, dtype=np.int32)
        self.ptrs = (_ptr(self.boundary), _ptr(self.pair), _ptr(self.out))


_dp_scratch = _DPScratch()


class DecodeContext:
    """One graph's decode arrays pinned for :func:`dp_decode`.

    Holds contiguous copies of the all-pairs distance/predecessor matrices
    and the dense logical-flip edge matrix, with their ``ctypes`` pointers
    extracted once — the per-syndrome kernel call then passes raw pointers
    without touching ``ndarray.ctypes`` again.  Built once per decoder
    (see ``MatchingDecoder._fast_ctx``) and kept alive by it, so the
    pointers can never dangle.
    """

    __slots__ = ("distances", "predecessors", "flips", "num_nodes", "args")

    def __init__(
        self,
        distances: np.ndarray,
        predecessors: np.ndarray,
        flips: np.ndarray,
        boundary: int,
    ) -> None:
        self.distances = np.ascontiguousarray(distances, dtype=np.float64)
        self.predecessors = np.ascontiguousarray(predecessors, dtype=np.int32)
        self.flips = np.ascontiguousarray(flips, dtype=np.uint8)
        self.num_nodes = int(self.distances.shape[0])
        self.args = (
            ctypes.c_int64(self.num_nodes),
            ctypes.c_int64(int(boundary)),
            _ptr(self.distances),
            _ptr(self.predecessors),
            _ptr(self.flips),
        )


class _DecodeScratch(threading.local):
    """Per-thread output buffers for :func:`dp_decode`."""

    def __init__(self) -> None:
        self.capacity = 0
        self.edges: np.ndarray | None = None
        self.edges_ptr: ctypes.c_void_p | None = None
        self.parity = np.zeros(1, dtype=np.int32)
        self.parity_ptr = _ptr(self.parity)

    def ensure(self, capacity: int) -> None:
        if self.capacity < capacity:
            self.edges = np.empty(capacity, dtype=np.int32)
            self.edges_ptr = _ptr(self.edges)
            self.capacity = capacity


_decode_scratch = _DecodeScratch()


def hash_rows(packed: np.ndarray) -> np.ndarray:
    """FNV-1a 64-bit hash of each row of a ``(rows, nbytes)`` uint8 matrix.

    The C kernel and the NumPy fallback produce identical values (the
    fallback runs the same xor/multiply recurrence columnwise in wrapping
    uint64 arithmetic), so the dedup grouping is environment-independent.
    """
    packed = np.ascontiguousarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError("hash_rows expects a (rows, nbytes) matrix")
    rows, nbytes = packed.shape
    out = np.empty(rows, dtype=np.uint64)
    if available():
        assert _lib is not None
        _lib.hash_rows(
            _ptr(packed), ctypes.c_int64(rows), ctypes.c_int64(nbytes), _ptr(out)
        )
        return out
    out[...] = _FNV_OFFSET
    for column in range(nbytes):
        out ^= packed[:, column].astype(np.uint64)
        out *= _FNV_PRIME
    return out


def dp_match(
    boundary_cost: np.ndarray, pair_cost: np.ndarray
) -> list[tuple[int, int]] | None:
    """Run the compiled bitmask DP; ``None`` signals the infinite dead end.

    ``boundary_cost`` is float64[count], ``pair_cost`` float64[count, count];
    the return value is the Python DP's pair list with *indices into the
    flagged array* (``j == -1`` meaning the boundary), in identical order.
    Only call when :func:`available` is true and ``count <= DP_MAX_COUNT``.
    """
    assert _lib is not None
    count = int(boundary_cost.shape[0])
    if not 0 < count <= DP_MAX_COUNT:
        raise ValueError(f"dp_match handles 1..{DP_MAX_COUNT} detectors, got {count}")
    scratch = _dp_scratch
    scratch.boundary[:count] = boundary_cost
    scratch.pair[: count * count] = np.asarray(
        pair_cost, dtype=np.float64
    ).reshape(-1)
    out = scratch.out
    pairs = int(_lib.dp_match(count, *scratch.ptrs))
    if pairs < 0:
        return None
    return [(int(out[2 * k]), int(out[2 * k + 1])) for k in range(pairs)]


def dp_decode(
    ctx: DecodeContext, flagged: np.ndarray
) -> tuple[list[tuple[int, int]], int] | None:
    """Decode one ≤8-detector syndrome entirely in C against ``ctx``.

    Returns ``(edges, parity)`` — the correction edges in exactly the
    order the interpreted retrace emits them, plus the logical-flip
    parity — or ``None`` when the DP hits the infinite dead end (the
    caller then runs the full interpreted path, which demotes to the
    greedy matcher).  Only call when :func:`available` is true and
    ``1 <= flagged.size <= DP_MAX_COUNT``.
    """
    assert _lib is not None
    count = int(flagged.shape[0])
    if not 0 < count <= DP_MAX_COUNT:
        raise ValueError(f"dp_decode handles 1..{DP_MAX_COUNT} detectors, got {count}")
    flagged = np.ascontiguousarray(flagged, dtype=np.int64)
    scratch = _decode_scratch
    scratch.ensure(2 * DP_MAX_COUNT * ctx.num_nodes)
    edges_emitted = int(
        _lib.dp_decode(
            count, _ptr(flagged), *ctx.args, scratch.edges_ptr, scratch.parity_ptr
        )
    )
    if edges_emitted < 0:
        return None
    assert scratch.edges is not None
    flat = scratch.edges[: 2 * edges_emitted].tolist()
    return list(zip(flat[0::2], flat[1::2])), int(scratch.parity[0])
