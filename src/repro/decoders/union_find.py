"""Union-find decoder.

A lighter-weight alternative to exact minimum-weight matching: clusters of
fired detectors grow on the detector graph until every cluster has even
parity (or touches the boundary), after which a peeling pass inside each
cluster selects the correction edges.  Accuracy is slightly below MWPM but
the cost scales almost linearly with the syndrome size, which makes it the
better choice for the long leakage-heavy runs where un-mitigated leakage
floods the syndrome record.

Batching, syndrome deduplication and the cross-call correction cache are
inherited from :class:`~repro.decoders.base.DecoderBase`; this module only
implements cluster growth and peeling.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..api.registry import register_decoder
from .base import DecoderBase

__all__ = ["UnionFindDecoder"]


class _DisjointSet:
    """Union-find over detector-graph nodes with parity and boundary flags."""

    def __init__(self) -> None:
        self.parent: dict[int, int] = {}
        self.parity: dict[int, int] = {}
        self.touches_boundary: dict[int, bool] = {}

    def add(self, node: int, fired: bool, is_boundary: bool) -> None:
        if node in self.parent:
            return
        self.parent[node] = node
        self.parity[node] = int(fired)
        self.touches_boundary[node] = is_boundary

    def find(self, node: int) -> int:
        root = node
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[node] != root:
            self.parent[node], node = root, self.parent[node]
        return root

    def union(self, node_a: int, node_b: int) -> int:
        root_a, root_b = self.find(node_a), self.find(node_b)
        if root_a == root_b:
            return root_a
        self.parent[root_b] = root_a
        self.parity[root_a] ^= self.parity[root_b]
        self.touches_boundary[root_a] |= self.touches_boundary[root_b]
        return root_a

    def is_neutral(self, node: int) -> bool:
        root = self.find(node)
        return self.parity[root] == 0 or self.touches_boundary[root]


@register_decoder("union_find", aliases=("uf",),
                  description="Union-find cluster-growth + peeling decoder")
@dataclass
class UnionFindDecoder(DecoderBase):
    """Cluster-growth + peeling decoder over a
    :class:`~repro.decoders.detector_graph.DetectorGraph`."""

    max_growth_steps: int = 10_000

    def _cache_config(self) -> tuple:
        return ("union_find", self.max_growth_steps)

    # ------------------------------------------------------------------ #
    # Correction construction (the DecoderBase hook)
    # ------------------------------------------------------------------ #
    def _edges_for_syndrome(self, flagged: np.ndarray) -> list[tuple[int, int]]:
        fired_nodes = set(int(n) for n in flagged)
        cluster_nodes, fired = self._grow_clusters(fired_nodes)
        return self._peel(cluster_nodes, fired)

    # ------------------------------------------------------------------ #
    # Cluster growth
    # ------------------------------------------------------------------ #
    def _grow_clusters(self, flagged: set[int]) -> tuple[dict[int, set[int]], dict[int, bool]]:
        """Grow clusters until every one is neutral; return nodes per root and fired flags."""
        boundary = self.graph.boundary_node
        dsu = _DisjointSet()
        membership: dict[int, int] = {}
        for node in flagged:
            dsu.add(node, fired=True, is_boundary=(node == boundary))
            membership[node] = node

        def cluster_members() -> dict[int, set[int]]:
            members: dict[int, set[int]] = {}
            for node in membership:
                members.setdefault(dsu.find(node), set()).add(node)
            return members

        for _ in range(self.max_growth_steps):
            members = cluster_members()
            odd_roots = [
                root
                for root in members
                if not dsu.is_neutral(root)
            ]
            if not odd_roots:
                break
            progress = (len(membership), len(members))
            for root in odd_roots:
                if dsu.is_neutral(root):
                    continue
                frontier = list(members[dsu.find(root)])
                for node in frontier:
                    for neighbor in self.graph.neighbors[node]:
                        if neighbor not in membership:
                            dsu.add(
                                neighbor,
                                fired=False,
                                is_boundary=(neighbor == boundary),
                            )
                            membership[neighbor] = neighbor
                        dsu.union(node, neighbor)
            if (len(membership), len(cluster_members())) == progress:
                # An odd cluster swallowed its whole connected component and
                # still cannot reach the boundary (possible on periodic codes,
                # where the graph has no spatial boundary, or after hyperedge
                # decomposition leaves an odd residual).  Growing further can
                # never neutralise it; hand it to peeling as-is, which
                # corrects everything except one residual flag at the root.
                break
        else:  # pragma: no cover - defensive guard against infinite growth
            raise RuntimeError("union-find cluster growth did not converge")

        members = cluster_members()
        fired = {node: (node in flagged) for node in membership}
        return members, fired

    # ------------------------------------------------------------------ #
    # Peeling
    # ------------------------------------------------------------------ #
    def _peel(
        self, clusters: dict[int, set[int]], fired: dict[int, bool]
    ) -> list[tuple[int, int]]:
        """Select correction edges inside each neutral cluster via leaf peeling."""
        boundary = self.graph.boundary_node
        correction: list[tuple[int, int]] = []
        for nodes in clusters.values():
            if not any(fired[node] for node in nodes):
                continue
            root = boundary if boundary in nodes else next(iter(nodes))
            order, parent = self._spanning_tree(nodes, root)
            syndrome = {node: fired[node] for node in nodes}
            for node in reversed(order):
                if node == root:
                    continue
                if syndrome[node]:
                    correction.append((node, parent[node]))
                    syndrome[parent[node]] = not syndrome[parent[node]]
                    syndrome[node] = False
        return correction

    def _spanning_tree(
        self, nodes: set[int], root: int
    ) -> tuple[list[int], dict[int, int]]:
        """BFS spanning tree of a cluster; returns visit order and parent map."""
        order = [root]
        parent: dict[int, int] = {root: root}
        queue: deque[int] = deque([root])
        while queue:
            node = queue.popleft()
            for neighbor in self.graph.neighbors[node]:
                if neighbor in nodes and neighbor not in parent:
                    parent[neighbor] = node
                    order.append(neighbor)
                    queue.append(neighbor)
        return order, parent
