"""Syndrome-keyed correction cache shared by the batched decoders.

At the physical error rates the paper sweeps (p ~ 1e-3) most shots of a
memory batch fire no detectors at all, and the shots that do fire share a
small set of sparse syndromes.  Decoding is therefore massively redundant:
one matching (or union-find peel) serves thousands of shots.  The
:class:`SyndromeCache` exploits that redundancy *across* batches, streams
and decoder instances: it maps ``(decoder configuration, syndrome)`` to the
finished correction — the explicit edge list plus its logical-flip parity —
with least-recently-used eviction.

Keys embed the owning decoder's cache prefix, which includes the
:attr:`~repro.decoders.detector_graph.DetectorGraph.fingerprint` of the
detector graph and the decoder's tuning (method, strategy, thresholds), so
one cache instance can safely be shared between decoders over different
graphs — the realtime :class:`~repro.realtime.service.DecodeService` does
exactly that to let multiplexed streams pool their syndromes.  All
operations take an internal lock, so concurrent decode workers can share a
cache without corrupting the LRU order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Hashable

from ..obs.metrics import METRICS

__all__ = ["SyndromeCache", "DEFAULT_CACHE_ENTRIES"]

#: Process-wide mirrors of the per-instance counters below; no-ops unless a
#: telemetry scope is active.
_OBS_HITS = METRICS.counter(
    "decode.cache.hits", "syndrome-cache lookups served from the cache"
)
_OBS_MISSES = METRICS.counter(
    "decode.cache.misses", "syndrome-cache lookups that had to decode"
)
_OBS_EVICTIONS = METRICS.counter(
    "decode.cache.evictions", "syndrome-cache LRU evictions"
)

#: Default LRU capacity.  Decoders only cache small syndromes (see
#: ``_CACHE_MAX_FIRED`` in :mod:`repro.decoders.base` — heavy leakage-flood
#: syndromes bypass the cache), so entries stay small and the default bound
#: costs at most a few tens of MB while covering far more unique syndromes
#: than a low-p sweep ever produces.
DEFAULT_CACHE_ENTRIES = 65_536


class SyndromeCache:
    """Thread-safe LRU map from (decoder config, syndrome) to corrections.

    ``maxsize`` bounds the number of cached syndromes; ``0`` disables the
    cache entirely (every :meth:`get` misses, :meth:`put` is a no-op), which
    keeps the batched decode path valid — deduplication within a batch still
    happens, only cross-call reuse is lost.
    """

    def __init__(self, maxsize: int | None = None) -> None:
        if maxsize is None:
            maxsize = DEFAULT_CACHE_ENTRIES
        if maxsize < 0:
            raise ValueError("maxsize must be non-negative")
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def enabled(self) -> bool:
        """Whether the cache stores anything at all."""
        return self.maxsize > 0

    def get(self, key: Hashable) -> Any | None:
        """The cached correction for ``key``, or ``None`` (counts a miss)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                _OBS_MISSES.inc()
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _OBS_HITS.inc()
            return entry

    def put(self, key: Hashable, value: Any) -> None:
        """Insert a correction, evicting the least recently used beyond capacity."""
        if not self.enabled:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self.evictions += 1
                _OBS_EVICTIONS.inc()

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
            self.evictions = 0

    def stats(self) -> dict:
        """Flat counters snapshot (for benchmarks and service reports)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": self.hits / total if total else 0.0,
            }
