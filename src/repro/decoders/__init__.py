"""Decoders for memory experiments (MWPM and union-find)."""

from .base import DecoderBase
from .cache import DEFAULT_CACHE_ENTRIES, SyndromeCache
from .detector_graph import DetectorGraph, GraphEdge
from .matching import STRATEGIES, MatchingDecoder
from .union_find import UnionFindDecoder

__all__ = [
    "DetectorGraph",
    "GraphEdge",
    "DecoderBase",
    "MatchingDecoder",
    "UnionFindDecoder",
    "SyndromeCache",
    "DEFAULT_CACHE_ENTRIES",
    "STRATEGIES",
    "make_decoder",
]


def make_decoder(
    graph: DetectorGraph,
    method: str = "matching",
    *,
    max_exact_nodes: int | None = None,
    strategy: str | None = None,
    cache: SyndromeCache | None = None,
    cache_size: int | None = None,
):
    """Factory: ``"matching"`` for MWPM, ``"union_find"`` for the UF decoder.

    ``max_exact_nodes`` and ``strategy`` tune the matching decoder's
    exact-vs-greedy trade-off (see :class:`MatchingDecoder`); they are
    rejected for decoders that have no such knob so a sweep cannot silently
    ignore a requested configuration.

    ``cache`` attaches an existing :class:`SyndromeCache` (shared across
    decoders by the realtime service); ``cache_size`` instead sizes a fresh
    private cache (``0`` disables cross-call caching).  Both apply to every
    decoder, since batching and caching live in :class:`DecoderBase`.
    """
    if cache is not None and cache_size is not None:
        raise ValueError("pass either cache or cache_size, not both")
    if cache is None and cache_size is not None:
        cache = SyndromeCache(cache_size)
    method = method.replace("-", "_")
    if method == "matching":
        kwargs: dict = {}
        if max_exact_nodes is not None:
            kwargs["max_exact_nodes"] = int(max_exact_nodes)
        if strategy is not None:
            kwargs["strategy"] = strategy
        return MatchingDecoder(graph, cache=cache, **kwargs)
    if method == "union_find":
        if max_exact_nodes is not None or strategy is not None:
            raise ValueError(
                "max_exact_nodes/strategy only apply to the matching decoder"
            )
        return UnionFindDecoder(graph, cache=cache)
    raise ValueError(f"unknown decoder method {method!r}")
