"""Decoders for memory experiments (MWPM and union-find).

Decoder backends register themselves in
:data:`repro.api.registry.DECODERS` at class-definition time;
:func:`make_decoder` is a thin lookup over that registry, so third-party
decoders registered with :func:`repro.api.register_decoder` are
constructible here (and listed by ``python -m repro list``) without
touching this module.
"""

from ..api.registry import DECODERS
from .base import DecoderBase
from .cache import DEFAULT_CACHE_ENTRIES, SyndromeCache
from .detector_graph import DetectorGraph, GraphEdge
from .matching import STRATEGIES, MatchingDecoder
from .union_find import UnionFindDecoder

__all__ = [
    "DetectorGraph",
    "GraphEdge",
    "DecoderBase",
    "MatchingDecoder",
    "UnionFindDecoder",
    "SyndromeCache",
    "DEFAULT_CACHE_ENTRIES",
    "STRATEGIES",
    "make_decoder",
    "ensure_tunable",
]


def make_decoder(
    graph: DetectorGraph,
    method: str = "matching",
    *,
    max_exact_nodes: int | None = None,
    strategy: str | None = None,
    cache: SyndromeCache | None = None,
    cache_size: int | None = None,
):
    """Factory: build a registered decoder over ``graph`` by method name.

    A thin lookup over :data:`repro.api.registry.DECODERS` (``"matching"``
    for MWPM, ``"union_find"`` for the UF decoder, plus anything third
    parties register); unknown names fail with a did-you-mean suggestion
    and the full registered list.

    ``max_exact_nodes`` and ``strategy`` tune the matching decoder's
    exact-vs-greedy trade-off (see :class:`MatchingDecoder`); they are
    rejected for decoders not registered as ``tunable`` so a sweep cannot
    silently ignore a requested configuration.

    ``cache`` attaches an existing :class:`SyndromeCache` (shared across
    decoders by the realtime service); ``cache_size`` instead sizes a fresh
    private cache (``0`` disables cross-call caching).  Both apply to every
    decoder, since batching and caching live in :class:`DecoderBase`.
    """
    if cache is not None and cache_size is not None:
        raise ValueError("pass either cache or cache_size, not both")
    if cache is None and cache_size is not None:
        cache = SyndromeCache(cache_size)
    entry = DECODERS.get(method)  # unknown names fail with did-you-mean help
    kwargs: dict = {}
    if max_exact_nodes is not None:
        kwargs["max_exact_nodes"] = int(max_exact_nodes)
    if strategy is not None:
        kwargs["strategy"] = strategy
    if kwargs:
        ensure_tunable(entry)
    return entry.obj(graph, cache=cache, **kwargs)


def ensure_tunable(entry) -> None:
    """Reject tuning knobs for a decoder not registered as ``tunable``.

    Shared by :func:`make_decoder` and ``DecoderConfig.validate`` so the
    rule and its error message have exactly one source of truth.
    """
    if not entry.metadata.get("tunable", False):
        tunable = [e.name for e in DECODERS if e.metadata.get("tunable")]
        raise ValueError(
            f"max_exact_nodes/strategy only apply to tunable decoders "
            f"({', '.join(tunable)}), not {entry.name!r}"
        )
