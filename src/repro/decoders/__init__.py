"""Decoders for memory experiments (MWPM and union-find)."""

from .detector_graph import DetectorGraph, GraphEdge
from .matching import MatchingDecoder
from .union_find import UnionFindDecoder

__all__ = ["DetectorGraph", "GraphEdge", "MatchingDecoder", "UnionFindDecoder"]


def make_decoder(graph: DetectorGraph, method: str = "matching"):
    """Factory: ``"matching"`` for MWPM, ``"union_find"`` for the UF decoder."""
    if method == "matching":
        return MatchingDecoder(graph)
    if method == "union_find":
        return UnionFindDecoder(graph)
    raise ValueError(f"unknown decoder method {method!r}")
