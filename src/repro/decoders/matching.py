"""Minimum-weight perfect matching decoder.

Standard surface-code decoding: fired detectors are paired up (or matched to
the boundary) so that the total weight of the connecting error chains is
minimised; the prediction for the logical observable is the parity of
logical-crossing edges along the chosen chains.

Exact matching uses the blossom implementation in ``networkx``; because its
cost grows quickly with the number of fired detectors, large syndromes
(typically produced by un-mitigated leakage) fall back to a greedy
nearest-neighbour pairing, which preserves the qualitative behaviour at a
fraction of the cost.  The same trade-off is configurable via
``max_exact_nodes``.

Batching, syndrome deduplication and the cross-call correction cache are
inherited from :class:`~repro.decoders.base.DecoderBase`; this module only
implements the matching itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import networkx as nx
import numpy as np

from ..api.registry import register_decoder
from ..obs.metrics import METRICS
from . import _ckernels
from .base import DecoderBase

__all__ = ["MatchingDecoder", "STRATEGIES"]

#: Matching-backend telemetry; no-ops unless a telemetry scope is active.
_OBS_EXACT = METRICS.counter(
    "decode.matching.exact", "syndromes matched by an exact backend"
)
_OBS_GREEDY = METRICS.counter(
    "decode.matching.greedy", "syndromes matched by the greedy pairing"
)
_OBS_FALLBACKS = METRICS.counter(
    "decode.matching.greedy_fallbacks",
    "exact->greedy fallbacks (size cutoff in auto mode, or a DP dead end)",
)
_OBS_DP_KERNEL = METRICS.counter(
    "decode.matching.dp_kernel", "bitmask-DP matchings served by the C kernel"
)


#: Valid values of :attr:`MatchingDecoder.strategy`.
STRATEGIES = ("auto", "exact", "greedy")

#: Largest syndrome matched by the exact bitmask DP (O(2^n * n)) instead of
#: the blossom solver.  Beyond ~8 fired detectors the DP's exponential state
#: table overtakes blossom's polynomial cost.
_DP_EXACT_MAX = 8


@register_decoder("matching", aliases=("mwpm",), tunable=True,
                  description="Minimum-weight perfect matching (exact/greedy)")
@dataclass
class MatchingDecoder(DecoderBase):
    """MWPM decoder over a :class:`~repro.decoders.detector_graph.DetectorGraph`.

    ``strategy`` pins the matching backend: ``"auto"`` (default) uses exact
    blossom matching up to ``max_exact_nodes`` fired detectors and greedy
    pairing beyond, ``"exact"`` always matches exactly and ``"greedy"``
    always uses the nearest-neighbour fallback.
    """

    max_exact_nodes: int = 60
    strategy: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.max_exact_nodes < 0:
            raise ValueError("max_exact_nodes must be non-negative")
        super().__post_init__()
        # Lifetime backend tallies of this instance (exact incl. DP/blossom).
        self.matchings_exact = 0
        self.matchings_greedy = 0

    def _cache_config(self) -> tuple:
        return ("matching", self.strategy, self.max_exact_nodes)

    # ------------------------------------------------------------------ #
    # Compiled whole-entry shortcut (the DecoderBase._fast_entry hook)
    # ------------------------------------------------------------------ #
    @cached_property
    def _fast_ctx(self) -> "_ckernels.DecodeContext | None":
        """Pinned all-pairs arrays for the one-call decode kernel.

        ``None`` when the graph is past the all-pairs size gate (the kernel
        needs the full distance/predecessor matrices resident).  Built
        lazily on first use so decoders on huge graphs never pay for it.
        """
        all_pairs = self.graph._all_pairs
        flips = self.graph.flips_dense
        if all_pairs is None or flips is None:
            return None
        distances, predecessors = all_pairs
        return _ckernels.DecodeContext(
            distances, predecessors, flips, self.graph.boundary_node
        )

    def _fast_entry(self, flagged: np.ndarray) -> tuple | None:
        """Serve a ≤8-detector exact matching entirely from the C kernel.

        Returns the identical ``(edges, flip)`` entry the interpreted path
        builds — same analytic 1/2-detector rules, same DP tie-breaking,
        same retrace edge order, same parity — or ``None`` to defer (large
        syndromes, greedy strategy, kernels disabled, or the DP's infinite
        dead end, which the interpreted path demotes to greedy).  Backend
        tallies mirror the interpreted path so diagnostics stay
        kernel-independent.
        """
        count = flagged.size
        if (
            count > _DP_EXACT_MAX
            or not self._use_exact(count)
            or not _ckernels.available()
        ):
            return None
        ctx = self._fast_ctx
        if ctx is None:
            return None
        result = _ckernels.dp_decode(ctx, flagged)
        if result is None:
            return None
        edge_list, parity = result
        self.matchings_exact += 1
        _OBS_EXACT.inc()
        if count > 2:
            _OBS_DP_KERNEL.inc()
        return tuple(edge_list), parity

    # ------------------------------------------------------------------ #
    # Correction construction (the DecoderBase hook)
    # ------------------------------------------------------------------ #
    def _edges_for_syndrome(self, flagged: np.ndarray) -> list[tuple[int, int]]:
        distances, predecessors = self.graph.shortest_paths_from(flagged)
        boundary = self.graph.boundary_node
        if self._use_exact(flagged.size):
            self.matchings_exact += 1
            _OBS_EXACT.inc()
            pairs = self._exact_matching(flagged, distances, boundary)
        else:
            self.matchings_greedy += 1
            _OBS_GREEDY.inc()
            if self.strategy == "auto":
                # Auto mode wanted exact matching but the syndrome was too
                # large — the fallback the paper's leakage floods trigger.
                _OBS_FALLBACKS.inc()
            pairs = self._greedy_matching(flagged, distances, boundary)
        index_of = {int(node): i for i, node in enumerate(flagged)}
        edges: list[tuple[int, int]] = []
        for node_a, node_b in pairs:
            source_row = predecessors[index_of[node_a]]
            node = int(node_b)
            while True:
                previous = source_row[node]
                if previous < 0:
                    break
                edges.append((int(previous), node))
                node = int(previous)
        return edges

    def _use_exact(self, flagged_count: int) -> bool:
        """Whether this syndrome size is matched exactly or greedily."""
        if self.strategy == "exact":
            return True
        if self.strategy == "greedy":
            return False
        return flagged_count <= self.max_exact_nodes

    # ------------------------------------------------------------------ #
    # Matching strategies
    # ------------------------------------------------------------------ #
    def _exact_matching(
        self, flagged: np.ndarray, distances: np.ndarray, boundary: int
    ) -> list[tuple[int, int]]:
        """Exact MWPM with per-detector virtual boundary copies.

        Small syndromes — the overwhelming majority at the paper's error
        rates — never reach the blossom solver: one or two fired detectors
        are matched analytically, and up to :data:`_DP_EXACT_MAX` detectors
        go through an exact bitmask DP.  All three backends minimise the
        same total weight; only ties may be broken differently.
        """
        count = flagged.size
        if count == 1:
            return [(int(flagged[0]), boundary)]
        if count == 2:
            paired = distances[0, int(flagged[1])]
            if paired <= distances[0, boundary] + distances[1, boundary]:
                return [(int(flagged[0]), int(flagged[1]))]
            return [(int(flagged[0]), boundary), (int(flagged[1]), boundary)]
        if count <= _DP_EXACT_MAX:
            return self._dp_matching(flagged, distances, boundary)
        graph = nx.Graph()
        large = 1e9
        for i in range(count):
            for j in range(i + 1, count):
                weight = distances[i, int(flagged[j])]
                graph.add_edge(("d", i), ("d", j), weight=large - weight)
            boundary_weight = distances[i, boundary]
            graph.add_edge(("d", i), ("b", i), weight=large - boundary_weight)
        for i in range(count):
            for j in range(i + 1, count):
                graph.add_edge(("b", i), ("b", j), weight=large)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        pairs: list[tuple[int, int]] = []
        for left, right in matching:
            kinds = {left[0], right[0]}
            if kinds == {"d"}:
                pairs.append((int(flagged[left[1]]), int(flagged[right[1]])))
            elif kinds == {"d", "b"}:
                detector = left if left[0] == "d" else right
                pairs.append((int(flagged[detector[1]]), boundary))
        return pairs

    def _dp_matching(
        self, flagged: np.ndarray, distances: np.ndarray, boundary: int
    ) -> list[tuple[int, int]]:
        """Exact minimum-weight matching by DP over matched-detector subsets.

        ``best[mask]`` is the cheapest way to match the detectors in
        ``mask``; each step commits the lowest unmatched detector either to
        the boundary or to one partner, so every matching is enumerated once
        (O(2^n * n) total — far below blossom's constant for the small
        syndromes this handles).

        When the compiled decoder kernels are available
        (:mod:`repro.decoders._ckernels`) the same DP runs in C; the kernel
        mirrors this loop line for line (iteration order, strict ``<``
        tie-breaking, IEEE doubles), so the chosen pairs are identical —
        ``tests/test_pipeline.py`` pins both modes against each other.
        """
        count = flagged.size
        if _ckernels.available() and count <= _ckernels.DP_MAX_COUNT:
            index_pairs = _ckernels.dp_match(
                distances[:, boundary], distances[:, flagged]
            )
            if index_pairs is None:
                # Infinite-cost dead end — same demotion as the Python DP.
                _OBS_FALLBACKS.inc()
                return self._greedy_matching(flagged, distances, boundary)
            _OBS_DP_KERNEL.inc()
            return [
                (int(flagged[i]), boundary) if j < 0 else (int(flagged[i]), int(flagged[j]))
                for i, j in index_pairs
            ]
        nodes = [int(node) for node in flagged]
        boundary_cost = [float(distances[i, boundary]) for i in range(count)]
        pair_cost = [
            [float(distances[i, nodes[j]]) for j in range(count)]
            for i in range(count)
        ]
        size = 1 << count
        infinite = float("inf")
        best = [infinite] * size
        choice: list[tuple[int, int, int] | None] = [None] * size
        best[0] = 0.0
        for mask in range(size - 1):
            cost = best[mask]
            if cost == infinite:
                continue
            free = ~mask & (size - 1)
            low = free & -free
            i = low.bit_length() - 1
            with_boundary = mask | low
            candidate = cost + boundary_cost[i]
            if candidate < best[with_boundary]:
                best[with_boundary] = candidate
                choice[with_boundary] = (mask, i, -1)
            rest = free ^ low
            while rest:
                partner_bit = rest & -rest
                j = partner_bit.bit_length() - 1
                with_pair = mask | low | partner_bit
                candidate = cost + pair_cost[i][j]
                if candidate < best[with_pair]:
                    best[with_pair] = candidate
                    choice[with_pair] = (mask, i, j)
                rest ^= partner_bit
        if choice[size - 1] is None:
            # Every complete matching has infinite cost: some detectors sit in
            # mutually unreachable components with an unreachable boundary
            # (periodic codes have no spatial boundary at all).  There is no
            # finite-cost assignment to commit to, so fall back to the greedy
            # pairing, which tolerates infinite distances and still yields a
            # best-effort correction for the reachable pairs.
            _OBS_FALLBACKS.inc()
            return self._greedy_matching(flagged, distances, boundary)
        pairs: list[tuple[int, int]] = []
        mask = size - 1
        while mask:
            previous, i, j = choice[mask]
            pairs.append((nodes[i], boundary) if j < 0 else (nodes[i], nodes[j]))
            mask = previous
        return pairs

    def _greedy_matching(
        self, flagged: np.ndarray, distances: np.ndarray, boundary: int
    ) -> list[tuple[int, int]]:
        """Greedy nearest-neighbour pairing used for very large syndromes."""
        count = flagged.size
        unmatched = set(range(count))
        # Candidate pairings sorted by distance, plus boundary options.
        candidates: list[tuple[float, int, int]] = []
        for i in range(count):
            for j in range(i + 1, count):
                candidates.append((float(distances[i, int(flagged[j])]), i, j))
            candidates.append((float(distances[i, boundary]), i, -1))
        candidates.sort(key=lambda item: item[0])
        pairs: list[tuple[int, int]] = []
        for _, i, j in candidates:
            if i not in unmatched:
                continue
            if j == -1:
                pairs.append((int(flagged[i]), boundary))
                unmatched.discard(i)
            elif j in unmatched:
                pairs.append((int(flagged[i]), int(flagged[j])))
                unmatched.discard(i)
                unmatched.discard(j)
            if not unmatched:
                break
        for i in list(unmatched):
            pairs.append((int(flagged[i]), boundary))
        return pairs
