"""Minimum-weight perfect matching decoder.

Standard surface-code decoding: fired detectors are paired up (or matched to
the boundary) so that the total weight of the connecting error chains is
minimised; the prediction for the logical observable is the parity of
logical-crossing edges along the chosen chains.

Exact matching uses the blossom implementation in ``networkx``; because its
cost grows quickly with the number of fired detectors, large syndromes
(typically produced by un-mitigated leakage) fall back to a greedy
nearest-neighbour pairing, which preserves the qualitative behaviour at a
fraction of the cost.  The same trade-off is configurable via
``max_exact_nodes``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from .detector_graph import DetectorGraph

__all__ = ["MatchingDecoder", "STRATEGIES"]


#: Valid values of :attr:`MatchingDecoder.strategy`.
STRATEGIES = ("auto", "exact", "greedy")


@dataclass
class MatchingDecoder:
    """MWPM decoder over a :class:`DetectorGraph`.

    ``strategy`` pins the matching backend: ``"auto"`` (default) uses exact
    blossom matching up to ``max_exact_nodes`` fired detectors and greedy
    pairing beyond, ``"exact"`` always matches exactly and ``"greedy"``
    always uses the nearest-neighbour fallback.
    """

    graph: DetectorGraph
    max_exact_nodes: int = 60
    strategy: str = "auto"

    def __post_init__(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if self.max_exact_nodes < 0:
            raise ValueError("max_exact_nodes must be non-negative")

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def decode_shot(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> int:
        """Predict the logical flip (0/1) for one shot."""
        parity = 0
        for node_a, node_b in self.decode_shot_edges(detector_history, final_detectors):
            edge = self.graph.edge_between(node_a, node_b)
            if edge is not None and edge.flips_logical:
                parity ^= 1
        return parity

    def decode_shot_edges(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> list[tuple[int, int]]:
        """The correction as explicit graph edges (used by windowed decoding).

        Returns the list of ``(node_a, node_b)`` detector-graph edges along
        the matched error chains; :meth:`decode_shot` is the parity of the
        logical-crossing edges in this list.
        """
        flagged = self.graph.flagged_nodes(detector_history, final_detectors)
        if flagged.size == 0:
            return []
        distances, predecessors = self.graph.shortest_paths_from(flagged)
        boundary = self.graph.boundary_node
        if self._use_exact(flagged.size):
            pairs = self._exact_matching(flagged, distances, boundary)
        else:
            pairs = self._greedy_matching(flagged, distances, boundary)
        index_of = {int(node): i for i, node in enumerate(flagged)}
        edges: list[tuple[int, int]] = []
        for node_a, node_b in pairs:
            source_row = predecessors[index_of[node_a]]
            node = int(node_b)
            while True:
                previous = source_row[node]
                if previous < 0:
                    break
                edges.append((int(previous), node))
                node = int(previous)
        return edges

    def _use_exact(self, flagged_count: int) -> bool:
        """Whether this syndrome size is matched exactly or greedily."""
        if self.strategy == "exact":
            return True
        if self.strategy == "greedy":
            return False
        return flagged_count <= self.max_exact_nodes

    def decode_batch(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> np.ndarray:
        """Predict logical flips for a batch of shots.

        ``detector_history`` has shape ``(shots, rounds, num_z_stabs)`` and
        ``final_detectors`` shape ``(shots, num_z_stabs)``.
        """
        shots = detector_history.shape[0]
        predictions = np.zeros(shots, dtype=bool)
        for shot in range(shots):
            predictions[shot] = bool(
                self.decode_shot(detector_history[shot], final_detectors[shot])
            )
        return predictions

    # ------------------------------------------------------------------ #
    # Matching strategies
    # ------------------------------------------------------------------ #
    def _exact_matching(
        self, flagged: np.ndarray, distances: np.ndarray, boundary: int
    ) -> list[tuple[int, int]]:
        """Exact MWPM with per-detector virtual boundary copies."""
        count = flagged.size
        graph = nx.Graph()
        large = 1e9
        for i in range(count):
            for j in range(i + 1, count):
                weight = distances[i, int(flagged[j])]
                graph.add_edge(("d", i), ("d", j), weight=large - weight)
            boundary_weight = distances[i, boundary]
            graph.add_edge(("d", i), ("b", i), weight=large - boundary_weight)
        for i in range(count):
            for j in range(i + 1, count):
                graph.add_edge(("b", i), ("b", j), weight=large)
        matching = nx.max_weight_matching(graph, maxcardinality=True)
        pairs: list[tuple[int, int]] = []
        for left, right in matching:
            kinds = {left[0], right[0]}
            if kinds == {"d"}:
                pairs.append((int(flagged[left[1]]), int(flagged[right[1]])))
            elif kinds == {"d", "b"}:
                detector = left if left[0] == "d" else right
                pairs.append((int(flagged[detector[1]]), boundary))
        return pairs

    def _greedy_matching(
        self, flagged: np.ndarray, distances: np.ndarray, boundary: int
    ) -> list[tuple[int, int]]:
        """Greedy nearest-neighbour pairing used for very large syndromes."""
        count = flagged.size
        unmatched = set(range(count))
        # Candidate pairings sorted by distance, plus boundary options.
        candidates: list[tuple[float, int, int]] = []
        for i in range(count):
            for j in range(i + 1, count):
                candidates.append((float(distances[i, int(flagged[j])]), i, j))
            candidates.append((float(distances[i, boundary]), i, -1))
        candidates.sort(key=lambda item: item[0])
        pairs: list[tuple[int, int]] = []
        for _, i, j in candidates:
            if i not in unmatched:
                continue
            if j == -1:
                pairs.append((int(flagged[i]), boundary))
                unmatched.discard(i)
            elif j in unmatched:
                pairs.append((int(flagged[i]), int(flagged[j])))
                unmatched.discard(i)
                unmatched.discard(j)
            if not unmatched:
                break
        for i in list(unmatched):
            pairs.append((int(flagged[i]), boundary))
        return pairs
