"""Template base class for matching-style decoders: batching and caching.

Both concrete decoders (:class:`~repro.decoders.matching.MatchingDecoder`
and :class:`~repro.decoders.union_find.UnionFindDecoder`) reduce to the
same skeleton: extract the fired detector nodes of a shot, turn them into a
correction — a list of detector-graph edges — and read the logical-flip
parity off that edge list.  Only the middle step differs, so it is the one
hook subclasses implement (:meth:`_edges_for_syndrome`); everything around
it lives here exactly once:

* **per-shot entry points** — :meth:`decode_shot` (logical parity) and
  :meth:`decode_shot_edges` (explicit edges, used by windowed decoding),
* **the batched fast path** — :meth:`decode_batch` /
  :meth:`decode_edges_batch` pack the whole ``(shots, rounds, detectors)``
  record into per-shot syndrome bitstrings with whole-batch NumPy ops,
  deduplicate identical syndromes via ``np.unique`` and decode each unique
  syndrome once.  At low physical error rates most shots share a handful of
  syndromes, so one decode serves thousands of shots,
* **the cross-call cache** — every decoded syndrome lands in a
  :class:`~repro.decoders.cache.SyndromeCache` keyed by the detector
  graph's fingerprint plus the decoder's own configuration, so repeated
  batches, sliding windows and multiplexed realtime streams all reuse each
  other's work.  Decoders with different tuning (strategy, thresholds)
  never alias: the tuning is part of the key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.metrics import METRICS
from . import _ckernels
from .cache import SyndromeCache
from .detector_graph import DetectorGraph

__all__ = ["DecoderBase"]

#: Batch-dedup telemetry: total shots entering the batched path vs unique
#: syndromes actually decoded; no-ops unless a telemetry scope is active.
_OBS_BATCH_SHOTS = METRICS.counter(
    "decode.batch.shots", "shots entering the batched decode path"
)
_OBS_BATCH_UNIQUE = METRICS.counter(
    "decode.batch.unique", "unique syndromes decoded after deduplication"
)
_OBS_HASH_COLLISIONS = METRICS.counter(
    "decode.batch.hash_collisions",
    "dedup hash collisions demoted to the exact row-sort path",
)

#: Cached entry: (correction edges, logical-flip parity).
_Entry = tuple[tuple[tuple[int, int], ...], int]

#: Syndromes firing more detectors than this bypass the cache entirely.
#: Heavy syndromes (un-mitigated leakage floods) are essentially never
#: repeated, so caching them buys no hits while each entry would hold a
#: large edge list — this bound keeps the cache's memory footprint tied to
#: the small, shareable syndromes it exists for.
_CACHE_MAX_FIRED = 32


@dataclass
class DecoderBase:
    """Shared decode/batch/cache machinery over a :class:`DetectorGraph`.

    ``cache`` is the syndrome->correction store; ``None`` gives the decoder
    a private cache of the default capacity.  Pass an explicit
    :class:`SyndromeCache` to share one across decoders (the realtime
    service does), or ``SyndromeCache(0)`` to disable cross-call reuse.
    """

    graph: DetectorGraph
    cache: SyndromeCache | None = field(default=None, kw_only=True, repr=False)

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = SyndromeCache()
        self._cache_prefix = (self.graph.fingerprint, self._cache_config())
        # Lifetime dedup tallies of this instance's batched entry points.
        self.batch_shots = 0
        self.batch_unique = 0

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #
    def _edges_for_syndrome(self, flagged: np.ndarray) -> list[tuple[int, int]]:
        """Correction edges for one non-empty set of fired detector nodes."""
        raise NotImplementedError

    def _cache_config(self) -> tuple:
        """Hashable decoder configuration mixed into every cache key."""
        raise NotImplementedError

    def _fast_entry(self, flagged: np.ndarray) -> _Entry | None:
        """Optional compiled shortcut producing a whole ``(edges, flip)`` entry.

        Subclasses may return the exact entry the interpreted
        :meth:`_edges_for_syndrome` + parity path would build (bit for bit:
        same edges, same order, same parity) when a kernel can serve this
        syndrome, or ``None`` to take the interpreted path.  Results are
        cached identically either way, so the shortcut is invisible except
        in wall-clock time.
        """
        return None

    # ------------------------------------------------------------------ #
    # Per-shot entry points
    # ------------------------------------------------------------------ #
    def decode_shot(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> int:
        """Predict the logical flip (0/1) for one shot."""
        return self._decode_entry(detector_history, final_detectors)[1]

    def decode_shot_edges(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> list[tuple[int, int]]:
        """The correction as explicit graph edges (used by windowed decoding).

        Returns the list of ``(node_a, node_b)`` detector-graph edges along
        the corrected error chains; :meth:`decode_shot` is the parity of the
        logical-crossing edges in this list.
        """
        return list(self._decode_entry(detector_history, final_detectors)[0])

    # ------------------------------------------------------------------ #
    # Batched fast path
    # ------------------------------------------------------------------ #
    def decode_batch(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> np.ndarray:
        """Predict logical flips for a batch of shots.

        ``detector_history`` has shape ``(shots, rounds, num_z_stabs)`` and
        ``final_detectors`` shape ``(shots, num_z_stabs)``.  Identical
        detector-event bitstrings are decoded once and the result scattered
        back over the batch; bit-identical to looping :meth:`decode_shot`.
        """
        history, final, first, inverse = self._deduplicate(
            detector_history, final_detectors
        )
        flips = np.fromiter(
            (self._decode_entry(history[i], final[i])[1] for i in first),
            dtype=bool,
            count=len(first),
        )
        return flips[inverse]

    def decode_edges_batch(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> list[tuple[tuple[int, int], ...]]:
        """Per-shot correction edges for a batch, deduplicated like
        :meth:`decode_batch` (the windowed decoder's batch entry point)."""
        entries, inverse = self.decode_edges_unique(detector_history, final_detectors)
        return [entries[j] for j in inverse]

    def decode_edges_unique(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> tuple[list[tuple[tuple[int, int], ...]], np.ndarray]:
        """Correction edges per *unique* syndrome, plus the scatter map.

        Returns ``(entries, inverse)`` where ``entries[inverse[s]]`` is shot
        ``s``'s correction — the representation
        :class:`repro.pipeline.FusedWindowSession` consumes so per-window
        commit work scales with unique syndromes instead of shots.
        :meth:`decode_edges_batch` is exactly this followed by the scatter.
        """
        history, final, first, inverse = self._deduplicate(
            detector_history, final_detectors
        )
        entries = [self._decode_entry(history[i], final[i])[0] for i in first]
        return entries, inverse

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #
    @property
    def decode_identity(self) -> tuple:
        """Hashable (graph fingerprint, decoder tuning) identity.

        Two decoders with equal identity produce bit-identical corrections
        for every syndrome (same graph content, same algorithm tuning) and
        share cache entries — the compatibility key the decode service's
        cross-stream coalescer groups windows by.
        """
        return self._cache_prefix

    @property
    def batch_dedup_ratio(self) -> float:
        """Fraction of batched shots served by another shot's decode.

        ``1 - unique/shots`` over this instance's lifetime; ``0.0`` before
        any batched call.  Perf diagnostic only — never part of results.
        """
        if not self.batch_shots:
            return 0.0
        return 1.0 - self.batch_unique / self.batch_shots

    def decode_stats(self) -> dict:
        """Cache and dedup diagnostics of this decoder instance."""
        assert self.cache is not None  # __post_init__ guarantees it
        return {
            "cache_hit_rate": self.cache.stats()["hit_rate"],
            "dedup_ratio": self.batch_dedup_ratio,
        }

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _deduplicate(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Whole-batch syndrome extraction and deduplication.

        Returns ``(history, final, first, inverse)`` where ``first`` indexes
        one representative shot per unique syndrome and ``inverse`` maps
        every shot back onto its representative.
        """
        history = np.asarray(detector_history, dtype=bool)
        final = np.asarray(final_detectors, dtype=bool)
        shots = history.shape[0]
        if shots == 0:
            empty = np.zeros(0, dtype=np.intp)
            return history, final, empty, empty
        events = np.concatenate([history.reshape(shots, -1), final], axis=1)
        packed = np.packbits(events, axis=1)
        if _ckernels.available():
            # Group by a compiled 64-bit row hash instead of lex-sorting the
            # whole row matrix; the grouping is verified against the raw
            # rows, so a hash collision only costs a demotion to the exact
            # path, never a wrong merge.  Group *order* differs between the
            # two paths, but every per-shot output is rebuilt through
            # ``inverse``, which erases the order.
            hashes = _ckernels.hash_rows(packed)
            _, first, inverse = np.unique(
                hashes, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
            if not np.array_equiv(packed, packed[first[inverse]]):
                _OBS_HASH_COLLISIONS.inc()
                _, first, inverse = np.unique(
                    packed, axis=0, return_index=True, return_inverse=True
                )
                inverse = inverse.reshape(-1)
        else:
            _, first, inverse = np.unique(
                packed, axis=0, return_index=True, return_inverse=True
            )
            inverse = inverse.reshape(-1)
        self.batch_shots += shots
        self.batch_unique += len(first)
        _OBS_BATCH_SHOTS.inc(shots)
        _OBS_BATCH_UNIQUE.inc(len(first))
        return history, final, first, inverse

    def _decode_entry(
        self, detector_history: np.ndarray, final_detectors: np.ndarray
    ) -> _Entry:
        """(edges, flip) for one shot, served from the cache when possible."""
        flagged = self.graph.flagged_nodes(detector_history, final_detectors)
        if flagged.size == 0:
            return ((), 0)
        cacheable = flagged.size <= _CACHE_MAX_FIRED
        if cacheable:
            key = (self._cache_prefix, flagged.astype(np.int64, copy=False).tobytes())
            entry = self.cache.get(key)
            if entry is not None:
                return entry
        entry = self._fast_entry(flagged)
        if entry is None:
            edges = tuple(
                (int(a), int(b)) for a, b in self._edges_for_syndrome(flagged)
            )
            parity = 0
            for node_a, node_b in edges:
                edge = self.graph.edge_between(node_a, node_b)
                if edge is not None and edge.flips_logical:
                    parity ^= 1
            entry = (edges, parity)
        if cacheable:
            self.cache.put(key, entry)
        return entry
