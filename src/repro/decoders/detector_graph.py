"""Space-time detector graph for matching-based decoding.

For a memory-Z experiment the decoder works on the Z-type detectors: one node
per (Z stabilizer, round) pair, including the extra layer derived from the
final transversal data readout.  Edges correspond to single error mechanisms:

* *space-like* edges join the (one or) two Z stabilizers flipped by an X
  error on a data qubit within one round; data qubits on the X boundary have
  only one adjacent Z stabilizer and connect to the virtual boundary node,
* *time-like* edges join the same stabilizer in consecutive rounds
  (measurement errors).

Every edge records whether the corresponding physical error flips the logical
observable, so a matching can be converted into a logical-flip prediction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import dijkstra

from ..codes.base import StabilizerCode
from ..noise import NoiseParams

__all__ = ["DetectorGraph", "GraphEdge"]

#: Node-count gate for the cached all-pairs shortest-path tables.  Below it
#: one dijkstra call serves every decode of the graph's lifetime (the batch
#: engine's hot path); above it the tables would cost O(n^2) memory, so
#: per-syndrome dijkstra is used instead.
_ALL_PAIRS_MAX_NODES = 2048


@dataclass(frozen=True)
class GraphEdge:
    """One edge of the detector graph."""

    node_a: int
    node_b: int
    weight: float
    flips_logical: bool
    kind: str  # "space", "time" or "boundary"


@dataclass
class DetectorGraph:
    """Decoding graph of a memory-Z experiment with ``rounds`` QEC rounds.

    ``hyperedges`` selects what happens on codes where a data qubit touches
    more than two Z stabilizers (colour codes, product codes):

    * ``"reject"`` (default) raises, preserving the strict matching
      precondition,
    * ``"decompose"`` chains the k adjacent stabilizers into k-1 pairwise
      space edges (the first carrying the qubit's logical-flip parity), a
      standard approximation that lets matching and union-find run on
      hyperedge codes at reduced accuracy.
    """

    code: StabilizerCode
    rounds: int
    noise: NoiseParams = field(default_factory=NoiseParams)
    hyperedges: str = "reject"

    def __post_init__(self) -> None:
        if self.hyperedges not in ("reject", "decompose"):
            raise ValueError(
                f"hyperedges must be 'reject' or 'decompose', got {self.hyperedges!r}"
            )
        self._z_stabs = [s for s in self.code.stabilizers if s.basis == "Z"]
        if not self._z_stabs:
            raise ValueError("code has no Z stabilizers; nothing to decode")
        adjacency: dict[int, list[int]] = {q: [] for q in range(self.code.num_data)}
        for local, stab in enumerate(self._z_stabs):
            for qubit in stab.data_support:
                adjacency[qubit].append(local)
        too_many = [q for q, stabs in adjacency.items() if len(stabs) > 2]
        if too_many and self.hyperedges == "reject":
            raise ValueError(
                "matching decoder requires each data qubit to touch at most two "
                f"Z stabilizers; qubits {too_many[:5]} violate this (use a "
                "different decoder for this code, or hyperedges='decompose')"
            )
        self._data_to_z = adjacency

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    @property
    def num_z_stabs(self) -> int:
        """Number of Z stabilizers (detectors per layer)."""
        return len(self._z_stabs)

    @property
    def num_layers(self) -> int:
        """Number of detector layers: one per round plus the final readout layer."""
        return self.rounds + 1

    @property
    def num_nodes(self) -> int:
        """Detector nodes plus the single virtual boundary node."""
        return self.num_layers * self.num_z_stabs + 1

    @property
    def boundary_node(self) -> int:
        """Index of the virtual boundary node."""
        return self.num_layers * self.num_z_stabs

    def node_index(self, z_local: int, layer: int) -> int:
        """Node id of detector ``z_local`` in ``layer``."""
        return layer * self.num_z_stabs + z_local

    # ------------------------------------------------------------------ #
    # Edges
    # ------------------------------------------------------------------ #
    @cached_property
    def _chain_pairs(self) -> dict[tuple[int, int], bool]:
        """Hyperedge decomposition: unique chained stabilizer pairs -> flips.

        Each data qubit touching ``k > 2`` Z stabilizers contributes the
        ``k - 1`` consecutive pairs of its chain; a qubit on the logical
        support must flip the observable exactly once along its chain, so
        its flip is placed on a pair no other qubit (regular or chained)
        also uses where possible — parallel edges with conflicting
        ``flips_logical`` would otherwise be collapsed arbitrarily by the
        edge lookup.  One shared edge per pair is emitted, never duplicates.
        """
        logical_support = set(np.nonzero(self.code.logical_z)[0].tolist())
        regular_pairs = {
            tuple(sorted(stabs))
            for stabs in self._data_to_z.values()
            if len(stabs) == 2
        }
        chains = {
            qubit: [
                tuple(sorted(pair))
                for pair in zip(stabs, stabs[1:])
            ]
            for qubit, stabs in sorted(self._data_to_z.items())
            if len(stabs) > 2
        }
        usage: dict[tuple[int, int], int] = {}
        for pairs in chains.values():
            for pair in pairs:
                usage[pair] = usage.get(pair, 0) + 1
        chain_pairs: dict[tuple[int, int], bool] = {pair: False for pair in usage}
        for qubit, pairs in chains.items():
            if qubit not in logical_support:
                continue
            # Prefer a pair private to this qubit's chain; fall back to the
            # first pair (best-effort: a shared pair cannot satisfy both
            # qubits' parities at once).
            target = next(
                (p for p in pairs if usage[p] == 1 and p not in regular_pairs),
                pairs[0],
            )
            chain_pairs[target] = True
        # Pairs also present as a regular two-stabilizer edge are dropped:
        # that edge already exists with its own qubit's parity, and emitting
        # a second copy would double the pair's weight in the sparse matrix.
        return {
            pair: flips
            for pair, flips in chain_pairs.items()
            if pair not in regular_pairs
        }

    @cached_property
    def edges(self) -> list[GraphEdge]:
        """All edges of the space-time decoding graph."""
        space_error = max(self.noise.p, 1e-12)
        time_error = max(self.noise.p, 1e-12)
        space_weight = float(-np.log(space_error))
        time_weight = float(-np.log(time_error))
        logical_support = set(np.nonzero(self.code.logical_z)[0].tolist())

        edges: list[GraphEdge] = []
        for layer in range(self.num_layers):
            for qubit, stabs in self._data_to_z.items():
                flips = qubit in logical_support
                if len(stabs) == 2:
                    edges.append(
                        GraphEdge(
                            node_a=self.node_index(stabs[0], layer),
                            node_b=self.node_index(stabs[1], layer),
                            weight=space_weight,
                            flips_logical=flips,
                            kind="space",
                        )
                    )
                elif len(stabs) == 1:
                    edges.append(
                        GraphEdge(
                            node_a=self.node_index(stabs[0], layer),
                            node_b=self.boundary_node,
                            weight=space_weight,
                            flips_logical=flips,
                            kind="boundary",
                        )
                    )
            for (first, second), flips in self._chain_pairs.items():
                edges.append(
                    GraphEdge(
                        node_a=self.node_index(first, layer),
                        node_b=self.node_index(second, layer),
                        weight=space_weight,
                        flips_logical=flips,
                        kind="space",
                    )
                )
        for layer in range(self.num_layers - 1):
            for z_local in range(self.num_z_stabs):
                edges.append(
                    GraphEdge(
                        node_a=self.node_index(z_local, layer),
                        node_b=self.node_index(z_local, layer + 1),
                        weight=time_weight,
                        flips_logical=False,
                        kind="time",
                    )
                )
        return edges

    @cached_property
    def sparse_weights(self) -> coo_matrix:
        """Symmetric sparse weight matrix of the graph."""
        rows, cols, vals = [], [], []
        for edge in self.edges:
            rows.extend([edge.node_a, edge.node_b])
            cols.extend([edge.node_b, edge.node_a])
            vals.extend([edge.weight, edge.weight])
        return coo_matrix(
            (vals, (rows, cols)), shape=(self.num_nodes, self.num_nodes)
        ).tocsr()

    @cached_property
    def _edge_lookup(self) -> dict[tuple[int, int], GraphEdge]:
        lookup: dict[tuple[int, int], GraphEdge] = {}
        for edge in self.edges:
            key = (min(edge.node_a, edge.node_b), max(edge.node_a, edge.node_b))
            existing = lookup.get(key)
            if existing is None or edge.weight < existing.weight:
                lookup[key] = edge
        return lookup

    @cached_property
    def neighbors(self) -> list[list[int]]:
        """Adjacency lists (node -> neighbouring nodes)."""
        adjacency: list[list[int]] = [[] for _ in range(self.num_nodes)]
        for (node_a, node_b) in self._edge_lookup:
            adjacency[node_a].append(node_b)
            adjacency[node_b].append(node_a)
        return adjacency

    def edge_between(self, node_a: int, node_b: int) -> GraphEdge | None:
        """The edge joining two nodes, or ``None``."""
        return self._edge_lookup.get((min(node_a, node_b), max(node_a, node_b)))

    @cached_property
    def flips_dense(self) -> np.ndarray | None:
        """Dense symmetric uint8 matrix of per-edge logical-flip parities.

        ``flips_dense[a, b]`` is 1 exactly when :meth:`edge_between` returns
        an edge with ``flips_logical`` (after parallel-edge collapsing), so a
        matrix lookup is interchangeable with the edge-object path.  Used by
        the compiled :func:`repro.decoders._ckernels.dp_decode` kernel;
        ``None`` past the all-pairs size gate, where the kernel cannot run
        anyway.
        """
        if self.num_nodes > _ALL_PAIRS_MAX_NODES:
            return None
        flips = np.zeros((self.num_nodes, self.num_nodes), dtype=np.uint8)
        for (node_a, node_b), edge in self._edge_lookup.items():
            if edge.flips_logical:
                flips[node_a, node_b] = 1
                flips[node_b, node_a] = 1
        return flips

    @cached_property
    def fingerprint(self) -> str:
        """Content digest of the decoding problem this graph defines.

        Two graphs share a fingerprint exactly when they decode identically:
        same node layout and same edge set (endpoints, weights, logical-flip
        parities).  The syndrome cache (:mod:`repro.decoders.cache`) keys on
        this, so corrections computed against one graph instance are safely
        reused by any structurally identical instance — and never by a graph
        that differs in rounds, noise weighting or code structure.
        """
        digest = hashlib.sha256()
        digest.update(repr((self.num_nodes, self.boundary_node)).encode())
        for edge in self.edges:
            digest.update(
                repr(
                    (edge.node_a, edge.node_b, edge.weight, edge.flips_logical)
                ).encode()
            )
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Detector serialisation and shortest paths
    # ------------------------------------------------------------------ #
    def flagged_nodes(self, detector_history: np.ndarray, final_detectors: np.ndarray) -> np.ndarray:
        """Node ids of fired detectors for one shot.

        ``detector_history`` has shape ``(rounds, num_z_stabs)`` and
        ``final_detectors`` shape ``(num_z_stabs,)``.
        """
        flat = np.concatenate((detector_history.reshape(-1), final_detectors))
        return np.nonzero(flat)[0]

    @cached_property
    def _all_pairs(self) -> tuple[np.ndarray, np.ndarray] | None:
        """All-pairs (distances, predecessors), or ``None`` past the size gate."""
        if self.num_nodes > _ALL_PAIRS_MAX_NODES:
            return None
        return dijkstra(
            self.sparse_weights, directed=False, return_predecessors=True
        )

    def shortest_paths_from(
        self, sources: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Dijkstra distances and predecessors from the given source nodes."""
        all_pairs = self._all_pairs
        if all_pairs is not None:
            distances, predecessors = all_pairs
            return distances[sources], predecessors[sources]
        distances, predecessors = dijkstra(
            self.sparse_weights,
            directed=False,
            indices=sources,
            return_predecessors=True,
        )
        return distances, predecessors

    def path_logical_parity(self, predecessors_row: np.ndarray, target: int) -> int:
        """Parity of logical-flipping edges along one shortest-path tree branch."""
        parity = 0
        node = target
        while True:
            previous = predecessors_row[node]
            if previous < 0:
                break
            edge = self.edge_between(int(previous), int(node))
            if edge is not None and edge.flips_logical:
                parity ^= 1
            node = int(previous)
        return parity
