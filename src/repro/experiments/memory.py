"""Logical memory experiments: simulate, decode, and report LER.

A memory-Z experiment prepares the logical ``|0>`` state, runs ``rounds`` of
syndrome extraction under the leakage noise model with a chosen mitigation
policy, measures all data qubits, decodes the Z-detector record and checks
whether the corrected logical observable flipped.  This is the workload
behind the paper's logical-error-rate figures (4(b), 12 and 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.lrc import LrcGadget, default_lrc
from ..codes.base import StabilizerCode
from ..core.speculator import LeakagePolicy
from ..decoders import DetectorGraph, make_decoder
from ..noise import NoiseParams
from ..sim import LeakageSimulator, RunResult, SimulatorOptions
from .metrics import (
    leakage_equilibrium,
    logical_error_rate,
    per_round_logical_error_rate,
    wilson_interval,
)

__all__ = ["MemoryResult", "MemoryExperiment", "PERF_SUMMARY_KEYS"]

#: Summary keys that report execution-path performance, not physics.  They
#: are inherently path-dependent (a windowed decode sees different batch
#: boundaries than an offline decode of the same record), so bit-identity
#: comparisons across execution paths strip them — the same spirit in which
#: ``decoder.cache_size`` is excluded from the sweep cache key.
PERF_SUMMARY_KEYS = ("decoder_cache_hit_rate", "batch_dedup_ratio")


@dataclass
class MemoryResult:
    """Aggregated outcome of a decoded memory experiment."""

    code_name: str
    policy_name: str
    shots: int
    rounds: int
    failures: int
    dlp_per_round: np.ndarray
    lrcs_per_round: float
    false_positives_per_round: float
    false_negatives_per_round: float
    total_leakage_events: int
    final_dlp: float
    #: Decoder-performance diagnostics (see :data:`PERF_SUMMARY_KEYS`).
    decoder_cache_hit_rate: float = 0.0
    batch_dedup_ratio: float = 0.0

    @property
    def logical_error_rate(self) -> float:
        """Whole-experiment logical error rate."""
        return logical_error_rate(self.failures, self.shots)

    @property
    def logical_error_rate_interval(self) -> tuple[float, float]:
        """95% Wilson confidence interval of the LER."""
        return wilson_interval(self.failures, self.shots)

    @property
    def per_round_logical_error_rate(self) -> float:
        """Equivalent per-round logical error rate."""
        return per_round_logical_error_rate(self.logical_error_rate, self.rounds)

    @property
    def mean_dlp(self) -> float:
        """Average data-leakage population across the run."""
        return float(self.dlp_per_round.mean()) if self.dlp_per_round.size else 0.0

    @property
    def leakage_equilibrium(self) -> float:
        """Steady-state data-leakage population (trailing-rounds average)."""
        return leakage_equilibrium(self.dlp_per_round)

    @property
    def speculation_inaccuracy(self) -> float:
        """FP + FN per round per shot."""
        return self.false_positives_per_round + self.false_negatives_per_round

    def summary(self) -> dict:
        """Flat dictionary used by the benchmark tables."""
        low, high = self.logical_error_rate_interval
        return {
            "code": self.code_name,
            "policy": self.policy_name,
            "shots": self.shots,
            "rounds": self.rounds,
            "ler": self.logical_error_rate,
            "ler_low": low,
            "ler_high": high,
            "ler_per_round": self.per_round_logical_error_rate,
            "mean_dlp": self.mean_dlp,
            "final_dlp": self.final_dlp,
            "leakage_equilibrium": self.leakage_equilibrium,
            "lrcs_per_round": self.lrcs_per_round,
            "fp_per_round": self.false_positives_per_round,
            "fn_per_round": self.false_negatives_per_round,
            "speculation_inaccuracy": self.speculation_inaccuracy,
            "total_leakage_events": self.total_leakage_events,
            "decoder_cache_hit_rate": self.decoder_cache_hit_rate,
            "batch_dedup_ratio": self.batch_dedup_ratio,
        }


@dataclass
class MemoryExperiment:
    """Run a decoded memory experiment for one (code, noise, policy) triple.

    Decoding is offline by default (whole record at once).  Setting
    ``window_rounds`` routes it through the sliding-window path of
    :mod:`repro.realtime` instead: corrections are committed
    ``commit_rounds`` rounds at a time as the record is replayed, and
    ``window_rounds >= rounds`` is bit-identical to the offline decode.
    ``decoder_max_exact_nodes`` and ``decoder_strategy`` tune the matching
    decoder's exact-vs-greedy trade-off (see
    :class:`repro.decoders.MatchingDecoder`).

    ``decode_batch_size`` sets the simulate-and-decode chunk size of
    :meth:`run` (the whole-batch NumPy decode path deduplicates syndromes
    within each chunk); because chunk boundaries determine per-chunk RNG
    seeds it is part of the sweep cache key.  ``decoder_cache_size`` sizes
    the decoder's cross-call syndrome cache (``0`` disables it; ``None``
    keeps the default) — it changes speed only, never results.

    ``fused`` routes each batch through the zero-copy
    :class:`~repro.pipeline.FusedPipeline` (no recorded detector history,
    bit-packed streaming buffers) instead of the record-then-decode
    two-step; results are bit-identical — only the allocation profile
    changes, which is why the flag is digest-exempt in sweeps.
    """

    code: StabilizerCode
    noise: NoiseParams
    policy: LeakagePolicy
    decoder_method: str = "matching"
    gadget: LrcGadget = field(default_factory=default_lrc)
    leakage_sampling: bool = False
    seed: int = 0
    window_rounds: int | None = None
    commit_rounds: int | None = None
    decoder_max_exact_nodes: int | None = None
    decoder_strategy: str | None = None
    decode_batch_size: int | None = None
    decoder_cache_size: int | None = None
    fused: bool = False

    #: Default simulate-and-decode chunk size when neither the experiment nor
    #: the ``run`` call overrides it.
    DEFAULT_BATCH_SIZE = 250

    @classmethod
    def from_config(
        cls,
        config,
        *,
        code: StabilizerCode | None = None,
        policy: LeakagePolicy | None = None,
        noise: NoiseParams | None = None,
    ) -> "MemoryExperiment":
        """Construct from an :class:`~repro.api.config.ExperimentConfig`.

        Components default to registry builds from the config's sections;
        pass ``code`` / ``policy`` / ``noise`` to reuse objects the caller
        already holds (the sweep shard runner does).  This is the single
        construction path the :class:`~repro.api.session.Session` facade,
        the sweep engine and direct callers share.
        """
        from ..api.session import build_experiment

        return build_experiment(config, code=code, policy=policy, noise=noise)

    def run(self, shots: int, rounds: int, batch_size: int | None = None) -> MemoryResult:
        """Simulate ``shots`` shots (in batches) and decode every one of them."""
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        if batch_size is None:
            batch_size = (
                self.decode_batch_size
                if self.decode_batch_size is not None
                else self.DEFAULT_BATCH_SIZE
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        decoder = self._make_decoder(rounds)
        decode_batch = decoder.decode_batch

        failures = 0
        dlp_accumulator = np.zeros(rounds)
        totals = {
            "lrc": 0,
            "fp": 0,
            "fn": 0,
            "leak_events": 0,
            "final_leaked": 0.0,
        }
        remaining = shots
        batch_index = 0
        while remaining > 0:
            batch = min(batch_size, remaining)
            if self.fused:
                fused_run = self._run_batch_fused(
                    batch, rounds, seed_offset=batch_index, provider=decoder
                )
                predictions, result = fused_run.predictions, fused_run.result
            else:
                result = self._run_batch(batch, rounds, seed_offset=batch_index)
                predictions = decode_batch(
                    result.detector_history, result.final_detectors
                )
            failures += int((predictions ^ result.observable_flips).sum())
            dlp_accumulator += result.dlp_per_round * batch
            totals["lrc"] += result.total_data_lrcs
            totals["fp"] += result.total_false_positives
            totals["fn"] += result.total_false_negatives
            totals["leak_events"] += result.total_leakage_events
            totals["final_leaked"] += result.final_dlp * batch
            remaining -= batch
            batch_index += 1

        stats = decoder.decode_stats()
        return MemoryResult(
            code_name=self.code.name,
            policy_name=self.policy.describe(),
            shots=shots,
            rounds=rounds,
            failures=failures,
            dlp_per_round=dlp_accumulator / shots,
            lrcs_per_round=totals["lrc"] / (shots * rounds),
            false_positives_per_round=totals["fp"] / (shots * rounds),
            false_negatives_per_round=totals["fn"] / (shots * rounds),
            total_leakage_events=totals["leak_events"],
            final_dlp=totals["final_leaked"] / shots,
            decoder_cache_hit_rate=stats["cache_hit_rate"],
            batch_dedup_ratio=stats["dedup_ratio"],
        )

    def _make_decoder(self, rounds: int):
        """The batch-decode provider: offline by default, windowed when asked.

        Both return types expose the same protocol: ``decode_batch`` (the
        per-chunk decode callable) and ``decode_stats`` (the cache/dedup
        diagnostics read once after the run).
        """
        if self.window_rounds is not None:
            from ..realtime.window import WindowedDecoder

            return WindowedDecoder(
                code=self.code,
                noise=self.noise,
                rounds=rounds,
                window_rounds=self.window_rounds,
                commit_rounds=self.commit_rounds,
                method=self.decoder_method,
                max_exact_nodes=self.decoder_max_exact_nodes,
                strategy=self.decoder_strategy,
                cache_size=self.decoder_cache_size,
            )
        graph = DetectorGraph(
            code=self.code, rounds=rounds, noise=self.noise, hyperedges="decompose"
        )
        return make_decoder(
            graph,
            self.decoder_method,
            max_exact_nodes=self.decoder_max_exact_nodes,
            strategy=self.decoder_strategy,
            cache_size=self.decoder_cache_size,
        )

    def run_undecoded(self, shots: int, rounds: int) -> RunResult:
        """Run the simulator without decoding (leakage-population studies)."""
        simulator = LeakageSimulator(
            code=self.code,
            noise=self.noise,
            policy=self.policy,
            gadget=self.gadget,
            options=SimulatorOptions(
                leakage_sampling=self.leakage_sampling, record_detectors=False
            ),
            seed=self.seed,
        )
        return simulator.run(shots=shots, rounds=rounds)

    def _run_batch(self, shots: int, rounds: int, seed_offset: int) -> RunResult:
        simulator = LeakageSimulator(
            code=self.code,
            noise=self.noise,
            policy=self.policy,
            gadget=self.gadget,
            options=SimulatorOptions(
                leakage_sampling=self.leakage_sampling, record_detectors=True
            ),
            seed=self.seed + 1009 * seed_offset,
        )
        return simulator.run(shots=shots, rounds=rounds)

    def _run_batch_fused(self, shots: int, rounds: int, seed_offset: int, provider):
        """One batch through the fused pipeline (same seeds, no recording).

        ``record_detectors`` never touches the RNG stream, so the fused
        simulator consumes the identical draw sequence as :meth:`_run_batch`
        — the detector record just stays bit-packed in the ring instead of
        being materialised on the :class:`~repro.sim.RunResult`.
        """
        from ..pipeline import FusedPipeline

        simulator = LeakageSimulator(
            code=self.code,
            noise=self.noise,
            policy=self.policy,
            gadget=self.gadget,
            options=SimulatorOptions(
                leakage_sampling=self.leakage_sampling, record_detectors=False
            ),
            seed=self.seed + 1009 * seed_offset,
        )
        pipeline = FusedPipeline(simulator, shots, rounds)
        if self.window_rounds is not None:
            return pipeline.run_windowed(provider)
        return pipeline.run_offline(provider)
