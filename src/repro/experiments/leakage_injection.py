"""Leakage-injection characterisation (Section 2.3 / Figure 3 of the paper).

The paper calibrates its behavioural leakage model by initialising IBM
transmons in the leaked ``|2>`` state and repeatedly executing CNOTs.  Pulse-
level access to IBM hardware has since been retired (and is unavailable
offline anyway), so this module reproduces the *same experiment on a
simulated three-level system*: a small qutrit Monte-Carlo with the
calibrated behavioural rules — a leaked control randomises its target, the
leaked population relaxes slowly, and leakage can hop to the partner qubit.
The outputs are the two panels of Figure 3: the measured-state distribution
of a single CNOT with a leaked control, and the leakage-population growth
under repeated CNOTs with and without injection.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["QutritCnotModel", "InjectionResult", "single_cnot_distribution", "leakage_growth"]


@dataclass
class QutritCnotModel:
    """Behavioural three-level model of a CNOT between two transmons.

    Parameters mirror what the hardware characterisation extracts: the
    probability that a leaked control randomises its target, the per-gate
    leakage-injection probability, the leakage-transport (mobility)
    probability, and the per-gate relaxation probability of the ``|2>``
    state back into the computational subspace.
    """

    scramble_probability: float = 0.5
    gate_leak_probability: float = 1e-3
    mobility: float = 0.1
    relaxation_probability: float = 0.02
    readout_error: float = 0.02

    def apply(
        self,
        control: np.ndarray,
        target: np.ndarray,
        rng: np.random.Generator,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Apply one noisy CNOT to batched qutrit states (values 0, 1, 2)."""
        control = control.copy()
        target = target.copy()
        control_leaked = control == 2
        target_leaked = target == 2

        # Ideal CNOT action in the computational subspace.
        both_ok = ~control_leaked & ~target_leaked
        flip = both_ok & (control == 1)
        target[flip] ^= 1

        # A leaked control scrambles the target (50% bit flip), and can hand
        # its leakage over with the mobility probability.
        scramble = control_leaked & ~target_leaked
        coin = rng.random(control.shape) < self.scramble_probability
        target[scramble & coin] ^= 1
        hop = scramble & (rng.random(control.shape) < self.mobility)
        target[hop] = 2

        # Gate-induced leakage on either operand.
        control_new_leak = (rng.random(control.shape) < self.gate_leak_probability) & (
            control != 2
        )
        control[control_new_leak] = 2
        target_new_leak = (rng.random(target.shape) < self.gate_leak_probability) & (
            target != 2
        )
        target[target_new_leak] = 2

        # Slow relaxation of the |2> population.
        for state in (control, target):
            relax = (state == 2) & (rng.random(state.shape) < self.relaxation_probability)
            state[relax] = rng.integers(0, 2, size=state.shape)[relax]
        return control, target

    def measure(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Two-level readout: leaked qubits read out randomly, others with readout error."""
        outcome = (state == 1).astype(int)
        leaked = state == 2
        outcome[leaked] = rng.integers(0, 2, size=state.shape)[leaked]
        flip = rng.random(state.shape) < self.readout_error
        outcome[flip] ^= 1
        return outcome


@dataclass
class InjectionResult:
    """Outcome of a leakage-injection experiment."""

    outcome_distribution: dict[str, float]
    leakage_population: np.ndarray
    cnot_counts: np.ndarray


def single_cnot_distribution(
    shots: int = 10_000,
    leaked_control: bool = True,
    model: QutritCnotModel | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Figure 3(a): measured two-bit distribution after one CNOT.

    With a leaked control the target toggles roughly 50/50, i.e. the CNOT
    effectively injects a 50% bit-flip error.
    """
    model = model or QutritCnotModel()
    rng = np.random.default_rng(seed)
    control = np.full(shots, 2 if leaked_control else 1, dtype=int)
    target = np.zeros(shots, dtype=int)
    control, target = model.apply(control, target, rng)
    control_bits = model.measure(control, rng)
    target_bits = model.measure(target, rng)
    distribution: dict[str, float] = {}
    for c_bit in (0, 1):
        for t_bit in (0, 1):
            mask = (control_bits == c_bit) & (target_bits == t_bit)
            distribution[f"{c_bit}{t_bit}"] = float(mask.mean())
    return distribution


def leakage_growth(
    max_cnots: int = 50,
    shots: int = 10_000,
    inject: bool = True,
    model: QutritCnotModel | None = None,
    seed: int = 0,
) -> InjectionResult:
    """Figure 3(c): leakage population of the target under repeated CNOTs."""
    model = model or QutritCnotModel()
    rng = np.random.default_rng(seed)
    control = np.full(shots, 2 if inject else 0, dtype=int)
    target = np.zeros(shots, dtype=int)
    populations = []
    counts = np.arange(1, max_cnots + 1)
    for _ in counts:
        control, target = model.apply(control, target, rng)
        populations.append(float((target == 2).mean()))
    distribution = single_cnot_distribution(
        shots=shots, leaked_control=inject, model=model, seed=seed + 1
    )
    return InjectionResult(
        outcome_distribution=distribution,
        leakage_population=np.array(populations),
        cnot_counts=counts,
    )
