"""Parameter sweeps and policy comparisons used by the benchmark harness.

Every figure and table of the paper is some sweep over (code, distance,
physical error rate, leakage ratio, policy); this module provides those
sweeps as plain functions returning lists of summary dictionaries, plus the
``REPRO_SCALE`` environment knob that switches between quick (CI-sized) and
paper-sized workloads.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..codes import bpc_code, color_code, hypergraph_product_code, surface_code
from ..codes.base import StabilizerCode
from ..core import make_policy
from ..core.graph_model import GraphModelConfig
from ..noise import NoiseParams, paper_noise
from ..sim import LeakageSimulator, SimulatorOptions
from .memory import MemoryExperiment

__all__ = [
    "ScaleConfig",
    "current_scale",
    "make_code",
    "compare_policies",
    "compare_policies_decoded",
    "sweep_distances",
    "sweep_error_rates",
]

_SCALE_PRESETS = {
    # (shot multiplier, round multiplier, decoded-shot multiplier)
    "smoke": (0.1, 0.25, 0.1),
    "quick": (1.0, 1.0, 1.0),
    "paper": (10.0, 4.0, 10.0),
}


@dataclass(frozen=True)
class ScaleConfig:
    """Workload scaling selected through the ``REPRO_SCALE`` environment variable."""

    name: str
    shot_multiplier: float
    round_multiplier: float
    decoded_shot_multiplier: float

    def shots(self, base: int) -> int:
        """Scaled number of (undecoded) shots."""
        return max(10, int(round(base * self.shot_multiplier)))

    def decoded_shots(self, base: int) -> int:
        """Scaled number of decoded shots (decoding dominates wall-clock)."""
        return max(10, int(round(base * self.decoded_shot_multiplier)))

    def rounds(self, base: int) -> int:
        """Scaled number of QEC rounds."""
        return max(5, int(round(base * self.round_multiplier)))


def current_scale() -> ScaleConfig:
    """Read the active scale preset from ``REPRO_SCALE`` (default: ``quick``)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name not in _SCALE_PRESETS:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALE_PRESETS)}, got {name!r}")
    shot_mult, round_mult, decoded_mult = _SCALE_PRESETS[name]
    return ScaleConfig(
        name=name,
        shot_multiplier=shot_mult,
        round_multiplier=round_mult,
        decoded_shot_multiplier=decoded_mult,
    )


def make_code(family: str, distance: int | None = None) -> StabilizerCode:
    """Construct a code by family name (``surface``, ``color``, ``hgp``, ``bpc``)."""
    family = family.lower()
    if family == "surface":
        return surface_code(distance or 7)
    if family == "color":
        return color_code(distance or 7)
    if family == "hgp":
        return hypergraph_product_code()
    if family == "bpc":
        return bpc_code()
    raise ValueError(f"unknown code family {family!r}")


def compare_policies(
    code: StabilizerCode,
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds: int,
    seed: int = 0,
    leakage_sampling: bool = True,
    policy_config: GraphModelConfig | None = None,
) -> list[dict]:
    """Undecoded comparison: leakage population, LRC usage and FP/FN rates."""
    summaries = []
    for policy_name in policy_names:
        policy = make_policy(policy_name, config=policy_config)
        simulator = LeakageSimulator(
            code=code,
            noise=noise,
            policy=policy,
            options=SimulatorOptions(leakage_sampling=leakage_sampling),
            seed=seed,
        )
        result = simulator.run(shots=shots, rounds=rounds)
        summary = result.summary()
        summary["code"] = code.name
        summary["dlp_per_round"] = result.dlp_per_round
        summaries.append(summary)
    return summaries


def compare_policies_decoded(
    code: StabilizerCode,
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds: int,
    seed: int = 0,
    leakage_sampling: bool = False,
    policy_config: GraphModelConfig | None = None,
    decoder_method: str = "matching",
) -> list[dict]:
    """Decoded comparison: logical error rate plus the undecoded metrics."""
    summaries = []
    for policy_name in policy_names:
        policy = make_policy(policy_name, config=policy_config)
        experiment = MemoryExperiment(
            code=code,
            noise=noise,
            policy=policy,
            decoder_method=decoder_method,
            leakage_sampling=leakage_sampling,
            seed=seed,
        )
        result = experiment.run(shots=shots, rounds=rounds)
        summaries.append(result.summary())
    return summaries


def sweep_distances(
    distances: list[int],
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds_per_distance,
    family: str = "surface",
    decoded: bool = True,
    seed: int = 0,
    leakage_sampling: bool = False,
) -> list[dict]:
    """Run a policy comparison for every code distance in ``distances``.

    ``rounds_per_distance`` is either an integer or a callable mapping the
    distance to the number of rounds (the paper uses ``10 d`` for LER studies
    and ``100 d`` for leakage-population studies).
    """
    summaries = []
    for distance in distances:
        code = make_code(family, distance)
        rounds = (
            rounds_per_distance(distance)
            if callable(rounds_per_distance)
            else int(rounds_per_distance)
        )
        runner = compare_policies_decoded if decoded else compare_policies
        for summary in runner(
            code,
            noise,
            policy_names,
            shots=shots,
            rounds=rounds,
            seed=seed,
            leakage_sampling=leakage_sampling,
        ):
            summary["distance"] = distance
            summaries.append(summary)
    return summaries


def sweep_error_rates(
    error_rates: list[float],
    leakage_ratio: float,
    policy_names: list[str],
    shots: int,
    rounds: int,
    distance: int = 7,
    family: str = "surface",
    decoded: bool = False,
    seed: int = 0,
    leakage_sampling: bool = True,
) -> list[dict]:
    """Run a policy comparison for every physical error rate in ``error_rates``."""
    summaries = []
    code = make_code(family, distance)
    for p in error_rates:
        noise = paper_noise(p=p, leakage_ratio=leakage_ratio)
        runner = compare_policies_decoded if decoded else compare_policies
        for summary in runner(
            code,
            noise,
            policy_names,
            shots=shots,
            rounds=rounds,
            seed=seed,
            leakage_sampling=leakage_sampling,
        ):
            summary["p"] = p
            summary["leakage_ratio"] = leakage_ratio
            summaries.append(summary)
    return summaries
