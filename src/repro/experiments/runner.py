"""Parameter sweeps and policy comparisons used by the benchmark harness.

Every figure and table of the paper is some sweep over (code, distance,
physical error rate, leakage ratio, policy).  This module keeps the
historical plain-function API — ``compare_policies``,
``compare_policies_decoded``, ``sweep_distances``, ``sweep_error_rates`` —
but the functions are now thin wrappers over the :mod:`repro.sweeps`
engine: each (point, policy) combination becomes one
:class:`~repro.sweeps.units.WorkUnit` executed by the shared
:func:`~repro.sweeps.executor.default_executor`.  Two environment knobs
change how that engine runs without touching any call site:

* ``REPRO_WORKERS=N`` shards every unit's shot budget across ``N`` worker
  processes (default ``1``: serial, bit-identical to the historical code).
* ``REPRO_CACHE=1`` memoizes completed units under ``.repro_cache/`` so
  identical runs across the 20 benchmark scripts are not recomputed.

The ``REPRO_SCALE`` knob (``smoke`` / ``quick`` / ``paper``) switches
between CI-sized and paper-sized workloads, as before.

Summary-row units
-----------------
Every function here returns a list of flat summary dictionaries — the same
rows the sweep cache serialises to disk — whose keys carry these units:

========================  =====================================================
key                       meaning / units
========================  =====================================================
``policy``                canonical policy display name (e.g. ``gladiator+M``)
``code``                  code name (e.g. ``surface_d7``)
``shots`` / ``rounds``    totals for this row's run (counts)
``mean_dlp``              data-leakage population averaged over rounds and
                          shots; fraction of data qubits in [0, 1]
``final_dlp``             data-leakage population after the last round;
                          fraction of data qubits in [0, 1]
``dlp_per_round``         array of per-round leakage fractions (undecoded
                          rows only), length ``rounds``
``lrcs_per_round``        data-qubit LRC gadgets applied, **per round per
                          shot** (average count, not a fraction)
``fp_per_round``          unnecessary LRCs (false positives), per round per
                          shot
``fn_per_round``          undetected leaked qubits (false negatives), per
                          round per shot
``speculation_inaccuracy``  ``fp_per_round + fn_per_round``
``total_leakage_events``  leakage injections summed over **all shots and
                          rounds** of the run (a total, not a rate)
``ler``                   whole-experiment logical error probability in
                          [0, 1] (decoded rows only)
``ler_low`` / ``ler_high``  95% Wilson interval bounds of ``ler``
``ler_per_round``         per-round logical error probability equivalent to
                          ``ler`` (decoded rows only)
``leakage_equilibrium``   trailing-rounds average of the leakage population;
                          fraction of data qubits (decoded rows only)
``distance`` / ``p`` / ``leakage_ratio``  grid coordinates stamped by the
                          sweep functions that vary them
========================  =====================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..api.registry import CODES
from ..codes.base import StabilizerCode
from ..core.graph_model import GraphModelConfig
from ..noise import NoiseParams, paper_noise
from ..sweeps.executor import default_executor
from ..sweeps.units import WorkUnit

__all__ = [
    "ScaleConfig",
    "current_scale",
    "make_code",
    "compare_policies",
    "compare_policies_decoded",
    "sweep_distances",
    "sweep_error_rates",
]

_SCALE_PRESETS = {
    # (shot multiplier, round multiplier, decoded-shot multiplier)
    "smoke": (0.1, 0.25, 0.1),
    "quick": (1.0, 1.0, 1.0),
    "paper": (10.0, 4.0, 10.0),
}


@dataclass(frozen=True)
class ScaleConfig:
    """Workload scaling selected through the ``REPRO_SCALE`` environment variable."""

    name: str
    shot_multiplier: float
    round_multiplier: float
    decoded_shot_multiplier: float

    def shots(self, base: int) -> int:
        """Scaled number of (undecoded) shots."""
        return max(10, int(round(base * self.shot_multiplier)))

    def decoded_shots(self, base: int) -> int:
        """Scaled number of decoded shots (decoding dominates wall-clock)."""
        return max(10, int(round(base * self.decoded_shot_multiplier)))

    def rounds(self, base: int) -> int:
        """Scaled number of QEC rounds."""
        return max(5, int(round(base * self.round_multiplier)))


def current_scale() -> ScaleConfig:
    """Read the active scale preset from ``REPRO_SCALE`` (default: ``quick``)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name not in _SCALE_PRESETS:
        raise ValueError(f"REPRO_SCALE must be one of {sorted(_SCALE_PRESETS)}, got {name!r}")
    shot_mult, round_mult, decoded_mult = _SCALE_PRESETS[name]
    return ScaleConfig(
        name=name,
        shot_multiplier=shot_mult,
        round_multiplier=round_mult,
        decoded_shot_multiplier=decoded_mult,
    )


def make_code(family: str, distance: int | None = None) -> StabilizerCode:
    """Construct a code by its registered family name.

    A thin lookup over :data:`repro.api.registry.CODES` — the family list,
    per-family default distances, and the unknown-name error (with its
    did-you-mean suggestions) all come from the registry, so they can never
    drift from what is actually registered.  Families without a distance
    knob ignore ``distance``, as the historical factory did.
    """
    entry = CODES.get(family)
    if not entry.metadata.get("accepts_distance", True):
        return entry.obj()
    if distance is None:
        distance = entry.metadata.get("default_distance")
    return entry.obj(distance) if distance is not None else entry.obj()


def _code_unit_fields(code: StabilizerCode) -> dict:
    """(family, distance, code) WorkUnit fields for an explicit code object."""
    return {
        "family": str(code.metadata.get("family", code.name)),
        "distance": code.distance,
        "code": code,
    }


def compare_policies(
    code: StabilizerCode,
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds: int,
    seed: int = 0,
    leakage_sampling: bool = True,
    policy_config: GraphModelConfig | None = None,
) -> list[dict]:
    """Undecoded comparison: leakage population, LRC usage and FP/FN rates.

    Returns one summary row per entry of ``policy_names`` (see the module
    docstring for the units of every key); each row additionally carries the
    full ``dlp_per_round`` array for time-series figures.
    """
    units = [
        WorkUnit(
            noise=noise,
            policy=policy_name,
            shots=shots,
            rounds=rounds,
            decoded=False,
            leakage_sampling=leakage_sampling,
            seed=seed,
            policy_config=policy_config,
            **_code_unit_fields(code),
        )
        for policy_name in policy_names
    ]
    return default_executor().run_units(units)


def compare_policies_decoded(
    code: StabilizerCode,
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds: int,
    seed: int = 0,
    leakage_sampling: bool = False,
    policy_config: GraphModelConfig | None = None,
    decoder_method: str = "matching",
) -> list[dict]:
    """Decoded comparison: logical error rate plus the undecoded metrics.

    Each row reports the whole-experiment ``ler`` (a probability, with its
    95% Wilson interval in ``ler_low``/``ler_high``) and the per-round rates
    documented in the module docstring.
    """
    units = [
        WorkUnit(
            noise=noise,
            policy=policy_name,
            shots=shots,
            rounds=rounds,
            decoded=True,
            leakage_sampling=leakage_sampling,
            decoder_method=decoder_method,
            seed=seed,
            policy_config=policy_config,
            **_code_unit_fields(code),
        )
        for policy_name in policy_names
    ]
    return default_executor().run_units(units)


def sweep_distances(
    distances: list[int],
    noise: NoiseParams,
    policy_names: list[str],
    shots: int,
    rounds_per_distance,
    family: str = "surface",
    decoded: bool = True,
    seed: int = 0,
    leakage_sampling: bool = False,
) -> list[dict]:
    """Run a policy comparison for every code distance in ``distances``.

    ``rounds_per_distance`` is either an integer or a callable mapping the
    distance to the number of rounds (the paper uses ``10 d`` for LER studies
    and ``100 d`` for leakage-population studies).  Every returned row is
    stamped with its ``distance`` grid coordinate.
    """
    units = []
    for distance in distances:
        rounds = (
            rounds_per_distance(distance)
            if callable(rounds_per_distance)
            else int(rounds_per_distance)
        )
        for policy_name in policy_names:
            units.append(
                WorkUnit(
                    family=family,
                    distance=int(distance),
                    noise=noise,
                    policy=policy_name,
                    shots=shots,
                    rounds=rounds,
                    decoded=decoded,
                    leakage_sampling=leakage_sampling,
                    seed=seed,
                    labels=(("distance", int(distance)),),
                )
            )
    return default_executor().run_units(units)


def sweep_error_rates(
    error_rates: list[float],
    leakage_ratio: float,
    policy_names: list[str],
    shots: int,
    rounds: int,
    distance: int = 7,
    family: str = "surface",
    decoded: bool = False,
    seed: int = 0,
    leakage_sampling: bool = True,
) -> list[dict]:
    """Run a policy comparison for every physical error rate in ``error_rates``.

    Every returned row is stamped with its ``p`` and ``leakage_ratio`` grid
    coordinates.
    """
    units = []
    for p in error_rates:
        noise = paper_noise(p=p, leakage_ratio=leakage_ratio)
        for policy_name in policy_names:
            units.append(
                WorkUnit(
                    family=family,
                    distance=int(distance),
                    noise=noise,
                    policy=policy_name,
                    shots=shots,
                    rounds=rounds,
                    decoded=decoded,
                    leakage_sampling=leakage_sampling,
                    seed=seed,
                    labels=(("p", float(p)), ("leakage_ratio", float(leakage_ratio))),
                )
            )
    return default_executor().run_units(units)
