"""Evaluation metrics used throughout Section 7 of the paper.

All metrics operate on plain numbers or NumPy arrays so they can be reused by
the benchmark harness, the test suite and user code alike.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "logical_error_rate",
    "wilson_interval",
    "per_round_logical_error_rate",
    "suppression_factor",
    "average_suppression_factor",
    "leakage_equilibrium",
    "reduction_factor",
    "speculation_inaccuracy",
]


def logical_error_rate(failures: int, shots: int) -> float:
    """Fraction of shots that ended in a logical error."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    return failures / shots


def wilson_interval(failures: int, shots: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score confidence interval for a binomial proportion."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    proportion = failures / shots
    denominator = 1 + z * z / shots
    centre = (proportion + z * z / (2 * shots)) / denominator
    margin = (
        z
        * math.sqrt(proportion * (1 - proportion) / shots + z * z / (4 * shots * shots))
        / denominator
    )
    # Rounding in ``centre - margin`` can land a hair above the observed
    # proportion (e.g. 1.7e-18 for failures=0); the interval must bracket it.
    return min(max(0.0, centre - margin), proportion), max(min(1.0, centre + margin), proportion)


def per_round_logical_error_rate(total_ler: float, rounds: int) -> float:
    """Convert a whole-experiment LER into an equivalent per-round error rate.

    Uses the standard "independent rounds" inversion
    ``1 - (1 - 2 * LER) ** (1 / rounds)) / 2`` which accounts for error
    cancellation over many rounds; falls back to a simple division for tiny
    rates.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    clipped = min(max(total_ler, 0.0), 0.5)
    if clipped >= 0.5:
        return 0.5
    return 0.5 * (1.0 - (1.0 - 2.0 * clipped) ** (1.0 / rounds))


def suppression_factor(ler_small_distance: float, ler_large_distance: float) -> float:
    """Error-suppression factor ``Lambda = eps_d / eps_{d+2}``."""
    if ler_large_distance <= 0:
        return math.inf
    return ler_small_distance / ler_large_distance


def average_suppression_factor(lers_by_distance: dict[int, float]) -> float:
    """Geometric-mean suppression factor over consecutive distances."""
    distances = sorted(lers_by_distance)
    factors = []
    for small, large in zip(distances, distances[1:]):
        factors.append(suppression_factor(lers_by_distance[small], lers_by_distance[large]))
    finite = [f for f in factors if math.isfinite(f) and f > 0]
    if not finite:
        return math.inf
    return float(np.exp(np.mean(np.log(finite))))


def leakage_equilibrium(dlp_per_round: np.ndarray, tail_fraction: float = 0.25) -> float:
    """Steady-state data-leakage population: the mean over the trailing rounds."""
    dlp_per_round = np.asarray(dlp_per_round, dtype=float)
    if dlp_per_round.size == 0:
        return 0.0
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must lie in (0, 1]")
    tail = max(1, int(round(tail_fraction * dlp_per_round.size)))
    return float(dlp_per_round[-tail:].mean())


def reduction_factor(baseline: float, improved: float) -> float:
    """How many times smaller ``improved`` is than ``baseline`` (paper's "x" factors)."""
    if improved <= 0:
        return math.inf
    return baseline / improved


def speculation_inaccuracy(false_positives: float, false_negatives: float) -> float:
    """Combined FP + FN rate (Table 4's speculation-inaccuracy metric)."""
    return false_positives + false_negatives
