"""Experiment harness: memory experiments, sweeps, metrics, characterisation."""

from .leakage_injection import (
    InjectionResult,
    QutritCnotModel,
    leakage_growth,
    single_cnot_distribution,
)
from .memory import MemoryExperiment, MemoryResult
from .metrics import (
    average_suppression_factor,
    leakage_equilibrium,
    logical_error_rate,
    per_round_logical_error_rate,
    reduction_factor,
    speculation_inaccuracy,
    suppression_factor,
    wilson_interval,
)
from .runner import (
    ScaleConfig,
    compare_policies,
    compare_policies_decoded,
    current_scale,
    make_code,
    sweep_distances,
    sweep_error_rates,
)

__all__ = [
    "MemoryExperiment",
    "MemoryResult",
    "ScaleConfig",
    "current_scale",
    "make_code",
    "compare_policies",
    "compare_policies_decoded",
    "sweep_distances",
    "sweep_error_rates",
    "logical_error_rate",
    "wilson_interval",
    "per_round_logical_error_rate",
    "suppression_factor",
    "average_suppression_factor",
    "leakage_equilibrium",
    "reduction_factor",
    "speculation_inaccuracy",
    "QutritCnotModel",
    "InjectionResult",
    "single_cnot_distribution",
    "leakage_growth",
]
