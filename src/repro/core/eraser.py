"""ERASER baseline speculator (Vittal et al., MICRO 2023; Section 3.2).

ERASER infers data-qubit leakage with a fixed heuristic: whenever at least
half of the parity qubits adjacent to a data qubit flip in one round, the
qubit is flagged and an LRC is scheduled.  The ``+M`` variant additionally
uses multi-level readout on the parity qubits: a flagged parity qubit is
reset and its neighbouring data qubits are also treated as suspects.

The heuristic exploits the surface code's regular 4-ancilla neighbourhoods;
the same rule applied to colour-code qubits (3, 2 or 1 adjacent plaquettes)
flags almost every non-trivial pattern, which is the generalisation failure
the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .patterns import eraser_flags_pattern
from .speculator import LookupPolicy

__all__ = ["EraserPolicy", "EraserMPolicy"]


@dataclass
class EraserPolicy(LookupPolicy):
    """Closed-loop ERASER policy (syndrome heuristic only, no MLR)."""

    name: str = "eraser"
    uses_mlr: bool = False
    flip_fraction: float = 0.5

    def flag_table(self, qubit: int) -> np.ndarray:
        width = self.code.pattern_width(qubit)
        table = np.zeros(1 << width, dtype=bool)
        for value in range(1, 1 << width):
            ones = bin(value).count("1")
            table[value] = ones >= self.flip_fraction * width
        return table


@dataclass
class EraserMPolicy(EraserPolicy):
    """ERASER+M: the syndrome heuristic plus multi-level readout triggers."""

    name: str = "eraser"
    uses_mlr: bool = True


def eraser_flag_count(width: int) -> int:
    """Number of ``width``-bit patterns ERASER flags (11/16 for the surface code)."""
    return sum(1 for value in range(1 << width) if eraser_flags_pattern(value, width))
