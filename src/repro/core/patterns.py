"""Syndrome-pattern utilities.

A *speculation pattern* is the bit string of detector flips observed on the
ancillas adjacent to one data qubit during one QEC round, ordered by the time
slot at which the data qubit interacted with each ancilla (bit 0 is the
earliest CNOT).  The paper writes these as strings such as ``"0011"``; this
module provides the conversions between strings, bit tuples and the packed
integers the vectorised simulator uses, plus the 5-bit index-tag encoding of
Section 4.4 that lets a single sequence checker serve 2-, 3- and 4-bit
patterns.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bits_to_int",
    "int_to_bits",
    "pattern_to_string",
    "string_to_int",
    "popcount",
    "eraser_flags_pattern",
    "count_eraser_patterns",
    "tag_pattern",
    "untag_pattern",
    "TAG_PREFIXES",
]

#: Index-tag prefixes used to normalise patterns of different widths to a
#: common 5-bit representation (Section 4.4): 4-bit patterns are prefixed
#: with "0", 3-bit with "10" and 2-bit with "110".
TAG_PREFIXES: dict[int, str] = {4: "0", 3: "10", 2: "110", 1: "1110"}


def bits_to_int(bits) -> int:
    """Pack a bit sequence (bit 0 first) into an integer."""
    value = 0
    for position, bit in enumerate(bits):
        if bit:
            value |= 1 << position
    return value


def int_to_bits(value: int, width: int) -> tuple[int, ...]:
    """Unpack ``value`` into ``width`` bits, bit 0 first."""
    if value < 0 or value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> position) & 1 for position in range(width))


def pattern_to_string(value: int, width: int) -> str:
    """Render a packed pattern the way the paper writes it (bit 0 leftmost)."""
    return "".join(str(bit) for bit in int_to_bits(value, width))


def string_to_int(pattern: str) -> int:
    """Parse a pattern string written with bit 0 leftmost."""
    if any(ch not in "01" for ch in pattern):
        raise ValueError(f"pattern string must be binary, got {pattern!r}")
    return bits_to_int(int(ch) for ch in pattern)


def popcount(value: int | np.ndarray) -> int | np.ndarray:
    """Number of set bits of an integer or integer array."""
    if isinstance(value, np.ndarray):
        result = np.zeros_like(value)
        work = value.copy()
        while np.any(work):
            result += work & 1
            work >>= 1
        return result
    return int(bin(int(value)).count("1"))


def eraser_flags_pattern(value: int, width: int) -> bool:
    """ERASER's heuristic: flag a pattern when at least half of its bits flip."""
    if width <= 0:
        return False
    return 2 * popcount(value) >= width


def count_eraser_patterns(width: int) -> int:
    """Number of ``width``-bit patterns ERASER flags as leakage.

    For 4-bit surface-code patterns this is 11/16 and for 3-bit colour-code
    patterns 4/8, the counts quoted in Sections 4.1 and 5.2 of the paper.
    """
    return sum(1 for value in range(1 << width) if eraser_flags_pattern(value, width))


def tag_pattern(value: int, width: int) -> int:
    """Encode a pattern into the uniform 5-bit tagged representation.

    The tag prefix occupies the most-significant bits (``x4 x3 ...`` in the
    paper's notation) and the pattern itself the least-significant bits.
    """
    if width not in TAG_PREFIXES:
        raise ValueError(f"no index tag defined for width {width}")
    prefix = TAG_PREFIXES[width]
    tagged = value
    for offset, char in enumerate(reversed(prefix)):
        if char == "1":
            tagged |= 1 << (width + offset)
    return tagged


def untag_pattern(tagged: int) -> tuple[int, int]:
    """Decode a 5-bit tagged pattern back into ``(value, width)``."""
    for width, prefix in TAG_PREFIXES.items():
        prefix_bits = tag_pattern(0, width)
        mask = ((1 << (width + len(prefix))) - 1) ^ ((1 << width) - 1)
        if (tagged & mask) == prefix_bits and tagged < (1 << (width + len(prefix))):
            return tagged & ((1 << width) - 1), width
    raise ValueError(f"tagged value {tagged} does not match any known prefix")
