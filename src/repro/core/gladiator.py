"""GLADIATOR: graph-model-driven leakage speculation (Section 4).

Offline, a :class:`~repro.core.graph_model.TransitionModel` is built for each
distinct data-qubit context (pattern width and adjacent stabilizer bases) and
its patterns are labelled leakage-critical or benign by comparing the merged
leakage and non-leakage super-edge weights.  Online, the policy is a pure
table lookup from the observed per-qubit pattern to an LRC decision —
exactly what the hardware sequence checker of Section 4.4 implements in a
handful of LUTs.

``GladiatorPolicy`` is the single-round speculator; ``GladiatorMPolicy`` adds
multi-level readout.  The deferred two-round variants live in
:mod:`repro.core.gladiator_d`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.base import StabilizerCode
from ..noise import NoiseParams
from .calibration import CalibrationData
from .graph_model import GraphModelConfig, labels_for_qubit
from .speculator import LookupPolicy

__all__ = ["GladiatorPolicy", "GladiatorMPolicy"]


@dataclass
class GladiatorPolicy(LookupPolicy):
    """Single-round GLADIATOR speculator.

    Parameters
    ----------
    config:
        Graph-model knobs (labelling threshold, persistence weight, ...).
    calibration:
        Device calibration used to weight the graph edges.  When ``None``
        (default) the calibration is derived from the simulated noise model
        at :meth:`prepare` time, i.e. a perfectly calibrated device;
        passing a drifted :class:`CalibrationData` emulates stale calibration.
    """

    name: str = "gladiator"
    uses_mlr: bool = False
    config: GraphModelConfig = field(default_factory=GraphModelConfig)
    calibration: CalibrationData | None = None

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        if self.calibration is None:
            self.calibration = CalibrationData.from_noise(noise)
        super().prepare(code, noise)

    def flag_table(self, qubit: int) -> np.ndarray:
        return labels_for_qubit(
            self.code,
            qubit,
            calibration=self.calibration,
            config=self.config,
            two_rounds=False,
        )

    def recalibrate(self, calibration: CalibrationData) -> None:
        """Update the edge weights (and hence the tables) with new calibration data."""
        self.calibration = calibration
        if hasattr(self, "_code"):
            super().prepare(self.code, self.noise)


@dataclass
class GladiatorMPolicy(GladiatorPolicy):
    """GLADIATOR+M: graph-model speculation plus multi-level readout triggers."""

    name: str = "gladiator"
    uses_mlr: bool = True
