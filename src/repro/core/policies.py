"""Open-loop and reference leakage-mitigation policies, plus the policy registry.

These are the baselines the paper compares against (Sections 3 and 7):

* ``no-lrc``      — never apply an LRC (shows unmitigated leakage accumulation),
* ``always``      — Always-LRC: every qubit gets an LRC every round,
* ``staggered``   — Staggered Always-LRC (Section 3.5): the data qubits are
  partitioned by a proper colouring of the interaction graph and one colour
  group is reset per round, round-robin,
* ``mlr-only``    — use only multi-level readout on the parity qubits,
* ``ideal``       — an oracle with perfect knowledge of which data qubits are
  leaked (the IDEAL curves in Figures 1(c) and 10).

Closed-loop policies (ERASER and the GLADIATOR family) live in their own
modules; :func:`make_policy` builds any of them by name.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..api.registry import POLICIES
from ..codes.base import StabilizerCode
from ..noise import NoiseParams
from .eraser import EraserMPolicy, EraserPolicy
from .gladiator import GladiatorMPolicy, GladiatorPolicy
from .gladiator_d import GladiatorDMPolicy, GladiatorDPolicy
from .graph_model import GraphModelConfig
from .speculator import LeakagePolicy, PolicyDecision, SpeculationInput

__all__ = [
    "NoLrcPolicy",
    "AlwaysLrcPolicy",
    "StaggeredLrcPolicy",
    "MlrOnlyPolicy",
    "OraclePolicy",
    "make_policy",
    "POLICY_NAMES",
]


@dataclass
class NoLrcPolicy(LeakagePolicy):
    """Never apply leakage reduction; leakage accumulates unchecked."""

    name: str = "no-lrc"

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        shots = ctx.pattern_ints.shape[0]
        return PolicyDecision(
            data_lrc=np.zeros((shots, self.code.num_data), dtype=bool)
        )

    @property
    def emits_ancilla_lrc(self) -> bool:
        return False

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        data_lrc[:] = False
        if ancilla_lrc is not None:  # never emitted, but honour the contract
            ancilla_lrc[:] = False


@dataclass
class AlwaysLrcPolicy(LeakagePolicy):
    """Open-loop Always-LRC: reset every qubit every round."""

    name: str = "always-lrc"
    include_ancillas: bool = True

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        shots = ctx.pattern_ints.shape[0]
        ancilla = (
            np.ones((shots, self.code.num_ancilla), dtype=bool)
            if self.include_ancillas
            else None
        )
        return PolicyDecision(
            data_lrc=np.ones((shots, self.code.num_data), dtype=bool),
            ancilla_lrc=ancilla,
        )

    @property
    def emits_ancilla_lrc(self) -> bool:
        return self.include_ancillas

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        data_lrc[:] = True
        if ancilla_lrc is not None:
            ancilla_lrc[:] = True


@dataclass
class StaggeredLrcPolicy(LeakagePolicy):
    """Staggered Always-LRC: reset one interaction-graph colour group per round."""

    name: str = "staggered"
    include_ancillas: bool = True

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        super().prepare(code, noise)
        coloring = np.asarray(code.data_coloring, dtype=np.int64)
        self._num_groups = int(coloring.max()) + 1 if coloring.size else 1
        self._group_masks = [
            coloring == group for group in range(self._num_groups)
        ]
        ancilla_indices = np.arange(code.num_ancilla)
        self._ancilla_masks = [
            (ancilla_indices % self._num_groups) == group
            for group in range(self._num_groups)
        ]

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        shots = ctx.pattern_ints.shape[0]
        group = ctx.round_index % self._num_groups
        data_lrc = np.broadcast_to(
            self._group_masks[group], (shots, self.code.num_data)
        ).copy()
        ancilla_lrc = None
        if self.include_ancillas:
            ancilla_lrc = np.broadcast_to(
                self._ancilla_masks[group], (shots, self.code.num_ancilla)
            ).copy()
        return PolicyDecision(data_lrc=data_lrc, ancilla_lrc=ancilla_lrc)

    @property
    def emits_ancilla_lrc(self) -> bool:
        return self.include_ancillas

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        group = ctx.round_index % self._num_groups
        np.copyto(data_lrc, self._group_masks[group])
        if ancilla_lrc is not None:
            np.copyto(ancilla_lrc, self._ancilla_masks[group])

    @property
    def num_groups(self) -> int:
        """Number of colour groups in the round-robin schedule."""
        return self._num_groups


@dataclass
class MlrOnlyPolicy(LeakagePolicy):
    """Use only multi-level readout: treat data qubits next to MLR-flagged ancillas."""

    name: str = "mlr-only"
    uses_mlr: bool = True

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        shots = ctx.pattern_ints.shape[0]
        if ctx.mlr_neighbor is None:
            data_lrc = np.zeros((shots, self.code.num_data), dtype=bool)
        else:
            data_lrc = ctx.mlr_neighbor.copy()
        return PolicyDecision(data_lrc=data_lrc)

    @property
    def emits_ancilla_lrc(self) -> bool:
        return False

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        if ctx.mlr_neighbor is None:
            data_lrc[:] = False
        else:
            np.copyto(data_lrc, ctx.mlr_neighbor)
        if ancilla_lrc is not None:  # never emitted, but honour the contract
            ancilla_lrc[:] = False


@dataclass
class OraclePolicy(LeakagePolicy):
    """IDEAL reference: perfect, instantaneous knowledge of leaked data qubits.

    Parity-qubit leakage is handled by multi-level readout, as in the paper's
    IDEAL curves, so the oracle isolates the quality of data-qubit speculation.
    """

    name: str = "ideal"
    is_oracle: bool = True
    uses_mlr: bool = True

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        return PolicyDecision(data_lrc=ctx.data_leaked.copy())

    @property
    def emits_ancilla_lrc(self) -> bool:
        return False

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        np.copyto(data_lrc, ctx.data_leaked)
        if ancilla_lrc is not None:  # never emitted, but honour the contract
            ancilla_lrc[:] = False


# ------------------------------------------------------------------ #
# Policy registry
# ------------------------------------------------------------------ #
# Open-loop and reference policies register here; the ERASER/GLADIATOR
# closed-loop families are registered alongside so the registry is the one
# complete listing.  ``takes_config=True`` marks the graph-model-driven
# policies that accept the ``config=GraphModelConfig(...)`` keyword.
POLICIES.add("no-lrc", NoLrcPolicy,
             description="Never apply an LRC (unmitigated leakage)")
POLICIES.add("always-lrc", AlwaysLrcPolicy, aliases=("always",),
             description="Open-loop Always-LRC: every qubit, every round")
POLICIES.add("staggered", StaggeredLrcPolicy,
             description="Staggered Always-LRC: one colour group per round")
POLICIES.add("mlr-only", MlrOnlyPolicy,
             description="Multi-level readout on parity qubits only")
POLICIES.add("ideal", OraclePolicy,
             description="Oracle with perfect leakage knowledge (IDEAL)")
POLICIES.add("eraser", EraserPolicy,
             description="ERASER syndrome-history heuristic")
POLICIES.add("eraser+m", EraserMPolicy,
             description="ERASER with multi-level readout")
POLICIES.add("gladiator", GladiatorPolicy, takes_config=True,
             description="GLADIATOR graph-model speculation")
POLICIES.add("gladiator+m", GladiatorMPolicy, takes_config=True,
             description="GLADIATOR with multi-level readout")
POLICIES.add("gladiator-d", GladiatorDPolicy, takes_config=True,
             description="GLADIATOR-D (differential speculation)")
POLICIES.add("gladiator-d+m", GladiatorDMPolicy, takes_config=True,
             description="GLADIATOR-D with multi-level readout")


#: Canonical policy names, in registration order — a snapshot of the policy
#: registry taken at import time (so the stock listing is never hardcoded).
#: Components registered *after* import appear in ``POLICIES.names()`` but
#: not here; listings that must include third-party policies (the CLIs, the
#: config validator) read the registry directly.
POLICY_NAMES = tuple(POLICIES.names())


def make_policy(
    name: str,
    config: GraphModelConfig | None = None,
    **kwargs,
) -> LeakagePolicy:
    """Build a policy by its registered name (see :data:`POLICY_NAMES`).

    A thin lookup over :data:`repro.api.registry.POLICIES`: unknown names
    fail with a did-you-mean suggestion plus the full registered list, and
    third-party policies registered with
    :func:`repro.api.register_policy` are constructible here immediately.
    """
    entry = POLICIES.get(name)
    if entry.metadata.get("takes_config", False):
        return entry.obj(config=config or GraphModelConfig(), **kwargs)
    return entry.obj(**kwargs)
