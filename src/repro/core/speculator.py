"""Policy interface shared by all leakage-mitigation strategies.

A policy inspects the per-data-qubit syndrome patterns produced by one QEC
round (plus, optionally, the previous round and the multi-level-readout
flags) and decides which qubits receive a Leakage Reduction Circuit in the
next round.  Open-loop policies ignore the syndrome inputs entirely;
closed-loop policies (ERASER, GLADIATOR, ...) are table lookups from the
pattern to a flag, which is what makes them implementable in a few LUTs of
combinational logic (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.base import StabilizerCode
from ..noise import NoiseParams

__all__ = ["SpeculationInput", "PolicyDecision", "LeakagePolicy", "LookupPolicy"]


@dataclass
class SpeculationInput:
    """Everything a policy may look at when making its per-round decision.

    Attributes
    ----------
    round_index:
        Zero-based index of the QEC round that just completed.
    pattern_ints:
        ``(shots, num_data)`` packed per-data-qubit detector-flip patterns
        for the current round (bit 0 = earliest adjacent CNOT).
    prev_pattern_ints:
        Same, for the previous round (all zeros in round 0); consumed by the
        deferred GLADIATOR-D speculator.
    detectors:
        ``(shots, num_ancilla)`` raw detector flips of the current round.
    mlr_flags:
        ``(shots, num_ancilla)`` multi-level-readout leakage flags, or
        ``None`` when the policy does not use MLR.
    mlr_neighbor:
        ``(shots, num_data)`` OR of the MLR flags of each data qubit's
        adjacent ancillas (``None`` without MLR).
    data_leaked:
        ``(shots, num_data)`` ground-truth leakage state.  Only the IDEAL
        oracle policy may read this; it exists so the paper's "perfect
        speculation" reference curves can be reproduced.
    """

    round_index: int
    pattern_ints: np.ndarray
    prev_pattern_ints: np.ndarray
    detectors: np.ndarray
    mlr_flags: np.ndarray | None
    mlr_neighbor: np.ndarray | None
    data_leaked: np.ndarray


@dataclass
class PolicyDecision:
    """LRC requests produced by a policy for the next round."""

    data_lrc: np.ndarray
    ancilla_lrc: np.ndarray | None = None


@dataclass
class LeakagePolicy:
    """Base class for leakage-mitigation policies.

    Subclasses set the class attributes below and implement :meth:`decide`.
    ``prepare`` is called once per run with the code and noise model so
    policies can build their lookup tables offline, mirroring the paper's
    offline/online split.
    """

    name: str = "base"
    uses_mlr: bool = False
    uses_two_rounds: bool = False
    is_oracle: bool = False

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        """Offline stage: build whatever tables the policy needs."""
        self._code = code
        self._noise = noise

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        """Online stage: map one round's observations to LRC requests."""
        raise NotImplementedError

    # -------------------------------------------------------------------------
    # Buffered fast path (simulator hot loop)
    # -------------------------------------------------------------------------
    @property
    def emits_ancilla_lrc(self) -> bool:
        """Whether :meth:`decide` may request ancilla LRCs.

        The simulator preallocates (or, when this is ``False``, freezes a
        single all-zeros) ancilla-decision buffer based on this trait.  The
        base class answers ``True`` so third-party policies that only
        implement :meth:`decide` keep their ancilla requests; built-in
        policies that never emit them override it to ``False``, which lets
        the simulator skip the per-round ancilla zeros entirely.
        """
        return True

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        """Buffered variant of :meth:`decide`: fill caller-provided arrays.

        ``data_lrc`` (``(shots, num_data)`` bool) and, when the policy
        :attr:`emits_ancilla_lrc`, ``ancilla_lrc`` (``(shots, num_ancilla)``
        bool) are fully overwritten — never OR-accumulated — so a reused
        buffer cannot leak one round's decision into the next.  The arrays in
        ``ctx`` alias the simulator's round workspace and are rewritten every
        round; policies must copy anything they retain.

        The default implementation delegates to :meth:`decide` and copies,
        so existing policies work unchanged; hot policies override this to
        write in place.
        """
        decision = self.decide(ctx)
        np.copyto(data_lrc, np.asarray(decision.data_lrc, dtype=bool))
        if ancilla_lrc is not None:
            if decision.ancilla_lrc is None:
                ancilla_lrc[:] = False
            else:
                np.copyto(ancilla_lrc, np.asarray(decision.ancilla_lrc, dtype=bool))

    # Convenience for subclasses -------------------------------------------------
    @property
    def code(self) -> StabilizerCode:
        """The code this policy was prepared for."""
        return self._code

    @property
    def noise(self) -> NoiseParams:
        """The noise model this policy was prepared for."""
        return self._noise

    def describe(self) -> str:
        """Human-readable policy summary."""
        suffix = "+M" if self.uses_mlr else ""
        return f"{self.name}{suffix}"


@dataclass
class LookupPolicy(LeakagePolicy):
    """Closed-loop policy driven by per-qubit pattern lookup tables.

    Subclasses implement :meth:`flag_table`, returning for each data qubit a
    boolean table indexed by the packed pattern (or, for two-round policies,
    by ``prev_pattern * 2**width + pattern``).  ``prepare`` groups qubits by
    pattern width so the online lookup is a handful of vectorised gathers.
    """

    trigger_on_mlr_neighbor: bool = False
    _groups: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list, repr=False)

    def flag_table(self, qubit: int) -> np.ndarray:
        """Boolean flag table of one data qubit (size ``2**width`` or ``4**width``)."""
        raise NotImplementedError

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        super().prepare(code, noise)
        tables: dict[int, list[tuple[int, np.ndarray]]] = {}
        for qubit in range(code.num_data):
            table = np.asarray(self.flag_table(qubit), dtype=bool)
            tables.setdefault(table.shape[0], []).append((qubit, table))
        self._groups = []
        for _, entries in sorted(tables.items()):
            qubits = np.array([qubit for qubit, _ in entries], dtype=np.int64)
            stacked = np.stack([table for _, table in entries])
            self._groups.append((qubits, stacked))
        # Flat-table view of the same data: one 1-D gather per group via
        # ``flat[key + qubit_offset]`` is markedly cheaper than the 2-D fancy
        # gather on the stacked tables (simulator hot path).  When a group
        # covers every qubit in order (uniform pattern width, the common
        # case), the column gather/scatter disappears entirely.
        self._flat_groups = [
            (
                qubits,
                stacked.reshape(-1),
                (np.arange(len(qubits), dtype=np.int64) * stacked.shape[1])[np.newaxis, :],
                len(qubits) == code.num_data,
            )
            for qubits, stacked in self._groups
        ]

    def _lookup_keys(self, ctx: SpeculationInput) -> np.ndarray:
        """Packed lookup keys per (shot, data qubit)."""
        if not self.uses_two_rounds:
            return ctx.pattern_ints
        dtype = ctx.pattern_ints.dtype
        cache = getattr(self, "_widths_rows", None)
        if cache is None:
            cache = {}
            self._widths_rows = cache
        widths = cache.get(dtype.str)
        if widths is None:
            widths = np.asarray(self.code.pattern_widths, dtype=dtype)[np.newaxis, :]
            cache[dtype.str] = widths
        return ctx.pattern_ints + (ctx.prev_pattern_ints << widths)

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        keys = self._lookup_keys(ctx)
        shots = keys.shape[0]
        data_lrc = np.zeros((shots, self.code.num_data), dtype=bool)
        self._fill_from_tables(keys, ctx, data_lrc)
        return PolicyDecision(data_lrc=data_lrc)

    @property
    def emits_ancilla_lrc(self) -> bool:
        """Lookup policies only ever request data-qubit LRCs."""
        return False

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        """Table lookup straight into the caller's decision buffer."""
        self._fill_from_tables(self._lookup_keys(ctx), ctx, data_lrc)
        if ancilla_lrc is not None:  # never emitted, but honour the contract
            ancilla_lrc[:] = False

    def _fill_from_tables(
        self, keys: np.ndarray, ctx: SpeculationInput, data_lrc: np.ndarray
    ) -> None:
        """Gather the per-qubit flag tables; every column is overwritten."""
        scratch = getattr(self, "_index_scratch", None)
        if scratch is None or scratch.shape != keys.shape or scratch.dtype != keys.dtype:
            scratch = np.empty(keys.shape, dtype=keys.dtype)
            self._index_scratch = scratch
        for qubits, flat, offsets, covers_all in self._flat_groups:
            if covers_all:
                np.add(keys, offsets, out=scratch)
                np.take(flat, scratch, out=data_lrc)
            else:
                data_lrc[:, qubits] = np.take(flat, keys[:, qubits] + offsets)
        if self.uses_mlr and self.trigger_on_mlr_neighbor and ctx.mlr_neighbor is not None:
            data_lrc |= ctx.mlr_neighbor

    def flagged_fraction(self) -> dict[int, float]:
        """Fraction of patterns flagged, per pattern width (diagnostic)."""
        fractions: dict[int, list[float]] = {}
        for qubit in range(self.code.num_data):
            width = self.code.pattern_width(qubit)
            table = np.asarray(self.flag_table(qubit), dtype=bool)
            fractions.setdefault(width, []).append(float(table.mean()))
        return {width: float(np.mean(values)) for width, values in fractions.items()}
