"""Policy interface shared by all leakage-mitigation strategies.

A policy inspects the per-data-qubit syndrome patterns produced by one QEC
round (plus, optionally, the previous round and the multi-level-readout
flags) and decides which qubits receive a Leakage Reduction Circuit in the
next round.  Open-loop policies ignore the syndrome inputs entirely;
closed-loop policies (ERASER, GLADIATOR, ...) are table lookups from the
pattern to a flag, which is what makes them implementable in a few LUTs of
combinational logic (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.base import StabilizerCode
from ..noise import NoiseParams

__all__ = ["SpeculationInput", "PolicyDecision", "LeakagePolicy", "LookupPolicy"]


@dataclass
class SpeculationInput:
    """Everything a policy may look at when making its per-round decision.

    Attributes
    ----------
    round_index:
        Zero-based index of the QEC round that just completed.
    pattern_ints:
        ``(shots, num_data)`` packed per-data-qubit detector-flip patterns
        for the current round (bit 0 = earliest adjacent CNOT).
    prev_pattern_ints:
        Same, for the previous round (all zeros in round 0); consumed by the
        deferred GLADIATOR-D speculator.
    detectors:
        ``(shots, num_ancilla)`` raw detector flips of the current round.
    mlr_flags:
        ``(shots, num_ancilla)`` multi-level-readout leakage flags, or
        ``None`` when the policy does not use MLR.
    mlr_neighbor:
        ``(shots, num_data)`` OR of the MLR flags of each data qubit's
        adjacent ancillas (``None`` without MLR).
    data_leaked:
        ``(shots, num_data)`` ground-truth leakage state.  Only the IDEAL
        oracle policy may read this; it exists so the paper's "perfect
        speculation" reference curves can be reproduced.
    """

    round_index: int
    pattern_ints: np.ndarray
    prev_pattern_ints: np.ndarray
    detectors: np.ndarray
    mlr_flags: np.ndarray | None
    mlr_neighbor: np.ndarray | None
    data_leaked: np.ndarray


@dataclass
class PolicyDecision:
    """LRC requests produced by a policy for the next round."""

    data_lrc: np.ndarray
    ancilla_lrc: np.ndarray | None = None


@dataclass
class LeakagePolicy:
    """Base class for leakage-mitigation policies.

    Subclasses set the class attributes below and implement :meth:`decide`.
    ``prepare`` is called once per run with the code and noise model so
    policies can build their lookup tables offline, mirroring the paper's
    offline/online split.
    """

    name: str = "base"
    uses_mlr: bool = False
    uses_two_rounds: bool = False
    is_oracle: bool = False

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        """Offline stage: build whatever tables the policy needs."""
        self._code = code
        self._noise = noise

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        """Online stage: map one round's observations to LRC requests."""
        raise NotImplementedError

    # Convenience for subclasses -------------------------------------------------
    @property
    def code(self) -> StabilizerCode:
        """The code this policy was prepared for."""
        return self._code

    @property
    def noise(self) -> NoiseParams:
        """The noise model this policy was prepared for."""
        return self._noise

    def describe(self) -> str:
        """Human-readable policy summary."""
        suffix = "+M" if self.uses_mlr else ""
        return f"{self.name}{suffix}"


@dataclass
class LookupPolicy(LeakagePolicy):
    """Closed-loop policy driven by per-qubit pattern lookup tables.

    Subclasses implement :meth:`flag_table`, returning for each data qubit a
    boolean table indexed by the packed pattern (or, for two-round policies,
    by ``prev_pattern * 2**width + pattern``).  ``prepare`` groups qubits by
    pattern width so the online lookup is a handful of vectorised gathers.
    """

    trigger_on_mlr_neighbor: bool = False
    _groups: list[tuple[np.ndarray, np.ndarray]] = field(default_factory=list, repr=False)

    def flag_table(self, qubit: int) -> np.ndarray:
        """Boolean flag table of one data qubit (size ``2**width`` or ``4**width``)."""
        raise NotImplementedError

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        super().prepare(code, noise)
        tables: dict[int, list[tuple[int, np.ndarray]]] = {}
        for qubit in range(code.num_data):
            table = np.asarray(self.flag_table(qubit), dtype=bool)
            tables.setdefault(table.shape[0], []).append((qubit, table))
        self._groups = []
        for _, entries in sorted(tables.items()):
            qubits = np.array([qubit for qubit, _ in entries], dtype=np.int64)
            stacked = np.stack([table for _, table in entries])
            self._groups.append((qubits, stacked))

    def _lookup_keys(self, ctx: SpeculationInput) -> np.ndarray:
        """Packed lookup keys per (shot, data qubit)."""
        if not self.uses_two_rounds:
            return ctx.pattern_ints
        widths = np.asarray(self.code.pattern_widths, dtype=np.int64)
        return ctx.pattern_ints + (ctx.prev_pattern_ints << widths[np.newaxis, :])

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        keys = self._lookup_keys(ctx)
        shots = keys.shape[0]
        data_lrc = np.zeros((shots, self.code.num_data), dtype=bool)
        for qubits, stacked in self._groups:
            local_keys = keys[:, qubits]
            data_lrc[:, qubits] = stacked[np.arange(len(qubits))[np.newaxis, :], local_keys]
        if self.uses_mlr and self.trigger_on_mlr_neighbor and ctx.mlr_neighbor is not None:
            data_lrc |= ctx.mlr_neighbor
        return PolicyDecision(data_lrc=data_lrc)

    def flagged_fraction(self) -> dict[int, float]:
        """Fraction of patterns flagged, per pattern width (diagnostic)."""
        fractions: dict[int, list[float]] = {}
        for qubit in range(self.code.num_data):
            width = self.code.pattern_width(qubit)
            table = np.asarray(self.flag_table(qubit), dtype=bool)
            fractions.setdefault(width, []).append(float(table.mean()))
        return {width: float(np.mean(values)) for width, values in fractions.items()}
