"""GLADIATOR-D: deferred, two-round leakage speculation (Section 5.2).

Where the base speculator classifies each round's pattern in isolation,
GLADIATOR-D waits one extra round and classifies the *pair* of consecutive
patterns.  Persistent leakage keeps randomising the syndrome, whereas a
single Pauli fault produces a partial pattern followed by its deterministic
completion, so the two-round view separates the two far better — especially
for colour codes, whose 1-3 bit single-round patterns carry little
information.  The cost is one round of detection latency and a sequence
checker with twice as many inputs (the paper budgets at most a 4x LUT
increase).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .gladiator import GladiatorPolicy
from .graph_model import labels_for_qubit
from .speculator import SpeculationInput, PolicyDecision

__all__ = ["GladiatorDPolicy", "GladiatorDMPolicy"]


@dataclass
class GladiatorDPolicy(GladiatorPolicy):
    """Two-round (deferred) GLADIATOR speculator."""

    name: str = "gladiator-d"
    uses_mlr: bool = False
    uses_two_rounds: bool = True

    def flag_table(self, qubit: int) -> np.ndarray:
        return labels_for_qubit(
            self.code,
            qubit,
            calibration=self.calibration,
            config=self.config,
            two_rounds=True,
        )

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        decision = super().decide(ctx)
        if ctx.round_index == 0:
            # No previous round yet: the deferred speculator stays silent in
            # the very first round (the paper applies LRCs "every round except
            # the first" in the sliding-window scheme).
            decision.data_lrc &= False
            if ctx.mlr_neighbor is not None and self.uses_mlr and self.trigger_on_mlr_neighbor:
                decision.data_lrc |= ctx.mlr_neighbor
        return decision

    def decide_into(
        self,
        ctx: SpeculationInput,
        data_lrc: np.ndarray,
        ancilla_lrc: np.ndarray | None = None,
    ) -> None:
        super().decide_into(ctx, data_lrc, ancilla_lrc)
        if ctx.round_index == 0:
            # Mirror :meth:`decide`: silent in the very first round, except
            # for MLR-neighbour triggers when enabled.
            data_lrc[:] = False
            if ctx.mlr_neighbor is not None and self.uses_mlr and self.trigger_on_mlr_neighbor:
                data_lrc |= ctx.mlr_neighbor


@dataclass
class GladiatorDMPolicy(GladiatorDPolicy):
    """GLADIATOR-D+M: deferred speculation plus multi-level readout triggers."""

    name: str = "gladiator-d"
    uses_mlr: bool = True
