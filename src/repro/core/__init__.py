"""GLADIATOR's core: speculation policies, the graph model, and supporting tools."""

from .boolean_minimize import (
    Implicant,
    count_literals,
    evaluate,
    expression_to_string,
    quine_mccluskey,
)
from .calibration import CalibrationData
from .eraser import EraserMPolicy, EraserPolicy
from .gladiator import GladiatorMPolicy, GladiatorPolicy
from .gladiator_d import GladiatorDMPolicy, GladiatorDPolicy
from .graph_model import (
    GraphModelConfig,
    GroupInfo,
    QubitContext,
    TransitionModel,
    build_transition_graph,
    labels_for_qubit,
    qubit_context,
)
from .mobility import (
    MOBILITY_THRESHOLD,
    MobilityEstimate,
    MobilityEstimator,
    MobilityRecordingPolicy,
    classify_mobility,
)
from .patterns import (
    bits_to_int,
    count_eraser_patterns,
    eraser_flags_pattern,
    int_to_bits,
    pattern_to_string,
    popcount,
    string_to_int,
    tag_pattern,
    untag_pattern,
)
from .policies import (
    POLICY_NAMES,
    AlwaysLrcPolicy,
    MlrOnlyPolicy,
    NoLrcPolicy,
    OraclePolicy,
    StaggeredLrcPolicy,
    make_policy,
)
from .speculator import LeakagePolicy, LookupPolicy, PolicyDecision, SpeculationInput

__all__ = [
    # speculation framework
    "LeakagePolicy",
    "LookupPolicy",
    "PolicyDecision",
    "SpeculationInput",
    "make_policy",
    "POLICY_NAMES",
    # policies
    "EraserPolicy",
    "EraserMPolicy",
    "GladiatorPolicy",
    "GladiatorMPolicy",
    "GladiatorDPolicy",
    "GladiatorDMPolicy",
    "NoLrcPolicy",
    "AlwaysLrcPolicy",
    "StaggeredLrcPolicy",
    "MlrOnlyPolicy",
    "OraclePolicy",
    # graph model
    "GraphModelConfig",
    "TransitionModel",
    "QubitContext",
    "GroupInfo",
    "qubit_context",
    "labels_for_qubit",
    "build_transition_graph",
    "CalibrationData",
    # patterns & boolean minimisation
    "bits_to_int",
    "int_to_bits",
    "pattern_to_string",
    "string_to_int",
    "popcount",
    "eraser_flags_pattern",
    "count_eraser_patterns",
    "tag_pattern",
    "untag_pattern",
    "Implicant",
    "quine_mccluskey",
    "expression_to_string",
    "count_literals",
    "evaluate",
    # mobility
    "MobilityEstimator",
    "MobilityEstimate",
    "MobilityRecordingPolicy",
    "classify_mobility",
    "MOBILITY_THRESHOLD",
]
