"""Leakage-mobility estimation and regime classification (Section 7.6).

On real hardware both the leakage rate and the *mobility* (how readily
leakage hops between qubits during two-qubit gates) vary.  Mobility decides
which mitigation style wins: low-mobility devices are well served by simple
open-loop schedules (staggered resets, walking codes), high-mobility devices
need feedback-driven policies such as GLADIATOR.

The estimator combines GLADIATOR's speculative data-qubit flags with the
multi-level-readout flags on the adjacent ancillas: the conditional frequency
``P(adjacent ancilla MLR-flagged | data qubit flagged)`` tracks how often
leakage hops to a neighbour, and a 5% threshold (following the paper, which
takes it from the walking-code literature) separates the two regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..codes.base import StabilizerCode
from ..noise import NoiseParams
from .speculator import LeakagePolicy, PolicyDecision, SpeculationInput

__all__ = [
    "MobilityRecordingPolicy",
    "MobilityEstimate",
    "MobilityEstimator",
    "classify_mobility",
]

#: Conditional-probability threshold separating low- from high-mobility devices.
MOBILITY_THRESHOLD = 0.05


@dataclass
class MobilityRecordingPolicy(LeakagePolicy):
    """Wrap another policy and record the statistics needed to estimate mobility."""

    inner: LeakagePolicy = None  # type: ignore[assignment]
    name: str = "mobility-recorder"

    def __post_init__(self) -> None:
        if self.inner is None:
            raise ValueError("MobilityRecordingPolicy requires an inner policy")
        self.uses_mlr = True  # MLR flags are required for the estimate
        self.uses_two_rounds = self.inner.uses_two_rounds
        self.flagged_count = 0
        self.co_flagged_count = 0
        self.rounds_observed = 0

    def prepare(self, code: StabilizerCode, noise: NoiseParams) -> None:
        super().prepare(code, noise)
        self.inner.prepare(code, noise)

    def decide(self, ctx: SpeculationInput) -> PolicyDecision:
        decision = self.inner.decide(ctx)
        if ctx.mlr_neighbor is not None:
            flagged = decision.data_lrc
            self.flagged_count += int(flagged.sum())
            self.co_flagged_count += int((flagged & ctx.mlr_neighbor).sum())
        self.rounds_observed += 1
        return decision

    @property
    def conditional_probability(self) -> float:
        """``P(adjacent ancilla MLR-flagged | data qubit flagged)`` so far."""
        if self.flagged_count == 0:
            return 0.0
        return self.co_flagged_count / self.flagged_count


@dataclass(frozen=True)
class MobilityEstimate:
    """Result of one mobility-estimation run."""

    conditional_probability: float
    regime: str
    flagged_events: int
    rounds: int

    @property
    def is_high_mobility(self) -> bool:
        """Whether the device is classified as high mobility."""
        return self.regime == "high"


def classify_mobility(
    conditional_probability: float, threshold: float = MOBILITY_THRESHOLD
) -> str:
    """Classify a conditional co-flagging probability into ``"low"`` or ``"high"``."""
    return "high" if conditional_probability >= threshold else "low"


@dataclass
class MobilityEstimator:
    """Estimate the leakage-mobility regime of a (simulated) device.

    The estimator runs the leakage simulator with a recording wrapper around a
    GLADIATOR+M policy and classifies the measured conditional probability.
    The simulator import happens lazily to avoid a circular dependency.
    """

    code: StabilizerCode
    noise: NoiseParams
    policy_name: str = "gladiator+m"
    threshold: float = MOBILITY_THRESHOLD
    seed: int = 0
    extra_policy_kwargs: dict = field(default_factory=dict)

    def estimate(self, shots: int = 200, rounds: int = 50) -> MobilityEstimate:
        """Run the estimation experiment and classify the mobility regime."""
        from ..sim import LeakageSimulator, SimulatorOptions
        from .policies import make_policy

        inner = make_policy(self.policy_name, **self.extra_policy_kwargs)
        recorder = MobilityRecordingPolicy(inner=inner)
        simulator = LeakageSimulator(
            code=self.code,
            noise=self.noise,
            policy=recorder,
            options=SimulatorOptions(leakage_sampling=True),
            seed=self.seed,
        )
        simulator.run(shots=shots, rounds=rounds)
        probability = recorder.conditional_probability
        return MobilityEstimate(
            conditional_probability=probability,
            regime=classify_mobility(probability, self.threshold),
            flagged_events=recorder.flagged_count,
            rounds=rounds,
        )
