"""GLADIATOR's code-aware error-propagation graph model (Section 4.2).

For every data qubit the model enumerates the error mechanisms that can act
during one (or two) syndrome-extraction rounds and the detector-flip pattern
each mechanism produces on the qubit's adjacent ancillas:

* **non-leakage** mechanisms (data Pauli errors injected before any CNOT of
  the qubit's schedule, isolated measurement/reset/ancilla-gate flips, and
  optionally pairs of those) yield *deterministic* patterns,
* **leakage** mechanisms (leakage injected before any CNOT, or leakage that
  persists from earlier rounds) randomise every subsequent CNOT and therefore
  spread their probability uniformly over all reachable patterns.

Summing the probabilities of the mechanisms that reach a pattern gives the
leakage super-edge weight ``W_L`` and non-leakage super-edge weight ``W_NL``
of that pattern's node in the merged transition graph; a pattern is labelled
*leakage-critical* when ``W_L > threshold * W_NL``.  The resulting lookup
table is what the online sequence checker matches against.

The same machinery, applied to a two-round window, yields the deferred
GLADIATOR-D tables (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import networkx as nx
import numpy as np

from ..codes.base import StabilizerCode
from ..noise import NoiseParams
from .calibration import CalibrationData

__all__ = [
    "GraphModelConfig",
    "QubitContext",
    "GroupInfo",
    "qubit_context",
    "TransitionModel",
    "build_transition_graph",
]

_PAULIS = ("X", "Y", "Z")


@dataclass(frozen=True)
class GraphModelConfig:
    """Tunable knobs of the graph model.

    Attributes
    ----------
    threshold:
        A pattern is flagged when ``W_L > threshold * W_NL``.  The default is
        below 1 because false negatives and false positives are not
        symmetric: a missed leakage keeps corrupting syndromes (and can
        spread) for several further rounds, whereas an unnecessary LRC costs
        a single noisy gadget.  The threshold is the FP-to-FN cost ratio;
        lowering it makes speculation more aggressive.
    persistence_rounds:
        Expected number of rounds a leaked data qubit survives before an LRC
        removes it; together with the per-round number of leakage
        opportunities it weights the "already leaked" mechanism.
    gate_error_factor:
        Fraction of a CNOT's depolarising error budget attributed to the data
        operand (produces mid-round data errors).
    isolated_flip_factor:
        Multiple of the physical error rate assigned to mechanisms that flip
        exactly one syndrome bit (measurement + reset + ancilla-side gate
        error).
    include_second_order:
        Whether to include pairs of isolated bit flips as second-order
        non-leakage mechanisms.
    include_prior_round_completion:
        Whether to include detector "completions" of errors that occurred in
        the previous round (they produce the complementary prefix pattern).
    include_neighbor_leakage:
        Whether to model leakage on *neighbouring* data qubits as a benign
        (from this qubit's point of view) cause of partial pattern
        randomisation.  Neighbouring leakage randomises only the ancillas the
        two qubits share, and scheduling an LRC on this qubit would not fix
        it; accounting for it is what keeps GLADIATOR from over-triggering on
        dense qLDPC codes where every check is shared by many data qubits.
    """

    threshold: float = 0.2
    threshold_two_round: float = 0.5
    persistence_rounds: float = 2.0
    gate_error_factor: float = 0.5
    isolated_flip_factor: float = 2.5
    include_second_order: bool = True
    include_prior_round_completion: bool = True
    include_neighbor_leakage: bool = True

    def __post_init__(self) -> None:
        if self.threshold <= 0 or self.threshold_two_round <= 0:
            raise ValueError("thresholds must be positive")
        if self.persistence_rounds < 0:
            raise ValueError("persistence_rounds must be non-negative")


@dataclass(frozen=True)
class GroupInfo:
    """One bit of a data qubit's speculation pattern.

    ``bases`` are the bases of the stabilizers whose detector flips are OR-ed
    into this bit, and ``weights`` their support sizes; a heavier stabilizer's
    ancilla is touched by more CNOTs per round and therefore flips more often
    for reasons unrelated to this data qubit.
    """

    position: int
    bases: tuple[str, ...]
    weights: tuple[int, ...] = ()

    @property
    def stabilizer_weights(self) -> tuple[int, ...]:
        """Support sizes of the stabilizers in this group (defaults to weight 4)."""
        if self.weights:
            return self.weights
        return tuple(4 for _ in self.bases)


@dataclass(frozen=True)
class QubitContext:
    """Everything the graph model needs to know about one data qubit.

    ``neighbor_overlaps`` lists, for every neighbouring data qubit that shares
    at least one ancilla with this one, the bit mask of this qubit's pattern
    positions that the shared ancillas feed.  Leakage on that neighbour can
    randomise exactly those bits and nothing else.
    """

    width: int
    groups: tuple[GroupInfo, ...]
    neighbor_overlaps: tuple[int, ...] = ()

    @property
    def signature(self) -> tuple:
        """Hashable key identifying equivalent qubits (used to share tables)."""
        return (
            tuple((g.position, g.bases, g.stabilizer_weights) for g in self.groups),
            tuple(sorted(self.neighbor_overlaps)),
        )


def qubit_context(code: StabilizerCode, qubit: int) -> QubitContext:
    """Extract the speculation context of ``qubit`` from ``code``."""
    groups = []
    stab_to_position: dict[int, int] = {}
    for position, group in enumerate(code.speculation_groups[qubit]):
        bases = tuple(code.stabilizers[s].basis for s in group.stabilizers)
        weights = tuple(code.stabilizers[s].weight for s in group.stabilizers)
        groups.append(GroupInfo(position=position, bases=bases, weights=weights))
        for stab in group.stabilizers:
            stab_to_position[stab] = position
    # Which of this qubit's pattern bits each neighbouring data qubit can touch.
    overlap_by_neighbor: dict[int, int] = {}
    for stab_index, position in stab_to_position.items():
        for other in code.stabilizers[stab_index].data_support:
            if other == qubit:
                continue
            overlap_by_neighbor[other] = overlap_by_neighbor.get(other, 0) | (1 << position)
    return QubitContext(
        width=len(groups),
        groups=tuple(groups),
        neighbor_overlaps=tuple(sorted(overlap_by_neighbor.values())),
    )


@dataclass(frozen=True)
class Mechanism:
    """One error mechanism and its (conditional) pattern distribution."""

    name: str
    probability: float
    is_leakage: bool
    outcomes: tuple[tuple[int, float], ...]  # (pattern, conditional probability)


@dataclass
class TransitionModel:
    """Per-qubit syndrome-transition model and pattern labeller."""

    context: QubitContext
    calibration: CalibrationData
    config: GraphModelConfig = field(default_factory=GraphModelConfig)

    # ------------------------------------------------------------------ #
    # Pattern algebra
    # ------------------------------------------------------------------ #
    def _pauli_flip_pattern(self, pauli: str, start_position: int) -> int:
        """Pattern produced by a data Pauli error injected before ``start_position``."""
        pattern = 0
        for group in self.context.groups:
            if group.position < start_position:
                continue
            detects = ("Z" in group.bases and pauli in ("X", "Y")) or (
                "X" in group.bases and pauli in ("Z", "Y")
            )
            if detects:
                pattern |= 1 << group.position
        return pattern

    def _suffix_mask(self, start_position: int) -> int:
        """Bit mask of the groups at or after ``start_position``."""
        mask = 0
        for group in self.context.groups:
            if group.position >= start_position:
                mask |= 1 << group.position
        return mask

    @staticmethod
    def _uniform_outcomes(mask: int) -> tuple[tuple[int, float], ...]:
        """Uniform distribution over all sub-patterns of ``mask``."""
        positions = [i for i in range(mask.bit_length()) if mask & (1 << i)]
        count = 1 << len(positions)
        outcomes = []
        for value in range(count):
            pattern = 0
            for bit_index, position in enumerate(positions):
                if value & (1 << bit_index):
                    pattern |= 1 << position
            outcomes.append((pattern, 1.0 / count))
        return tuple(outcomes)

    # ------------------------------------------------------------------ #
    # Mechanism enumeration: single round
    # ------------------------------------------------------------------ #
    def single_round_mechanisms(self) -> list[Mechanism]:
        """All modelled error mechanisms of one QEC round (base pattern 0)."""
        cal, cfg, width = self.calibration, self.config, self.context.width
        mechanisms: list[Mechanism] = []

        # Data Pauli errors injected before each CNOT position.
        for position in range(width):
            scale = 1.0 if position == 0 else cfg.gate_error_factor
            base_probability = cal.data_error if position == 0 else cal.gate_error
            for pauli in _PAULIS:
                pattern = self._pauli_flip_pattern(pauli, position)
                if pattern == 0:
                    continue
                mechanisms.append(
                    Mechanism(
                        name=f"data_{pauli}_t{position}",
                        probability=base_probability * scale / 3.0,
                        is_leakage=False,
                        outcomes=((pattern, 1.0),),
                    )
                )

        # Completion of a data error that occurred mid-way through the
        # previous round (its detector signature this round is the prefix).
        if cfg.include_prior_round_completion:
            for position in range(1, width):
                for pauli in _PAULIS:
                    full = self._pauli_flip_pattern(pauli, 0)
                    suffix = self._pauli_flip_pattern(pauli, position)
                    pattern = full ^ suffix
                    if pattern == 0:
                        continue
                    mechanisms.append(
                        Mechanism(
                            name=f"prior_{pauli}_t{position}",
                            probability=cal.gate_error * cfg.gate_error_factor / 3.0,
                            is_leakage=False,
                            outcomes=((pattern, 1.0),),
                        )
                    )

        # Isolated single-bit flips (measurement, reset, ancilla-side gate error).
        isolated = self._isolated_bit_probabilities()
        for position, probability in isolated.items():
            mechanisms.append(
                Mechanism(
                    name=f"isolated_bit{position}",
                    probability=probability,
                    is_leakage=False,
                    outcomes=((1 << position, 1.0),),
                )
            )

        # Second-order: XOR combinations of any two first-order non-leakage
        # mechanisms (two independent faults in the same round).
        if cfg.include_second_order:
            mechanisms.extend(self._second_order_pairs(mechanisms))

        # Leakage injected before each CNOT position: subsequent CNOTs
        # malfunction and produce uniformly random flips.
        for position in range(width):
            mask = self._suffix_mask(position)
            mechanisms.append(
                Mechanism(
                    name=f"leak_t{position}",
                    probability=cal.leakage_rate,
                    is_leakage=True,
                    outcomes=self._leakage_outcomes(mask),
                )
            )

        # Leakage persisting from earlier rounds: the whole pattern is random.
        # The chance of being leaked "now" is the per-round injection rate
        # (one environment plus one opportunity per scheduled CNOT) times the
        # expected number of rounds a leaked qubit survives undetected.
        if cfg.persistence_rounds > 0:
            mechanisms.append(
                Mechanism(
                    name="leak_persistent",
                    probability=cal.leakage_rate
                    * (width + 1)
                    * cfg.persistence_rounds,
                    is_leakage=True,
                    outcomes=self._leakage_outcomes(self._suffix_mask(0)),
                )
            )

        # Leakage on a *neighbouring* data qubit randomises only the shared
        # ancillas.  An LRC on this qubit would not help, so the mechanism
        # counts as non-leakage for labelling purposes.
        if cfg.include_neighbor_leakage:
            neighbor_leaked = self._neighbor_leak_probability()
            for index, overlap in enumerate(self.context.neighbor_overlaps):
                if overlap == 0:
                    continue
                mechanisms.append(
                    Mechanism(
                        name=f"neighbor_leak_{index}",
                        probability=neighbor_leaked,
                        is_leakage=False,
                        outcomes=self._leakage_outcomes(overlap),
                    )
                )
        return mechanisms

    def _neighbor_leak_probability(self) -> float:
        """Estimated probability that one particular neighbouring data qubit is leaked."""
        width = self.context.width
        return (
            self.calibration.leakage_rate
            * (width + 1)
            * max(1.0, self.config.persistence_rounds)
        )

    @staticmethod
    def _second_order_pairs(first_order: list[Mechanism]) -> list[Mechanism]:
        """XOR combinations of two deterministic first-order non-leakage mechanisms."""
        deterministic = [
            (mechanism.probability, mechanism.outcomes[0][0])
            for mechanism in first_order
            if not mechanism.is_leakage and len(mechanism.outcomes) == 1
        ]
        pairs: dict[int, float] = {}
        for index, (prob_a, pattern_a) in enumerate(deterministic):
            for prob_b, pattern_b in deterministic[index + 1 :]:
                combined = pattern_a ^ pattern_b
                if combined == 0:
                    continue
                pairs[combined] = pairs.get(combined, 0.0) + prob_a * prob_b
        return [
            Mechanism(
                name="second_order",
                probability=probability,
                is_leakage=False,
                outcomes=((pattern, 1.0),),
            )
            for pattern, probability in pairs.items()
        ]

    def _isolated_bit_probabilities(self) -> dict[int, float]:
        """Per-bit probability of a flip caused by measurement/reset/ancilla errors.

        Each stabilizer's ancilla can be flipped by its measurement, its
        reset, and by the ancilla-side component of *every* CNOT in its
        support, so the rate scales with the stabilizer weight.  With uniform
        calibration rates and weight-4 checks this is ``isolated_flip_factor
        * p`` per stabilizer (4p by default); heavier qLDPC checks flip
        proportionally more often, which is what keeps the model from
        mistaking their background flicker for leakage.
        """
        cal, cfg = self.calibration, self.config
        scale = cfg.isolated_flip_factor / 2.5
        probabilities: dict[int, float] = {}
        for group in self.context.groups:
            total = 0.0
            for weight in group.stabilizer_weights:
                total += (
                    cal.measurement_error
                    + cal.reset_error
                    + 0.5 * weight * cal.gate_error
                )
            probabilities[group.position] = total * scale
        return probabilities

    def _leakage_outcomes(self, mask: int) -> tuple[tuple[int, float], ...]:
        """Pattern distribution produced by leakage randomising the masked bits.

        A leaked qubit randomises each CNOT partner independently (50% flip),
        so a pattern bit that ORs ``n`` ancillas flips with probability
        ``1 - 0.5**n``; for single-ancilla groups this reduces to the uniform
        distribution, for the colour code's plaquette pairs it is biased
        towards heavier patterns.
        """
        positions = [i for i in range(mask.bit_length()) if mask & (1 << i)]
        flip_probabilities = []
        group_by_position = {g.position: g for g in self.context.groups}
        for position in positions:
            group = group_by_position.get(position)
            ancillas = len(group.bases) if group is not None else 1
            flip_probabilities.append(1.0 - 0.5**ancillas)
        outcomes = []
        for value in range(1 << len(positions)):
            pattern = 0
            probability = 1.0
            for bit_index, position in enumerate(positions):
                if value & (1 << bit_index):
                    pattern |= 1 << position
                    probability *= flip_probabilities[bit_index]
                else:
                    probability *= 1.0 - flip_probabilities[bit_index]
            outcomes.append((pattern, probability))
        return tuple(outcomes)

    # ------------------------------------------------------------------ #
    # Mechanism enumeration: two-round window (GLADIATOR-D)
    # ------------------------------------------------------------------ #
    def two_round_mechanisms(self) -> list[Mechanism]:
        """Error mechanisms over a two-round window.

        Outcomes are packed as ``current | (previous << width)`` to match the
        lookup key produced online by :class:`~repro.core.speculator.LookupPolicy`.
        """
        cal, cfg, width = self.calibration, self.config, self.context.width
        mechanisms: list[Mechanism] = []

        def pack(previous: int, current: int) -> int:
            return current | (previous << width)

        # Data Pauli errors in the first (previous) round: partial flips in
        # round 1, complementary flips in round 2.
        for position in range(width):
            scale = 1.0 if position == 0 else cfg.gate_error_factor
            base_probability = cal.data_error if position == 0 else cal.gate_error
            for pauli in _PAULIS:
                suffix = self._pauli_flip_pattern(pauli, position)
                full = self._pauli_flip_pattern(pauli, 0)
                if suffix == 0 and full == 0:
                    continue
                mechanisms.append(
                    Mechanism(
                        name=f"data_{pauli}_r1_t{position}",
                        probability=base_probability * scale / 3.0,
                        is_leakage=False,
                        outcomes=((pack(suffix, full ^ suffix), 1.0),),
                    )
                )
                # Same error occurring in the second (current) round.
                mechanisms.append(
                    Mechanism(
                        name=f"data_{pauli}_r2_t{position}",
                        probability=base_probability * scale / 3.0,
                        is_leakage=False,
                        outcomes=((pack(0, suffix), 1.0),),
                    )
                )
                # Error from before the window completing in round 1.
                if cfg.include_prior_round_completion and (full ^ suffix) != 0:
                    mechanisms.append(
                        Mechanism(
                            name=f"data_{pauli}_r0_t{position}",
                            probability=base_probability * scale / 3.0,
                            is_leakage=False,
                            outcomes=((pack(full ^ suffix, 0), 1.0),),
                        )
                    )

        # Isolated bit flips: a measurement error in round r fires the
        # detector in rounds r and r+1.
        isolated = self._isolated_bit_probabilities()
        for position, probability in isolated.items():
            bit = 1 << position
            mechanisms.append(
                Mechanism(
                    name=f"meas_bit{position}_r1",
                    probability=probability,
                    is_leakage=False,
                    outcomes=((pack(bit, bit), 1.0),),
                )
            )
            mechanisms.append(
                Mechanism(
                    name=f"meas_bit{position}_r2",
                    probability=probability,
                    is_leakage=False,
                    outcomes=((pack(0, bit), 1.0),),
                )
            )
            mechanisms.append(
                Mechanism(
                    name=f"meas_bit{position}_r0",
                    probability=probability,
                    is_leakage=False,
                    outcomes=((pack(bit, 0), 1.0),),
                )
            )

        if cfg.include_second_order:
            mechanisms.extend(self._second_order_pairs(mechanisms))

        # Leakage: once leaked, every later CNOT in the window is randomised.
        full_mask = self._suffix_mask(0)
        for position in range(width):
            suffix_mask = self._suffix_mask(position)
            outcomes = []
            for r1_pattern, p1 in self._leakage_outcomes(suffix_mask):
                for r2_pattern, p2 in self._leakage_outcomes(full_mask):
                    outcomes.append((pack(r1_pattern, r2_pattern), p1 * p2))
            mechanisms.append(
                Mechanism(
                    name=f"leak_r1_t{position}",
                    probability=cal.leakage_rate,
                    is_leakage=True,
                    outcomes=tuple(outcomes),
                )
            )
            mechanisms.append(
                Mechanism(
                    name=f"leak_r2_t{position}",
                    probability=cal.leakage_rate,
                    is_leakage=True,
                    outcomes=tuple(
                        (pack(0, pattern), weight)
                        for pattern, weight in self._leakage_outcomes(suffix_mask)
                    ),
                )
            )
        if cfg.persistence_rounds > 0:
            outcomes = []
            for r1_pattern, p1 in self._leakage_outcomes(full_mask):
                for r2_pattern, p2 in self._leakage_outcomes(full_mask):
                    outcomes.append((pack(r1_pattern, r2_pattern), p1 * p2))
            mechanisms.append(
                Mechanism(
                    name="leak_persistent_window",
                    probability=cal.leakage_rate
                    * (width + 1)
                    * cfg.persistence_rounds,
                    is_leakage=True,
                    outcomes=tuple(outcomes),
                )
            )

        # Persistent leakage on a neighbouring data qubit randomises the shared
        # bits in both rounds of the window (benign for this qubit's LRC).
        if cfg.include_neighbor_leakage:
            neighbor_leaked = self._neighbor_leak_probability()
            for index, overlap in enumerate(self.context.neighbor_overlaps):
                if overlap == 0:
                    continue
                outcomes = []
                for r1_pattern, p1 in self._leakage_outcomes(overlap):
                    for r2_pattern, p2 in self._leakage_outcomes(overlap):
                        outcomes.append((pack(r1_pattern, r2_pattern), p1 * p2))
                mechanisms.append(
                    Mechanism(
                        name=f"neighbor_leak_window_{index}",
                        probability=neighbor_leaked,
                        is_leakage=False,
                        outcomes=tuple(outcomes),
                    )
                )
        return mechanisms

    # ------------------------------------------------------------------ #
    # Super-edge weights and labelling
    # ------------------------------------------------------------------ #
    @staticmethod
    def _accumulate(
        mechanisms: list[Mechanism], table_size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        leakage_weight = np.zeros(table_size)
        nonleakage_weight = np.zeros(table_size)
        for mechanism in mechanisms:
            target = leakage_weight if mechanism.is_leakage else nonleakage_weight
            for pattern, conditional in mechanism.outcomes:
                target[pattern] += mechanism.probability * conditional
        return leakage_weight, nonleakage_weight

    def super_edge_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """``(W_L, W_NL)`` per single-round pattern."""
        return self._accumulate(self.single_round_mechanisms(), 1 << self.context.width)

    def two_round_super_edge_weights(self) -> tuple[np.ndarray, np.ndarray]:
        """``(W_L, W_NL)`` per two-round pattern pair."""
        return self._accumulate(
            self.two_round_mechanisms(), 1 << (2 * self.context.width)
        )

    def label_patterns(self) -> np.ndarray:
        """Boolean table over single-round patterns: True = leakage-critical."""
        leakage_weight, nonleakage_weight = self.super_edge_weights()
        flagged = leakage_weight > self.config.threshold * nonleakage_weight
        flagged[0] = False
        return flagged

    def label_two_round_patterns(self) -> np.ndarray:
        """Boolean table over two-round pattern pairs: True = leakage-critical.

        The deferred speculator sees twice the evidence, so it uses the
        stricter ``threshold_two_round``; this is what lets GLADIATOR-D flag
        a *smaller* fraction of its (much larger) pattern space than the
        single-round speculator, as reported in Section 5.2.
        """
        leakage_weight, nonleakage_weight = self.two_round_super_edge_weights()
        flagged = leakage_weight > self.config.threshold_two_round * nonleakage_weight
        flagged[0] = False
        return flagged


def build_transition_graph(
    model: TransitionModel, two_rounds: bool = False
) -> nx.MultiDiGraph:
    """Materialise the merged transition graph as a ``networkx`` multidigraph.

    Nodes are patterns (integers); edges run from the error-free base pattern
    ``0`` to every reachable pattern, keyed by ``"leakage"`` /
    ``"nonleakage"``, and carry the merged super-edge ``weight``.  Node
    attribute ``label`` records the final classification, mirroring
    Figure 6(b,c) of the paper.
    """
    width = model.context.width * (2 if two_rounds else 1)
    mechanisms = (
        model.two_round_mechanisms() if two_rounds else model.single_round_mechanisms()
    )
    graph = nx.MultiDiGraph()
    graph.add_nodes_from(range(1 << width))
    for mechanism in mechanisms:
        for pattern, conditional in mechanism.outcomes:
            weight = mechanism.probability * conditional
            kind = "leakage" if mechanism.is_leakage else "nonleakage"
            if graph.has_edge(0, pattern, key=kind):
                graph[0][pattern][kind]["weight"] += weight
            else:
                graph.add_edge(0, pattern, key=kind, weight=weight, kind=kind)
    labels = (
        model.label_two_round_patterns() if two_rounds else model.label_patterns()
    )
    for pattern in range(1 << width):
        graph.nodes[pattern]["label"] = "leakage" if labels[pattern] else "nonleakage"
    return graph


@lru_cache(maxsize=None)
def _cached_labels(
    signature: tuple,
    calibration: CalibrationData,
    config: GraphModelConfig,
    two_rounds: bool,
) -> tuple[bool, ...]:
    """Cache labels across data qubits that share the same context."""
    group_part, overlap_part = signature
    context = QubitContext(
        width=len(group_part),
        groups=tuple(
            GroupInfo(position=position, bases=bases, weights=weights)
            for position, bases, weights in group_part
        ),
        neighbor_overlaps=tuple(overlap_part),
    )
    model = TransitionModel(context=context, calibration=calibration, config=config)
    table = model.label_two_round_patterns() if two_rounds else model.label_patterns()
    return tuple(bool(x) for x in table)


def labels_for_qubit(
    code: StabilizerCode,
    qubit: int,
    calibration: CalibrationData,
    config: GraphModelConfig,
    two_rounds: bool = False,
) -> np.ndarray:
    """Leakage-critical pattern table for one data qubit (cached by context)."""
    context = qubit_context(code, qubit)
    cached = _cached_labels(context.signature, calibration, config, two_rounds)
    return np.array(cached, dtype=bool)
