"""Device calibration data used to weight the error-propagation graph.

GLADIATOR's offline stage weights the edges of its syndrome-transition graph
with calibrated error rates (Section 4.2).  :class:`CalibrationData` is the
container for those rates; it can be derived from a :class:`NoiseParams`
(the simulation ground truth), perturbed to emulate drifted calibrations, and
turned back into the effective probabilities the graph builder consumes.
Recalibration only touches these numbers, never the graph structure, which is
exactly the adaptability argument the paper makes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..noise import NoiseParams

__all__ = ["CalibrationData"]


@dataclass(frozen=True)
class CalibrationData:
    """Calibrated error rates for one device / one code patch.

    Attributes mirror the error sources of the paper's noise model; all are
    per-operation probabilities.
    """

    gate_error: float
    measurement_error: float
    reset_error: float
    data_error: float
    leakage_rate: float
    leakage_mobility: float = 0.1
    mlr_error: float = 1e-2

    def __post_init__(self) -> None:
        for name in (
            "gate_error",
            "measurement_error",
            "reset_error",
            "data_error",
            "leakage_rate",
            "leakage_mobility",
            "mlr_error",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be a probability, got {value}")

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_noise(cls, noise: NoiseParams) -> "CalibrationData":
        """Calibration that matches the simulated noise model exactly."""
        return cls(
            gate_error=noise.p,
            measurement_error=noise.p,
            reset_error=noise.p,
            data_error=noise.p,
            leakage_rate=noise.p_leak,
            leakage_mobility=noise.leakage_mobility,
            mlr_error=noise.mlr_error,
        )

    def drifted(self, factor: float, seed: int | None = None) -> "CalibrationData":
        """A mis-calibrated copy: every rate multiplied by a random factor.

        ``factor`` bounds the multiplicative drift (e.g. ``2.0`` allows each
        rate to move anywhere within [1/2x, 2x]).  Used by the sensitivity
        studies to show GLADIATOR's labels are robust to calibration error.
        """
        if factor < 1:
            raise ValueError("drift factor must be >= 1")
        rng = np.random.default_rng(seed)
        exponents = rng.uniform(-1.0, 1.0, size=5)
        scales = factor ** exponents
        return replace(
            self,
            gate_error=min(1.0, self.gate_error * scales[0]),
            measurement_error=min(1.0, self.measurement_error * scales[1]),
            reset_error=min(1.0, self.reset_error * scales[2]),
            data_error=min(1.0, self.data_error * scales[3]),
            leakage_rate=min(1.0, self.leakage_rate * scales[4]),
        )

    def with_(self, **changes) -> "CalibrationData":
        """Copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def isolated_flip_rate(self) -> float:
        """Probability that a single syndrome bit flips for non-data reasons.

        Combines measurement error, reset error and the roughly 50% of gate
        errors that hit only the ancilla operand.
        """
        return self.measurement_error + self.reset_error + 0.5 * self.gate_error

    def describe(self) -> str:
        """One-line calibration summary."""
        return (
            f"gate={self.gate_error:g}, meas={self.measurement_error:g}, "
            f"leak={self.leakage_rate:g}, mobility={self.leakage_mobility:g}"
        )
