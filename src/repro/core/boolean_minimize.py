"""Boolean minimisation of leakage-pattern sets (Appendix B of the paper).

The flagged patterns of a speculator form a truth table; minimising it with
the Quine-McCluskey procedure yields the compact sum-of-products expressions
the paper lists for the surface code, colour code and BPC code, and is what
keeps the hardware sequence checker down to a few LUTs.  The implementation
here is a straightforward exact prime-implicant generation followed by a
greedy cover (sufficient for the ≤10-variable functions that arise from
tagged speculation patterns).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

__all__ = ["Implicant", "quine_mccluskey", "expression_to_string", "count_literals"]


@dataclass(frozen=True)
class Implicant:
    """One product term: ``value`` on the cared bits selected by ``mask``.

    ``mask`` has a 1 for every variable that appears in the term; ``value``
    gives the required polarity of those variables.
    """

    mask: int
    value: int

    def covers(self, minterm: int) -> bool:
        """Whether this implicant covers the given minterm."""
        return (minterm & self.mask) == self.value

    def literals(self, width: int) -> list[tuple[int, bool]]:
        """The (variable index, polarity) literals of this term."""
        return [
            (bit, bool(self.value & (1 << bit)))
            for bit in range(width)
            if self.mask & (1 << bit)
        ]

    def num_literals(self, width: int) -> int:
        """Number of literals in this term."""
        return len(self.literals(width))


def _combine(a: Implicant, b: Implicant) -> Implicant | None:
    """Merge two implicants differing in exactly one cared bit, if possible."""
    if a.mask != b.mask:
        return None
    difference = a.value ^ b.value
    if difference == 0 or (difference & (difference - 1)) != 0:
        return None
    new_mask = a.mask & ~difference
    return Implicant(mask=new_mask, value=a.value & new_mask)


def quine_mccluskey(minterms: set[int] | list[int], width: int) -> list[Implicant]:
    """Minimise the boolean function that is true exactly on ``minterms``.

    Returns a (greedy) minimal cover of prime implicants.  An empty input
    returns an empty expression (constant false); a complete input returns a
    single don't-care-everything implicant (constant true).
    """
    minterm_set = set(int(m) for m in minterms)
    if not minterm_set:
        return []
    if any(m < 0 or m >= (1 << width) for m in minterm_set):
        raise ValueError("minterm out of range for the given width")
    if len(minterm_set) == (1 << width):
        return [Implicant(mask=0, value=0)]

    full_mask = (1 << width) - 1
    current = {Implicant(mask=full_mask, value=m) for m in minterm_set}
    primes: set[Implicant] = set()
    while current:
        merged: set[Implicant] = set()
        used: set[Implicant] = set()
        current_list = sorted(current, key=lambda imp: (imp.mask, imp.value))
        for a, b in combinations(current_list, 2):
            combined = _combine(a, b)
            if combined is not None:
                merged.add(combined)
                used.add(a)
                used.add(b)
        primes |= current - used
        current = merged

    # Greedy cover: essential primes first, then largest remaining coverage.
    remaining = set(minterm_set)
    cover: list[Implicant] = []
    prime_list = sorted(primes, key=lambda imp: (bin(imp.mask).count("1"), imp.value))
    # Essential prime implicants.
    for minterm in sorted(minterm_set):
        covering = [p for p in prime_list if p.covers(minterm)]
        if len(covering) == 1 and covering[0] not in cover:
            cover.append(covering[0])
    for implicant in cover:
        remaining -= {m for m in remaining if implicant.covers(m)}
    while remaining:
        best = max(
            prime_list,
            key=lambda p: sum(1 for m in remaining if p.covers(m)),
        )
        cover.append(best)
        remaining -= {m for m in remaining if best.covers(m)}
    return cover


def expression_to_string(
    implicants: list[Implicant], width: int, variable_prefix: str = "x"
) -> str:
    """Render an implicant list in the paper's DNF notation."""
    if not implicants:
        return "False"
    terms = []
    for implicant in implicants:
        literals = implicant.literals(width)
        if not literals:
            return "True"
        rendered = [
            f"{variable_prefix}{bit}" if polarity else f"~{variable_prefix}{bit}"
            for bit, polarity in literals
        ]
        terms.append("(" + " & ".join(rendered) + ")")
    return " | ".join(terms)


def count_literals(implicants: list[Implicant], width: int) -> int:
    """Total literal count of a sum-of-products expression."""
    return sum(implicant.num_literals(width) for implicant in implicants)


def evaluate(implicants: list[Implicant], value: int) -> bool:
    """Evaluate a sum-of-products expression on one input assignment."""
    return any(implicant.covers(value) for implicant in implicants)
