"""Parallel sweep execution with shot-sharding and on-disk memoization.

The :class:`SweepExecutor` takes the independent work units a
:class:`~repro.sweeps.spec.SweepSpec` compiles to, splits each unit's shot
budget into fixed-size shards, and runs every (unit, shard) task on a
``multiprocessing`` pool.  Three properties matter:

* **Deterministic sharding** — the shard plan depends only on the unit's
  shot budget and the executor's ``shard_shots``, never on the worker
  count, so results are bit-identical whether 2 or 16 workers ran them.
* **Deterministic seeding** — each shard's RNG seed is derived from the
  unit's content hash and the shard index through
  ``numpy.random.SeedSequence.spawn``, so shards are statistically
  independent yet fully reproducible.
* **Memoization** — completed units are summarised and written to the
  :class:`~repro.sweeps.cache.SweepCache`; identical re-runs load from disk
  without touching the pool.

Workers default to the ``REPRO_WORKERS`` environment variable (``1`` =
serial, the legacy bit-exact path) so existing entry points opt into
parallelism without code changes.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import instant, span
from .cache import SweepCache
from .spec import SweepSpec
from .units import (
    WorkUnit,
    apply_unit_labels,
    merge_shards,
    run_shard,
    summarize_unit,
    unit_key,
)

__all__ = [
    "SweepExecutor",
    "plan_shards",
    "shard_seeds",
    "default_workers",
    "default_executor",
    "cache_enabled",
]

#: Default shot budget per shard; matches the decoded path's internal batch
#: size so a shard is one decode batch.
DEFAULT_SHARD_SHOTS = 250

#: Sweep-engine telemetry; no-ops unless a telemetry scope is active.
_OBS_CACHE_HITS = METRICS.counter(
    "sweep.units.cache_hits", "work units served from the on-disk sweep cache"
)
_OBS_COMPUTED = METRICS.counter(
    "sweep.units.computed", "work units actually simulated"
)
_OBS_SHARDS = METRICS.counter(
    "sweep.shards.executed", "shard tasks executed across all units"
)


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (default 1 = serial legacy path)."""
    raw = os.environ.get("REPRO_WORKERS", "1")
    try:
        return max(1, int(raw))
    except ValueError as exc:
        raise ValueError(f"REPRO_WORKERS must be an integer, got {raw!r}") from exc


def plan_shards(shots: int, shard_shots: int) -> list[int]:
    """Split a shot budget into shard sizes; independent of the worker count."""
    if shots <= 0:
        raise ValueError("shots must be positive")
    if shard_shots <= 0:
        raise ValueError("shard_shots must be positive")
    full, remainder = divmod(shots, shard_shots)
    plan = [shard_shots] * full
    if remainder:
        plan.append(remainder)
    return plan


def shard_seeds(unit: WorkUnit, num_shards: int) -> list[int]:
    """Derive one reproducible RNG seed per shard of a unit.

    The entropy pool is the unit's content hash (so different grid points
    never share streams even with the same base seed) combined with the
    base seed; ``SeedSequence.spawn`` then gives statistically independent
    children, one per shard index.
    """
    digest = unit_key(unit)
    entropy = [int(digest[offset : offset + 8], 16) for offset in range(0, 32, 8)]
    root = np.random.SeedSequence([unit.seed & 0xFFFFFFFF, *entropy])
    return [
        int(child.generate_state(1, dtype=np.uint32)[0])
        for child in root.spawn(num_shards)
    ]


def _pool_run_shard(unit: WorkUnit, shots: int, seed: int) -> dict[str, Any]:
    """Module-level trampoline so (unit, shard) tasks pickle into workers."""
    return run_shard(unit, shots, seed)


def _worker_init(src_path: str) -> None:
    """Make the in-tree package importable in spawned workers."""
    if src_path and src_path not in sys.path:
        sys.path.insert(0, src_path)


class SweepExecutor:
    """Execute work units on a process pool, with sharding and memoization.

    Parameters
    ----------
    workers:
        Process count.  ``None`` reads ``REPRO_WORKERS``; ``1`` runs
        everything in-process as a single shard per unit, which is
        bit-identical to the legacy serial runner functions.
    cache:
        A :class:`SweepCache`, a directory path for one, or ``None`` to
        disable memoization entirely.
    shard_shots:
        Shot budget per shard when running in parallel.  Smaller shards give
        better load balancing; larger shards amortise per-process policy
        preparation.  The shard plan never depends on ``workers``.

    Attributes
    ----------
    units_computed / units_from_cache:
        Counters across this executor's lifetime, used by tests and the CLI
        to verify that re-runs skip recomputation.
    """

    def __init__(
        self,
        workers: int | None = None,
        cache: SweepCache | str | Path | None = None,
        shard_shots: int = DEFAULT_SHARD_SHOTS,
    ) -> None:
        self.workers = default_workers() if workers is None else max(1, int(workers))
        if cache is None:
            self.cache: SweepCache | None = None
        elif isinstance(cache, SweepCache):
            self.cache = cache
        else:
            self.cache = SweepCache(cache)
        self.shard_shots = int(shard_shots)
        self.units_computed = 0
        self.units_from_cache = 0
        self.shards_executed = 0

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run(self, spec: SweepSpec) -> list[dict[str, Any]]:
        """Compile a spec and execute it; returns one summary row per unit."""
        return self.run_units(spec.units())

    def run_units(self, units: Sequence[WorkUnit]) -> list[dict[str, Any]]:
        """Execute work units; rows come back in the order units were given."""
        rows: list[dict[str, Any] | None] = [None] * len(units)
        pending: list[tuple[int, WorkUnit, str]] = []
        for index, unit in enumerate(units):
            sizes = tuple(shots for shots, _ in self.effective_plan(unit))
            key = unit_key(unit, sizes)
            cached = self.cache.get(key) if self.cache is not None else None
            if cached is not None:
                self.units_from_cache += 1
                _OBS_CACHE_HITS.inc()
                instant("sweep.unit.cache_hit", family=unit.family, policy=unit.policy)
                rows[index] = apply_unit_labels(unit, cached)
            else:
                pending.append((index, unit, key))

        if pending:
            for (index, unit, key), row in zip(
                pending, self._compute([u for _, u, _ in pending])
            ):
                if self.cache is not None:
                    self.cache.put(key, row)
                rows[index] = apply_unit_labels(unit, row)
        return rows  # type: ignore[return-value]

    # ------------------------------------------------------------------ #
    # Computation
    # ------------------------------------------------------------------ #
    def shard_plan(self, unit: WorkUnit) -> list[tuple[int, int]]:
        """(shots, seed) of every shard of a unit, independent of pool size.

        A unit that fits in one shard keeps its own base seed, so serial and
        single-shard parallel runs agree bit-for-bit with the legacy path.
        """
        sizes = plan_shards(unit.shots, self.shard_shots)
        if len(sizes) == 1:
            return [(sizes[0], unit.seed)]
        return list(zip(sizes, shard_seeds(unit, len(sizes))))

    def effective_plan(self, unit: WorkUnit) -> list[tuple[int, int]]:
        """The (shots, seed) plan this executor will actually run for a unit.

        Serial executors always run one legacy-exact shard; parallel ones use
        :meth:`shard_plan`.  The cache key is derived from this plan so rows
        computed under different sharding never substitute for each other.
        """
        if self.workers <= 1:
            return [(unit.shots, unit.seed)]
        return self.shard_plan(unit)

    def _compute(self, units: list[WorkUnit]) -> Iterable[dict[str, Any]]:
        """Run uncached units, sharded across the pool; yields label-free rows."""
        if self.workers <= 1:
            # Serial mode runs each unit as ONE shard with its own base seed —
            # bit-identical to the legacy runner functions, so results (and the
            # qualitative assertions in the benchmark suite) are unchanged
            # when nobody asks for parallelism.
            for unit in units:
                with span(
                    "sweep.unit",
                    family=unit.family,
                    policy=unit.policy,
                    shots=unit.shots,
                ):
                    payloads = [
                        run_shard(unit, shots, seed)
                        for shots, seed in self.effective_plan(unit)
                    ]
                self.shards_executed += len(payloads)
                self.units_computed += 1
                _OBS_SHARDS.inc(len(payloads))
                _OBS_COMPUTED.inc()
                yield summarize_unit(unit, merge_shards(unit, payloads), apply_labels=False)
            return

        tasks: list[tuple[WorkUnit, int, int]] = []
        boundaries: list[int] = []
        for unit in units:
            plan = self.effective_plan(unit)
            tasks.extend((unit, shots, seed) for shots, seed in plan)
            boundaries.append(len(plan))

        src_path = str(Path(__file__).resolve().parent.parent.parent)
        context = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        # One span over the whole pool run: worker processes have their own
        # (inactive) telemetry state, so per-shard spans cannot cross the
        # process boundary — the pool's wall time is what the parent can see.
        with span("sweep.pool", tasks=len(tasks), workers=self.workers):
            with context.Pool(
                processes=min(self.workers, len(tasks)),
                initializer=_worker_init,
                initargs=(src_path,),
            ) as pool:
                payloads = pool.starmap(_pool_run_shard, tasks, chunksize=1)
        self.shards_executed += len(tasks)
        _OBS_SHARDS.inc(len(tasks))

        cursor = 0
        for unit, count in zip(units, boundaries):
            shard_payloads = payloads[cursor : cursor + count]
            cursor += count
            self.units_computed += 1
            _OBS_COMPUTED.inc()
            yield summarize_unit(
                unit, merge_shards(unit, shard_payloads), apply_labels=False
            )


# --------------------------------------------------------------------- #
# Shared default executor (used by the legacy runner wrappers)
# --------------------------------------------------------------------- #
def cache_enabled() -> bool:
    """Whether the ``REPRO_CACHE`` environment knob turns memoization on."""
    return os.environ.get("REPRO_CACHE", "").lower() in ("1", "true", "yes", "on")


_default_executor: SweepExecutor | None = None
_default_config: tuple[int, bool, str] | None = None


def default_executor() -> SweepExecutor:
    """The process-wide executor the legacy sweep functions delegate to.

    Configured entirely from the environment — ``REPRO_WORKERS`` processes
    (default 1 = serial, bit-identical to the historical code path),
    ``REPRO_CACHE=1`` for on-disk memoization, and ``REPRO_CACHE_DIR`` for
    its location — and rebuilt whenever any of those knobs change, so tests
    can flip them with ``monkeypatch.setenv``.
    """
    from .cache import default_cache_dir

    global _default_executor, _default_config
    config = (default_workers(), cache_enabled(), str(default_cache_dir()))
    if _default_executor is None or _default_config != config:
        workers, use_cache, _ = config
        _default_executor = SweepExecutor(
            workers=workers, cache=SweepCache() if use_cache else None
        )
        _default_config = config
    return _default_executor
