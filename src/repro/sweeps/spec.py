"""Declarative sweep specifications.

A :class:`SweepSpec` names a full experiment grid — code family x distance x
noise point x policy — plus the per-point workload (shots, rounds, decoded
or not).  ``units()`` compiles the grid into independent
:class:`~repro.sweeps.units.WorkUnit` jobs, each labelled with its grid
coordinates so the executor's summary rows can be grouped and tabulated
exactly like the legacy serial sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api.registry import CODES
from .units import WorkUnit, make_unit_noise

__all__ = ["SweepSpec"]


@dataclass(frozen=True)
class SweepSpec:
    """Grid of (family, distance, error rate, leakage ratio, policy) points.

    Attributes
    ----------
    name:
        Identifier used for result files and progress messages.
    family:
        Code family understood by :func:`repro.experiments.make_code`
        ({code_families}).
    distances:
        Code distances to sweep.  Families without a distance knob
        ({distanceless_families}) should pass a single placeholder entry.
    error_rates / leakage_ratios:
        Physical error rates ``p`` and leakage ratios ``lr`` fed to
        :func:`repro.noise.paper_noise` (so ``p_leak = lr * p``).
    policies:
        Policy names understood by :func:`repro.core.make_policy`.
    shots:
        Shot budget of every grid point (the executor shards this).
    rounds:
        QEC rounds per shot: either an integer or a callable mapping the
        distance to a round count (the paper uses ``10 d`` and ``100 d``).
        Callables are resolved at compile time, so cache keys always see the
        concrete integer.
    decoded:
        If True each point is a decoded memory experiment reporting a
        logical error rate; otherwise an undecoded leakage-population run.
    leakage_sampling:
        Seed one leaked data qubit per shot (Section 6 leakage sampling).
        Defaults to the legacy convention: on for undecoded sweeps, off for
        decoded ones.
    decoder_method:
        Decoder backend for decoded sweeps (``matching`` or ``union_find``).
    decoder_max_exact_nodes / decoder_strategy:
        Matching-decoder tuning forwarded to
        :func:`repro.decoders.make_decoder` (exact->greedy threshold and
        the ``auto``/``exact``/``greedy`` strategy pin).
    windows:
        Sliding-window axis for decoded sweeps: each entry is a
        ``window_rounds`` value routed through the
        :mod:`repro.realtime` windowed decode path, with ``None`` meaning
        plain offline decoding.  Rows are labelled with their ``window``.
    commit_rounds:
        Rounds committed per window step (``None``: the windowed decoder's
        default of half the window).
    decode_batch_size:
        Simulate-and-decode chunk size of each decoded unit (``None``: the
        :class:`~repro.experiments.memory.MemoryExperiment` default).  Part
        of the cache key — the chunk plan fixes per-chunk simulator seeds.
    decoder_cache_size:
        Capacity of each unit's syndrome->correction cache (``0`` disables,
        ``None`` keeps the decoder default).  Performance-only: excluded
        from the cache key because results are identical at any size.
    seed:
        Base seed; every unit derives its shard seeds from this plus its own
        cache key, so grid points are statistically independent.
    """

    name: str
    family: str = "surface"
    distances: Sequence[int] = (7,)
    error_rates: Sequence[float] = (1e-3,)
    leakage_ratios: Sequence[float] = (0.1,)
    policies: Sequence[str] = ("eraser+m", "gladiator+m")
    shots: int = 200
    rounds: int | Callable[[int], int] = 30
    decoded: bool = False
    leakage_sampling: bool | None = None
    decoder_method: str = "matching"
    decoder_max_exact_nodes: int | None = None
    decoder_strategy: str | None = None
    windows: Sequence[int | None] = (None,)
    commit_rounds: int | None = None
    decode_batch_size: int | None = None
    decoder_cache_size: int | None = None
    seed: int = 0
    extra_labels: tuple[tuple[str, object], ...] = field(default_factory=tuple)

    def rounds_for(self, distance: int) -> int:
        """Resolve the per-distance round count to a concrete integer."""
        if callable(self.rounds):
            return int(self.rounds(distance))
        return int(self.rounds)

    def compile(self) -> list[WorkUnit]:
        """Compile the grid into independent work units, in deterministic order.

        (``units()`` is the historical name and remains as an alias.)
        """
        return self.units()

    def units(self) -> list[WorkUnit]:
        """Compile the grid into independent work units, in deterministic order."""
        sampling = (
            self.leakage_sampling
            if self.leakage_sampling is not None
            else not self.decoded
        )
        # Legacy single-point sweeps keep their exact historical labels; the
        # window coordinate is only stamped when the spec actually uses it.
        label_windows = len(tuple(self.windows)) > 1 or tuple(self.windows)[0] is not None
        if label_windows and not self.decoded:
            # Undecoded runs never decode, so a window axis would compile to
            # units with identical cache keys under different labels.
            raise ValueError("windows only apply to decoded sweeps (set decoded=True)")
        compiled: list[WorkUnit] = []
        for distance in self.distances:
            rounds = self.rounds_for(distance)
            for p in self.error_rates:
                for leakage_ratio in self.leakage_ratios:
                    noise = make_unit_noise(p, leakage_ratio)
                    for window in self.windows:
                        for policy in self.policies:
                            labels = (
                                ("distance", int(distance)),
                                ("p", float(p)),
                                ("leakage_ratio", float(leakage_ratio)),
                            )
                            if label_windows:
                                labels += (("window", window),)
                            compiled.append(
                                WorkUnit(
                                    family=self.family,
                                    distance=int(distance),
                                    noise=noise,
                                    policy=policy,
                                    shots=int(self.shots),
                                    rounds=rounds,
                                    decoded=self.decoded,
                                    leakage_sampling=sampling,
                                    decoder_method=self.decoder_method,
                                    decoder_max_exact_nodes=self.decoder_max_exact_nodes,
                                    decoder_strategy=self.decoder_strategy,
                                    window_rounds=window,
                                    commit_rounds=self.commit_rounds if window else None,
                                    decode_batch_size=(
                                        self.decode_batch_size if self.decoded else None
                                    ),
                                    decoder_cache_size=(
                                        self.decoder_cache_size if self.decoded else None
                                    ),
                                    seed=int(self.seed),
                                    labels=labels + tuple(self.extra_labels),
                                )
                            )
        return compiled


# The documented family list is derived from the code registry at import
# time, so the docstring can never disagree with what make_code accepts.
if SweepSpec.__doc__:  # pragma: no branch - docstrings stripped under -OO
    SweepSpec.__doc__ = SweepSpec.__doc__.replace(
        "{code_families}", ", ".join(f"``{name}``" for name in sorted(CODES.names()))
    ).replace(
        "{distanceless_families}",
        ", ".join(
            f"``{entry.name}``"
            for entry in sorted(CODES, key=lambda e: e.name)
            if not entry.metadata.get("accepts_distance", True)
            or "default_distance" not in entry.metadata
        ),
    )
