"""Command-line entry point: run a named sweep and persist its rows.

Examples
--------
List the available sweeps::

    PYTHONPATH=src python -m repro.sweeps --list

Run the Figure 10 workload on 4 workers with memoization::

    PYTHONPATH=src python -m repro.sweeps dlp-surface --workers 4

Re-running the same command hits the on-disk cache and finishes in well
under a second; ``--no-cache`` forces recomputation and ``--clear-cache``
wipes the cache directory first.  Results are written as JSON records
(:mod:`repro.io.results`) under ``results/sweep_<name>.json``.
"""

from __future__ import annotations

import argparse
import sys
import time

from .cache import SweepCache, default_cache_dir
from .executor import SweepExecutor, default_workers
from .registry import SWEEP_GROUPS, build_sweep, sweep_names

__all__ = ["main", "run"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sweeps",
        description="Run a named experiment sweep on a process pool.",
    )
    parser.add_argument("sweep", nargs="?", help=f"one of: {', '.join(sweep_names())}")
    parser.add_argument("--list", action="store_true", help="list available sweeps and exit")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: REPRO_WORKERS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="cache directory (default: REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument("--no-cache", action="store_true", help="disable memoization")
    parser.add_argument(
        "--clear-cache", action="store_true", help="wipe the cache before running"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output JSON path (default: results/sweep_<name>.json)",
    )
    parser.add_argument(
        "--results-dir", default=None, help="directory for the default output path"
    )
    return parser


def _print_sweep_list() -> None:
    """List the presets grouped by subsystem (offline vs realtime).

    The code-family line is derived from the code registry so this listing
    can never disagree with what :func:`repro.experiments.make_code` builds.
    """
    from ..api.registry import CODES

    print(f"code families: {', '.join(sorted(CODES.names()))}")
    grouped = set()
    for group in sorted(SWEEP_GROUPS):
        print(f"{group}:")
        for name in sorted(SWEEP_GROUPS[group]):
            print(f"  {name}")
            grouped.add(name)
    ungrouped = [name for name in sweep_names() if name not in grouped]
    if ungrouped:  # a preset missing from SWEEP_GROUPS still shows up
        print("other:")
        for name in ungrouped:
            print(f"  {name}")


def main(argv: list[str] | None = None) -> int:
    from ..api._deprecation import warn_once

    warn_once(
        "python -m repro.sweeps",
        "`python -m repro.sweeps` is deprecated; use `python -m repro sweep` "
        "(same presets and flags, plus --config/--set support)",
    )
    return run(argv)


def run(argv: list[str] | None = None) -> int:
    """CLI body, shared with the `python -m repro sweep` subcommand."""
    args = _build_parser().parse_args(argv)
    if args.list or not args.sweep:
        _print_sweep_list()
        return 0 if args.list else 2

    from ..io import ResultRecord, format_table, results_dir, save_records

    try:
        spec = build_sweep(args.sweep)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else SweepCache(args.cache_dir or default_cache_dir())
    if cache is not None and args.clear_cache:
        removed = cache.clear()
        print(f"cleared {removed} cache entries from {cache.root}")
    executor = SweepExecutor(workers=args.workers, cache=cache)

    started = time.perf_counter()
    rows = executor.run(spec)
    elapsed = time.perf_counter() - started

    display = [
        {key: value for key, value in row.items() if not hasattr(value, "shape")}
        for row in rows
    ]
    print(format_table(display))
    print(
        f"{len(rows)} rows in {elapsed:.2f}s "
        f"({executor.units_computed} computed, {executor.units_from_cache} cached, "
        f"{executor.shards_executed} shards, "
        f"{executor.workers if executor.workers else default_workers()} workers)"
    )

    out = args.out
    if out is None:
        out = results_dir(args.results_dir) / f"sweep_{spec.name}.json"
    records = [
        ResultRecord(
            experiment=f"sweep_{spec.name}",
            parameters={"sweep": spec.name, "shots": spec.shots, "seed": spec.seed},
            metrics=row,
        )
        for row in rows
    ]
    path = save_records(records, out)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
