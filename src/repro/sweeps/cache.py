"""On-disk memoization of completed sweep work units.

Every completed unit's summary row is written to
``.repro_cache/<key>.json`` where ``key`` is the stable content hash
produced by :func:`repro.sweeps.units.unit_key` — a digest of the code,
noise parameters, policy (and its configuration), shots, rounds and seed.
Re-running an identical sweep therefore loads rows straight from disk
instead of re-simulating; the 20 benchmark scripts share many identical
(point, policy) runs, which is exactly the duplication this eliminates.

The cache is deliberately dumb: one JSON file per unit, no locking beyond
an atomic rename on write (concurrent writers of the same key produce the
same bytes), and corruption is treated as a miss.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..io.results import _jsonable
from .units import ENGINE_VERSION

__all__ = ["SweepCache", "default_cache_dir"]

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"


def default_cache_dir() -> Path:
    """Cache directory honouring the ``REPRO_CACHE_DIR`` override."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class SweepCache:
    """JSON file cache of unit summary rows, keyed by content hash.

    Counters (``hits``, ``misses``, ``stores``) are exposed so tests and the
    CLI can assert that a re-run skipped recomputation.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached summary row for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return None
        if payload.get("engine") != ENGINE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        row = payload["row"]
        # dlp_per_round is an array in live rows; restore it on load.
        if "dlp_per_round" in row:
            row["dlp_per_round"] = np.asarray(row["dlp_per_round"], dtype=float)
        return row

    def put(self, key: str, row: dict[str, Any]) -> None:
        """Persist one summary row; atomic so readers never see partial JSON."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {"engine": ENGINE_VERSION, "key": key, "row": _jsonable(row)}
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; return the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
