"""On-disk memoization of completed sweep work units.

Every completed unit's summary row is written to
``.repro_cache/<key>.json`` where ``key`` is the stable content hash
produced by :func:`repro.sweeps.units.unit_key` — a digest of the code,
noise parameters, policy (and its configuration), shots, rounds and seed.
Re-running an identical sweep therefore loads rows straight from disk
instead of re-simulating; the 20 benchmark scripts share many identical
(point, policy) runs, which is exactly the duplication this eliminates.

The cache is deliberately dumb: one JSON file per unit, no locking beyond
an fsynced atomic rename on write (concurrent writers of the same key
produce the same bytes).  A corrupt or truncated entry — e.g. after power
loss on a filesystem without ordered journaling — is quarantined to
``<key>.json.corrupt`` and treated as a miss, so one bad file can never
wedge a sweep or mask itself as a persistent error.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any

import numpy as np

from ..io.results import _jsonable
from ..obs.metrics import METRICS
from .units import ENGINE_VERSION

__all__ = ["SweepCache", "default_cache_dir"]

#: Default cache location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro_cache"

_OBS_CORRUPT = METRICS.counter(
    "sweep.cache.corrupt", "sweep cache files quarantined as corrupt"
)


def default_cache_dir() -> Path:
    """Cache directory honouring the ``REPRO_CACHE_DIR`` override."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class SweepCache:
    """JSON file cache of unit summary rows, keyed by content hash.

    Counters (``hits``, ``misses``, ``stores``, ``corrupt``) are exposed so
    tests and the CLI can assert that a re-run skipped recomputation.
    """

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _quarantine(self, path: Path) -> None:
        """Move an unparseable entry aside so the next run re-simulates it."""
        try:
            path.replace(Path(f"{path}.corrupt"))
        except OSError:
            # Lost a race with another reader, or the file vanished; either
            # way the entry is gone and the miss path handles it.
            pass
        self.corrupt += 1
        _OBS_CORRUPT.inc()

    def get(self, key: str) -> dict[str, Any] | None:
        """Return the cached summary row for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict) or "row" not in payload:
                raise ValueError("cache entry is not a summary payload")
        except (json.JSONDecodeError, ValueError):
            # A file that exists but does not parse is damage (torn write,
            # disk corruption), not a plain miss: quarantine it.
            self._quarantine(path)
            self.misses += 1
            return None
        if payload.get("engine") != ENGINE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        row = payload["row"]
        # dlp_per_round is an array in live rows; restore it on load.
        if "dlp_per_round" in row:
            row["dlp_per_round"] = np.asarray(row["dlp_per_round"], dtype=float)
        return row

    def put(self, key: str, row: dict[str, Any]) -> None:
        """Persist one summary row; atomic so readers never see partial JSON."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        payload = {"engine": ENGINE_VERSION, "key": key, "row": _jsonable(row)}
        tmp = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True))
            handle.flush()
            # fsync before the rename: otherwise a crash can leave the
            # rename durable but the contents empty, i.e. a corrupt entry.
            os.fsync(handle.fileno())
        tmp.replace(path)
        self.stores += 1

    def clear(self) -> int:
        """Delete every cache entry; return the number of files removed."""
        removed = 0
        if self.root.is_dir():
            for entry in self.root.glob("*.json"):
                entry.unlink(missing_ok=True)
                removed += 1
        return removed
