"""Parallel sweep engine: declarative grids, shot-sharding, memoization.

This package is the scaling layer between the experiment harness and the
simulator.  A sweep is declared as a :class:`SweepSpec` grid (code family x
distance x noise point x policy), compiled into independent
:class:`WorkUnit` jobs, and executed by a :class:`SweepExecutor` that shards
each unit's shot budget across a ``multiprocessing`` pool with
deterministic per-shard seeding and memoizes finished units on disk
(:class:`SweepCache`, ``.repro_cache/`` by default).

The legacy serial entry points (:func:`repro.experiments.compare_policies`
and friends) are thin wrappers over this engine, so setting
``REPRO_WORKERS=4`` parallelises every benchmark script without further
changes; ``python -m repro.sweeps`` runs the named presets directly.

Quick start::

    from repro.sweeps import SweepSpec, SweepExecutor

    spec = SweepSpec(
        name="demo",
        distances=(3, 5, 7),
        policies=("eraser+m", "gladiator+m"),
        shots=1000,
        rounds=30,
    )
    rows = SweepExecutor(workers=4, cache=".repro_cache").run(spec)
"""

from .cache import SweepCache, default_cache_dir
from .executor import (
    SweepExecutor,
    cache_enabled,
    default_executor,
    default_workers,
    plan_shards,
    shard_seeds,
)
from .spec import SweepSpec
from .units import (
    WorkUnit,
    merge_shards,
    run_shard,
    run_unit_serial,
    summarize_unit,
    unit_key,
)

__all__ = [
    "SweepSpec",
    "SweepExecutor",
    "SweepCache",
    "WorkUnit",
    "unit_key",
    "run_shard",
    "run_unit_serial",
    "merge_shards",
    "summarize_unit",
    "plan_shards",
    "shard_seeds",
    "default_executor",
    "default_workers",
    "default_cache_dir",
    "cache_enabled",
]
