"""Named sweep presets runnable from the ``python -m repro.sweeps`` CLI.

Each preset is a factory taking the active :class:`ScaleConfig` (the
``REPRO_SCALE`` knob) and returning a :class:`SweepSpec`.  The presets mirror
the paper's figure workloads so a user can regenerate a figure's data
without driving pytest-benchmark, and a ``smoke`` preset keeps CI and the
CLI tests fast.
"""

from __future__ import annotations

from typing import Callable

from .spec import SweepSpec

__all__ = [
    "NAMED_SWEEPS",
    "SWEEP_GROUPS",
    "build_sweep",
    "sweep_names",
    "sweep_subsystem",
]

#: Policies compared in most closed-loop studies, in the paper's order.
CLOSED_LOOP_POLICIES = (
    "eraser",
    "gladiator",
    "gladiator-d",
    "eraser+m",
    "gladiator+m",
    "gladiator-d+m",
)


def _smoke(scale) -> SweepSpec:
    return SweepSpec(
        name="smoke",
        distances=(3,),
        policies=("eraser+m", "gladiator+m"),
        shots=scale.shots(40),
        rounds=scale.rounds(8),
        seed=7,
    )


def _policy_compare_d7(scale) -> SweepSpec:
    return SweepSpec(
        name="policy-compare-d7",
        distances=(7,),
        policies=CLOSED_LOOP_POLICIES,
        shots=scale.shots(300),
        rounds=scale.rounds(70),
        seed=1,
    )


def _dlp_surface(scale) -> SweepSpec:
    # Figure 10: long-run data-leakage population at two leakage ratios.
    return SweepSpec(
        name="dlp-surface",
        distances=(7,) if scale.name != "paper" else (11,),
        leakage_ratios=(0.1, 1.0),
        policies=("eraser+m", "gladiator+m", "gladiator-d+m", "ideal"),
        shots=scale.shots(200),
        rounds=scale.rounds(150),
        seed=10,
    )


def _ler_scaling(scale) -> SweepSpec:
    # Figure 12: decoded logical error rate vs code distance.
    return SweepSpec(
        name="ler-scaling",
        distances=(3, 5) if scale.name != "paper" else (3, 5, 7),
        leakage_ratios=(1.0,),
        policies=("no-lrc", "always-lrc", "eraser+m", "gladiator+m"),
        shots=scale.decoded_shots(400),
        rounds=lambda distance: 4 * distance,
        decoded=True,
        seed=12,
    )


def _error_rate_sensitivity(scale) -> SweepSpec:
    # Figure 13: sensitivity of LRC usage and accuracy to the error rate.
    return SweepSpec(
        name="error-rate-sensitivity",
        distances=(5,),
        error_rates=(1e-3, 1e-4),
        policies=("eraser+m", "gladiator+m", "gladiator-d+m"),
        shots=scale.shots(300),
        rounds=scale.rounds(60),
        seed=13,
    )


def _distance_sensitivity(scale) -> SweepSpec:
    # Figure 14: total leakage events and LRC usage vs distance.
    return SweepSpec(
        name="distance-sensitivity",
        distances=(5, 7, 9) if scale.name != "paper" else (7, 11, 13, 17),
        policies=("eraser+m", "gladiator+m", "ideal"),
        shots=scale.shots(150),
        rounds=lambda distance: scale.rounds(10 * distance),
        seed=14,
    )


def _realtime_ler(scale) -> SweepSpec:
    # Online-decoding accuracy: the same decoded workload routed through the
    # sliding-window path at several window sizes, against the offline
    # baseline (window=None).  window >= rounds reproduces offline exactly.
    return SweepSpec(
        name="realtime-ler",
        distances=(3, 5),
        leakage_ratios=(1.0,),
        policies=("eraser+m", "gladiator+m"),
        shots=scale.decoded_shots(200),
        rounds=lambda distance: 4 * distance,
        decoded=True,
        windows=(None, 8),
        seed=21,
    )


def _realtime_throughput(scale) -> SweepSpec:
    # Window-size sensitivity of the streaming decoder: smaller windows
    # commit sooner (lower latency) but decode more often; the realtime
    # benchmark prices the same axis in wall-clock terms.
    return SweepSpec(
        name="realtime-throughput",
        distances=(3,),
        leakage_ratios=(1.0,),
        policies=("gladiator+m",),
        shots=scale.decoded_shots(150),
        rounds=scale.rounds(24),
        decoded=True,
        windows=(4, 8, 16),
        seed=22,
    )


NAMED_SWEEPS: dict[str, Callable[..., SweepSpec]] = {
    "smoke": _smoke,
    "policy-compare-d7": _policy_compare_d7,
    "dlp-surface": _dlp_surface,
    "ler-scaling": _ler_scaling,
    "error-rate-sensitivity": _error_rate_sensitivity,
    "distance-sensitivity": _distance_sensitivity,
    "realtime-ler": _realtime_ler,
    "realtime-throughput": _realtime_throughput,
}

#: Presets grouped by the subsystem that executes them: ``offline`` sweeps
#: decode (if at all) after the run ends; ``realtime`` sweeps route through
#: the :mod:`repro.realtime` sliding-window pipeline.
SWEEP_GROUPS: dict[str, tuple[str, ...]] = {
    "offline": (
        "distance-sensitivity",
        "dlp-surface",
        "error-rate-sensitivity",
        "ler-scaling",
        "policy-compare-d7",
        "smoke",
    ),
    "realtime": (
        "realtime-ler",
        "realtime-throughput",
    ),
}


def sweep_names() -> list[str]:
    """Names accepted by :func:`build_sweep` and the CLI, sorted."""
    return sorted(NAMED_SWEEPS)


def sweep_subsystem(name: str) -> str:
    """The subsystem group (``offline`` / ``realtime``) a preset belongs to."""
    for group, names in SWEEP_GROUPS.items():
        if name in names:
            return group
    raise ValueError(f"unknown sweep {name!r}; known: {sweep_names()}")


def build_sweep(name: str, scale=None) -> SweepSpec:
    """Instantiate a named sweep at the active (or given) workload scale."""
    if name not in NAMED_SWEEPS:
        raise ValueError(f"unknown sweep {name!r}; known: {sweep_names()}")
    if scale is None:
        from ..experiments.runner import current_scale

        scale = current_scale()
    return NAMED_SWEEPS[name](scale)
