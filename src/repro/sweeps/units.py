"""Work units: the atomic jobs a sweep is compiled into.

A :class:`WorkUnit` is one (code, noise, policy, shots, rounds) simulation —
exactly the granularity at which :func:`repro.experiments.compare_policies`
and :func:`repro.experiments.compare_policies_decoded` used to loop
serially.  The sweep engine shards a unit's shot budget into independent
slices (see :mod:`repro.sweeps.executor`), runs the slices on a process
pool, and merges the shard results back into one summary row.

Every helper in this module is a plain module-level function so that work
units and their shards can be pickled into ``multiprocessing`` workers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace
from functools import lru_cache
from typing import Any

import numpy as np

from ..codes.base import StabilizerCode
from ..core import make_policy
from ..core.graph_model import GraphModelConfig
from ..experiments.memory import MemoryExperiment, MemoryResult
from ..noise import NoiseParams, paper_noise
from ..sim import LeakageSimulator, SimulatorOptions
from ..sim.simulator import RoundRecord, RunResult

__all__ = [
    "WorkUnit",
    "unit_key",
    "unit_to_config",
    "resolve_code",
    "run_unit_serial",
    "run_shard",
    "merge_shards",
    "summarize_unit",
    "apply_unit_labels",
]

#: Bump when the shard payload or summary format changes so stale cache
#: entries are never deserialised into the new layout.  v2: decoder tuning
#: (max_exact_nodes / strategy) and realtime window configuration joined the
#: cache key.  v3: ``decode_batch_size`` joined the key (the chunk plan
#: determines per-chunk simulator seeds, so two batch sizes are different —
#: equally valid — samples).  v4: the key is a digest of the unit's
#: :class:`~repro.api.config.ExperimentConfig` form (see
#: :func:`unit_to_config`), so every construction route — legacy wrappers,
#: ``SweepSpec`` grids, ``Session.sweep`` — keys the same simulation
#: identically.  v5: decoded payloads and summaries gained the
#: decoder-cache hit-rate and batch-dedup-ratio diagnostics.
ENGINE_VERSION = 5


@dataclass(frozen=True)
class WorkUnit:
    """One (code, noise, policy) simulation job of a sweep.

    The code is named either declaratively by ``(family, distance)`` —
    resolvable through :func:`repro.experiments.make_code` in any worker
    process — or by an explicit :class:`StabilizerCode` object in ``code``
    (used by the legacy ``compare_policies`` wrappers, which receive a code
    instance from the caller).  ``labels`` are extra key/value pairs stamped
    onto the summary row after execution; they do not affect the simulation
    and are therefore excluded from the cache key.
    """

    family: str
    distance: int | None
    noise: NoiseParams
    policy: str
    shots: int
    rounds: int
    decoded: bool = False
    leakage_sampling: bool = True
    decoder_method: str = "matching"
    decoder_max_exact_nodes: int | None = None
    decoder_strategy: str | None = None
    window_rounds: int | None = None
    commit_rounds: int | None = None
    decode_batch_size: int | None = None
    decoder_cache_size: int | None = None
    fused: bool = False
    seed: int = 0
    policy_config: GraphModelConfig | None = None
    code: StabilizerCode | None = None
    labels: tuple[tuple[str, Any], ...] = ()

    def with_shots(self, shots: int, seed: int) -> "WorkUnit":
        """Copy of this unit with a different shot budget and seed (a shard)."""
        return replace(self, shots=shots, seed=seed)


def resolve_code(unit: WorkUnit) -> StabilizerCode:
    """Return the unit's code, constructing it from (family, distance) if needed."""
    if unit.code is not None:
        return unit.code
    from ..experiments.runner import make_code

    return make_code(unit.family, unit.distance)


def _structure_digest(code: StabilizerCode) -> str:
    """Digest of a code's full stabilizer structure (name collisions can't alias)."""
    structure = hashlib.sha256()
    structure.update(repr((code.name, code.distance, code.num_data)).encode())
    for stabilizer in code.stabilizers:
        structure.update(
            repr((stabilizer.basis, stabilizer.data_support, stabilizer.slots)).encode()
        )
    structure.update(code.logical_x.tobytes())
    structure.update(code.logical_z.tobytes())
    return structure.hexdigest()


@lru_cache(maxsize=None)
def _reference_digest(family: str, distance: int | None) -> str | None:
    """Structure digest of ``make_code(family, distance)``, or None if unbuildable."""
    from ..experiments.runner import make_code

    try:
        return _structure_digest(make_code(family, distance))
    except (ValueError, TypeError):
        return None


def _code_fingerprint(unit: WorkUnit) -> dict[str, Any]:
    """Stable, JSON-safe description of the code a unit simulates.

    Declarative units are fingerprinted by (family, distance).  Explicit code
    objects get the same declarative fingerprint when they are structurally
    identical to ``make_code(family, distance)`` — so the legacy wrappers
    (which pass code objects) and :class:`SweepSpec` grids (which pass
    family/distance) share cache entries for the same simulation — and fall
    back to a digest of the full stabilizer structure otherwise, so a custom
    code can never alias a stock construction.
    """
    from ..api.registry import CODES

    family = CODES.canonical(unit.family)
    if unit.code is None:
        return {"family": family, "distance": unit.distance}
    digest = _structure_digest(unit.code)
    if digest == _reference_digest(unit.family, unit.distance):
        return {"family": family, "distance": unit.distance}
    return {"code_name": unit.code.name, "code_digest": digest}


def unit_to_config(unit: WorkUnit, seed: int | None = None) -> "ExperimentConfig":
    """The :class:`~repro.api.config.ExperimentConfig` form of a work unit.

    The noise point is serialised through the ``custom`` preset (the full
    :class:`~repro.noise.NoiseParams` field set as overrides) so *any* noise
    is expressible as plain config data, and the policy name is canonicalised
    through the registry — two spellings of the same simulation produce the
    same config and therefore the same cache key.  Undecoded units zero out
    the decoder section, matching the legacy key semantics (an undecoded run
    never decodes, so decoder tuning cannot change its results).

    ``seed`` substitutes the execution seed (the shard runner passes its
    shard seed so the config it executes is exactly the config it was keyed
    under, re-seeded).
    """
    from ..api.config import (
        CodeConfig,
        DecoderConfig,
        ExecutionConfig,
        ExperimentConfig,
        NoiseConfig,
        PolicyConfig,
    )
    from ..api.registry import CODES, DECODERS, POLICIES

    decoded = unit.decoded
    return ExperimentConfig(
        name=f"unit:{unit.family}:{unit.policy}",
        code=CodeConfig(name=CODES.canonical(unit.family), distance=unit.distance),
        noise=NoiseConfig(preset="custom", overrides=asdict(unit.noise)),
        policy=PolicyConfig(
            name=POLICIES.canonical(unit.policy),
            options=asdict(unit.policy_config) if unit.policy_config else {},
        ),
        decoder=DecoderConfig(
            name=DECODERS.canonical(unit.decoder_method) if decoded else "matching",
            max_exact_nodes=unit.decoder_max_exact_nodes if decoded else None,
            strategy=unit.decoder_strategy if decoded else None,
            cache_size=unit.decoder_cache_size if decoded else None,
        ),
        execution=ExecutionConfig(
            shots=unit.shots,
            rounds=unit.rounds,
            seed=unit.seed if seed is None else seed,
            decoded=decoded,
            leakage_sampling=unit.leakage_sampling,
            decode_batch_size=unit.decode_batch_size if decoded else None,
            window_rounds=unit.window_rounds if decoded else None,
            commit_rounds=unit.commit_rounds if decoded else None,
            # Digest-exempt perf knob: cache_payload() drops it, so fused and
            # two-step runs of the same physics share one cache key.
            fused=unit.fused if decoded else False,
        ),
    )


def unit_key(unit: WorkUnit, shard_sizes: tuple[int, ...] | None = None) -> str:
    """Stable hex cache key of a work unit (labels excluded — they are cosmetic).

    The key digests the unit's config form (:func:`unit_to_config`, minus
    the performance-only knobs its ``cache_payload`` drops — decoder cache
    size and worker count never change results).  Explicit code objects
    replace the declarative ``code`` section with a structure fingerprint so
    a custom code can never alias a stock construction.

    ``shard_sizes`` is the executor's shard plan for the unit.  It is part of
    the *cache* key because the plan determines the RNG streams: a serial row
    and a 4-shard row are different (equally valid) samples, and memoization
    must never substitute one for the other.  Seed derivation
    (:func:`repro.sweeps.executor.shard_seeds`) uses the plan-free key, so
    shard seeds depend only on what is simulated.
    """
    config_payload = unit_to_config(unit).cache_payload()
    config_payload["code"] = _code_fingerprint(unit)
    payload: dict[str, Any] = {
        "engine": ENGINE_VERSION,
        "config": config_payload,
    }
    if shard_sizes is not None and len(shard_sizes) > 1:
        # A single-shard plan is the legacy serial run regardless of pool
        # size or shard_shots setting, so it stays keyed plan-free.
        payload["shards"] = list(shard_sizes)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


# --------------------------------------------------------------------- #
# Shard execution (runs inside worker processes)
# --------------------------------------------------------------------- #
def run_shard(unit: WorkUnit, shots: int, seed: int) -> dict[str, Any]:
    """Simulate ``shots`` shots of ``unit`` with ``seed``; return a mergeable payload.

    The payload is a plain dict of NumPy arrays and scalars so it pickles
    cheaply across the process pool.  Undecoded payloads carry the per-round
    record columns plus the final leakage/observable arrays (concatenated at
    merge time); decoded payloads carry the failure count and the already
    shot-normalised per-round rates (weight-averaged at merge time).
    """
    code = resolve_code(unit)
    policy = make_policy(unit.policy, config=unit.policy_config)
    if unit.decoded:
        # Construct through the api facade: the config this shard executes is
        # exactly the config the unit was keyed under, re-seeded for the shard.
        experiment = MemoryExperiment.from_config(
            unit_to_config(unit, seed=seed), code=code, policy=policy, noise=unit.noise
        )
        result = experiment.run(shots=shots, rounds=unit.rounds)
        return {
            "decoded": True,
            "policy_name": result.policy_name,
            "code_name": result.code_name,
            "shots": result.shots,
            "failures": result.failures,
            "dlp_per_round": result.dlp_per_round,
            "lrcs_per_round": result.lrcs_per_round,
            "fp_per_round": result.false_positives_per_round,
            "fn_per_round": result.false_negatives_per_round,
            "total_leakage_events": result.total_leakage_events,
            "final_dlp": result.final_dlp,
            "decoder_cache_hit_rate": result.decoder_cache_hit_rate,
            "batch_dedup_ratio": result.batch_dedup_ratio,
        }

    simulator = LeakageSimulator(
        code=code,
        noise=unit.noise,
        policy=policy,
        options=SimulatorOptions(leakage_sampling=unit.leakage_sampling),
        seed=seed,
    )
    result = simulator.run(shots=shots, rounds=unit.rounds)
    records = result.round_records
    return {
        "decoded": False,
        "policy_name": result.policy_name,
        "code_name": result.code_name,
        "shots": result.shots,
        "round_columns": np.array(
            [
                [
                    r.data_leakage_population,
                    r.ancilla_leakage_population,
                    r.lrcs_applied,
                    r.false_positives,
                    r.false_negatives,
                    r.true_positives,
                ]
                for r in records
            ]
        ),
        "totals": {
            "lrc": result.total_data_lrcs,
            "anc_lrc": result.total_ancilla_lrcs,
            "fp": result.total_false_positives,
            "fn": result.total_false_negatives,
            "tp": result.total_true_positives,
            "leak_events": result.total_leakage_events,
        },
        "final_data_leaked": result.final_data_leaked,
        "observable_flips": result.observable_flips,
    }


# --------------------------------------------------------------------- #
# Shard merging (runs in the parent process)
# --------------------------------------------------------------------- #
def merge_shards(unit: WorkUnit, payloads: list[dict[str, Any]]) -> RunResult | MemoryResult:
    """Combine shard payloads into one result object.

    Totals are summed, detector/observable/final-leakage arrays are
    concatenated along the shot axis, and per-round record columns (which are
    per-shot averages) are weight-averaged by each shard's shot count — so the
    merged object reports exactly what a single run of the combined shot
    budget would, up to sampling noise.
    """
    if not payloads:
        raise ValueError("cannot merge zero shards")
    weights = np.array([p["shots"] for p in payloads], dtype=float)
    total_shots = int(weights.sum())

    if unit.decoded:
        def wavg(key: str) -> Any:
            # Single-shard merges must be bit-exact (the serial path relies
            # on it), so skip the weighted round-trip entirely.
            if len(payloads) == 1:
                return payloads[0][key]
            return sum(p[key] * w for p, w in zip(payloads, weights)) / total_shots

        return MemoryResult(
            code_name=payloads[0]["code_name"],
            policy_name=payloads[0]["policy_name"],
            shots=total_shots,
            rounds=unit.rounds,
            failures=int(sum(p["failures"] for p in payloads)),
            dlp_per_round=np.asarray(wavg("dlp_per_round")),
            lrcs_per_round=float(wavg("lrcs_per_round")),
            false_positives_per_round=float(wavg("fp_per_round")),
            false_negatives_per_round=float(wavg("fn_per_round")),
            total_leakage_events=int(sum(p["total_leakage_events"] for p in payloads)),
            final_dlp=float(wavg("final_dlp")),
            decoder_cache_hit_rate=float(wavg("decoder_cache_hit_rate")),
            batch_dedup_ratio=float(wavg("batch_dedup_ratio")),
        )

    if len(payloads) == 1:
        columns = payloads[0]["round_columns"]
    else:
        columns = sum(p["round_columns"] * w for p, w in zip(payloads, weights)) / total_shots
    round_records = [
        RoundRecord(
            round_index=index,
            data_leakage_population=float(row[0]),
            ancilla_leakage_population=float(row[1]),
            lrcs_applied=float(row[2]),
            false_positives=float(row[3]),
            false_negatives=float(row[4]),
            true_positives=float(row[5]),
        )
        for index, row in enumerate(columns)
    ]
    totals = {key: int(sum(p["totals"][key] for p in payloads)) for key in payloads[0]["totals"]}
    return RunResult(
        code_name=payloads[0]["code_name"],
        policy_name=payloads[0]["policy_name"],
        shots=total_shots,
        rounds=unit.rounds,
        noise=unit.noise,
        round_records=round_records,
        total_data_lrcs=totals["lrc"],
        total_ancilla_lrcs=totals["anc_lrc"],
        total_false_positives=totals["fp"],
        total_false_negatives=totals["fn"],
        total_true_positives=totals["tp"],
        total_leakage_events=totals["leak_events"],
        final_data_leaked=np.concatenate([p["final_data_leaked"] for p in payloads], axis=0),
        observable_flips=np.concatenate([p["observable_flips"] for p in payloads], axis=0),
    )


def summarize_unit(
    unit: WorkUnit, result: RunResult | MemoryResult, apply_labels: bool = True
) -> dict[str, Any]:
    """Produce the summary row a legacy runner function would have returned.

    Undecoded rows get the extra ``code`` and ``dlp_per_round`` keys that
    :func:`repro.experiments.compare_policies` always added; the unit's
    ``labels`` are stamped on last so sweeps can tag rows with their grid
    coordinates (distance, p, leakage ratio, ...).  The executor caches rows
    *without* labels (they are not part of the cache key) and re-stamps them
    on every hit, which is what ``apply_labels=False`` is for.
    """
    row = result.summary()
    if not unit.decoded:
        row["code"] = result.code_name
        row["dlp_per_round"] = result.dlp_per_round
    if apply_labels:
        apply_unit_labels(unit, row)
    return row


def apply_unit_labels(unit: WorkUnit, row: dict[str, Any]) -> dict[str, Any]:
    """Stamp the unit's grid-coordinate labels onto a summary row, in place."""
    for key, value in unit.labels:
        row[key] = value
    return row


def run_unit_serial(unit: WorkUnit) -> dict[str, Any]:
    """Run a unit in-process as one shard — bit-identical to the legacy path."""
    payload = run_shard(unit, unit.shots, unit.seed)
    return summarize_unit(unit, merge_shards(unit, [payload]))


def make_unit_noise(p: float, leakage_ratio: float) -> NoiseParams:
    """The paper's noise profile at one (p, leakage-ratio) grid point."""
    return paper_noise(p=p, leakage_ratio=leakage_ratio)
