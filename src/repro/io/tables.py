"""Plain-text table rendering for benchmark output.

The benchmarks print their reproduced tables and figure series directly to
stdout in a fixed-width format so the numbers can be compared with the paper
at a glance (no plotting dependencies are available offline).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["format_value", "format_table", "format_series", "banner"]


def format_value(value: Any, precision: int = 4) -> str:
    """Render one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.{precision - 1}e}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    rows: Iterable[dict[str, Any]] | Iterable[Sequence[Any]],
    headers: Sequence[str] | None = None,
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render rows (dicts or sequences) as an aligned fixed-width table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if isinstance(rows[0], dict):
        headers = list(headers) if headers else list(rows[0].keys())
        body = [[format_value(row.get(h, ""), precision) for h in headers] for row in rows]
    else:
        if headers is None:
            raise ValueError("headers are required when rows are sequences")
        headers = list(headers)
        body = [[format_value(cell, precision) for cell in row] for row in rows]

    widths = [len(h) for h in headers]
    for row in body:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)


def format_series(
    x_values: Sequence[Any],
    series: dict[str, Sequence[Any]],
    x_label: str = "x",
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render one figure's data series as a table with one column per curve."""
    headers = [x_label, *series.keys()]
    rows = []
    for index, x in enumerate(x_values):
        row = [x] + [values[index] for values in series.values()]
        rows.append(row)
    return format_table(rows, headers=headers, title=title, precision=precision)


def banner(text: str, width: int = 78) -> str:
    """A separator banner used between benchmark sections."""
    pad = max(0, width - len(text) - 2)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {text} {'=' * right}"
