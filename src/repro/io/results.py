"""Result records: saving and loading benchmark outputs.

Benchmarks write their summary rows as JSON so the tables and figures can be
regenerated or compared across runs without re-simulating; the helpers here
keep that serialisation in one place and NumPy-safe.  The sweep cache
(:mod:`repro.sweeps.cache`) serialises the same rows through
:func:`_jsonable`, so the conventions below are load-bearing for cache
round-trips, not just for human-readable output files.

Units of the serialised summary keys
------------------------------------
The metric dictionaries stored in a :class:`ResultRecord` come from
``RunResult.summary()`` / ``MemoryResult.summary()`` and mix three kinds of
quantities that are easy to confuse once they are flat JSON numbers:

* **Populations** (``mean_dlp``, ``final_dlp``, ``leakage_equilibrium``,
  ``dlp_per_round`` entries) are *fractions of data qubits* in ``[0, 1]``,
  averaged over the shot batch.
* **Per-round-per-shot rates** (``lrcs_per_round``, ``fp_per_round``,
  ``fn_per_round``, ``speculation_inaccuracy``) are average *counts* per
  QEC round per shot; they can exceed 1 on large codes (many qubits can be
  treated in one round).
* **Totals** (``total_leakage_events``, ``shots``, ``rounds``,
  ``failures``) are raw counts summed over the entire run — divide by
  ``shots * rounds`` (or ``shots``) yourself before comparing runs of
  different sizes.
* **Probabilities** (``ler``, ``ler_low``, ``ler_high``,
  ``ler_per_round``) are logical-error probabilities in ``[0, 1]``;
  ``ler`` is per whole experiment, ``ler_per_round`` its per-round
  equivalent.

Arrays (``dlp_per_round``) are serialised as JSON lists; loaders that need
NumPy semantics back must convert explicitly (the sweep cache does).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, is_dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ResultRecord", "save_records", "load_records", "results_dir"]

#: Default location for benchmark outputs, relative to the repository root.
DEFAULT_RESULTS_DIR = "results"


def results_dir(base: str | Path | None = None) -> Path:
    """Return (and create) the directory benchmark results are written to."""
    path = Path(base) if base is not None else Path(DEFAULT_RESULTS_DIR)
    path.mkdir(parents=True, exist_ok=True)
    return path


@dataclass
class ResultRecord:
    """One named experiment result: an identifier plus arbitrary summary fields."""

    experiment: str
    parameters: dict[str, Any]
    metrics: dict[str, Any]

    def flat(self) -> dict[str, Any]:
        """Single flat dictionary (parameters and metrics merged)."""
        return {"experiment": self.experiment, **self.parameters, **self.metrics}


def _jsonable(value: Any) -> Any:
    """Convert NumPy scalars/arrays and dataclasses into JSON-serialisable values."""
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.bool_):
        return bool(value)
    if is_dataclass(value) and not isinstance(value, type):
        return {key: _jsonable(item) for key, item in asdict(value).items()}
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def save_records(records: list[ResultRecord], path: str | Path) -> Path:
    """Write a list of result records to a JSON file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = [
        {
            "experiment": record.experiment,
            "parameters": _jsonable(record.parameters),
            "metrics": _jsonable(record.metrics),
        }
        for record in records
    ]
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_records(path: str | Path) -> list[ResultRecord]:
    """Read result records previously written by :func:`save_records`."""
    payload = json.loads(Path(path).read_text())
    return [
        ResultRecord(
            experiment=entry["experiment"],
            parameters=entry.get("parameters", {}),
            metrics=entry.get("metrics", {}),
        )
        for entry in payload
    ]
