"""Result persistence and plain-text table rendering."""

from .results import ResultRecord, load_records, results_dir, save_records
from .tables import banner, format_series, format_table, format_value

__all__ = [
    "ResultRecord",
    "save_records",
    "load_records",
    "results_dir",
    "format_table",
    "format_series",
    "format_value",
    "banner",
]
