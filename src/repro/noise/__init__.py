"""Noise model parameters for leakage-aware QEC simulation."""

from .model import NoiseParams, ideal_noise, paper_noise
from .schedule import (
    BurstNoiseParams,
    DriftingNoiseParams,
    FloodNoiseParams,
    ScheduledNoiseParams,
    burst_noise,
    drifting_noise,
    flood_noise,
)

__all__ = [
    "NoiseParams",
    "paper_noise",
    "ideal_noise",
    "ScheduledNoiseParams",
    "DriftingNoiseParams",
    "BurstNoiseParams",
    "FloodNoiseParams",
    "drifting_noise",
    "burst_noise",
    "flood_noise",
]
