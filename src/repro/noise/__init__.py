"""Noise model parameters for leakage-aware QEC simulation."""

from .model import NoiseParams, ideal_noise, paper_noise

__all__ = ["NoiseParams", "paper_noise", "ideal_noise"]
