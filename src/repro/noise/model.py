"""Circuit-level noise model with leakage (Section 6 of the paper).

The model is parameterised by a single physical error rate ``p`` plus the
leakage ratio ``lr`` (so the leakage probability is ``p_leak = lr * p``) and
the multi-level-readout error factor ``mlr`` (readout error for the leaked
``|2>`` state is ``mlr * p``).  All remaining knobs default to the values
stated or implied by the paper:

* depolarising data error at the start of each round, probability ``p``;
* two-qubit depolarising error after each entangling gate, probability ``p``;
* measurement and reset errors, probability ``p``;
* environment- and gate-induced leakage, probability ``p_leak`` each;
* leakage mobility of 10%: a leaked qubit transports its leakage to the other
  operand of a CNOT with probability 0.1, otherwise the healthy operand picks
  up a uniformly random Pauli (the "leaked control => 50% bit flip" effect
  characterised on IBM hardware in Section 2.3);
* LRC gadgets add extra gate error and can themselves induce leakage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..api.registry import register_noise

__all__ = ["NoiseParams", "paper_noise", "ideal_noise"]


@dataclass(frozen=True)
class NoiseParams:
    """All noise knobs used by the leakage simulator.

    Attributes
    ----------
    p:
        Physical (non-leakage) error probability used for depolarisation,
        gate, measurement, reset and initialisation errors.
    leakage_ratio:
        ``lr`` in the paper; the per-opportunity leakage probability is
        ``p_leak = leakage_ratio * p``.
    mlr_error_factor:
        ``mlr`` in the paper; multi-level readout misclassifies a leaked
        ancilla with probability ``mlr_error_factor * p``.
    leakage_mobility:
        Probability that a CNOT with one leaked operand transports the
        leakage onto the other operand (default 10%).
    lrc_error_factor:
        Depolarising error added to a qubit by one LRC gadget, as a multiple
        of ``p`` (SWAP-based LRCs cost roughly two extra entangling gates).
    lrc_leakage_factor:
        Leakage induced by one LRC gadget, as a multiple of ``p_leak``.
    gate_error_factor:
        Multiplier on the two-qubit depolarising error applied after each
        entangling gate (the gate error is ``gate_error_factor * p``, capped
        at 0.5).  1.0 reproduces the paper's model; time-structured presets
        raise it during correlated burst windows.
    lrc_removal_prob:
        Probability that an LRC applied to a genuinely leaked qubit returns
        it to the computational subspace.
    ancilla_reset_removes_leakage:
        Probability that the per-round ancilla measure-and-reset returns a
        leaked parity qubit to the computational subspace.  Parity qubits are
        measured every round, so their leakage is short-lived by default
        (1.0); data qubits have no such escape hatch, which is exactly why
        data-qubit leakage speculation is the hard problem the paper tackles.
    readout_leak_random:
        If True (default), a leaked qubit's standard two-level readout
        returns a uniformly random bit; if False it always reads ``1``.
    """

    p: float = 1e-3
    leakage_ratio: float = 0.1
    mlr_error_factor: float = 10.0
    leakage_mobility: float = 0.1
    gate_error_factor: float = 1.0
    lrc_error_factor: float = 2.0
    lrc_leakage_factor: float = 1.0
    lrc_removal_prob: float = 1.0
    ancilla_reset_removes_leakage: float = 1.0
    readout_leak_random: bool = True

    def __post_init__(self) -> None:
        for field_name in (
            "p",
            "leakage_ratio",
            "mlr_error_factor",
            "leakage_mobility",
            "gate_error_factor",
            "lrc_error_factor",
            "lrc_leakage_factor",
            "lrc_removal_prob",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")
        if not 0 <= self.leakage_mobility <= 1:
            raise ValueError("leakage_mobility must lie in [0, 1]")
        if not 0 <= self.lrc_removal_prob <= 1:
            raise ValueError("lrc_removal_prob must lie in [0, 1]")
        if not 0 <= self.ancilla_reset_removes_leakage <= 1:
            raise ValueError("ancilla_reset_removes_leakage must lie in [0, 1]")
        if self.p > 0.5:
            raise ValueError("physical error rate p must be at most 0.5")

    # ------------------------------------------------------------------ #
    # Derived probabilities
    # ------------------------------------------------------------------ #
    @property
    def p_leak(self) -> float:
        """Per-opportunity leakage probability, ``lr * p``."""
        return self.leakage_ratio * self.p

    @property
    def mlr_error(self) -> float:
        """Probability that MLR misclassifies a leaked state, capped at 0.5."""
        return min(0.5, self.mlr_error_factor * self.p)

    @property
    def gate_error(self) -> float:
        """Two-qubit depolarising error per entangling gate, capped at 0.5."""
        return min(0.5, self.gate_error_factor * self.p)

    @property
    def lrc_gate_error(self) -> float:
        """Depolarising error probability applied by one LRC gadget."""
        return min(0.5, self.lrc_error_factor * self.p)

    @property
    def lrc_leak_prob(self) -> float:
        """Leakage probability induced by one LRC gadget."""
        return self.lrc_leakage_factor * self.p_leak

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    def with_(self, **changes) -> "NoiseParams":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Time structure (overridden by scheduled presets)
    # ------------------------------------------------------------------ #
    @property
    def is_time_structured(self) -> bool:
        """Whether the parameters vary from round to round."""
        return False

    def params_for_round(self, round_index: int) -> "NoiseParams":
        """The effective (flat) parameters of one QEC round.

        The base model is stationary, so this returns ``self``.  Scheduled
        presets (:mod:`repro.noise.schedule`) override it with a
        *deterministic* function of the round index; the returned object
        must keep the zero-ness of every probability identical to the base
        parameters, because the simulator's draw plan decides which RNG
        draws exist per round from exactly those zero tests.
        """
        return self

    def describe(self) -> str:
        """Short human-readable parameter summary."""
        return (
            f"p={self.p:g}, lr={self.leakage_ratio:g} (p_leak={self.p_leak:g}), "
            f"mlr={self.mlr_error_factor:g}, mobility={self.leakage_mobility:g}"
        )


@register_noise("paper", rate_parameters=True,
                description="The paper's default error profile (mlr factor 10)")
def paper_noise(p: float = 1e-3, leakage_ratio: float = 0.1) -> NoiseParams:
    """The default error profile used throughout the paper's evaluation."""
    return NoiseParams(p=p, leakage_ratio=leakage_ratio, mlr_error_factor=10.0)


@register_noise("ideal", description="Noiseless profile (p=0, no leakage)")
def ideal_noise() -> NoiseParams:
    """A noiseless profile, useful for testing circuit plumbing."""
    return NoiseParams(p=0.0, leakage_ratio=0.0)


# Fully explicit parameters: every knob comes through ``NoiseConfig.overrides``
# (the sweep engine serialises arbitrary NoiseParams this way, so any noise
# point is expressible — and cache-keyable — as plain config data).
register_noise("custom", description="NoiseParams built entirely from overrides")(
    NoiseParams
)
