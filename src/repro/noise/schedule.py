"""Time-structured noise presets: deterministic per-round parameter schedules.

Real devices are not stationary: calibrations drift between recalibration
epochs, two-qubit gate fidelity degrades in correlated bursts (e.g. TLS
couplings wandering through resonance), and cosmic-ray-like events flood the
chip with leakage for a round or two.  The presets here model those three
time structures as *deterministic* functions of the QEC round index, layered
multiplicatively on top of the stationary paper model:

* ``drift`` — piecewise-constant calibration epochs.  Each epoch's rates are
  derived by pushing the base parameters through
  :meth:`repro.core.calibration.CalibrationData.drifted` with a seed fixed
  per epoch, so the schedule is reproducible and expressible as config data.
* ``bursts`` — periodic windows in which only the two-qubit entangling-gate
  error is raised (via :attr:`NoiseParams.gate_error_factor`), the
  correlated-error signature that stresses decoders far more than uniform
  rescaling.
* ``floods`` — rare rounds whose leakage injection rate jumps by a large
  factor, modelling transient leakage showers.

Determinism matters twice over: it keeps runs bit-for-bit reproducible under
the frozen RNG-draw-order contract, and it lets the simulator pre-compile
one draw-plan body per distinct epoch.  Every schedule preserves the
zero-ness of each probability (factors are strictly positive and apply
multiplicatively), which is what keeps the per-round draw plan aligned with
the per-round consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from functools import lru_cache

from ..api.registry import register_noise
from .model import NoiseParams

__all__ = [
    "ScheduledNoiseParams",
    "DriftingNoiseParams",
    "BurstNoiseParams",
    "FloodNoiseParams",
    "drifting_noise",
    "burst_noise",
    "flood_noise",
]

_BASE_FIELDS = tuple(field.name for field in fields(NoiseParams))


@dataclass(frozen=True)
class ScheduledNoiseParams(NoiseParams):
    """Base class for noise whose parameters vary deterministically per round.

    Subclasses override :meth:`params_for_round` to return a *flat*
    :class:`NoiseParams` for the given round; the flat view is what the
    simulator consumes for that round's thresholds.  The schedule itself
    (period lengths, factors, epoch seeds) lives in the subclass fields, so
    the whole time structure serialises through ``dataclasses.asdict`` like
    any other noise point.
    """

    @property
    def is_time_structured(self) -> bool:
        return True

    def flat(self, **changes) -> NoiseParams:
        """The stationary base parameters, optionally with fields replaced."""
        values = {name: getattr(self, name) for name in _BASE_FIELDS}
        values.update(changes)
        return NoiseParams(**values)

    def params_for_round(self, round_index: int) -> NoiseParams:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# Drifting calibration epochs
# --------------------------------------------------------------------- #
@lru_cache(maxsize=512)
def _drift_epoch_params(params: "DriftingNoiseParams", epoch: int) -> NoiseParams:
    from ..core.calibration import CalibrationData

    base = params.flat()
    if base.p <= 0:
        # Nothing to drift (and multiplicative scaling must not create
        # probability mass where the base model has none).
        return base
    reference = CalibrationData.from_noise(base)
    drifted = reference.drifted(params.drift_factor, seed=params.drift_seed + epoch)
    p_scale = drifted.data_error / reference.data_error
    p = min(0.5, base.p * p_scale)
    leakage_ratio = base.leakage_ratio
    if reference.leakage_rate > 0:
        # Keep p_leak = leakage_ratio * p tracking the drifted leakage rate
        # independently of the drifted p.
        leak_scale = drifted.leakage_rate / reference.leakage_rate
        leakage_ratio = base.leakage_ratio * leak_scale * (base.p / p)
    return base.with_(p=p, leakage_ratio=leakage_ratio)


@dataclass(frozen=True)
class DriftingNoiseParams(ScheduledNoiseParams):
    """Piecewise-constant calibration drift: one drifted rate set per epoch."""

    drift_factor: float = 1.5
    drift_epoch_rounds: int = 10
    drift_seed: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.drift_factor < 1:
            raise ValueError("drift_factor must be >= 1")
        if self.drift_epoch_rounds < 1:
            raise ValueError("drift_epoch_rounds must be a positive integer")

    def params_for_round(self, round_index: int) -> NoiseParams:
        return _drift_epoch_params(self, round_index // self.drift_epoch_rounds)


# --------------------------------------------------------------------- #
# Correlated two-qubit gate-error bursts
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BurstNoiseParams(ScheduledNoiseParams):
    """Periodic bursts that raise only the entangling-gate error."""

    burst_period: int = 7
    burst_rounds: int = 2
    burst_gate_factor: float = 8.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.burst_period < 1:
            raise ValueError("burst_period must be a positive integer")
        if not 0 <= self.burst_rounds <= self.burst_period:
            raise ValueError("burst_rounds must lie in [0, burst_period]")
        if self.burst_gate_factor <= 0:
            raise ValueError("burst_gate_factor must be positive")

    def params_for_round(self, round_index: int) -> NoiseParams:
        if round_index % self.burst_period < self.burst_rounds:
            return self.flat(
                gate_error_factor=self.gate_error_factor * self.burst_gate_factor
            )
        return self.flat()


# --------------------------------------------------------------------- #
# Rare leakage floods
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FloodNoiseParams(ScheduledNoiseParams):
    """Rare rounds whose leakage injection rate jumps by a large factor."""

    flood_period: int = 25
    flood_rounds: int = 1
    flood_leak_factor: float = 25.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.flood_period < 1:
            raise ValueError("flood_period must be a positive integer")
        if not 0 <= self.flood_rounds <= self.flood_period:
            raise ValueError("flood_rounds must lie in [0, flood_period]")
        if self.flood_leak_factor <= 0:
            raise ValueError("flood_leak_factor must be positive")

    def params_for_round(self, round_index: int) -> NoiseParams:
        if round_index % self.flood_period < self.flood_rounds:
            ratio = self.leakage_ratio * self.flood_leak_factor
            if self.p > 0:
                # Cap so the per-opportunity leakage probability stays <= 1.
                ratio = min(ratio, 1.0 / self.p)
            return self.flat(leakage_ratio=ratio)
        return self.flat()


# --------------------------------------------------------------------- #
# Registered presets
# --------------------------------------------------------------------- #
@register_noise("drift", rate_parameters=True, time_structured=True,
                description="Calibration drift in deterministic per-epoch steps")
def drifting_noise(
    p: float = 1e-3,
    leakage_ratio: float = 0.1,
    drift_factor: float = 1.5,
    drift_epoch_rounds: int = 10,
    drift_seed: int = 0,
) -> DriftingNoiseParams:
    """The paper's profile with per-epoch calibration drift layered on top."""
    return DriftingNoiseParams(
        p=p,
        leakage_ratio=leakage_ratio,
        mlr_error_factor=10.0,
        drift_factor=drift_factor,
        drift_epoch_rounds=drift_epoch_rounds,
        drift_seed=drift_seed,
    )


@register_noise("bursts", rate_parameters=True, time_structured=True,
                description="Correlated two-qubit gate-error bursts")
def burst_noise(
    p: float = 1e-3,
    leakage_ratio: float = 0.1,
    burst_period: int = 7,
    burst_rounds: int = 2,
    burst_gate_factor: float = 8.0,
) -> BurstNoiseParams:
    """The paper's profile with periodic entangling-gate error bursts."""
    return BurstNoiseParams(
        p=p,
        leakage_ratio=leakage_ratio,
        mlr_error_factor=10.0,
        burst_period=burst_period,
        burst_rounds=burst_rounds,
        burst_gate_factor=burst_gate_factor,
    )


@register_noise("floods", rate_parameters=True, time_structured=True,
                description="Rare leakage-flood rounds (transient showers)")
def flood_noise(
    p: float = 1e-3,
    leakage_ratio: float = 0.1,
    flood_period: int = 25,
    flood_rounds: int = 1,
    flood_leak_factor: float = 25.0,
) -> FloodNoiseParams:
    """The paper's profile with rare high-leakage rounds layered on top."""
    return FloodNoiseParams(
        p=p,
        leakage_ratio=leakage_ratio,
        mlr_error_factor=10.0,
        flood_period=flood_period,
        flood_rounds=flood_rounds,
        flood_leak_factor=flood_leak_factor,
    )
