"""The fused sim->decode pipeline: streaming chunks, no ``RunResult`` detour.

The two-step path materialises the full detector record inside a
:class:`~repro.sim.RunResult` (``record_detectors=True``) and the decoder
re-extracts syndromes from it — an allocation round-trip between the two
fastest subsystems in the repo.  :class:`FusedPipeline` removes it:

* the simulator's :meth:`~repro.sim.LeakageSimulator.run_incremental`
  writes each round's Z-detector chunk straight into one preallocated
  staging buffer (``detector_out=``, a gathered ``np.take`` instead of a
  fresh fancy-index copy per round),
* the chunk is immediately bit-packed into a :class:`~repro.pipeline.ring.
  PackedRing` slot (8 detector bits per byte, allocated once),
* windows are unpacked from the ring directly into the batched decoder's
  reusable input buffer and decoded through
  :meth:`~repro.decoders.base.DecoderBase.decode_edges_unique`, so the
  per-window Python commit loop runs once per *unique* syndrome and the
  results scatter back over shots vectorised.

Bit-identity is the contract, not an aspiration: pack→unpack is exact,
artifact XOR commutes with packing (GF(2) linearity), and the commit logic
is shared with :mod:`repro.realtime.window` (same ``_commit_edges``), so
fused and two-step results are equal bit for bit — pinned across the full
code × decoder × mode × kernel matrix by ``tests/test_pipeline.py`` and
against the golden fixtures.

Everything routes through the ``execution.fused`` config flag
(digest-exempt, like the other perf knobs): offline
:class:`~repro.experiments.memory.MemoryExperiment` batches, windowed
streaming, sweeps, and the :class:`~repro.realtime.service.DecodeService`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import span
from ..realtime.accounting import LatencyRecorder
from ..realtime.stream import FinalChunk, RoundChunk
from ..realtime.window import WindowedDecoder, _commit_edges, entries_commit
from ..sim import LeakageSimulator, RunResult
from .ring import PackedRing

__all__ = ["FusedPipeline", "FusedRun", "FusedWindowSession"]

#: Fused-path telemetry; no-ops unless a telemetry scope is active.
_OBS_CHUNKS = METRICS.counter(
    "pipeline.chunks", "detector chunks streamed through fused rings"
)
_OBS_WINDOWS = METRICS.counter(
    "pipeline.windows", "windows decoded on the fused streaming path"
)


@dataclass(frozen=True)
class FusedRun:
    """Outcome of one fused pipeline run.

    ``predictions`` are the per-shot logical-flip predictions and ``result``
    the simulator's :class:`~repro.sim.RunResult` — identical to the one the
    two-step path produces except that ``detector_history`` is ``None``
    (the record stayed in the ring; recording it would re-create exactly
    the allocation the fused path removes).
    """

    predictions: np.ndarray
    result: RunResult

    @property
    def failures(self) -> int | None:
        """Logical failures against the recorded observable flips."""
        if self.result.observable_flips is None:
            return None
        return int((self.predictions ^ self.result.observable_flips).sum())


def _num_z_stabs(code) -> int:
    return sum(1 for stab in code.stabilizers if stab.basis == "Z")


class FusedPipeline:
    """Wire one simulator run directly into a batched decoder.

    The pipeline owns the zero-copy staging buffer handed to
    ``run_incremental(detector_out=...)``; each yielded chunk *is* that
    buffer, consumed (packed into the ring) before the generator advances —
    the streaming contract documented on the simulator.
    """

    def __init__(
        self, simulator: LeakageSimulator, shots: int, rounds: int
    ) -> None:
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        self.simulator = simulator
        self.shots = int(shots)
        self.rounds = int(rounds)
        self.num_z_stabs = _num_z_stabs(simulator.code)
        self._staging = np.zeros((self.shots, self.num_z_stabs), dtype=bool)

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def run_offline(self, decoder) -> FusedRun:
        """Simulate and batch-decode without recording a detector history.

        ``decoder`` is anything exposing ``decode_batch(history, final)`` —
        a :class:`~repro.decoders.base.DecoderBase` or a
        :class:`~repro.realtime.window.WindowedDecoder`.  The whole run is
        buffered bit-packed (one eighth of the boolean record) and unpacked
        once into a single reusable history block for the batched decode.
        """
        ring = PackedRing(self.rounds, self.shots, self.num_z_stabs)
        with span("pipeline.run", mode="offline", shots=self.shots):
            result = self._drive(ring)
            history = ring.window(
                0,
                self.rounds,
                out=np.empty(
                    (self.shots, self.rounds, self.num_z_stabs), dtype=bool
                ),
            )
            predictions = decoder.decode_batch(history, result.final_detectors)
        return FusedRun(predictions=np.asarray(predictions, dtype=bool), result=result)

    def run_windowed(
        self, windowed: WindowedDecoder, recorder: LatencyRecorder | None = None
    ) -> FusedRun:
        """Simulate and decode through fused sliding windows."""
        if windowed.rounds != self.rounds:
            raise ValueError(
                f"windowed decoder expects {windowed.rounds} rounds, "
                f"pipeline runs {self.rounds}"
            )
        session = FusedWindowSession(windowed=windowed, shots=self.shots, recorder=recorder)
        with span("pipeline.run", mode="windowed", shots=self.shots):
            result = self._drive(session.ring, session)
            predictions = session.finish(
                FinalChunk(result.final_detectors, result.observable_flips)
            )
        return FusedRun(predictions=predictions, result=result)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _drive(
        self, ring: PackedRing, session: "FusedWindowSession | None" = None
    ) -> RunResult:
        """Run the incremental generator to exhaustion, packing every chunk.

        Every yield refills ``self._staging`` in place; the chunk is packed
        into the ring before the next ``next()`` call, which is what makes
        the in-place reuse sound.  A generator that exhausts without
        returning a :class:`~repro.sim.RunResult` (e.g. a patched or broken
        simulator) trips the guard instead of silently yielding ``None``.
        """
        generator = self.simulator.run_incremental(
            self.shots, self.rounds, detector_out=self._staging
        )
        result: RunResult | None = None
        try:
            while True:
                round_index, chunk = next(generator)
                ring.push(round_index, chunk)
                _OBS_CHUNKS.inc()
                if session is not None:
                    while session.ready():
                        session.step()
        except StopIteration as stop:
            result = stop.value
        finally:
            generator.close()
        if result is None:
            raise RuntimeError(
                "run_incremental exhausted without producing a RunResult"
            )
        return result


@dataclass
class FusedWindowSession:
    """Ring-backed drop-in for :class:`~repro.realtime.window.WindowSession`.

    Same protocol (``feed`` / ``ready`` / ``step`` / ``finish`` /
    ``windows_decoded``), same commit logic (shared ``_commit_edges``), same
    results bit for bit — but the round buffer is a bit-packed
    :class:`~repro.pipeline.ring.PackedRing` of ``window_rounds + 1`` slots,
    the decoder input is one preallocated window block refilled in place,
    and corrections are committed per *unique* syndrome
    (:meth:`~repro.decoders.base.DecoderBase.decode_edges_unique`) with the
    per-shot parity/artifact scatter vectorised.

    Buffer ownership within a step (see ``docs/architecture.md``): the
    producer may only :meth:`feed` the next round; :meth:`step` owns
    ``_history`` / ``_context`` / ``_artifacts`` and the committed ring
    slots it XORs artifacts into and releases.  Nothing here retains a view
    of a caller's chunk — ``feed`` packs the bits out immediately, so the
    caller (e.g. the fused staging buffer) may overwrite its array as soon
    as ``feed`` returns.
    """

    windowed: WindowedDecoder
    shots: int
    recorder: LatencyRecorder | None = None

    def __post_init__(self) -> None:
        self.start = 0
        self.windows_decoded = 0
        self.num_z_stabs = _num_z_stabs(self.windowed.code)
        window = self.windowed.effective_window
        # window + 1 slots: a full window plus its context round.
        self.ring = PackedRing(window + 1, self.shots, self.num_z_stabs)
        self._parity = np.zeros(self.shots, dtype=bool)
        self._history = np.empty((self.shots, window, self.num_z_stabs), dtype=bool)
        self._context = np.empty((self.shots, self.num_z_stabs), dtype=bool)
        self._artifacts = np.empty((self.shots, self.num_z_stabs), dtype=bool)

    # ------------------------------------------------------------------ #
    # Streaming interface (WindowSession protocol)
    # ------------------------------------------------------------------ #
    def feed(self, chunk: RoundChunk) -> None:
        """Buffer one round chunk (must arrive in round order)."""
        detectors = np.asarray(chunk.detectors)
        if detectors.shape[0] != self.shots:
            raise ValueError("chunk shot dimension does not match the session")
        self.ring.push(chunk.round_index, detectors)

    def ready(self) -> bool:
        """Whether an intermediate window can be decoded now."""
        window = self.windowed.effective_window
        end = self.start + window
        return end < self.windowed.rounds and end < self.ring.next_round

    @property
    def rounds_fed(self) -> int:
        """Rounds buffered so far (the next expected chunk index)."""
        return self.ring.next_round

    def window_inputs(self) -> tuple[np.ndarray, np.ndarray]:
        """The next ready window's ``(history, context)`` decode inputs.

        Both arrays are this session's reusable unpack buffers — valid until
        the next ``window_inputs`` / ``step`` call, so a coalescer stacking
        several sessions' inputs must copy (``np.concatenate`` does).
        """
        if not self.ready():
            raise RuntimeError("no window is ready; feed more chunks first")
        window = self.windowed.effective_window
        self.ring.window(self.start, window, out=self._history)
        self.ring.read_round(self.start + window, out=self._context)
        return self._history, self._context

    def commit_window(
        self,
        entries: list[tuple[tuple[int, int], ...]],
        inverse: np.ndarray,
        started: float | None = None,
    ) -> None:
        """Commit one decoded window from per-unique-syndrome ``entries``.

        Same contract as :meth:`repro.realtime.window.WindowSession.
        commit_window`; artifacts are XOR-ed in the packed domain.
        """
        window = self.windowed.effective_window
        commit = self.windowed.commit_rounds
        assert commit is not None  # WindowedDecoder.__post_init__ resolves it
        start = self.start
        graph, _ = self.windowed.decoder_for(window)
        flips, masks = entries_commit(entries, graph, commit)
        self._parity ^= flips[inverse]
        if masks.any():
            # Scatter the unique artifact masks back over shots and XOR them
            # into the boundary round *in the packed domain* — bit-identical
            # to the boolean XOR because packing is GF(2)-linear.
            np.take(masks, inverse, axis=0, out=self._artifacts)
            self.ring.xor_round(start + commit, self._artifacts)

        self.ring.release_until(start + commit)
        self.start += commit
        self.windows_decoded += 1
        _OBS_WINDOWS.inc()
        if self.recorder is not None:
            elapsed = 0.0 if started is None else time.perf_counter() - started
            self.recorder.record(commit, elapsed)

    def step(self) -> None:
        """Decode the next intermediate window and commit its oldest rounds."""
        started = time.perf_counter()
        history, context = self.window_inputs()
        _, decoder = self.windowed.decoder_for(self.windowed.effective_window)
        entries, inverse = decoder.decode_edges_unique(history, context)
        self.commit_window(entries, inverse, started)

    def finish(self, final: FinalChunk) -> np.ndarray:
        """Decode the tail window against the final readout; return predictions."""
        if self.ring.next_round != self.windowed.rounds:
            raise RuntimeError(
                f"stream incomplete: fed {self.ring.next_round} of "
                f"{self.windowed.rounds} rounds"
            )
        while self.ready():  # flush any windows the caller did not step
            self.step()
        tail = self.windowed.rounds - self.start
        started = time.perf_counter()
        history = self.ring.window(self.start, tail, out=self._history[:, :tail, :])
        final_detectors = np.asarray(final.final_detectors, dtype=bool)
        graph, decoder = self.windowed.decoder_for(tail)
        # Commit boundary beyond the last layer: every edge is finalised.
        commit_all = graph.num_layers
        entries, inverse = decoder.decode_edges_unique(history, final_detectors)
        flips = np.zeros(len(entries), dtype=bool)
        for index, edges in enumerate(entries):
            flip, artifact_stabs = _commit_edges(edges, graph, commit_all)
            assert not artifact_stabs
            flips[index] = flip
        self._parity ^= flips[inverse]
        self.ring.clear()
        self.windows_decoded += 1
        _OBS_WINDOWS.inc()
        if self.recorder is not None:
            self.recorder.record(tail, time.perf_counter() - started)
        return self._parity.copy()
