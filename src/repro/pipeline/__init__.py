"""Fused zero-copy sim->decode pipeline (see :mod:`repro.pipeline.fused`).

Enabled per experiment via the digest-exempt ``execution.fused`` config
flag; results are bit-identical to the two-step path, only faster.
"""

from .fused import FusedPipeline, FusedRun, FusedWindowSession
from .ring import PackedRing, pack_chunk, unpack_chunk

__all__ = [
    "FusedPipeline",
    "FusedRun",
    "FusedWindowSession",
    "PackedRing",
    "pack_chunk",
    "unpack_chunk",
]
