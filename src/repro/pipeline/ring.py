"""Packed-uint8 ring buffers for the fused sim->decode streaming path.

The two-step pipeline hands detector data between the simulator and the
decoder as boolean arrays: one byte per detector bit, one fresh allocation
per round, and — offline — a full ``(shots, rounds, num_z)`` record inside
a :class:`~repro.sim.RunResult`.  The fused path replaces all of that with
one preallocated :class:`PackedRing`: each round's chunk is bit-packed
(``np.packbits``, 8 detector bits per byte) into a fixed slot of a
circular ``(capacity, shots, nbytes)`` uint8 store, windows are unpacked
straight into the decoder's reusable input buffer, and boundary artifacts
are XOR-ed in the *packed* domain (packing is GF(2)-linear per bit
position, so ``pack(a ^ b) == pack(a) ^ pack(b)`` exactly — the property
``tests/test_properties.py`` pins).

Buffer ownership (see ``docs/architecture.md`` for the full diagram):

* the **producer** (simulator side) may write only through :meth:`push`,
  and only the round one past the newest buffered round;
* the **consumer** (decoder side) reads any buffered round via
  :meth:`read_round` / :meth:`window`, may XOR artifact masks into a
  buffered round via :meth:`xor_round`, and releases rounds in order with
  :meth:`release_until`;
* a slot is reusable by the producer only after the consumer released it —
  :meth:`push` enforces the capacity bound instead of silently wrapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackedRing", "pack_chunk", "unpack_chunk"]


def pack_chunk(detectors: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Bit-pack one ``(shots, num_detectors)`` boolean chunk into uint8 rows.

    Returns a ``(shots, ceil(num_detectors / 8))`` uint8 array (big-endian
    bit order, ``np.packbits`` semantics).  ``out`` receives the packed
    bytes in place when given, so a ring slot can be filled without
    retaining the intermediate.
    """
    detectors = np.asarray(detectors, dtype=bool)
    if detectors.ndim != 2:
        raise ValueError("detector chunk must be (shots, num_detectors)")
    packed = np.packbits(detectors, axis=1)
    if out is None:
        return packed
    if out.shape != packed.shape or out.dtype != np.uint8:
        raise ValueError(
            f"out must be uint8 with shape {packed.shape}, got "
            f"{out.dtype} {out.shape}"
        )
    np.copyto(out, packed)
    return out


def unpack_chunk(
    packed: np.ndarray, num_detectors: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Inverse of :func:`pack_chunk`: unpack uint8 rows to a boolean chunk.

    ``num_detectors`` recovers the true width (packing pads the last byte
    with zero bits).  ``out`` receives the booleans in place when given.
    """
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim != 2:
        raise ValueError("packed chunk must be (shots, nbytes)")
    shots = packed.shape[0]
    if out is None:
        out = np.empty((shots, num_detectors), dtype=bool)
    elif out.shape != (shots, num_detectors) or out.dtype != np.bool_:
        raise ValueError(
            f"out must be bool with shape {(shots, num_detectors)}, got "
            f"{out.dtype} {out.shape}"
        )
    if num_detectors:
        out[...] = np.unpackbits(packed, axis=1, count=num_detectors)
    return out


class PackedRing:
    """A circular store of bit-packed detector rounds with bounded memory.

    ``capacity`` rounds of ``(shots, num_detectors)`` boolean chunks are
    held as ``(capacity, shots, ceil(num_detectors / 8))`` uint8 — one
    eighth of the boolean footprint, allocated exactly once.  Rounds are
    addressed by their absolute round index; the valid range is
    ``[base, next_round)`` where ``base`` advances via
    :meth:`release_until` and ``next_round`` via :meth:`push`.
    """

    def __init__(self, capacity: int, shots: int, num_detectors: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if shots < 0 or num_detectors < 0:
            raise ValueError("shots and num_detectors must be non-negative")
        self.capacity = int(capacity)
        self.shots = int(shots)
        self.num_detectors = int(num_detectors)
        self.nbytes = (self.num_detectors + 7) // 8
        self._slots = np.zeros((self.capacity, self.shots, self.nbytes), dtype=np.uint8)
        #: Oldest buffered round (inclusive) and next expected round.
        self.base = 0
        self.next_round = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def push(self, round_index: int, detectors: np.ndarray) -> None:
        """Pack one round's chunk into its slot (must arrive in order)."""
        if round_index != self.next_round:
            raise ValueError(
                f"rounds must arrive in order; expected round {self.next_round}, "
                f"got {round_index}"
            )
        if round_index - self.base >= self.capacity:
            raise ValueError(
                f"ring full: round {self.base} not released yet "
                f"(capacity {self.capacity})"
            )
        detectors = np.asarray(detectors, dtype=bool)
        if detectors.shape != (self.shots, self.num_detectors):
            raise ValueError(
                f"chunk must be {(self.shots, self.num_detectors)}, "
                f"got {detectors.shape}"
            )
        pack_chunk(detectors, out=self._slot(round_index))
        self.next_round += 1

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def read_round(self, round_index: int, out: np.ndarray | None = None) -> np.ndarray:
        """Unpack one buffered round into ``out`` (or a fresh bool array)."""
        self._check_buffered(round_index)
        return unpack_chunk(self._slot(round_index), self.num_detectors, out=out)

    def window(self, start: int, length: int, out: np.ndarray | None = None) -> np.ndarray:
        """Unpack rounds ``[start, start + length)`` into a (shots, length, n) block.

        ``out`` is the decoder's reusable input buffer; passing it makes the
        window assembly allocation-free apart from ``np.unpackbits``'s small
        per-round temporary.
        """
        if length < 0:
            raise ValueError("length must be non-negative")
        if out is None:
            out = np.empty((self.shots, length, self.num_detectors), dtype=bool)
        elif out.shape != (self.shots, length, self.num_detectors) or out.dtype != np.bool_:
            raise ValueError(
                f"out must be bool with shape "
                f"{(self.shots, length, self.num_detectors)}, got {out.dtype} {out.shape}"
            )
        for offset in range(length):
            self.read_round(start + offset, out=out[:, offset, :])
        return out

    def xor_round(self, round_index: int, mask: np.ndarray) -> None:
        """XOR a boolean mask into a buffered round, in the packed domain.

        Packing is GF(2)-linear per bit position, so XOR-ing the packed mask
        into the packed slot is bit-identical to XOR-ing the boolean arrays
        and re-packing — the windowed decoder's boundary-artifact commit.
        """
        self._check_buffered(round_index)
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self.shots, self.num_detectors):
            raise ValueError(
                f"mask must be {(self.shots, self.num_detectors)}, got {mask.shape}"
            )
        self._slot(round_index)[...] ^= np.packbits(mask, axis=1)

    def release_until(self, round_index: int) -> None:
        """Release every buffered round below ``round_index`` back to the producer."""
        if round_index < self.base:
            raise ValueError(
                f"cannot release below base {self.base} (got {round_index})"
            )
        if round_index > self.next_round:
            raise ValueError(
                f"cannot release unbuffered rounds (next is {self.next_round})"
            )
        self.base = round_index

    def clear(self) -> None:
        """Release everything; the ring restarts empty at ``next_round``."""
        self.base = self.next_round

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _slot(self, round_index: int) -> np.ndarray:
        return self._slots[round_index % self.capacity]

    def _check_buffered(self, round_index: int) -> None:
        if not self.base <= round_index < self.next_round:
            raise ValueError(
                f"round {round_index} is not buffered "
                f"(valid range [{self.base}, {self.next_round}))"
            )
