"""Unified observability: spans, metrics and run manifests.

Three pieces, one switch:

* :mod:`repro.obs.metrics` — process-wide Counter/Gauge/Histogram registry
  (``METRICS``), off by default, per-thread accumulation when on;
* :mod:`repro.obs.trace` — nestable spans exported as Chrome ``trace_event``
  JSON (Perfetto / ``chrome://tracing``) plus a flat JSONL event log;
* :mod:`repro.obs.manifest` — run-provenance manifests (config digest,
  engine version, seed, git sha, package versions, platform).

Activation flows through :func:`telemetry_scope`: ``Session.run`` /
``stream`` / ``sweep`` wrap their execution in one, targeting whatever
:func:`resolve_telemetry` picks from ``execution.telemetry``, the
``REPRO_TELEMETRY`` environment variable, or the CLI ``--trace`` flag.

Two invariants, both asserted by tests/CI: telemetry never touches the
simulation RNG (runs are bit-identical on and off), and the disabled path
costs <=2% on the simulator round loop (``benchmarks/bench_obs_overhead.py``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from .manifest import MANIFEST_SCHEMA, build_manifest, write_manifest
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    instant,
    span,
)

__all__ = [
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Span",
    "Tracer",
    "current_tracer",
    "span",
    "instant",
    "MANIFEST_SCHEMA",
    "build_manifest",
    "write_manifest",
    "resolve_telemetry",
    "telemetry_scope",
]

_ENABLE_TOKENS = frozenset({"1", "on", "true", "yes"})
_DISABLE_TOKENS = frozenset({"", "0", "off", "false", "no"})


def resolve_telemetry(config: Any = None, cli_trace: str | None = None) -> str | None:
    """Pick the telemetry target: CLI flag > config field > environment.

    Returns ``None`` (telemetry off — the default), a trace-file path, or
    the literal ``"on"`` (telemetry active without writing files, which is
    how ``REPRO_TELEMETRY=1`` enables metrics for embedding callers).
    """
    target: Any = cli_trace
    if target is None and config is not None:
        target = getattr(config.execution, "telemetry", None)
    if target is None:
        target = os.environ.get("REPRO_TELEMETRY", "")
    target = str(target).strip()
    lowered = target.lower()
    if lowered in _DISABLE_TOKENS:
        return None
    if lowered in _ENABLE_TOKENS:
        return "on"
    return target


@contextmanager
def telemetry_scope(
    target: str | None,
    *,
    config: Any = None,
    manifest_extra: dict[str, Any] | None = None,
) -> Iterator[Tracer | None]:
    """Activate tracing + metrics for a block; export files on exit.

    ``target`` is :func:`resolve_telemetry` output: ``None`` makes the whole
    scope a no-op, ``"on"`` activates without writing files, and any other
    string is the Chrome-trace output path — on exit the scope also writes
    ``<path>.jsonl`` (flat event log) and ``<path>.manifest.json``
    (provenance) next to it.

    Scopes are reentrant by *joining*: when a tracer is already active the
    inner scope yields it untouched and writes nothing, so nested Session
    calls (a sweep shard running under a traced CLI run, say) feed one
    event stream owned by the outermost scope.
    """
    if target is None:
        yield None
        return
    existing = current_tracer()
    if existing is not None:
        yield existing
        return
    tracer = Tracer()
    activate(tracer)
    METRICS.reset()
    METRICS.enable()
    try:
        yield tracer
    finally:
        deactivate()
        try:
            if target.lower() not in _ENABLE_TOKENS:
                path = Path(target)
                tracer.write_chrome(path)
                tracer.write_jsonl(path.with_suffix(".jsonl"))
                write_manifest(
                    path.with_suffix(".manifest.json"),
                    config=config,
                    extra=manifest_extra,
                )
        finally:
            METRICS.disable()
