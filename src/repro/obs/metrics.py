"""Process-wide metrics: counters, gauges and histograms.

Instruments are registered once (usually at module import of the code they
instrument) and shared by every thread.  The design goal is a *null backend
by default*: a disabled instrument's ``inc`` / ``set`` / ``observe`` is one
attribute load and one branch, so instrumented hot paths cost nothing
measurable when telemetry is off (``benchmarks/bench_obs_overhead.py``
asserts the <=2% bound on the simulator round loop).

When enabled, counters and histograms accumulate **per thread** — each
thread writes its own slot of a ``threading.get_ident()``-keyed dict, so the
hot path takes no lock; slots are merged only when a snapshot is read.  The
enable switch is a mutable flag object shared between a registry and every
instrument it created, so flipping the registry flips all of them at once.

None of this ever touches the simulation RNG: instruments only *read* wall
clocks and counts, which is what keeps telemetry outside the frozen
RNG-draw-order contract.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class _Flag:
    """Mutable on/off switch shared between a registry and its instruments."""

    __slots__ = ("on",)

    def __init__(self, on: bool) -> None:
        self.on = on


#: Instruments built outside a registry (e.g. the realtime latency recorder's
#: internal histogram) are always live: they meter their own data structure,
#: not the global telemetry pipeline.
_ALWAYS_ON = _Flag(True)


class Counter:
    """Monotonically increasing count with lock-free per-thread slots."""

    __slots__ = ("name", "description", "_flag", "_parts")

    def __init__(self, name: str, description: str = "", flag: _Flag = _ALWAYS_ON):
        self.name = name
        self.description = description
        self._flag = flag
        self._parts: dict[int, int] = {}

    def inc(self, amount: int = 1) -> None:
        if not self._flag.on:
            return
        parts = self._parts
        ident = threading.get_ident()
        parts[ident] = parts.get(ident, 0) + amount

    @property
    def value(self) -> int:
        # dict.copy() is atomic under the GIL; summing the copy is safe even
        # while other threads keep incrementing their slots.
        return sum(self._parts.copy().values())

    def reset(self) -> None:
        self._parts = {}

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """Last-written value (queue depths, pool sizes)."""

    __slots__ = ("name", "description", "_flag", "_value")

    def __init__(self, name: str, description: str = "", flag: _Flag = _ALWAYS_ON):
        self.name = name
        self.description = description
        self._flag = flag
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._flag.on:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Streaming distribution with exact quantiles over per-thread buffers.

    Observations are kept in full (runs here are bounded — thousands of
    windows, not millions of requests), so ``percentile`` is exact
    ``np.percentile`` over the merged sample, matching what the realtime
    accounting computed before it moved onto this primitive.
    """

    __slots__ = ("name", "description", "_flag", "_parts")

    def __init__(self, name: str = "", description: str = "", flag: _Flag = _ALWAYS_ON):
        self.name = name
        self.description = description
        self._flag = flag
        self._parts: dict[int, list[float]] = {}

    def observe(self, value: float) -> None:
        if not self._flag.on:
            return
        parts = self._parts
        ident = threading.get_ident()
        bucket = parts.get(ident)
        if bucket is None:
            bucket = parts[ident] = []
        bucket.append(float(value))

    def values(self) -> np.ndarray:
        """Merged observations across threads (arbitrary inter-thread order)."""
        merged: list[float] = []
        for bucket in self._parts.copy().values():
            merged.extend(bucket)
        return np.asarray(merged, dtype=float)

    @property
    def count(self) -> int:
        return sum(len(bucket) for bucket in self._parts.copy().values())

    def percentile(self, q: float) -> float:
        values = self.values()
        if not values.size:
            return 0.0
        return float(np.percentile(values, q))

    def reset(self) -> None:
        self._parts = {}

    def snapshot(self) -> dict[str, float]:
        values = self.values()
        if not values.size:
            return {"count": 0}
        return {
            "count": int(values.size),
            "sum": float(values.sum()),
            "mean": float(values.mean()),
            "min": float(values.min()),
            "max": float(values.max()),
            "p50": float(np.percentile(values, 50)),
            "p99": float(np.percentile(values, 99)),
        }


class MetricsRegistry:
    """Named instruments behind one enable switch (off by default).

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: instrumented
    modules declare their instruments at import time and the registry hands
    the same object back on every call, so call sites and report readers
    agree on identity by name.
    """

    def __init__(self) -> None:
        self._flag = _Flag(False)
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    @property
    def enabled(self) -> bool:
        return self._flag.on

    def enable(self) -> None:
        self._flag.on = True

    def disable(self) -> None:
        self._flag.on = False

    def _get_or_create(self, cls: type, name: str, description: str) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, description, flag=self._flag)
                self._instruments[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} is already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, description: str = "") -> Counter:
        return self._get_or_create(Counter, name, description)

    def gauge(self, name: str, description: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, description)

    def histogram(self, name: str, description: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, description)

    def instruments(self) -> Iterable[Counter | Gauge | Histogram]:
        with self._lock:
            return list(self._instruments.values())

    def reset(self) -> None:
        """Zero every instrument (fresh accumulation for a new scope)."""
        for instrument in self.instruments():
            instrument.reset()

    def snapshot(self) -> dict[str, Any]:
        """Flat name -> value dict of everything accumulated so far."""
        return {
            instrument.name: instrument.snapshot()
            for instrument in sorted(self.instruments(), key=lambda i: i.name)
        }


#: The process-wide registry every instrumented subsystem registers into.
METRICS = MetricsRegistry()
