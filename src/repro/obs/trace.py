"""Nestable spans exported as Chrome ``trace_event`` JSON and flat JSONL.

One :class:`Tracer` collects the events of one telemetry scope.  Spans are
plain context managers::

    with span("sim.round", round=i):
        ...

Each span becomes a Chrome "complete" event (``ph: "X"``) with microsecond
``ts`` / ``dur`` relative to the tracer's start, the process id as ``pid``
and the OS thread id as ``tid`` — exactly the shape ``chrome://tracing`` and
https://ui.perfetto.dev load directly.  Nesting needs no bookkeeping: the
viewers reconstruct the stack per thread from interval containment, which
context-manager discipline guarantees.

When no tracer is active (the default), the module-level :func:`span`
returns a shared no-op context manager and :func:`current_tracer` returns
``None`` — hot loops hoist that check so the disabled path costs one
``is not None`` per round, inside the <=2% overhead budget that
``benchmarks/bench_obs_overhead.py`` asserts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Any

__all__ = [
    "Span",
    "Tracer",
    "current_tracer",
    "activate",
    "deactivate",
    "span",
    "instant",
    "NULL_SPAN",
]


class Span:
    """Context manager emitting one complete ("X") event on exit."""

    __slots__ = ("_tracer", "name", "args", "_start_ns")

    def __init__(self, tracer: "Tracer", name: str, args: dict[str, Any] | None):
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start_ns = 0

    def __enter__(self) -> "Span":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer.complete_ns(
            self.name, self._start_ns, time.perf_counter_ns(), self.args
        )
        return False


class _NullSpan:
    """The telemetry-off span: enters and exits without doing anything."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


#: Shared no-op instance handed out whenever no tracer is active.
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects trace events for one scope; thread-safe on the append path."""

    def __init__(self) -> None:
        self._events: list[dict[str, Any]] = []
        self._lock = threading.Lock()
        self.pid = os.getpid()
        self.t0_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def span(self, name: str, **args: Any) -> Span:
        return Span(self, name, args or None)

    def complete_ns(
        self,
        name: str,
        start_ns: int,
        end_ns: int,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Record a complete event from raw ``perf_counter_ns`` endpoints.

        Hot loops that already hold phase tick timestamps call this directly
        instead of nesting :class:`Span` objects, so instrumentation adds no
        clock reads beyond the ones the phase accounting takes anyway.
        """
        event: dict[str, Any] = {
            "name": name,
            "ph": "X",
            "pid": self.pid,
            "tid": threading.get_ident(),
            "ts": (start_ns - self.t0_ns) / 1e3,
            "dur": (end_ns - start_ns) / 1e3,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    def instant(self, name: str, **args: Any) -> None:
        """Record a zero-duration marker (cache hits, backpressure stalls)."""
        event: dict[str, Any] = {
            "name": name,
            "ph": "i",
            "s": "t",
            "pid": self.pid,
            "tid": threading.get_ident(),
            "ts": (time.perf_counter_ns() - self.t0_ns) / 1e3,
        }
        if args:
            event["args"] = args
        with self._lock:
            self._events.append(event)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def events(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def write_chrome(self, path: str | Path) -> Path:
        """Write the Chrome ``trace_event`` JSON object form."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"traceEvents": self.events(), "displayTimeUnit": "ms"}
        path.write_text(json.dumps(document, indent=1) + "\n")
        return path

    def write_jsonl(self, path: str | Path) -> Path:
        """Write the flat one-event-per-line log (grep/jq-friendly)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        lines = [json.dumps(event, sort_keys=True) for event in self.events()]
        path.write_text("\n".join(lines) + ("\n" if lines else ""))
        return path


# --------------------------------------------------------------------- #
# The active tracer (one per process; scopes nest by joining)
# --------------------------------------------------------------------- #
_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | None:
    """The tracer of the enclosing telemetry scope, or ``None`` when off."""
    return _ACTIVE


def activate(tracer: Tracer) -> None:
    global _ACTIVE
    _ACTIVE = tracer


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def span(name: str, **args: Any) -> Span | _NullSpan:
    """A span on the active tracer, or the shared no-op when telemetry is off."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **args)


def instant(name: str, **args: Any) -> None:
    """An instant marker on the active tracer; no-op when telemetry is off."""
    tracer = _ACTIVE
    if tracer is not None:
        tracer.instant(name, **args)
