"""Run-provenance manifests emitted next to results.

A manifest answers "what exactly produced this file?": the config (and its
content digest), the seed, the sweep engine version, the git revision, the
package versions and the platform — everything needed to re-run or to
explain a numeric discrepancy months later.  Traced CLI runs write one as
``<trace>.manifest.json``; :func:`write_manifest` is also public for result
writers that want a manifest without tracing.

Fields that cannot be determined (no git checkout, package without a
version attribute) are recorded as ``None`` rather than failing the run:
provenance is advisory, never load-bearing.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any

__all__ = ["MANIFEST_SCHEMA", "build_manifest", "write_manifest"]

#: Schema tag stamped into every manifest so readers can dispatch on shape.
MANIFEST_SCHEMA = "repro.run-manifest/v1"

#: Third-party packages whose versions affect numerics or performance.
_PACKAGES = ("numpy", "scipy", "networkx")


def _git_revision() -> dict[str, Any] | None:
    """Current commit sha and dirty flag, or ``None`` outside a checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=5, check=True,
        ).stdout
        return {"sha": sha, "dirty": bool(status.strip())}
    except Exception:  # pragma: no cover - no git binary / not a checkout
        return None


def _package_versions() -> dict[str, str | None]:
    versions: dict[str, str | None] = {}
    for name in _PACKAGES:
        try:
            module = __import__(name)
            versions[name] = getattr(module, "__version__", None)
        except Exception:  # pragma: no cover - package not installed
            versions[name] = None
    return versions


def build_manifest(
    config: Any = None,
    *,
    seed: int | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the provenance dict for one run.

    ``config`` is an :class:`~repro.api.config.ExperimentConfig` (or any
    object with ``to_dict`` / ``digest`` / ``execution.seed``); ``extra``
    merges caller-specific keys (sweep shapes, fuzz tallies) into the top
    level.  When the metrics registry is live its snapshot is embedded, so a
    traced run's manifest doubles as its counter report.
    """
    from ..sweeps.units import ENGINE_VERSION
    from .metrics import METRICS

    manifest: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "created_unix": time.time(),
        "engine_version": ENGINE_VERSION,
        "platform": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "system": platform.system(),
            "machine": platform.machine(),
        },
        "packages": _package_versions(),
        "git": _git_revision(),
    }
    if config is not None:
        manifest["config"] = config.to_dict()
        manifest["config_digest"] = config.digest()
        manifest["seed"] = config.execution.seed
    if seed is not None:
        manifest["seed"] = seed
    if METRICS.enabled:
        manifest["metrics"] = METRICS.snapshot()
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    path: str | Path,
    config: Any = None,
    *,
    seed: int | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write :func:`build_manifest` output as pretty JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = build_manifest(config, seed=seed, extra=extra)
    path.write_text(json.dumps(manifest, indent=2, sort_keys=True, default=str) + "\n")
    return path
