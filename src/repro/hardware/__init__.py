"""Hardware cost models: FPGA resources and the speculation microarchitecture."""

from .fpga import (
    ERASER_TABLE3_LUTS,
    FpgaReport,
    eraser_luts,
    gladiator_luts,
    lut_reduction_factor,
    luts_for_expression,
    resource_report,
)
from .microarchitecture import (
    ROUND_LATENCY_NS,
    SPECULATION_LATENCY_NS,
    DataParityAdjacencyGenerator,
    GladiatorMicroarchitecture,
    LrcScheduler,
    SequenceChecker,
    realtime_deadline_ns,
)

__all__ = [
    "gladiator_luts",
    "eraser_luts",
    "lut_reduction_factor",
    "luts_for_expression",
    "resource_report",
    "FpgaReport",
    "ERASER_TABLE3_LUTS",
    "DataParityAdjacencyGenerator",
    "SequenceChecker",
    "LrcScheduler",
    "GladiatorMicroarchitecture",
    "ROUND_LATENCY_NS",
    "SPECULATION_LATENCY_NS",
    "realtime_deadline_ns",
]
