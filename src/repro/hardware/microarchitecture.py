"""Software model of the GLADIATOR microarchitecture (Section 4.4, Figure 7).

The online datapath has three blocks:

* the **data-parity adjacency generator** gathers, for every data qubit, the
  syndrome bits of its adjacent parity qubits and normalises them into the
  uniform 5-bit tagged representation (a mux network in hardware),
* the **sequence checker** matches the tagged pattern against the minimised
  Boolean leakage templates (pure combinational logic, ~10 LUTs, ~1 ns),
* the **LRC scheduler** collects the per-qubit match bits (plus any MLR
  flags) and requests leakage-reduction circuits for the next round.

This module implements the same pipeline in software so the hardware cost
model, the Boolean templates of Appendix B and the lookup-table policies can
be cross-checked against one another.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from ..codes.base import StabilizerCode
from ..core.boolean_minimize import Implicant, evaluate, expression_to_string, quine_mccluskey
from ..core.patterns import TAG_PREFIXES, tag_pattern
from ..core.speculator import LookupPolicy
from .fpga import GLADIATOR_LUTS_PER_CHECKER, QUBITS_PER_CHECKER, luts_for_expression

__all__ = [
    "DataParityAdjacencyGenerator",
    "SequenceChecker",
    "LrcScheduler",
    "GladiatorMicroarchitecture",
    "ROUND_LATENCY_NS",
    "SPECULATION_LATENCY_NS",
    "realtime_deadline_ns",
]

#: Cadence of one full syndrome-extraction round on the superconducting
#: platform the paper targets (four ~25 ns CNOT layers plus readout/reset):
#: the deadline by which the online datapath must have reacted.
ROUND_LATENCY_NS = 1000.0

#: Settle time of the combinational sequence checker (Section 4.4): the
#: speculation decision itself costs about one nanosecond of logic depth.
SPECULATION_LATENCY_NS = 1.0

def realtime_deadline_ns(rounds: int) -> float:
    """Wall-clock budget for keeping up with ``rounds`` QEC rounds.

    A decoder (or decode service) that processes a stream's rounds in less
    than this is running faster than the hardware produces syndrome data —
    the :mod:`repro.realtime` accounting reports measured latency as a
    fraction of this budget.
    """
    if rounds <= 0:
        raise ValueError("rounds must be positive")
    return rounds * ROUND_LATENCY_NS


@dataclass
class DataParityAdjacencyGenerator:
    """Gather per-data-qubit parity bits and tag them to a uniform width."""

    code: StabilizerCode

    @cached_property
    def _gather(self) -> list[tuple[int, list[tuple[int, ...]]]]:
        gather = []
        for qubit in range(self.code.num_data):
            groups = [
                tuple(group.stabilizers)
                for group in self.code.speculation_groups[qubit]
            ]
            gather.append((qubit, groups))
        return gather

    def patterns(self, syndrome: np.ndarray) -> list[tuple[int, int, int]]:
        """Per-data-qubit patterns for one round of parity flips.

        ``syndrome`` is the length-``num_ancilla`` vector of detector flips;
        the result lists ``(data_qubit, raw_pattern, tagged_pattern)``.
        """
        syndrome = np.asarray(syndrome, dtype=bool)
        if syndrome.shape != (self.code.num_ancilla,):
            raise ValueError("syndrome must have one bit per ancilla")
        results = []
        for qubit, groups in self._gather:
            pattern = 0
            for position, stabs in enumerate(groups):
                if any(syndrome[s] for s in stabs):
                    pattern |= 1 << position
            width = len(groups)
            tagged = (
                tag_pattern(pattern, width) if width in TAG_PREFIXES else pattern
            )
            results.append((qubit, pattern, tagged))
        return results


@dataclass
class SequenceChecker:
    """Combinational matcher for the minimised leakage templates of one width."""

    width: int
    flagged_patterns: set[int]
    inputs_per_lut: int = 6

    @cached_property
    def implicants(self) -> list[Implicant]:
        """Minimised sum-of-products covering the flagged patterns."""
        return quine_mccluskey(self.flagged_patterns, self.width)

    @property
    def expression(self) -> str:
        """The minimised expression in the paper's DNF notation."""
        return expression_to_string(self.implicants, self.width)

    @property
    def lut_estimate(self) -> int:
        """Estimated LUT cost of this checker."""
        return luts_for_expression(self.implicants, self.width, self.inputs_per_lut)

    def matches(self, pattern: int) -> bool:
        """Evaluate the checker on one (possibly tagged) pattern."""
        return evaluate(self.implicants, pattern)

    def verify_against_truth_table(self) -> bool:
        """Check the minimised expression against the original flagged set."""
        return all(
            evaluate(self.implicants, value) == (value in self.flagged_patterns)
            for value in range(1 << self.width)
        )


@dataclass
class LrcScheduler:
    """Collect per-qubit match bits and emit next-round LRC requests."""

    num_data: int
    pending: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.pending = np.zeros(self.num_data, dtype=bool)

    def schedule(self, matches: dict[int, bool], mlr_suspects: set[int] | None = None) -> np.ndarray:
        """Combine sequence-checker matches and MLR suspects into LRC requests."""
        requests = np.zeros(self.num_data, dtype=bool)
        for qubit, matched in matches.items():
            requests[qubit] = matched
        for qubit in mlr_suspects or ():
            requests[qubit] = True
        self.pending = requests
        return requests


@dataclass
class GladiatorMicroarchitecture:
    """End-to-end software model of the speculation datapath for one code patch."""

    code: StabilizerCode
    policy: LookupPolicy

    @cached_property
    def adjacency_generator(self) -> DataParityAdjacencyGenerator:
        """The mux network gathering parity bits per data qubit."""
        return DataParityAdjacencyGenerator(self.code)

    @cached_property
    def checkers(self) -> dict[int, SequenceChecker]:
        """One sequence checker per pattern width present in the code."""
        flagged_by_width: dict[int, set[int]] = {}
        for qubit in range(self.code.num_data):
            width = self.code.pattern_width(qubit)
            table = self.policy.flag_table(qubit)
            flagged = {value for value in range(table.shape[0]) if table[value]}
            flagged_by_width.setdefault(width, set()).update(flagged)
        return {
            width: SequenceChecker(width=width, flagged_patterns=flagged)
            for width, flagged in sorted(flagged_by_width.items())
        }

    @cached_property
    def scheduler(self) -> LrcScheduler:
        """The LRC scheduler fed by the checkers."""
        return LrcScheduler(num_data=self.code.num_data)

    def process_round(self, syndrome: np.ndarray, mlr_suspects: set[int] | None = None) -> np.ndarray:
        """One online cycle: syndrome in, next-round LRC requests out."""
        matches: dict[int, bool] = {}
        for qubit, pattern, _tagged in self.adjacency_generator.patterns(syndrome):
            width = self.code.pattern_width(qubit)
            matches[qubit] = self.checkers[width].matches(pattern)
        return self.scheduler.schedule(matches, mlr_suspects)

    def lut_budget(self) -> int:
        """Total LUT estimate: one checker per width, replicated for throughput.

        The paper replicates the (shared) checker so that all ``d**2`` data
        qubits are classified within the 100 ns round budget; the same
        replication factor is applied here on top of the per-width checker
        costs.
        """
        base = sum(checker.lut_estimate for checker in self.checkers.values())
        replication = max(1, -(-self.code.num_data // QUBITS_PER_CHECKER))
        return max(base, GLADIATOR_LUTS_PER_CHECKER) * replication
