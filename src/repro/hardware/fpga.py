"""FPGA resource model for the leakage-speculation hardware (Section 4.4, Table 3).

GLADIATOR's online stage is a combinational sequence checker matching 5-bit
tagged patterns against minimised Boolean templates; it needs roughly 10 LUTs
per instantiated checker and is replicated just enough to classify all
``d**2`` data qubits within the 100 ns budget of four CNOT layers.  ERASER's
hand-crafted finite-state machine instead grows quickly with code distance.
This module reproduces both cost models: the analytic GLADIATOR formula
``LUTs = 10 * ceil(d**2 / 100)``, the ERASER LUT counts re-synthesised in the
paper (Table 3) with a quadratic fit for other distances, and a generic
LUT estimator for arbitrary minimised expressions (Appendix B).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.boolean_minimize import Implicant, count_literals

__all__ = [
    "GLADIATOR_LUTS_PER_CHECKER",
    "QUBITS_PER_CHECKER",
    "ERASER_TABLE3_LUTS",
    "gladiator_luts",
    "eraser_luts",
    "lut_reduction_factor",
    "luts_for_expression",
    "FpgaReport",
    "resource_report",
]

#: LUTs consumed by one replicated GLADIATOR sequence checker (paper, Section 4.4).
GLADIATOR_LUTS_PER_CHECKER = 10
#: Number of data qubits one sequence checker can serve within the 100 ns deadline.
QUBITS_PER_CHECKER = 100

#: ERASER LUT counts per logical qubit re-synthesised on the Kintex
#: UltraScale+ (xcku3p) FPGA, as reported in Table 3 of the paper.
ERASER_TABLE3_LUTS = {5: 177, 9: 633, 13: 1382, 17: 2434, 21: 3786, 25: 5393}


def gladiator_luts(distance: int) -> int:
    """GLADIATOR LUTs per logical qubit: ``10 * ceil(d**2 / 100)``."""
    if distance < 2:
        raise ValueError("distance must be at least 2")
    checkers = math.ceil(distance * distance / QUBITS_PER_CHECKER)
    return GLADIATOR_LUTS_PER_CHECKER * checkers


def eraser_luts(distance: int) -> int:
    """ERASER FSM LUTs per logical qubit.

    Exact re-synthesised values from Table 3 where available; a quadratic fit
    (``~8.6 d**2``) everywhere else, matching the FSM's per-data-qubit growth.
    """
    if distance < 2:
        raise ValueError("distance must be at least 2")
    if distance in ERASER_TABLE3_LUTS:
        return ERASER_TABLE3_LUTS[distance]
    return int(round(8.6 * distance * distance + 0.3 * distance - 45))


def lut_reduction_factor(distance: int) -> float:
    """How many times fewer LUTs GLADIATOR uses than ERASER at ``distance``."""
    return eraser_luts(distance) / gladiator_luts(distance)


def luts_for_expression(
    implicants: list[Implicant], width: int, inputs_per_lut: int = 6
) -> int:
    """Estimate the LUT cost of one minimised sum-of-products expression.

    Each product term with at most ``inputs_per_lut`` literals fits in one
    LUT; wider terms are decomposed; the OR tree over the terms adds
    ``ceil((terms - 1) / (inputs_per_lut - 1))`` further LUTs.
    """
    if not implicants:
        return 0
    term_luts = 0
    for implicant in implicants:
        literals = max(1, implicant.num_literals(width))
        term_luts += math.ceil(literals / inputs_per_lut)
    or_inputs = len(implicants)
    or_luts = 0
    while or_inputs > 1:
        groups = math.ceil(or_inputs / inputs_per_lut)
        or_luts += groups
        or_inputs = groups
    total = term_luts + or_luts
    # A single-output function never needs fewer than one LUT.
    return max(1, total - (1 if or_inputs == 1 and len(implicants) == 1 else 0))


@dataclass(frozen=True)
class FpgaReport:
    """Per-distance FPGA resource comparison (one row of Table 3)."""

    distance: int
    gladiator_luts: int
    eraser_luts: int

    @property
    def reduction(self) -> float:
        """ERASER-to-GLADIATOR LUT ratio."""
        return self.eraser_luts / self.gladiator_luts


def resource_report(distances: list[int]) -> list[FpgaReport]:
    """Table 3: LUTs per logical qubit for a list of code distances."""
    return [
        FpgaReport(
            distance=d,
            gladiator_luts=gladiator_luts(d),
            eraser_luts=eraser_luts(d),
        )
        for d in distances
    ]


def total_literal_cost(implicants: list[Implicant], width: int) -> int:
    """Total literal count of an expression (a LUT-independent size proxy)."""
    return count_literals(implicants, width)
