"""repro: a reproduction of "Accurate Leakage Speculation for Quantum Error Correction".

The package implements GLADIATOR — graph-model-driven leakage speculation for
QEC — together with every substrate its evaluation needs: QEC code
constructions (surface, colour, hypergraph-product and two-block cyclic
codes), a leakage-aware circuit-level simulator, matching and union-find
decoders, LRC gadget and FPGA cost models, the ERASER and open-loop
baselines, and the experiment harness that regenerates the paper's tables
and figures.

Quick start::

    from repro import surface_code, paper_noise, make_policy
    from repro.sim import LeakageSimulator, SimulatorOptions

    code = surface_code(7)
    policy = make_policy("gladiator+m")
    sim = LeakageSimulator(code, paper_noise(), policy,
                           options=SimulatorOptions(leakage_sampling=True))
    result = sim.run(shots=500, rounds=70)
    print(result.summary())
"""

from .codes import (
    StabilizerCode,
    bpc_code,
    color_code,
    hgp_code_from_checks,
    hypergraph_product_code,
    surface_code,
    two_block_cyclic_code,
)
from .core import (
    POLICY_NAMES,
    CalibrationData,
    EraserMPolicy,
    EraserPolicy,
    GladiatorDMPolicy,
    GladiatorDPolicy,
    GladiatorMPolicy,
    GladiatorPolicy,
    GraphModelConfig,
    LeakagePolicy,
    MobilityEstimator,
    TransitionModel,
    make_policy,
)
from .experiments import (
    MemoryExperiment,
    MemoryResult,
    compare_policies,
    compare_policies_decoded,
    current_scale,
    make_code,
    sweep_distances,
    sweep_error_rates,
)
from .noise import NoiseParams, ideal_noise, paper_noise
from .realtime import DecodeService, ReplayStream, SimulatorStream, WindowedDecoder
from .sim import LeakageSimulator, RunResult, SimulatorOptions
from .sweeps import SweepCache, SweepExecutor, SweepSpec, WorkUnit

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # codes
    "StabilizerCode",
    "surface_code",
    "color_code",
    "hypergraph_product_code",
    "hgp_code_from_checks",
    "bpc_code",
    "two_block_cyclic_code",
    # noise
    "NoiseParams",
    "paper_noise",
    "ideal_noise",
    # policies / core
    "make_policy",
    "POLICY_NAMES",
    "LeakagePolicy",
    "EraserPolicy",
    "EraserMPolicy",
    "GladiatorPolicy",
    "GladiatorMPolicy",
    "GladiatorDPolicy",
    "GladiatorDMPolicy",
    "GraphModelConfig",
    "TransitionModel",
    "CalibrationData",
    "MobilityEstimator",
    # simulation & experiments
    "LeakageSimulator",
    "SimulatorOptions",
    "RunResult",
    "MemoryExperiment",
    "MemoryResult",
    "compare_policies",
    "compare_policies_decoded",
    "current_scale",
    "make_code",
    "sweep_distances",
    "sweep_error_rates",
    # sweep engine
    "SweepSpec",
    "SweepExecutor",
    "SweepCache",
    "WorkUnit",
    # realtime decoding
    "SimulatorStream",
    "ReplayStream",
    "WindowedDecoder",
    "DecodeService",
]
