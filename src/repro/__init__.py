"""repro: a reproduction of "Accurate Leakage Speculation for Quantum Error Correction".

The package implements GLADIATOR — graph-model-driven leakage speculation for
QEC — together with every substrate its evaluation needs: QEC code
constructions (surface, colour, hypergraph-product and two-block cyclic
codes), a leakage-aware circuit-level simulator, matching and union-find
decoders, LRC gadget and FPGA cost models, the ERASER and open-loop
baselines, and the experiment harness that regenerates the paper's tables
and figures.

Quick start::

    from repro import ExperimentConfig, Session

    cfg = ExperimentConfig.from_dict({
        "code": {"name": "surface", "distance": 5},
        "policy": {"name": "gladiator+m"},
        "execution": {"shots": 400, "rounds": 50, "seed": 7},
    })
    result = Session.from_config(cfg).run()
    print(result.summary())

The same config drives the other execution paths (``.stream()`` for
windowed realtime decoding, ``.sweep(axes=...)`` for grids) and the
``python -m repro`` CLI; the lower-level objects (``surface_code``,
``make_policy``, ``LeakageSimulator``, ...) remain available for direct
composition.
"""

from .codes import (
    StabilizerCode,
    bpc_code,
    color_code,
    hgp_code_from_checks,
    hypergraph_product_code,
    surface_code,
    two_block_cyclic_code,
)
from .core import (
    POLICY_NAMES,
    CalibrationData,
    EraserMPolicy,
    EraserPolicy,
    GladiatorDMPolicy,
    GladiatorDPolicy,
    GladiatorMPolicy,
    GladiatorPolicy,
    GraphModelConfig,
    LeakagePolicy,
    MobilityEstimator,
    TransitionModel,
    make_policy,
)
from .experiments import (
    MemoryExperiment,
    MemoryResult,
    compare_policies,
    compare_policies_decoded,
    current_scale,
    make_code,
    sweep_distances,
    sweep_error_rates,
)
from .noise import NoiseParams, ideal_noise, paper_noise
from .realtime import DecodeService, ReplayStream, SimulatorStream, WindowedDecoder
from .sim import LeakageSimulator, RunResult, SimulatorOptions
from .sweeps import SweepCache, SweepExecutor, SweepSpec, WorkUnit
from .api import (
    CodeConfig,
    DecoderConfig,
    ExecutionConfig,
    ExperimentConfig,
    NoiseConfig,
    PolicyConfig,
    Session,
    register_code,
    register_decoder,
    register_noise,
    register_policy,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # codes
    "StabilizerCode",
    "surface_code",
    "color_code",
    "hypergraph_product_code",
    "hgp_code_from_checks",
    "bpc_code",
    "two_block_cyclic_code",
    # noise
    "NoiseParams",
    "paper_noise",
    "ideal_noise",
    # policies / core
    "make_policy",
    "POLICY_NAMES",
    "LeakagePolicy",
    "EraserPolicy",
    "EraserMPolicy",
    "GladiatorPolicy",
    "GladiatorMPolicy",
    "GladiatorDPolicy",
    "GladiatorDMPolicy",
    "GraphModelConfig",
    "TransitionModel",
    "CalibrationData",
    "MobilityEstimator",
    # simulation & experiments
    "LeakageSimulator",
    "SimulatorOptions",
    "RunResult",
    "MemoryExperiment",
    "MemoryResult",
    "compare_policies",
    "compare_policies_decoded",
    "current_scale",
    "make_code",
    "sweep_distances",
    "sweep_error_rates",
    # sweep engine
    "SweepSpec",
    "SweepExecutor",
    "SweepCache",
    "WorkUnit",
    # realtime decoding
    "SimulatorStream",
    "ReplayStream",
    "WindowedDecoder",
    "DecodeService",
    # api facade
    "ExperimentConfig",
    "CodeConfig",
    "NoiseConfig",
    "PolicyConfig",
    "DecoderConfig",
    "ExecutionConfig",
    "Session",
    "register_code",
    "register_decoder",
    "register_policy",
    "register_noise",
]
