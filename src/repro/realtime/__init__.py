"""Online decoding: syndrome streams, sliding windows, and a decode service.

This package is the repo's first end-to-end *online* scenario: where the
offline harness (:class:`repro.experiments.MemoryExperiment`) collects the
full detector record and decodes after the fact, the realtime layer consumes
syndrome data round by round, the way the paper's control hardware does.

Three pieces stack up:

* :class:`SyndromeStream` — per-round detector chunks for a batch of shots,
  either live from the simulator (:class:`SimulatorStream`) or replayed from
  a recorded run (:class:`ReplayStream`),
* :class:`WindowedDecoder` — overlapping sliding windows over any
  ``repro.decoders`` decoder: a commit region whose corrections are
  finalised and a buffer region whose boundary artifacts carry into the
  next window; ``window >= rounds`` is bit-identical to offline decoding,
* :class:`DecodeService` — N concurrent streams multiplexed over a worker
  pool with bounded queues and backpressure, with per-stream latency and
  throughput accounting priced against the microarchitecture cost model.

Quick start::

    from repro import make_policy, paper_noise, surface_code
    from repro.realtime import DecodeService, SimulatorStream

    code, noise = surface_code(3), paper_noise()
    streams = [
        SimulatorStream(code=code, noise=noise, policy=make_policy("gladiator+m"),
                        shots=50, rounds=24, seed=seed)
        for seed in range(4)
    ]
    reports = DecodeService(window_rounds=8, workers=4).run(streams)
    for report in reports:
        print(report.summary())

``python -m repro.realtime`` drives the same pipeline from the command line.
"""

from .accounting import LatencyRecorder, StreamReport, WindowTiming
from .service import DecodeService, ServiceClosed, ServiceObserver, StreamHandle
from .stream import FinalChunk, ReplayStream, RoundChunk, SimulatorStream, SyndromeStream
from .window import WindowedDecoder, WindowSession

__all__ = [
    "RoundChunk",
    "FinalChunk",
    "SyndromeStream",
    "SimulatorStream",
    "ReplayStream",
    "WindowedDecoder",
    "WindowSession",
    "DecodeService",
    "ServiceClosed",
    "ServiceObserver",
    "StreamHandle",
    "LatencyRecorder",
    "StreamReport",
    "WindowTiming",
]
