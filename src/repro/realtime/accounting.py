"""Latency and throughput accounting for streaming decoders.

Measured wall-clock numbers only mean something relative to the cadence the
hardware produces syndrome data at, so every summary is priced against the
microarchitecture cost model (:mod:`repro.hardware.microarchitecture`): one
syndrome-extraction round every ``ROUND_LATENCY_NS`` nanoseconds.  The
headline figure is ``realtime_factor`` — the hardware budget for the rounds
processed divided by the time the decoder actually took.  A factor of 1.0
means the decoder exactly keeps up; pure-Python decoding lands far below
1.0, and the point of recording it is to track the trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hardware.microarchitecture import ROUND_LATENCY_NS, realtime_deadline_ns
from ..obs.metrics import Histogram

__all__ = ["WindowTiming", "LatencyRecorder", "StreamReport"]


@dataclass(frozen=True)
class WindowTiming:
    """One decoded window: rounds committed, decode time, queue wait."""

    committed_rounds: int
    service_seconds: float
    wait_seconds: float = 0.0


@dataclass
class LatencyRecorder:
    """Collects per-window timings of one stream and summarises them.

    The per-round latency distribution lives in a private
    :class:`~repro.obs.metrics.Histogram` (an always-on instrument metering
    this recorder's own data, independent of the global telemetry switch),
    so the percentiles here and the ones a telemetry snapshot reports come
    from the same primitive.  Summary keys are unchanged from the
    pre-histogram implementation.
    """

    timings: list[WindowTiming] = field(default_factory=list)
    histogram: Histogram = field(
        default_factory=lambda: Histogram("realtime.round_latency"), repr=False
    )

    def record(
        self, committed_rounds: int, service_seconds: float, wait_seconds: float = 0.0
    ) -> None:
        """Append one window's timing."""
        self.timings.append(
            WindowTiming(int(committed_rounds), float(service_seconds), float(wait_seconds))
        )
        self.histogram.observe(float(service_seconds) / max(1, int(committed_rounds)))

    def add_wait(self, wait_seconds: float) -> None:
        """Attach a queue wait to the most recently recorded window."""
        if not self.timings:
            return
        last = self.timings[-1]
        self.timings[-1] = WindowTiming(
            last.committed_rounds, last.service_seconds, last.wait_seconds + float(wait_seconds)
        )

    @property
    def windows(self) -> int:
        """Number of windows decoded."""
        return len(self.timings)

    @property
    def rounds_committed(self) -> int:
        """Total rounds finalised across all windows."""
        return sum(t.committed_rounds for t in self.timings)

    @property
    def per_round_latencies(self) -> np.ndarray:
        """Decode seconds per committed round, one entry per window."""
        return np.array(
            [t.service_seconds / max(1, t.committed_rounds) for t in self.timings]
        )

    def percentile(self, q: float) -> float:
        """Percentile of the per-round decode latency (seconds)."""
        return self.histogram.percentile(q)

    def summary(self) -> dict:
        """Flat latency summary (seconds), priced against the hardware budget."""
        service = sum(t.service_seconds for t in self.timings)
        waits = [t.wait_seconds for t in self.timings]
        rounds = self.rounds_committed
        budget_seconds = realtime_deadline_ns(rounds) * 1e-9 if rounds else 0.0
        return {
            "windows": self.windows,
            "rounds_committed": rounds,
            "decode_seconds": service,
            "round_latency_p50": self.percentile(50),
            "round_latency_p99": self.percentile(99),
            "mean_queue_wait": float(np.mean(waits)) if waits else 0.0,
            "hardware_round_ns": ROUND_LATENCY_NS,
            "realtime_factor": budget_seconds / service if service > 0 else 0.0,
        }


@dataclass
class StreamReport:
    """Per-stream outcome of a decode-service run."""

    stream_id: int
    shots: int
    rounds: int
    recorder: LatencyRecorder
    failures: int | None = None
    wall_seconds: float = 0.0

    @property
    def logical_error_rate(self) -> float | None:
        """Observed LER of the stream, when the true observable was known."""
        if self.failures is None or self.shots == 0:
            return None
        return self.failures / self.shots

    @property
    def rounds_per_second(self) -> float:
        """Stream throughput in QEC rounds per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.rounds / self.wall_seconds

    def summary(self) -> dict:
        """Flat dictionary: identity, throughput, failures, latency stats."""
        row = {
            "stream": self.stream_id,
            "shots": self.shots,
            "rounds": self.rounds,
            "wall_seconds": self.wall_seconds,
            "rounds_per_second": self.rounds_per_second,
        }
        if self.failures is not None:
            row["failures"] = self.failures
            row["ler"] = self.logical_error_rate
        row.update(self.recorder.summary())
        return row
