"""A batched decode service multiplexing many syndrome streams.

One logical qubit produces one syndrome stream; a control system serves
many.  :class:`DecodeService` models that shape in software: a scheduler
loop round-robins over the attached streams pulling one round chunk at a
time (the multiplexer), window-decode jobs are pushed onto a *bounded*
queue, and a pool of worker threads drains it.  When the queue is full the
scheduler blocks — backpressure — so buffered-but-undecoded syndrome data
stays bounded no matter how many streams are attached, exactly the
guarantee a real-time decoder has to make.

Per-stream ordering is preserved by keeping at most one job per stream in
flight (window ``k+1`` depends on the artifacts window ``k`` committed);
throughput comes from decoding *different* streams concurrently.  Every
stream gets a :class:`~repro.realtime.accounting.LatencyRecorder`, and the
final :class:`StreamReport` prices the measured latencies against the
microarchitecture cost model's round cadence.

Two front doors share this machinery:

* :meth:`DecodeService.run` — the batch entry point: hand it a list of
  :class:`~repro.realtime.stream.SyndromeStream` sources and it decodes
  them all to completion on an ephemeral thread pool (started for the
  call, fully joined before it returns).
* :meth:`DecodeService.open_stream` — the online entry point used by the
  :mod:`repro.serve` network front end: it returns a :class:`StreamHandle`
  that syndrome rounds are *pushed* into as they arrive off the wire, on a
  persistent pool that serves many handles concurrently and is shut down
  by :meth:`DecodeService.close` (idempotent, safe to call from several
  threads, and raceless against streams closing mid-window).

With ``coalesce=True`` the scheduler merges windows that become ready on
the same pass across streams with equal decoder identity
(:attr:`~repro.decoders.base.DecoderBase.decode_identity`) into a single
:meth:`~repro.decoders.base.DecoderBase.decode_edges_unique` call and
demuxes the per-unique-syndrome results back through each session's
``inverse`` slice.  Because that decode is deterministic per unique
syndrome and independent of batch composition, coalesced results are
bit-identical to the uncoalesced path — the dispatch cost is amortised,
the answers are not changed.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Callable, Sequence

import numpy as np

from ..decoders import SyndromeCache
from ..obs.metrics import METRICS
from ..obs.trace import span
from .accounting import LatencyRecorder, StreamReport
from .stream import FinalChunk, RoundChunk, SyndromeStream
from .window import WindowedDecoder

__all__ = ["DecodeService", "ServiceClosed", "ServiceObserver", "StreamHandle"]

_POLL_SECONDS = 0.05

#: Decode-service telemetry; no-ops unless a telemetry scope is active.
_OBS_QUEUE_DEPTH = METRICS.gauge(
    "realtime.queue_depth", "pending-window queue depth after each enqueue"
)
_OBS_BACKPRESSURE = METRICS.counter(
    "realtime.backpressure_stalls", "producer blocks on a full window queue"
)
_OBS_WINDOWS = METRICS.counter(
    "realtime.windows_decoded", "window decode jobs completed by the workers"
)
_OBS_COALESCED = METRICS.counter(
    "realtime.windows_coalesced",
    "windows decoded as part of a multi-stream coalesced batch",
)


class ServiceClosed(RuntimeError):
    """Raised when a stream is opened or fed after the service shut down."""


class ServiceObserver:
    """Hook points the serving layer overrides for live SLO accounting.

    Every method is a no-op here, so :class:`DecodeService` can call them
    unconditionally.  Callbacks fire on scheduler/worker threads — keep
    overrides cheap and thread-safe.
    """

    def on_window(
        self,
        stream_id: int,
        label: str | None,
        committed_rounds: int,
        service_seconds: float,
        wait_seconds: float,
    ) -> None:
        """One window committed for one stream."""

    def on_batch(self, windows: int) -> None:
        """One decode dispatch served ``windows`` stream windows."""

    def on_queue_depth(self, depth: int) -> None:
        """Pending-window queue depth after an enqueue."""

    def on_stream_done(
        self, stream_id: int, label: str | None, error: BaseException | None
    ) -> None:
        """A stream finished (successfully, aborted, or with ``error``)."""


class _StreamTask:
    """Mutable per-stream state shared between the scheduler and workers.

    ``mode`` is ``"pull"`` (a :class:`SyndromeStream` the scheduler drains)
    or ``"push"`` (rounds arrive through a :class:`StreamHandle` into the
    ``pending`` deque).  Either way the session only ever advances on the
    scheduler thread and decodes on a worker thread, never concurrently.
    """

    def __init__(
        self,
        stream_id: int,
        windowed: WindowedDecoder,
        shots: int,
        rounds: int,
        stream: SyndromeStream | None = None,
        label: str | None = None,
    ):
        self.stream_id = stream_id
        self.stream = stream
        self.mode = "pull" if stream is not None else "push"
        self.label = label
        self.shots = int(shots)
        self.rounds = int(rounds)
        self.num_z_stabs = sum(
            1 for stab in windowed.code.stabilizers if stab.basis == "Z"
        )
        self.recorder = LatencyRecorder()
        # WindowSession or FusedWindowSession — same protocol either way.
        self.session = windowed.session(self.shots, self.recorder)
        self.chunk_iter = stream.chunks() if stream is not None else None
        self.exhausted = False
        self.pending: deque[RoundChunk] = deque()
        self.rounds_submitted = 0
        self.final_chunk: FinalChunk | None = None
        self.finished = False
        self.finalized = False
        self.aborted = False
        self.in_flight = False
        self.error: BaseException | None = None
        self.predictions: np.ndarray | None = None
        self.failures: int | None = None
        self.wall_seconds = 0.0
        self.done_event = threading.Event()
        self.done_callbacks: list[Callable[[], None]] = []
        self._coalesce_key: tuple | None = None
        self._started = time.perf_counter()

    def pull_chunk(self) -> None:
        """Feed the session one more round chunk (scheduler thread only)."""
        try:
            self.session.feed(next(self.chunk_iter))
        except StopIteration:
            self.exhausted = True

    def complete(self) -> None:
        """Decode the tail window and close out the stream (worker thread)."""
        final = self.stream.final() if self.stream is not None else self.final_chunk
        assert final is not None
        self.predictions = self.session.finish(final)
        if final.observable_flips is not None:
            self.failures = int((self.predictions ^ final.observable_flips).sum())
        self.wall_seconds = time.perf_counter() - self._started
        self.finished = True

    def coalesce_key(self) -> tuple:
        """Compatibility key: equal keys decode bit-identically when merged."""
        if self._coalesce_key is None:
            windowed = self.session.windowed
            window = windowed.effective_window
            _, decoder = windowed.decoder_for(window)
            self._coalesce_key = (
                decoder.decode_identity,
                window,
                windowed.commit_rounds,
            )
        return self._coalesce_key

    def report(self) -> StreamReport:
        return StreamReport(
            stream_id=self.stream_id,
            shots=self.shots,
            rounds=self.rounds,
            recorder=self.recorder,
            failures=self.failures,
            wall_seconds=self.wall_seconds,
        )


class StreamHandle:
    """Push-mode front door to one stream of a running :class:`DecodeService`.

    The network layer feeds one ``(shots, num_z_stabs)`` boolean round at a
    time via :meth:`feed_round`, closes with :meth:`finish`, and collects
    the decoded predictions from :meth:`result`.  All methods are
    thread-safe; completion callbacks fire on service threads.
    """

    def __init__(self, service: "DecodeService", task: _StreamTask):
        self._service = service
        self._task = task

    @property
    def stream_id(self) -> int:
        return self._task.stream_id

    @property
    def label(self) -> str | None:
        return self._task.label

    @property
    def done(self) -> bool:
        return self._task.done_event.is_set()

    @property
    def error(self) -> BaseException | None:
        return self._task.error

    @property
    def predictions(self) -> np.ndarray | None:
        return self._task.predictions

    @property
    def failures(self) -> int | None:
        return self._task.failures

    def feed_round(self, detectors: np.ndarray) -> None:
        """Append the next round's detector chunk (rounds are sequential)."""
        task = self._task
        chunk = np.asarray(detectors, dtype=bool)
        if chunk.shape != (task.shots, task.num_z_stabs):
            raise ValueError(
                f"round chunk must be ({task.shots}, {task.num_z_stabs}); "
                f"got {chunk.shape}"
            )
        wake = self._service._wake
        with wake:
            if task.finished or task.aborted:
                raise ServiceClosed(f"stream {task.stream_id} is closed")
            if task.final_chunk is not None:
                raise RuntimeError(f"stream {task.stream_id} already finished")
            if task.rounds_submitted >= task.rounds:
                raise ValueError(
                    f"stream {task.stream_id} declared {task.rounds} rounds; "
                    "cannot feed more"
                )
            task.pending.append(RoundChunk(task.rounds_submitted, chunk))
            task.rounds_submitted += 1
            wake.notify_all()

    def finish(
        self,
        final_detectors: np.ndarray,
        observable_flips: np.ndarray | None = None,
    ) -> None:
        """Deliver the final transversal readout; decoding completes async."""
        task = self._task
        final = np.asarray(final_detectors, dtype=bool)
        if final.shape != (task.shots, task.num_z_stabs):
            raise ValueError(
                f"final chunk must be ({task.shots}, {task.num_z_stabs}); "
                f"got {final.shape}"
            )
        flips = None
        if observable_flips is not None:
            flips = np.asarray(observable_flips, dtype=bool)
            if flips.shape != (task.shots,):
                raise ValueError(f"observable_flips must be ({task.shots},)")
        wake = self._service._wake
        with wake:
            if task.finished or task.aborted:
                raise ServiceClosed(f"stream {task.stream_id} is closed")
            if task.final_chunk is not None:
                raise RuntimeError(f"stream {task.stream_id} already finished")
            if task.rounds_submitted != task.rounds:
                raise ValueError(
                    f"stream {task.stream_id} declared {task.rounds} rounds "
                    f"but fed {task.rounds_submitted}"
                )
            task.final_chunk = FinalChunk(final, flips)
            wake.notify_all()

    def abort(self) -> None:
        """Drop the stream: pending work is discarded, no result is produced.

        Safe at any point, including mid-window — a decode already on a
        worker finishes harmlessly and the stream is then retired.
        """
        wake = self._service._wake
        with wake:
            self._task.aborted = True
            wake.notify_all()

    def add_done_callback(self, callback: Callable[[], None]) -> None:
        """Run ``callback()`` once the stream finishes (or immediately if done)."""
        with self._service._wake:
            if not self._task.finalized:
                self._task.done_callbacks.append(callback)
                return
        callback()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the stream finishes; ``False`` on timeout."""
        return self._task.done_event.wait(timeout)

    def result(self, timeout: float | None = None) -> StreamReport:
        """Wait for completion and return the report (re-raises stream errors)."""
        if not self.wait(timeout):
            raise TimeoutError(f"stream {self.stream_id} still decoding")
        if self._task.error is not None:
            raise self._task.error
        if self._task.aborted and self._task.predictions is None:
            raise ServiceClosed(f"stream {self.stream_id} was aborted")
        return self._task.report()

    def report(self) -> StreamReport:
        return self._task.report()


class DecodeService:
    """Decode N syndrome streams concurrently through sliding windows.

    Parameters
    ----------
    window_rounds / commit_rounds / method / max_exact_nodes / strategy:
        Windowed-decoder configuration, applied per stream (see
        :class:`~repro.realtime.window.WindowedDecoder`).
    workers:
        Worker threads decoding windows.  Streams are independent, so
        effective concurrency is ``min(workers, streams)``.
    queue_depth:
        Bound of the pending-window queue; the scheduler blocks when it is
        full (backpressure).  Defaults to ``max(2, workers)``.
    cache_size:
        Capacity of the service-wide :class:`~repro.decoders.SyndromeCache`
        (``None``: default capacity, ``0``: disabled).  All attached streams
        decode through this one cache — streams of the same code and noise
        overwhelmingly share sparse syndromes, so one stream's decode work
        serves every other stream the service multiplexes.
    fused:
        Per-stream sessions use the bit-packed ring buffers of
        :class:`repro.pipeline.FusedWindowSession` (bit-identical results,
        bounded packed memory per stream).
    coalesce:
        Merge same-pass ready windows of compatible streams into one
        batched decode call (bit-identical demux; see module docstring).
    observer:
        Optional :class:`ServiceObserver` receiving per-window, per-batch
        and queue-depth callbacks — the serve layer's SLO feed.
    """

    def __init__(
        self,
        window_rounds: int,
        commit_rounds: int | None = None,
        method: str = "matching",
        max_exact_nodes: int | None = None,
        strategy: str | None = None,
        workers: int = 4,
        queue_depth: int | None = None,
        cache_size: int | None = None,
        fused: bool = False,
        coalesce: bool = False,
        observer: ServiceObserver | None = None,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.window_rounds = int(window_rounds)
        self.commit_rounds = commit_rounds
        self.method = method
        self.max_exact_nodes = max_exact_nodes
        self.strategy = strategy
        self.fused = bool(fused)
        self.coalesce = bool(coalesce)
        self.observer = observer
        self.workers = int(workers)
        self.queue_depth = int(queue_depth) if queue_depth is not None else max(2, workers)
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.cache = SyndromeCache(cache_size)
        self.windows_decoded = 0
        self.streams_served = 0
        self.backpressure_stalls = 0
        #: Decode dispatches vs stream windows they served; their ratio is
        #: the coalescing amortisation (1.0 when coalescing is off/idle).
        self.window_batches = 0
        self.window_jobs = 0
        self._wake = threading.Condition()
        self._counter_lock = threading.Lock()
        self._tasks: list[_StreamTask] = []
        self._next_stream_id = 0
        self._work: queue.Queue | None = None
        self._threads: list[threading.Thread] = []
        self._scheduler: threading.Thread | None = None
        self._started = False
        self._persistent = False
        self._stopping = False
        self._closed = False
        self._terminated = threading.Event()

    @classmethod
    def from_config(
        cls,
        config,
        *,
        workers: int = 4,
        queue_depth: int | None = None,
        coalesce: bool = False,
        observer: ServiceObserver | None = None,
    ) -> "DecodeService":
        """Build a service from an :class:`~repro.api.config.ExperimentConfig`.

        The window geometry comes from ``execution.window_rounds`` /
        ``commit_rounds`` and the decoder from the ``decoder`` section
        (including the service-wide ``cache_size``); ``workers`` and
        ``queue_depth`` stay call-time arguments because they describe the
        serving deployment, not the experiment.  This is the construction
        path :meth:`repro.api.Session.stream` uses.
        """
        execution = config.execution
        if execution.window_rounds is None:
            raise ValueError(
                "DecodeService.from_config requires execution.window_rounds"
            )
        return cls(
            window_rounds=execution.window_rounds,
            commit_rounds=execution.commit_rounds,
            method=config.decoder.name,
            max_exact_nodes=config.decoder.max_exact_nodes,
            strategy=config.decoder.strategy,
            workers=workers,
            queue_depth=queue_depth,
            cache_size=config.decoder.cache_size,
            fused=execution.fused,
            coalesce=coalesce,
            observer=observer,
        )

    # ------------------------------------------------------------------ #
    # Public API — batch mode
    # ------------------------------------------------------------------ #
    def run(self, streams: Sequence[SyndromeStream]) -> list[StreamReport]:
        """Decode every stream to completion; returns one report per stream.

        When the service is not already :meth:`start`-ed, the thread pool
        is created for this call and fully joined before it returns — no
        worker threads outlive the call, even when it raises.
        """
        if not streams:
            return []
        if self._closed:
            raise ServiceClosed("decode service is closed")
        tasks = []
        for index, stream in enumerate(streams):
            code = getattr(stream, "code", None)
            noise = getattr(stream, "noise", None)
            if code is None or noise is None:
                raise ValueError(
                    "DecodeService needs streams that carry their code and "
                    "noise (e.g. SimulatorStream, or ReplayStream with code= "
                    "and noise= set)"
                )
            tasks.append(
                _StreamTask(
                    index,
                    self._windowed_for(code, noise, stream.rounds),
                    shots=stream.shots,
                    rounds=stream.rounds,
                    stream=stream,
                )
            )
        ephemeral = not self._started
        if ephemeral:
            self._start_threads(min(self.workers, len(tasks)))
        with self._wake:
            self._tasks.extend(tasks)
            self._wake.notify_all()
        try:
            with self._wake:
                while not all(task.finished for task in tasks):
                    self._wake.wait(_POLL_SECONDS)
        finally:
            if ephemeral:
                self._stop_threads()
        for task in tasks:
            if task.error is not None:
                raise task.error
        return [task.report() for task in tasks]

    # ------------------------------------------------------------------ #
    # Public API — online (push) mode
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        """Start the persistent scheduler/worker pool (idempotent)."""
        with self._wake:
            if self._closed:
                raise ServiceClosed("decode service is closed")
            self._persistent = True
        if not self._started:
            self._start_threads(self.workers)

    def open_stream(
        self,
        *,
        code,
        noise,
        shots: int,
        rounds: int,
        label: str | None = None,
        window_rounds: int | None = None,
        commit_rounds: int | None = None,
        method: str | None = None,
        strategy: str | None = None,
        fused: bool | None = None,
    ) -> StreamHandle:
        """Open a push-mode stream on the persistent pool (auto-starts it).

        Per-stream overrides fall back to the service-wide defaults; the
        syndrome cache is always the shared service-wide one, so every
        tenant's decode work serves every other compatible tenant.
        """
        if shots <= 0 or rounds <= 0:
            raise ValueError("shots and rounds must be positive")
        self.start()
        windowed = self._windowed_for(
            code,
            noise,
            rounds,
            window_rounds=window_rounds,
            commit_rounds=commit_rounds,
            method=method,
            strategy=strategy,
            fused=fused,
        )
        with self._wake:
            if self._closed:
                raise ServiceClosed("decode service is closed")
            task = _StreamTask(
                self._next_stream_id,
                windowed,
                shots=shots,
                rounds=rounds,
                label=label,
            )
            self._next_stream_id += 1
            self._tasks.append(task)
            self._wake.notify_all()
        return StreamHandle(self, task)

    def close(self, drain: bool = True, timeout: float | None = None) -> None:
        """Shut the service down.  Idempotent and safe from any thread.

        With ``drain=True`` (the default) streams that can still finish —
        their final readout delivered or deliverable — are decoded to
        completion first, bounded by ``timeout`` seconds when given; any
        stream still unfinished after the drain (e.g. a connection that
        went quiet mid-window) is aborted.  With ``drain=False`` every
        unfinished stream is aborted immediately.  Either way all scheduler
        and worker threads are joined before this returns; concurrent and
        repeated calls block until that single shutdown completes.
        """
        with self._wake:
            if self._closed:
                already, was_started = True, self._started
            else:
                already, was_started = False, self._started
                self._closed = True
                self._wake.notify_all()
        if already:
            self._terminated.wait()
            return
        if not was_started:
            self._terminated.set()
            return
        deadline = None if timeout is None else time.monotonic() + timeout
        if drain:
            with self._wake:
                while any(not t.finished for t in self._tasks):
                    wait = _POLL_SECONDS
                    if deadline is not None:
                        wait = min(wait, deadline - time.monotonic())
                        if wait <= 0:
                            break
                    self._wake.wait(wait)
        with self._wake:
            for task in self._tasks:
                if not task.finished:
                    task.aborted = True
            self._wake.notify_all()
            while any(not t.finished for t in self._tasks):
                self._wake.wait(_POLL_SECONDS)
        self._stop_threads()
        self._terminated.set()

    @property
    def active_streams(self) -> int:
        """Streams currently attached and not yet finished."""
        with self._wake:
            return sum(1 for t in self._tasks if not t.finished)

    def stats(self) -> dict:
        """Service-wide counters (coalescing ratio, backpressure, volume)."""
        batches = self.window_batches
        return {
            "streams_served": self.streams_served,
            "windows_decoded": self.windows_decoded,
            "active_streams": self.active_streams,
            "backpressure_stalls": self.backpressure_stalls,
            "window_batches": batches,
            "coalesce_ratio": self.window_jobs / batches if batches else 0.0,
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------------ #
    # Scheduler / worker internals
    # ------------------------------------------------------------------ #
    def _windowed_for(
        self,
        code,
        noise,
        rounds: int,
        *,
        window_rounds: int | None = None,
        commit_rounds: int | None = None,
        method: str | None = None,
        strategy: str | None = None,
        fused: bool | None = None,
    ) -> WindowedDecoder:
        return WindowedDecoder(
            code=code,
            noise=noise,
            rounds=rounds,
            window_rounds=self.window_rounds if window_rounds is None else window_rounds,
            commit_rounds=self.commit_rounds if commit_rounds is None else commit_rounds,
            method=self.method if method is None else method,
            max_exact_nodes=self.max_exact_nodes,
            strategy=self.strategy if strategy is None else strategy,
            cache=self.cache,
            fused=self.fused if fused is None else fused,
        )

    def _start_threads(self, worker_count: int) -> None:
        self._work = queue.Queue(maxsize=self.queue_depth)
        self._stopping = False
        self._terminated.clear()
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(self._work,),
                daemon=True,
                name=f"decode-{i}",
            )
            for i in range(max(1, worker_count))
        ]
        for thread in self._threads:
            thread.start()
        self._scheduler = threading.Thread(
            target=self._schedule_loop, daemon=True, name="decode-scheduler"
        )
        self._scheduler.start()
        self._started = True

    def _stop_threads(self) -> None:
        with self._wake:
            self._stopping = True
            self._wake.notify_all()
        if self._scheduler is not None:
            self._scheduler.join()
            self._scheduler = None
        work = self._work
        if work is not None:
            for _ in self._threads:
                work.put(None)
        for thread in self._threads:
            thread.join()
        self._threads = []
        self._work = None
        self._started = False

    def _schedule_loop(self) -> None:
        """Round-robin multiplexer: pull/drain chunks, schedule ready windows."""
        while True:
            with self._wake:
                self._tasks = [t for t in self._tasks if not t.finished]
                if not self._tasks:
                    if self._stopping:
                        return
                    self._wake.wait(_POLL_SECONDS)
                    continue
                snapshot = list(self._tasks)
            if not self._pass(snapshot):
                with self._wake:
                    if self._stopping and all(t.finished for t in snapshot):
                        continue
                    self._wake.wait(_POLL_SECONDS)

    def _pass(self, tasks: list[_StreamTask]) -> bool:
        progressed = False
        ready: list[_StreamTask] = []
        for task in tasks:
            if task.finished or task.in_flight:
                continue
            if task.aborted:
                self._finalize(task)
                progressed = True
                continue
            try:
                if self._advance(task, ready):
                    progressed = True
            except BaseException as exc:  # surface on the handle, keep serving
                task.error = exc
                self._finalize(task)
                progressed = True
        if ready:
            progressed = True
            groups: dict[tuple, list[_StreamTask]] = {}
            order: list[tuple] = []
            for task in ready:
                try:
                    key = (
                        task.coalesce_key()
                        if self.coalesce
                        else ("solo", task.stream_id)
                    )
                except BaseException as exc:
                    task.error = exc
                    self._finalize(task)
                    continue
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(task)
            for key in order:
                self._enqueue("window", tuple(groups[key]))
        return progressed

    def _advance(self, task: _StreamTask, ready: list[_StreamTask]) -> bool:
        """Move one stream forward; append to ``ready`` when a window is due."""
        session = task.session
        if session.ready():
            ready.append(task)
            return True
        if task.mode == "pull":
            if not task.exhausted:
                task.pull_chunk()
                if session.ready():
                    ready.append(task)
                return True
            self._enqueue("final", (task,))
            return True
        progressed = False
        while (
            not session.ready()
            and task.pending
            and session.rounds_fed < task.rounds
        ):
            session.feed(task.pending.popleft())
            progressed = True
        if session.ready():
            ready.append(task)
            return True
        if (
            task.final_chunk is not None
            and not task.pending
            and session.rounds_fed >= task.rounds
        ):
            self._enqueue("final", (task,))
            return True
        return progressed

    def _enqueue(self, kind: str, tasks: tuple[_StreamTask, ...]) -> None:
        # in_flight must flip before the (possibly blocking) put so the
        # scheduler never double-schedules a stream.  The enqueue timestamp
        # is taken before the put either way, so a backpressure stall shows
        # up as queue wait exactly as it did before instrumentation.
        work = self._work
        assert work is not None
        for task in tasks:
            task.in_flight = True
        item = (kind, tasks, time.perf_counter())
        try:
            work.put_nowait(item)
        except queue.Full:
            _OBS_BACKPRESSURE.inc()
            self.backpressure_stalls += 1
            work.put(item)
        depth = work.qsize()
        if METRICS.enabled:
            _OBS_QUEUE_DEPTH.set(depth)
        if self.observer is not None:
            self.observer.on_queue_depth(depth)

    def _worker(self, work: queue.Queue) -> None:
        while True:
            item = work.get()
            if item is None:
                work.task_done()
                return
            kind, tasks, enqueued_at = item
            wait = time.perf_counter() - enqueued_at
            try:
                if kind == "window":
                    self._decode_group(tasks, wait)
                else:
                    task = tasks[0]
                    if not task.aborted:
                        with span("realtime.final", stream=task.stream_id):
                            task.complete()
            except BaseException as exc:  # surface on run()/handle, keep pool
                for task in tasks:
                    task.error = exc
            finally:
                with self._wake:
                    for task in tasks:
                        task.in_flight = False
                    self._wake.notify_all()
                for task in tasks:
                    if task.finished or task.error is not None:
                        self._finalize(task)
                work.task_done()

    def _decode_group(self, tasks: tuple[_StreamTask, ...], wait: float) -> None:
        """Decode one window job: a single stream or a coalesced batch."""
        if len(tasks) == 1:
            task = tasks[0]
            if task.aborted:
                return
            with span("realtime.window", stream=task.stream_id):
                task.session.step()
            _OBS_WINDOWS.inc()
            task.recorder.add_wait(wait)
            with self._counter_lock:
                self.window_batches += 1
                self.window_jobs += 1
            self._observe_window(task, wait)
            return
        started = time.perf_counter()
        live = [task for task in tasks if not task.aborted]
        if not live:
            return
        # Each session owns its staging buffers, so collecting every
        # window's inputs before concatenating is safe; np.concatenate
        # copies, so reuse of those buffers on commit cannot alias.
        inputs = [task.session.window_inputs() for task in live]
        history = np.concatenate([h for h, _ in inputs], axis=0)
        context = np.concatenate([c for _, c in inputs], axis=0)
        lead = live[0].session.windowed
        _, decoder = lead.decoder_for(lead.effective_window)
        with span("realtime.window_batch", streams=len(live)):
            entries, inverse = decoder.decode_edges_unique(history, context)
            offset = 0
            for task, (chunk, _) in zip(live, inputs):
                shots = chunk.shape[0]
                task.session.commit_window(
                    entries, inverse[offset : offset + shots], started
                )
                offset += shots
        for task in live:
            _OBS_WINDOWS.inc()
            task.recorder.add_wait(wait)
            self._observe_window(task, wait)
        _OBS_COALESCED.inc(len(live))
        with self._counter_lock:
            self.window_batches += 1
            self.window_jobs += len(live)
        if self.observer is not None:
            self.observer.on_batch(len(live))

    def _observe_window(self, task: _StreamTask, wait: float) -> None:
        if self.observer is None or not task.recorder.timings:
            return
        timing = task.recorder.timings[-1]
        self.observer.on_window(
            task.stream_id,
            task.label,
            timing.committed_rounds,
            timing.service_seconds,
            wait,
        )

    def _finalize(self, task: _StreamTask) -> None:
        """Retire a finished/errored/aborted stream exactly once."""
        with self._wake:
            if task.finalized:
                return
            task.finalized = True
            task.finished = True
            if task.wall_seconds == 0.0:
                task.wall_seconds = time.perf_counter() - task._started
            self.streams_served += 1
            self.windows_decoded += task.session.windows_decoded
            callbacks = list(task.done_callbacks)
            task.done_callbacks.clear()
            task.done_event.set()
            self._wake.notify_all()
        if self.observer is not None:
            self.observer.on_stream_done(task.stream_id, task.label, task.error)
        for callback in callbacks:
            try:
                callback()
            except Exception:  # a bad callback must not kill the pool
                pass
