"""A batched decode service multiplexing many syndrome streams.

One logical qubit produces one syndrome stream; a control system serves
many.  :class:`DecodeService` models that shape in software: a producer
loop round-robins over the attached streams pulling one round chunk at a
time (the multiplexer), window-decode jobs are pushed onto a *bounded*
queue, and a pool of worker threads drains it.  When the queue is full the
producer blocks — backpressure — so buffered-but-undecoded syndrome data
stays bounded no matter how many streams are attached, exactly the
guarantee a real-time decoder has to make.

Per-stream ordering is preserved by keeping at most one job per stream in
flight (window ``k+1`` depends on the artifacts window ``k`` committed);
throughput comes from decoding *different* streams concurrently.  Every
stream gets a :class:`~repro.realtime.accounting.LatencyRecorder`, and the
final :class:`StreamReport` prices the measured latencies against the
microarchitecture cost model's round cadence.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Sequence

import numpy as np

from ..decoders import SyndromeCache
from ..obs.metrics import METRICS
from ..obs.trace import span
from .accounting import LatencyRecorder, StreamReport
from .stream import SyndromeStream
from .window import WindowedDecoder

__all__ = ["DecodeService"]

_POLL_SECONDS = 0.05

#: Decode-service telemetry; no-ops unless a telemetry scope is active.
_OBS_QUEUE_DEPTH = METRICS.gauge(
    "realtime.queue_depth", "pending-window queue depth after each enqueue"
)
_OBS_BACKPRESSURE = METRICS.counter(
    "realtime.backpressure_stalls", "producer blocks on a full window queue"
)
_OBS_WINDOWS = METRICS.counter(
    "realtime.windows_decoded", "window decode jobs completed by the workers"
)


class _StreamTask:
    """Mutable per-stream state shared between the producer and the workers."""

    def __init__(self, stream_id: int, stream: SyndromeStream, windowed: WindowedDecoder):
        self.stream_id = stream_id
        self.stream = stream
        self.recorder = LatencyRecorder()
        # WindowSession or FusedWindowSession — same protocol either way.
        self.session = windowed.session(stream.shots, self.recorder)
        self.chunk_iter = stream.chunks()
        self.exhausted = False
        self.finished = False
        self.in_flight = False
        self.error: BaseException | None = None
        self.predictions: np.ndarray | None = None
        self.failures: int | None = None
        self.wall_seconds = 0.0
        self._started = time.perf_counter()

    def pull_chunk(self) -> None:
        """Feed the session one more round chunk (producer thread only)."""
        try:
            self.session.feed(next(self.chunk_iter))
        except StopIteration:
            self.exhausted = True

    def complete(self) -> None:
        """Decode the tail window and close out the stream (worker thread)."""
        final = self.stream.final()
        self.predictions = self.session.finish(final)
        if final.observable_flips is not None:
            self.failures = int((self.predictions ^ final.observable_flips).sum())
        self.wall_seconds = time.perf_counter() - self._started
        self.finished = True


class DecodeService:
    """Decode N syndrome streams concurrently through sliding windows.

    Parameters
    ----------
    window_rounds / commit_rounds / method / max_exact_nodes / strategy:
        Windowed-decoder configuration, applied per stream (see
        :class:`~repro.realtime.window.WindowedDecoder`).
    workers:
        Worker threads decoding windows.  Streams are independent, so
        effective concurrency is ``min(workers, streams)``.
    queue_depth:
        Bound of the pending-window queue; the producer blocks when it is
        full (backpressure).  Defaults to ``max(2, workers)``.
    cache_size:
        Capacity of the service-wide :class:`~repro.decoders.SyndromeCache`
        (``None``: default capacity, ``0``: disabled).  All attached streams
        decode through this one cache — streams of the same code and noise
        overwhelmingly share sparse syndromes, so one stream's decode work
        serves every other stream the service multiplexes.
    fused:
        Per-stream sessions use the bit-packed ring buffers of
        :class:`repro.pipeline.FusedWindowSession` (bit-identical results,
        bounded packed memory per stream).
    """

    def __init__(
        self,
        window_rounds: int,
        commit_rounds: int | None = None,
        method: str = "matching",
        max_exact_nodes: int | None = None,
        strategy: str | None = None,
        workers: int = 4,
        queue_depth: int | None = None,
        cache_size: int | None = None,
        fused: bool = False,
    ) -> None:
        if workers <= 0:
            raise ValueError("workers must be positive")
        self.window_rounds = int(window_rounds)
        self.commit_rounds = commit_rounds
        self.method = method
        self.max_exact_nodes = max_exact_nodes
        self.strategy = strategy
        self.fused = bool(fused)
        self.workers = int(workers)
        self.queue_depth = int(queue_depth) if queue_depth is not None else max(2, workers)
        if self.queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        self.cache = SyndromeCache(cache_size)
        self.windows_decoded = 0
        self.streams_served = 0

    @classmethod
    def from_config(
        cls,
        config,
        *,
        workers: int = 4,
        queue_depth: int | None = None,
    ) -> "DecodeService":
        """Build a service from an :class:`~repro.api.config.ExperimentConfig`.

        The window geometry comes from ``execution.window_rounds`` /
        ``commit_rounds`` and the decoder from the ``decoder`` section
        (including the service-wide ``cache_size``); ``workers`` and
        ``queue_depth`` stay call-time arguments because they describe the
        serving deployment, not the experiment.  This is the construction
        path :meth:`repro.api.Session.stream` uses.
        """
        execution = config.execution
        if execution.window_rounds is None:
            raise ValueError(
                "DecodeService.from_config requires execution.window_rounds"
            )
        return cls(
            window_rounds=execution.window_rounds,
            commit_rounds=execution.commit_rounds,
            method=config.decoder.name,
            max_exact_nodes=config.decoder.max_exact_nodes,
            strategy=config.decoder.strategy,
            workers=workers,
            queue_depth=queue_depth,
            cache_size=config.decoder.cache_size,
            fused=execution.fused,
        )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self, streams: Sequence[SyndromeStream]) -> list[StreamReport]:
        """Decode every stream to completion; returns one report per stream."""
        if not streams:
            return []
        tasks = []
        for index, stream in enumerate(streams):
            code = getattr(stream, "code", None)
            noise = getattr(stream, "noise", None)
            if code is None or noise is None:
                raise ValueError(
                    "DecodeService needs streams that carry their code and "
                    "noise (e.g. SimulatorStream, or ReplayStream with code= "
                    "and noise= set)"
                )
            tasks.append(
                _StreamTask(
                    index,
                    stream,
                    WindowedDecoder(
                        code=code,
                        noise=noise,
                        rounds=stream.rounds,
                        window_rounds=self.window_rounds,
                        commit_rounds=self.commit_rounds,
                        method=self.method,
                        max_exact_nodes=self.max_exact_nodes,
                        strategy=self.strategy,
                        cache=self.cache,
                        fused=self.fused,
                    ),
                )
            )
        work: queue.Queue = queue.Queue(maxsize=self.queue_depth)
        done = threading.Condition()
        threads = [
            threading.Thread(
                target=self._worker, args=(work, done), daemon=True, name=f"decode-{i}"
            )
            for i in range(min(self.workers, len(tasks)))
        ]
        for thread in threads:
            thread.start()
        try:
            self._produce(tasks, work, done)
        finally:
            for _ in threads:
                work.put(None)
            for thread in threads:
                thread.join()
        for task in tasks:
            if task.error is not None:
                raise task.error
        self.streams_served += len(tasks)
        self.windows_decoded += sum(task.session.windows_decoded for task in tasks)
        return [
            StreamReport(
                stream_id=task.stream_id,
                shots=task.stream.shots,
                rounds=task.stream.rounds,
                recorder=task.recorder,
                failures=task.failures,
                wall_seconds=task.wall_seconds,
            )
            for task in tasks
        ]

    # ------------------------------------------------------------------ #
    # Producer / worker internals
    # ------------------------------------------------------------------ #
    def _produce(self, tasks: list[_StreamTask], work: queue.Queue, done: threading.Condition) -> None:
        """Round-robin multiplexer: pull chunks, schedule ready windows."""
        while not all(task.finished for task in tasks):
            progressed = False
            for task in tasks:
                if task.finished or task.in_flight:
                    continue
                if task.session.ready():
                    self._enqueue(work, "window", task)
                    progressed = True
                elif not task.exhausted:
                    task.pull_chunk()
                    progressed = True
                    if task.session.ready():
                        self._enqueue(work, "window", task)
                else:
                    self._enqueue(work, "final", task)
                    progressed = True
            if not progressed:
                with done:
                    done.wait(timeout=_POLL_SECONDS)

    @staticmethod
    def _enqueue(work: queue.Queue, kind: str, task: _StreamTask) -> None:
        # in_flight must flip before the (possibly blocking) put so the
        # producer never double-schedules a stream.  The enqueue timestamp is
        # taken before the put either way, so a backpressure stall shows up
        # as queue wait exactly as it did before instrumentation.
        task.in_flight = True
        item = (kind, task, time.perf_counter())
        try:
            work.put_nowait(item)
        except queue.Full:
            _OBS_BACKPRESSURE.inc()
            work.put(item)
        if METRICS.enabled:
            _OBS_QUEUE_DEPTH.set(work.qsize())

    @staticmethod
    def _worker(work: queue.Queue, done: threading.Condition) -> None:
        while True:
            item = work.get()
            if item is None:
                work.task_done()
                return
            kind, task, enqueued_at = item
            wait = time.perf_counter() - enqueued_at
            try:
                if kind == "window":
                    with span("realtime.window", stream=task.stream_id):
                        task.session.step()
                    _OBS_WINDOWS.inc()
                else:
                    with span("realtime.final", stream=task.stream_id):
                        task.complete()
                task.recorder.add_wait(wait)
            except BaseException as exc:  # surface in run(), don't kill the pool
                task.error = exc
                task.finished = True
            finally:
                task.in_flight = False
                with done:
                    done.notify_all()
                work.task_done()
